"""Snapshot isolation vs serializability, live (Fig. 1 at runtime).

The paper's motivating example: under the "common interpretation of
isolation" — snapshot isolation — two transactions that each check a
constraint over {x, y} and then update one of the two both commit,
leaving a state no serial execution could produce.

This example runs the *same* doctor-on-call workload (the classic
write-skew story) on the MVCC-SI backend and on the serializable
systems, and shows the constraint surviving only under the latter.

Run:  python examples/si_anomalies.py
"""

from repro.runtime import (
    Memory,
    Read,
    RococoTMBackend,
    Simulator,
    SnapshotIsolationBackend,
    TinySTMBackend,
    Transaction,
    TsxBackend,
    Work,
    Write,
)

N_PAIRS = 16  # independent (x, y) constraint pairs


def run(backend_factory, seed=0):
    """Two threads race write-skew transactions over N_PAIRS pairs.

    Invariant the application believes it maintains: for every pair,
    at least one of (x, y) stays on call (x + y >= 1).
    """
    memory = Memory()
    base = memory.alloc(2 * N_PAIRS)
    for i in range(2 * N_PAIRS):
        memory.store(base + i, 1)

    def make_body(pair, which):
        x_addr = base + 2 * pair
        y_addr = x_addr + 1

        def body():
            x = yield Read(x_addr)
            y = yield Read(y_addr)
            yield Work(800)  # deliberation: stretches the overlap
            if x + y >= 2:  # "someone else is still on call"
                yield Write(x_addr if which == 0 else y_addr, 0)

        return body

    def make_program(which):
        def program(tid):
            for pair in range(N_PAIRS):
                yield Transaction(make_body(pair, which))

        return program

    sim = Simulator(backend_factory(), 2, memory=memory, seed=seed)
    stats = sim.run([make_program(0), make_program(1)])

    violations = sum(
        1
        for pair in range(N_PAIRS)
        if memory.load(base + 2 * pair) + memory.load(base + 2 * pair + 1) < 1
    )
    return violations, stats


def main():
    print(f"{N_PAIRS} on-call pairs, invariant: x + y >= 1 per pair\n")
    for backend_factory in (
        SnapshotIsolationBackend,
        TinySTMBackend,
        TsxBackend,
        RococoTMBackend,
    ):
        violations, stats = run(backend_factory)
        verdict = "VIOLATED (write skew)" if violations else "preserved"
        print(
            f"  {backend_factory.name:10s}: invariant {verdict:22s} "
            f"({violations}/{N_PAIRS} pairs broken, "
            f"{stats.aborts} aborts)"
        )
    print(
        "\nSI validates only writes (first-committer-wins), so both "
        "constraint checks read the old snapshot and both updates land - "
        "the anomaly the paper's Fig. 1 uses to motivate serializability."
    )


if __name__ == "__main__":
    main()
