"""Quickstart: run a transactional workload on ROCoCoTM.

A minimal end-to-end tour of the public API:

1. build a simulated heap and a shared data structure;
2. write transaction bodies as generator coroutines;
3. run them on the hybrid CPU+FPGA system (and, for comparison, the
   TinySTM baseline) under a simulated 8-core machine;
4. inspect commits, aborts by cause, FPGA statistics and speedup.

Run:  python examples/quickstart.py
"""

from repro.runtime import (
    Memory,
    Read,
    RococoTMBackend,
    SequentialBackend,
    Simulator,
    TinySTMBackend,
    Transaction,
    Work,
    Write,
)

N_ACCOUNTS = 64
TRANSFERS_PER_THREAD = 200
N_THREADS = 8


def make_bank(memory):
    base = memory.alloc(N_ACCOUNTS)
    for i in range(N_ACCOUNTS):
        memory.store(base + i, 1000)
    return base


def transfer_body(base, src, dst, amount):
    """One atomic transfer; the TM retries this body on conflict."""

    def body():
        a = yield Read(base + src)
        b = yield Read(base + dst)
        yield Work(400)  # fee computation, audit logging, ...
        yield Write(base + src, a - amount)
        yield Write(base + dst, b + amount)
        return amount

    return body


def teller(base):
    """A thread program: a stream of random-ish transfers."""

    def program(tid):
        state = (tid + 1) * 2654435761 % 2**31
        moved = 0
        for _ in range(TRANSFERS_PER_THREAD):
            state = (state * 1103515245 + 12345) % 2**31
            src = state % N_ACCOUNTS
            dst = (state // 7) % N_ACCOUNTS
            if src == dst:
                dst = (dst + 1) % N_ACCOUNTS
            moved += yield Transaction(transfer_body(base, src, dst, 1))
            yield Work(400)
        return moved

    return program


def run(backend, n_threads):
    memory = Memory()
    base = make_bank(memory)
    simulator = Simulator(backend, n_threads, memory=memory, workload_name="bank")
    stats = simulator.run([teller(base)] * n_threads)
    total = sum(memory.load(base + i) for i in range(N_ACCOUNTS))
    assert total == N_ACCOUNTS * 1000, "money was created or destroyed!"
    return stats


def main():
    sequential = run(SequentialBackend(), 1)
    print(f"sequential          : {sequential.makespan_ns / 1e6:8.3f} ms")

    for backend in (TinySTMBackend(), RococoTMBackend()):
        stats = run(backend, N_THREADS)
        speedup = sequential.makespan_ns / stats.makespan_ns
        print(
            f"{stats.backend:20s}: {stats.makespan_ns / 1e6:8.3f} ms "
            f"({speedup:.2f}x, {stats.commits} commits, "
            f"{stats.aborts} aborts: {dict(stats.aborts_by_cause)})"
        )
        if isinstance(backend, RococoTMBackend):
            engine = backend.engine
            print(
                f"{'':20s}  FPGA: {engine.stats_requests} validations, "
                f"mean round trip {engine.mean_round_trip_ns:.0f} ns, "
                f"window commits {engine.manager.stats_commits}, "
                f"cycle aborts {engine.manager.stats_cycle_aborts}"
            )

    print("\nTotal balance conserved under every system - the TMs are sound.")


if __name__ == "__main__":
    main()
