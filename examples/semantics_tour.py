"""A guided tour of the paper's section 3: semantics and restrictions.

Reproduces, executably, the three motivating cases:

* Fig. 1  — write skew: admitted by snapshot isolation, rejected by
  serializability; and why serializability does not compose.
* Fig. 2  — phantom orderings: traces that are serializable but that
  no timestamp scheme (start-time or commit-time) can commit fully.
* Fig. 3(b) — the 2+2 obstruction: why any interval order (and hence
  any timestamp-based serial order) manufactures phantom edges.
* §4     — the same traces through the ROCoCo validator, which
  commits what TOCC must abort.

Run:  python examples/semantics_tour.py
"""

from repro.core import Footprint, RococoValidator, tocc_would_abort
from repro.semantics import (
    Relation,
    admissible_timestamp_orders,
    find_two_plus_two,
    find_write_skew,
    history_from_steps,
    history_is_serializable,
    history_real_time_intervals,
    is_interval_order,
    phantom_orderings,
    satisfies_snapshot_isolation,
    serialization_witness,
    write_skew_example,
)


def part_1_write_skew():
    print("=" * 66)
    print("Fig. 1 - write skew: the gap between SI and serializability")
    print("=" * 66)
    history = write_skew_example()
    print(f"  snapshot isolation satisfied : {satisfies_snapshot_isolation(history)}")
    print(f"  serializable                 : {history_is_serializable(history)}")
    print(f"  write-skew witness pair      : t{find_write_skew(history)}")
    rw = history.rw_dependencies()
    print(f"  dependency cycle             : t1 -> t2: {rw.related(1, 2)}, "
          f"t2 -> t1: {rw.related(2, 1)}")
    print("  (each transaction overwrote something the other read: no")
    print("   serial order can satisfy both - yet SI commits both.)\n")


def part_2_phantom_ordering():
    print("=" * 66)
    print("Fig. 2(b) - the phantom ordering haunting timestamped OCC")
    print("=" * 66)
    # x = object 0, y = object 1 (see tests/semantics for the trace).
    history = history_from_steps(
        [
            ("begin", 3), ("read", 3, 1),
            ("begin", 1), ("write", 1, 1), ("commit", 1),
            ("begin", 2), ("write", 2, 0), ("commit", 2),
            ("read", 3, 0), ("commit", 3),
        ]
    )
    rw = history.rw_dependencies()
    order = serialization_witness(rw)
    print(f"  R/W dependencies   : t2 -> t3: {rw.related(2, 3)}, "
          f"t3 -> t1: {rw.related(3, 1)}")
    print(f"  serializable as    : {' -> '.join(f't{t}' for t in order)}")
    rt = history.real_time_order()
    print(f"  real-time order    : t1 -> t2: {rt.related(1, 2)} "
          "(t1 finished before t2 began)")
    print(f"  phantom orderings  : {sorted(phantom_orderings(rw, rt))}")
    intervals = history_real_time_intervals(history)
    schemes = admissible_timestamp_orders(rw, intervals)
    print(f"  timestamp schemes that commit all three: {schemes or 'NONE'}")
    print("  (serializing t2 before t1 contradicts every possible")
    print("   timestamp assignment - TOCC must abort t3; ROCoCo need not.)\n")


def part_3_interval_orders():
    print("=" * 66)
    print("Fig. 3(b) - the 2+2 obstruction in interval orders")
    print("=" * 66)
    two_chains = Relation(pairs=[("t1", "t2"), ("t3", "t4")])
    print(f"  t1->t2, t3->t4 only; is an interval order: {is_interval_order(two_chains)}")
    print(f"  forbidden sub-order found: {find_two_plus_two(two_chains)}")
    print("  (real-time precedence is always an interval order, so any")
    print("   timestamp-compatible serialization of t1->t2 and t3->t4 adds")
    print("   a phantom edge between the chains.)\n")


def part_4_rococo():
    print("=" * 66)
    print("ROCoCo commits what TOCC aborts (the Fig. 2 cases, validated)")
    print("=" * 66)
    validator = RococoValidator()
    # t_w commits a write to x = address 0.
    validator.submit(Footprint.of(reads=[], writes=[0], snapshot=0, label="t_w"))
    # t_r read x before t_w's commit (snapshot 0) and writes y = 1.
    stale_reader = Footprint.of(reads=[0], writes=[1], snapshot=0, label="t_r")
    print(f"  TOCC would abort the stale reader : {tocc_would_abort(stale_reader, validator)}")
    decision = validator.submit(stale_reader)
    print(f"  ROCoCo decision                   : committed={decision.committed}")
    print(f"  serialization witness             : {validator.serialization_order()}")
    print("  (the stale reader simply serializes before the writer -")
    print("   reachability shows no cycle, so no abort is necessary.)")


if __name__ == "__main__":
    part_1_write_skew()
    part_2_phantom_ordering()
    part_3_interval_orders()
    part_4_rococo()
