"""Mini Figure 10: run STAMP applications across all TM systems.

Runs a configurable subset of the STAMP ports on TinySTM, the TSX
model, the global-lock baseline and ROCoCoTM over a thread sweep, and
prints speedup/abort tables plus the geomean comparison — a scaled-
down version of what `pytest benchmarks/bench_fig10_stamp.py` does in
full.

Run:  python examples/stamp_comparison.py [scale]
"""

import sys

from repro.bench import print_table
from repro.runtime import (
    CoarseLockBackend,
    RococoTMBackend,
    SequentialBackend,
    TinySTMBackend,
    TsxBackend,
    geomean,
)
from repro.stamp import KmeansWorkload, Ssca2Workload, VacationWorkload, run_stamp

WORKLOADS = (KmeansWorkload, VacationWorkload, Ssca2Workload)
BACKENDS = (CoarseLockBackend, TinySTMBackend, TsxBackend, RococoTMBackend)
THREADS = (1, 4, 8, 14, 28)


def main(scale: float = 0.35) -> None:
    ratios = {nt: [] for nt in THREADS}
    for workload_cls in WORKLOADS:
        sequential = run_stamp(workload_cls, SequentialBackend(), 1, scale=scale)
        rows = []
        speeds = {}
        for backend_cls in BACKENDS:
            for n_threads in THREADS:
                stats = run_stamp(workload_cls, backend_cls(), n_threads, scale=scale)
                speedup = sequential.makespan_ns / stats.makespan_ns
                speeds[(backend_cls.name, n_threads)] = speedup
                rows.append(
                    [backend_cls.name, n_threads, speedup, stats.abort_rate]
                )
        print_table(
            ["system", "threads", "speedup", "abort rate"],
            rows,
            title=f"{workload_cls.name} (scale={scale}, speedup vs sequential)",
        )
        for nt in THREADS:
            ratios[nt].append(
                speeds[("ROCoCoTM", nt)] / speeds[("TinySTM", nt)]
            )

    print_table(
        ["threads", "geomean ROCoCoTM/TinySTM"],
        [[nt, geomean(ratios[nt])] for nt in THREADS],
        title="The crossover: ROCoCoTM pays latency when idle-parallel, "
        "wins when threads (and metadata pressure) grow",
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.35)
