"""Drive the FPGA offload engine directly (Fig. 5 / Fig. 6 / §6.5).

Shows the hardware-facing API without the TM runtime on top:

1. stream validation requests through the pipelined engine and watch
   commits, cycle aborts and window-overflow aborts;
2. compare serial round trips against pipelined streaming — the
   Fig. 6(d) amortization argument;
3. print the §6.5 resource/Fmax model for a few configurations.

Run:  python examples/fpga_pipeline.py
"""

from repro.bench import print_table
from repro.hw import (
    FpgaValidationEngine,
    ValidationRequest,
    estimate,
    harp2_cci_link,
    pcie_link,
)


def part_1_stream():
    print("=" * 66)
    print("Streaming transactions through the W=64 validator")
    print("=" * 66)
    engine = FpgaValidationEngine(window=64)
    # A writer, then a stale reader (ROCoCo commits it), then a cycle.
    script = [
        ("writer", (), (100,), 0),
        ("stale-reader", (100,), (200,), 0),   # missed the writer: forward edge
        ("cycle-closer", (200,), (100,), 1),   # reads stale AND overwrites: cycle
        ("innocent", (300,), (301,), 2),
    ]
    rows = []
    now = 0.0
    for label, reads, writes, snapshot in script:
        response = engine.submit(
            ValidationRequest(label, tuple(reads), tuple(writes), snapshot), now
        )
        verdict = response.verdict
        rows.append(
            [
                label,
                "commit" if verdict.committed else f"ABORT ({verdict.reason})",
                f"{response.round_trip_ns:.0f} ns",
            ]
        )
        now += 50.0
    print_table(["transaction", "verdict", "round trip"], rows)
    print()


def part_2_pipelining():
    print("=" * 66)
    print("Fig. 6(d): pipelining amortizes the out-of-core latency")
    print("=" * 66)
    for name, link in (("CCI (HARP2)", harp2_cci_link()), ("PCIe card", pcie_link())):
        engine = FpgaValidationEngine(link=link)
        last_ready = 0.0
        n = 200
        for i in range(n):
            r = engine.submit(
                ValidationRequest(i, (i,), (10_000 + i,), i), now_ns=i * 20.0
            )
            last_ready = max(last_ready, r.ready_ns)
        serial = n * link.round_trip_ns
        print(
            f"  {name:12s}: {n} validations, pipelined finish at "
            f"{last_ready / 1000:.2f} us vs {serial / 1000:.2f} us serial "
            f"({serial / last_ready:.1f}x amortization), "
            f"mean queueing {engine.mean_queueing_ns:.0f} ns"
        )
    print()


def part_3_resources():
    print("=" * 66)
    print("§6.5: resource & Fmax model")
    print("=" * 66)
    rows = []
    for window, bits in ((64, 512), (64, 1024), (128, 512), (256, 512)):
        est = estimate(window=window, signature_bits=bits)
        rows.append(
            [
                f"W={window}, m={bits}",
                f"{est.alms} ({est.alm_pct:.1f}%)",
                f"{est.registers} ({est.register_pct:.1f}%)",
                f"{est.fmax_mhz:.0f} MHz",
                "fits" if est.fits else "DOES NOT FIT",
            ]
        )
    print_table(["config", "ALMs", "registers", "Fmax", "on Arria 10"], rows)
    print("\n(first row reproduces the paper's reported synthesis point)")


if __name__ == "__main__":
    part_1_stream()
    part_2_pipelining()
    part_3_resources()
