"""Figure 7 — bloom-filter false positivity of query and intersection.

Regenerates both panels: (a) query false-positive rate vs number of
stored elements, (b) false set-overlap rate of intersections — for
several (m, k) configurations, as closed forms and as Monte-Carlo
measurements of the real implementation.

Paper's takeaways to compare against:
* query FP is negligible at the chosen point (m=512, n=8);
* intersection FP rises sharply with n — frequent "even with a small
  number of elements" — which is why ROCoCoTM only intersects
  signatures of <= 8 addresses.
"""

from repro.bench import print_table
from repro.signatures import (
    SignatureConfig,
    intersection_false_positive,
    measure_intersection_false_positive,
    measure_query_false_positive,
    query_false_positive,
)

CONFIGS = ((256, 4), (512, 4), (512, 8), (1024, 8))
N_VALUES = (1, 2, 4, 8, 16, 32)


def _figure7a_rows():
    rows = []
    for bits, partitions in CONFIGS:
        config = SignatureConfig(bits=bits, partitions=partitions)
        for n in N_VALUES:
            rows.append(
                [
                    f"m={bits},k={partitions}",
                    n,
                    query_false_positive(n, bits, partitions),
                    measure_query_false_positive(n, config, trials=1500, seed=n),
                ]
            )
    return rows


def _figure7b_rows():
    rows = []
    for bits, partitions in CONFIGS:
        config = SignatureConfig(bits=bits, partitions=partitions)
        for n in N_VALUES:
            rows.append(
                [
                    f"m={bits},k={partitions}",
                    n,
                    intersection_false_positive(n, n, bits, partitions),
                    measure_intersection_false_positive(
                        n, n, config, trials=1500, seed=n
                    ),
                ]
            )
    return rows


def test_fig7a_query_false_positivity(benchmark):
    rows = benchmark.pedantic(_figure7a_rows, rounds=1, iterations=1)
    print_table(
        ["config", "n", "model P(query FP)", "measured"],
        rows,
        title="Figure 7(a): query false positivity",
    )
    # The design point: queries are essentially exact at m=512, n=8.
    point = [r for r in rows if r[0] == "m=512,k=4" and r[1] == 8][0]
    assert point[2] < 1e-3 and point[3] < 1e-2


def test_fig7b_intersection_false_positivity(benchmark):
    rows = benchmark.pedantic(_figure7b_rows, rounds=1, iterations=1)
    print_table(
        ["config", "n", "model P(intersect FP)", "measured"],
        rows,
        title="Figure 7(b): set-intersection false positivity",
    )
    # The paper's shape: intersection FP explodes with n.
    m512 = {r[1]: r[2] for r in rows if r[0] == "m=512,k=4"}
    assert m512[8] < 0.05 < m512[32]
