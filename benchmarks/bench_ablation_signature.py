"""Ablation — signature width m (§5.2 / §6.5 design choice).

The paper picks m = 512 from the Fig. 7 analysis and reports that a
1024-bit filter brings "no noteworthy improvement on the abort rate"
while lowering the clock.  This sweep runs ROCoCoTM on a
signature-sensitive workload with m in {128, 256, 512, 1024}, using
the resource model's Fmax for each width so the latency cost of wider
filters is charged too.
"""

from repro.bench import print_table
from repro.hw import ClockDomain, FpgaValidationEngine, estimate
from repro.runtime import RococoTMBackend
from repro.signatures import SignatureConfig
from repro.stamp import VacationWorkload, run_stamp

WIDTHS = (128, 256, 512, 1024)
THREADS = 14


def _run_width(bits):
    config = SignatureConfig(bits=bits, partitions=4)
    fmax_hz = int(estimate(signature_bits=bits).fmax_mhz * 1e6)
    engine = FpgaValidationEngine(config=config, clock=ClockDomain(fmax_hz))
    backend = RococoTMBackend(signature_config=config, engine=engine)
    stats = run_stamp(VacationWorkload, backend, THREADS, scale=0.5, seed=1)
    return stats


def _sweep():
    rows = []
    for bits in WIDTHS:
        stats = _run_width(bits)
        rows.append(
            [
                bits,
                f"{estimate(signature_bits=bits).fmax_mhz:.0f} MHz",
                stats.abort_rate,
                stats.makespan_ns / 1e6,
            ]
        )
    return rows


def test_ablation_signature_width(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["m (bits)", "Fmax", "abort rate", "makespan (ms)"],
        rows,
        title=f"Signature-width ablation (vacation, {THREADS} threads)",
    )
    rates = {r[0]: r[2] for r in rows}
    # §6.5's claim: going beyond 512 bits buys nothing noteworthy.
    assert abs(rates[1024] - rates[512]) < 0.05
    # Narrow filters do hurt (false conflicts on CPU and FPGA).
    assert rates[128] >= rates[512] - 1e-9
