"""Cluster scale-out sweep: shards x per-shard threads (docs/CLUSTER.md).

No paper figure covers the sharded cluster — it is a scale-out
extension of the reproduced single-node system — but its acceptance
story mirrors Fig. 10's: throughput (committed transactions per
simulated second) across the shard grid, at a *fixed per-node thread
count* (the scale-out regime: adding a shard adds a node with its own
threads, FPGA engine and window).  Alongside raw throughput the sweep
reports the two ratios the cluster design pivots on:

* **fast-path ratio** — the fraction of commits that stayed on one
  shard (local validation, no coordination), from the ``shard.*``
  metric family;
* **cross-shard abort rate** — certify refusals per attempt, the
  price of distributed conflicts under two-phase validation.

Partition-friendly workloads (``ssca2``, ``kmeans-low``) scale near
linearly; ``vacation-high`` pays the cross-shard penalty (most
commits span shards and eat the 2PC latency), which is the documented
trade-off, not a defect.  All numbers are simulated time, so the
sweep is bit-deterministic and the committed baseline
(``BENCH_cluster_baseline.json``) is byte-comparable across hosts.

Knobs:

* ``REPRO_BENCH_CLUSTER_SHARDS``   — shard grid (default ``1 2 4 8``);
* ``REPRO_BENCH_CLUSTER_THREADS``  — threads *per shard* (default 4);
* ``REPRO_BENCH_CLUSTER_SCALE``    — workload scale (default 0.25);
* ``REPRO_BENCH_CLUSTER_WORKLOADS``— workload list (default
  ``ssca2 kmeans-low vacation-high``);
* ``REPRO_BENCH_CLUSTER_JSON``     — output path (default
  ``BENCH_cluster.json`` in the working directory).
"""

import json
import os

from repro.exec import ExperimentSpec, SerialRunner

DEFAULT_SHARDS = (1, 2, 4, 8)
DEFAULT_THREADS_PER_SHARD = 4
DEFAULT_SCALE = 0.25
DEFAULT_WORKLOADS = ("ssca2", "kmeans-low", "vacation-high")
#: acceptance floor: 8 shards must at least double 1-shard throughput
#: on a partition-friendly workload.
TARGET_SPEEDUP_AT_8 = 2.0
#: the workload the 2x gate applies to.
GATE_WORKLOAD = "ssca2"
#: the workload expected to show the cross-shard penalty.
PENALTY_WORKLOAD = "vacation-high"


def _shard_grid():
    raw = os.environ.get("REPRO_BENCH_CLUSTER_SHARDS", "")
    if raw.strip():
        return tuple(int(token) for token in raw.split())
    return DEFAULT_SHARDS


def _threads_per_shard():
    return int(
        os.environ.get("REPRO_BENCH_CLUSTER_THREADS", DEFAULT_THREADS_PER_SHARD)
    )


def _scale():
    return float(os.environ.get("REPRO_BENCH_CLUSTER_SCALE", DEFAULT_SCALE))


def _workloads():
    raw = os.environ.get("REPRO_BENCH_CLUSTER_WORKLOADS", "")
    if raw.strip():
        return tuple(raw.split())
    return DEFAULT_WORKLOADS


def _spec(workload, shards, threads_per_shard, scale):
    return ExperimentSpec(
        workload,
        "ClusterTM",
        threads_per_shard * shards,
        scale=scale,
        seed=1,
        shards=shards,
        obs=True,
    )


def _row(stats, shards, threads_per_shard):
    counters = stats.metrics["counters"] if stats.metrics else {}
    single = counters.get("shard.single_commits", 0)
    cross = counters.get("shard.cross_commits", 0)
    routed = single + cross
    attempts = stats.commits + stats.aborts
    return {
        "shards": shards,
        "threads": threads_per_shard * shards,
        "commits": stats.commits,
        "aborts": stats.aborts,
        "makespan_ns": stats.makespan_ns,
        # Committed txns per simulated millisecond.
        "throughput_per_ms": round(stats.commits / stats.makespan_ns * 1e6, 4),
        "fast_path_ratio": round(single / routed, 4) if routed else None,
        "cross_shard_abort_rate": round(
            counters.get("shard.cross_aborts", 0) / attempts, 4
        )
        if attempts
        else 0.0,
    }


def sweep():
    """The full grid; returns the BENCH_cluster.json payload."""
    shard_grid = _shard_grid()
    threads_per_shard = _threads_per_shard()
    scale = _scale()
    workloads = _workloads()
    runner = SerialRunner()

    specs = [
        _spec(workload, shards, threads_per_shard, scale)
        for workload in workloads
        for shards in shard_grid
    ]
    # The shards=1 identity reference: plain ROCoCoTM at the same
    # thread count must be decision-identical to the 1-shard cluster.
    identity_specs = [
        ExperimentSpec(
            workload, "ROCoCoTM", threads_per_shard, scale=scale, seed=1
        )
        for workload in workloads
        if 1 in shard_grid
    ]
    results = runner.run(specs + identity_specs)
    cluster_results = results[: len(specs)]
    identity_results = results[len(specs):]

    series = {}
    index = 0
    for workload in workloads:
        rows = []
        for shards in shard_grid:
            rows.append(_row(cluster_results[index], shards, threads_per_shard))
            index += 1
        base = next((r for r in rows if r["shards"] == 1), rows[0])
        for row in rows:
            row["speedup_vs_1_shard"] = round(
                row["throughput_per_ms"] / base["throughput_per_ms"], 3
            )
        series[workload] = rows

    identity = {}
    for workload, stats in zip(
        [w for w in workloads if 1 in _shard_grid()], identity_results
    ):
        cluster_row = next(
            r for r in series[workload] if r["shards"] == 1
        )
        identity[workload] = {
            "rococotm_makespan_ns": stats.makespan_ns,
            "cluster_makespan_ns": cluster_row["makespan_ns"],
            "identical": stats.makespan_ns == cluster_row["makespan_ns"]
            and stats.commits == cluster_row["commits"],
        }

    return {
        "benchmark": "cluster-scaleout",
        "unit": "committed txns per simulated millisecond",
        "threads_per_shard": threads_per_shard,
        "scale": scale,
        "target_speedup_at_8": TARGET_SPEEDUP_AT_8,
        "gate_workload": GATE_WORKLOAD,
        "penalty_workload": PENALTY_WORKLOAD,
        "single_shard_identity": identity,
        "results": {workload: series[workload] for workload in sorted(series)},
    }


def write_stamp(payload):
    path = os.environ.get("REPRO_BENCH_CLUSTER_JSON", "BENCH_cluster.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def print_report(payload):
    for workload, rows in payload["results"].items():
        print(f"\n{workload} ({payload['threads_per_shard']} threads/shard)")
        print(
            f"{'shards':>7} {'threads':>8} {'txn/ms':>9} {'speedup':>8} "
            f"{'fast-path':>10} {'x-abort':>8}"
        )
        for row in rows:
            fast = (
                f"{row['fast_path_ratio']:.2f}"
                if row["fast_path_ratio"] is not None
                else "-"
            )
            print(
                f"{row['shards']:>7} {row['threads']:>8} "
                f"{row['throughput_per_ms']:>9.2f} "
                f"{row['speedup_vs_1_shard']:>7.2f}x {fast:>10} "
                f"{row['cross_shard_abort_rate']:>8.3f}"
            )
    for workload, check in payload["single_shard_identity"].items():
        status = "ok" if check["identical"] else "MISMATCH"
        print(f"identity {workload}: cluster(1) == ROCoCoTM -> {status}")


def _speedup_at(payload, workload, shards):
    rows = payload["results"].get(workload, ())
    row = next((r for r in rows if r["shards"] == shards), None)
    return row["speedup_vs_1_shard"] if row else None


def test_cluster_scaleout(benchmark):
    payload = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_report(payload)
    write_stamp(payload)
    # The 1-shard cluster must be decision-identical to single-node
    # ROCoCoTM on every workload in the sweep.
    for workload, check in payload["single_shard_identity"].items():
        assert check["identical"], (workload, check)
    # Partition-friendly scale-out: >= 2x at 8 shards (when swept).
    gate = _speedup_at(payload, GATE_WORKLOAD, 8)
    if gate is not None:
        assert gate >= TARGET_SPEEDUP_AT_8, payload["results"][GATE_WORKLOAD]
    # The cross-shard penalty is visible: vacation-high scales worse
    # than the gate workload at the largest swept shard count.
    top = max(payload["results"].get(PENALTY_WORKLOAD, [{}])[-1].get("shards", 0), 0)
    if top > 1 and _speedup_at(payload, GATE_WORKLOAD, top) is not None:
        assert (
            _speedup_at(payload, PENALTY_WORKLOAD, top)
            < _speedup_at(payload, GATE_WORKLOAD, top)
        ), (PENALTY_WORKLOAD, payload["results"][PENALTY_WORKLOAD])


def main():
    payload = sweep()
    print_report(payload)
    path = write_stamp(payload)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
