"""Figure 11 — amortized per-transaction validation overhead (us).

TinySTM's commit-time validation walks every timestamped object in the
read set (O(r) on the CPU); ROCoCoTM's validation is a pipelined FPGA
round trip whose cost is insensitive to the read-set size.  The paper
shows ROCoCoTM staying under one microsecond everywhere, and TinySTM
overtaking it on labyrinth (the huge-read-set application).
"""

from repro.bench import print_table, validation_overhead_rows
from repro.stamp import (
    GenomeWorkload,
    IntruderWorkload,
    KmeansWorkload,
    LabyrinthWorkload,
    VacationWorkload,
)

WORKLOADS = (
    GenomeWorkload,
    IntruderWorkload,
    KmeansWorkload,
    VacationWorkload,
    LabyrinthWorkload,
)


def _rows():
    import os

    from repro.exec import default_runner

    runner = default_runner(int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    return validation_overhead_rows(
        WORKLOADS, n_threads=14, scale=0.5, seed=1, runner=runner
    )


def test_fig11_validation_overhead(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = [[r["workload"], r["TinySTM"], r["ROCoCoTM"]] for r in rows]
    print_table(
        ["workload", "TinySTM (us/txn)", "ROCoCoTM (us/txn)"],
        table,
        title="Figure 11: per-transaction validation overhead at 14 threads",
    )

    by_name = {r["workload"]: r for r in rows}
    # ROCoCoTM stays below one microsecond for every application.
    for name, row in by_name.items():
        assert row["ROCoCoTM"] < 1.0, (name, row)
    # ROCoCoTM's overhead is flat (insensitive to read-set size):
    # largest/smallest within a small factor.
    rococo = [r["ROCoCoTM"] for r in rows]
    assert max(rococo) / min(rococo) < 3.0
    # TinySTM's overhead varies with the read set; labyrinth (longest
    # read paths) sits at the top, next to kmeans (whose hot
    # accumulators force frequent snapshot-extension revalidation).
    tiny = {r["workload"]: r["TinySTM"] for r in rows}
    ranked = sorted(tiny, key=tiny.get, reverse=True)
    assert "labyrinth" in ranked[:2], ranked
    assert tiny["labyrinth"] > tiny["genome"]


def test_fig11_scaling_mechanism(benchmark):
    """The mechanism behind Fig. 11, isolated: growing the read set
    (an 8x bigger labyrinth grid -> longer paths) inflates TinySTM's
    per-transaction validation time while ROCoCoTM's stays flat.

    Note (EXPERIMENTS.md): our labyrinth port uses STAMP's
    early-release grid copy, so its absolute TinySTM validation time
    stays below ROCoCoTM's constant ~0.65 us at these scaled inputs —
    the paper's *absolute* crossover needs the original's much larger
    footprints; the *scaling* contrast is what this test pins down.
    """
    from repro.runtime import RococoTMBackend, TinySTMBackend
    from repro.stamp import run_stamp

    def measure():
        out = {}
        for scale in (0.5, 4.0):
            for backend_factory in (TinySTMBackend, RococoTMBackend):
                stats = run_stamp(
                    LabyrinthWorkload, backend_factory(), 8, scale=scale, seed=1
                )
                out[(stats.backend, scale)] = stats.mean_validation_us
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        ["system", "scale 0.5 (us/txn)", "scale 4.0 (us/txn)"],
        [
            ["TinySTM", out[("TinySTM", 0.5)], out[("TinySTM", 4.0)]],
            ["ROCoCoTM", out[("ROCoCoTM", 0.5)], out[("ROCoCoTM", 4.0)]],
        ],
        title="Fig. 11 mechanism: validation vs read-set size (labyrinth)",
    )
    tiny_growth = out[("TinySTM", 4.0)] / out[("TinySTM", 0.5)]
    rococo_growth = out[("ROCoCoTM", 4.0)] / out[("ROCoCoTM", 0.5)]
    assert tiny_growth > 1.4, "TinySTM validation should grow with the read set"
    assert rococo_growth < tiny_growth, "ROCoCoTM should be less sensitive"
    assert rococo_growth < 1.6
