"""Figure 6(c) vs 6(d) — dedicated-thread vs pipelined validation.

§5.1: "Compared to the exclusive validation on a dedicated thread in
a previous centralized validation scheme, pipelined validation on
FPGA can significantly reduce the amortized validation overhead per
transaction."  Both engines make identical decisions; only the
service model differs, so the comparison isolates the pipeline.
"""

import pytest

from repro.bench import print_table
from repro.hw import SoftwareValidationEngine
from repro.runtime import RococoTMBackend, SequentialBackend
from repro.stamp import KmeansWorkload, VacationWorkload, run_stamp

WORKLOADS = (KmeansWorkload, VacationWorkload)
THREADS = (8, 14, 28)


def _run(workload_cls, engine_kind, n_threads):
    if engine_kind == "software":
        backend = RococoTMBackend(engine=SoftwareValidationEngine())
    else:
        backend = RococoTMBackend()
    return run_stamp(workload_cls, backend, n_threads, scale=0.5, seed=1), backend


def _sweep():
    rows = []
    for workload_cls in WORKLOADS:
        sequential = run_stamp(workload_cls, SequentialBackend(), 1, scale=0.5, seed=1)
        for n_threads in THREADS:
            cells = {}
            for kind in ("software", "fpga"):
                stats, backend = _run(workload_cls, kind, n_threads)
                cells[kind] = (
                    sequential.makespan_ns / stats.makespan_ns,
                    stats.mean_validation_us,
                    backend.engine.mean_queueing_ns,
                )
            rows.append(
                [
                    workload_cls.name,
                    n_threads,
                    cells["software"][0],
                    cells["fpga"][0],
                    cells["software"][1],
                    cells["fpga"][1],
                    cells["software"][2],
                ]
            )
    return rows


def test_fig06_pipeline_vs_dedicated_thread(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        [
            "workload", "threads",
            "SW speedup", "FPGA speedup",
            "SW us/validation", "FPGA us/validation",
            "SW queueing ns",
        ],
        rows,
        title="Fig. 6(c) vs (d): dedicated-thread vs pipelined validation",
    )
    # The pipelined engine must win where validation demand is high,
    # and the software validator's queueing must grow with threads
    # (the centralized bottleneck the paper warns becomes dominant).
    by = {(r[0], r[1]): r for r in rows}
    for workload in ("kmeans", "vacation"):
        assert by[(workload, 28)][3] >= by[(workload, 28)][2], workload
        assert by[(workload, 28)][6] > by[(workload, 8)][6], workload
    # Amortized per-transaction validation stays sub-microsecond only
    # on the pipelined engine at 28 threads.
    assert all(r[5] < 1.0 for r in rows)
