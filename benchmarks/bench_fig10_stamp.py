"""Figure 10 + §6.3 headline — STAMP speedups and abort rates.

For every application: speedup over the sequential baseline (solid
lines of Fig. 10) and abort rate (dashed lines; ROCoCoTM's FPGA-side
aborts are the dotted lines) for TinySTM, TSX and ROCoCoTM across
{1, 4, 8, 14, 28} threads.  A final summary prints the geomean
speedup ratios the abstract headlines.

Paper's shapes to compare against:
* TSX is the best system at 4 threads, then hits an abort avalanche
  (83.3% ceiling, footnote 10) and collapses;
* ROCoCoTM trails TinySTM at 1 thread (paper: 1.32x slower) and
  overtakes it by 14-28 threads (paper: 1.41x / 1.55x geomean);
* ssca2 is the exception: tiny transactions cannot amortize the
  out-of-core validation, so ROCoCoTM scales poorly there;
* most ROCoCoTM aborts fail fast on the CPU (FPGA-side abort share is
  small).
"""

import os
import time

import pytest

from repro.bench import FIG10_THREADS, matrix_from_results, matrix_specs, print_table
from repro.exec import ResultCache, default_runner, write_bench_stamp
from repro.stamp import ALL_WORKLOADS

SCALE = 0.5
SEED = 1


@pytest.fixture(scope="module")
def matrix():
    """The full grid via the exec layer.

    Environment knobs (all optional; defaults reproduce the old serial
    behavior exactly — results are bit-identical either way):

    * ``REPRO_BENCH_JOBS``  — shard cells across N processes (0 = one
      per core);
    * ``REPRO_BENCH_CACHE`` — content-addressed result-cache directory;
    * ``REPRO_BENCH_STAMP`` — write machine-readable sweep results
      (specs, cells, wall-clock, cache hit rate) to this path;
    * ``REPRO_BENCH_TIMEOUT`` / ``REPRO_BENCH_RETRIES`` /
      ``REPRO_BENCH_RESUME`` — any of these routes the sweep through
      :class:`~repro.exec.SupervisedRunner`: per-cell deadline
      (seconds), retries before quarantine, and the crash-resumable
      journal path (see docs/EXECUTION.md).
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    cache = ResultCache(cache_dir) if cache_dir else None
    timeout = os.environ.get("REPRO_BENCH_TIMEOUT")
    retries = os.environ.get("REPRO_BENCH_RETRIES")
    journal = os.environ.get("REPRO_BENCH_RESUME")
    if timeout or retries or journal:
        from repro.exec import SupervisedRunner, SupervisorPolicy

        policy = SupervisorPolicy(
            timeout_s=float(timeout) if timeout else None,
            max_retries=int(retries) if retries else 2,
        )
        runner = SupervisedRunner(
            max_workers=jobs, cache=cache, policy=policy,
            journal=journal, resume=bool(journal),
        )
    else:
        runner = default_runner(jobs, cache=cache)
    specs = matrix_specs(scale=SCALE, seed=SEED)
    started = time.perf_counter()
    results = runner.run(specs)
    wall_clock_s = time.perf_counter() - started
    grid = matrix_from_results(specs, results)
    stamp_path = os.environ.get("REPRO_BENCH_STAMP")
    if stamp_path:
        write_bench_stamp(stamp_path, grid, specs, wall_clock_s, runner, cache)
    return grid


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS, ids=lambda w: w.name)
def test_fig10_application(benchmark, matrix, workload_cls):
    name = workload_cls.name
    rows = []
    for backend in ("TinySTM", "TSX", "ROCoCoTM"):
        for n_threads in FIG10_THREADS:
            cell = matrix.get(name, backend, n_threads)
            rows.append(
                [
                    backend,
                    n_threads,
                    cell.speedup,
                    cell.abort_rate,
                    cell.fpga_abort_rate if backend == "ROCoCoTM" else "",
                ]
            )
    print_table(
        ["system", "threads", "speedup", "abort rate", "fpga aborts"],
        rows,
        title=f"Figure 10 — {name} (scale={SCALE})",
    )

    # Timing target: one representative high-thread-count run.
    from repro.runtime import RococoTMBackend
    from repro.stamp import run_stamp

    benchmark.pedantic(
        lambda: run_stamp(workload_cls, RococoTMBackend(), 8, scale=SCALE, seed=SEED),
        rounds=1,
        iterations=1,
    )

    # Shape: ROCoCoTM's FPGA-side aborts are a minority of its aborts
    # (most conflicts fail fast on the CPU, §6.3).  Only meaningful
    # with enough transactions — labyrinth has a couple dozen routes
    # at this scale, and its conflicts are genuine write-write cycles
    # only the validator can see.
    for n_threads in (14, 28):
        cell = matrix.get(name, "ROCoCoTM", n_threads)
        if cell.abort_rate > 0.02 and cell.commits + cell.aborts >= 100:
            assert cell.fpga_abort_rate <= 0.7 * cell.abort_rate + 0.05, name


def test_geomean_headline(benchmark, matrix):
    """The abstract's numbers: 1.55x vs TinySTM and 8.05x vs TSX at 28
    threads (1.41x / 4.04x at 14)."""

    def compute():
        rows = []
        for n_threads in FIG10_THREADS:
            vs_tiny = matrix.geomean_ratio("ROCoCoTM", "TinySTM", n_threads)
            vs_tsx = matrix.geomean_ratio("ROCoCoTM", "TSX", n_threads)
            rows.append([n_threads, vs_tiny, vs_tsx])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        ["threads", "ROCoCoTM/TinySTM", "ROCoCoTM/TSX"],
        rows,
        title="§6.3 geomean speedup ratios "
        "(paper @14t: 1.41 / 4.04; @28t: 1.55 / 8.05; @1t: 1/1.32 = 0.76 vs TinySTM)",
    )

    at = {r[0]: (r[1], r[2]) for r in rows}
    # 1 thread: TinySTM ahead (communication latency dominates).
    assert at[1][0] < 1.0
    # Crossover: ROCoCoTM gains on TinySTM monotonically with threads
    # and is ahead at 28.
    assert at[28][0] > at[4][0]
    assert at[28][0] > 1.2
    # TSX: strong early, collapsed by 28 threads.
    assert at[4][1] < 1.0
    assert at[28][1] > 1.5


def test_ssca2_exception(benchmark, matrix):
    """§6.3: ssca2's tiny transactions cannot amortize the out-of-core
    round trip, so ROCoCoTM scales worst there."""
    ssca2 = benchmark.pedantic(
        lambda: matrix.get("ssca2", "ROCoCoTM", 28).speedup
        / matrix.get("ssca2", "TinySTM", 28).speedup,
        rounds=1,
        iterations=1,
    )
    others = [
        matrix.get(w, "ROCoCoTM", 28).speedup / matrix.get(w, "TinySTM", 28).speedup
        for w in matrix.workloads()
        if w != "ssca2"
    ]
    assert ssca2 < min(others), "ssca2 should be ROCoCoTM's worst case"
