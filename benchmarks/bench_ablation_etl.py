"""Ablation — commit-time vs encounter-time locking in TinySTM (§6.2).

The paper configures TinySTM with commit-time locking "similar to
ROCoCoTM" after verifying that on HARP2 there is "no significant
difference between commit-time locking and the default encounter-time
locking".  This bench reproduces that check on the STAMP ports.
"""

from repro.bench import print_table
from repro.runtime import SequentialBackend, TinySTMBackend, TinySTMEtlBackend
from repro.stamp import GenomeWorkload, KmeansWorkload, VacationWorkload, run_stamp

WORKLOADS = (GenomeWorkload, KmeansWorkload, VacationWorkload)
THREADS = 8


def _sweep():
    rows = []
    for workload_cls in WORKLOADS:
        sequential = run_stamp(workload_cls, SequentialBackend(), 1, scale=0.5, seed=1)
        speeds = {}
        for backend_cls in (TinySTMBackend, TinySTMEtlBackend):
            stats = run_stamp(workload_cls, backend_cls(), THREADS, scale=0.5, seed=1)
            speeds[backend_cls.name] = (
                sequential.makespan_ns / stats.makespan_ns,
                stats.abort_rate,
            )
        rows.append(
            [
                workload_cls.name,
                speeds["TinySTM"][0],
                speeds["TinySTM-ETL"][0],
                speeds["TinySTM"][1],
                speeds["TinySTM-ETL"][1],
            ]
        )
    return rows


def test_ablation_locking_strategy(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["workload", "CTL speedup", "ETL speedup", "CTL abort", "ETL abort"],
        rows,
        title=f"TinySTM commit-time vs encounter-time locking ({THREADS} threads)",
    )
    # §6.2's claim: no significant difference.
    for name, ctl, etl, *_ in rows:
        ratio = ctl / etl if etl else float("inf")
        assert 0.6 < ratio < 1.7, (name, ctl, etl)
