"""Ablation — greedy vs global-view (batch) validation (§4.1 / §7).

The paper notes the pipelined validator's greediness can sacrifice
future transactions and defers "non-greedy CC algorithms" to future
work.  This bench quantifies the gap: the same §6.1-style traces are
validated greedily (arrival order) and with a global view over each
T-transaction batch.
"""

from repro.bench import print_table
from repro.cc import generate_trace
from repro.core import BatchRococoValidator, Footprint, RococoValidator

CONCURRENCY = 16
SEEDS = 12
N_TXNS = 128


def _footprints(trace, committed_count):
    for txn in trace:
        yield Footprint.of(txn.read_set, txn.write_set, committed_count(), label=txn.txn)


def _run_pair(ops_per_txn):
    greedy_aborts = batch_aborts = total = 0
    for seed in range(SEEDS):
        trace = generate_trace(
            n_txns=N_TXNS, ops_per_txn=ops_per_txn, locations=256, seed=seed
        )
        txns = list(trace)
        total += len(txns)

        greedy = RococoValidator()
        batched = BatchRococoValidator()
        for start in range(0, len(txns), CONCURRENCY):
            window = txns[start : start + CONCURRENCY]
            g_snapshot = greedy.committed_count
            for txn in window:
                fp = Footprint.of(txn.read_set, txn.write_set, g_snapshot, label=txn.txn)
                if not greedy.submit(fp).committed:
                    greedy_aborts += 1
            b_snapshot = batched.committed_count
            outcome = batched.submit_batch(
                [
                    Footprint.of(t.read_set, t.write_set, b_snapshot, label=t.txn)
                    for t in window
                ]
            )
            batch_aborts += len(outcome.aborted)
    return greedy_aborts / total, batch_aborts / total


def _sweep():
    rows = []
    for n in (8, 12, 16, 24):
        greedy_rate, batch_rate = _run_pair(n)
        saved = (greedy_rate - batch_rate) / greedy_rate if greedy_rate else 0.0
        rows.append([n, greedy_rate, batch_rate, f"{saved:.1%}"])
    return rows


def test_ablation_greedy_vs_batch(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["N", "greedy abort rate", "batch abort rate", "aborts saved"],
        rows,
        title=f"Greedy vs global-view validation (batch = T = {CONCURRENCY})",
    )
    for n, greedy_rate, batch_rate, _ in rows:
        assert batch_rate <= greedy_rate + 1e-9, n
    # The global view must win somewhere non-trivially.
    assert any(g - b > 0.005 for _, g, b, _ in rows)
