"""Validation hot-path microbench: vectorized vs reference (docs/PERF.md).

PR 8 made the scheduler O(log T), so the dominant per-commit cost is
the validation pipeline itself: bloom bit positions, per-address query
masks, the W-way conflict compare, and the commit-time signature
bookkeeping.  This benchmark drives :class:`ValidationManager.validate`
directly — no simulator, no timing model — so the measured quantity is
*validations per wall-clock second* through the decision path alone.

Two implementations run the same request stream:

* ``reference`` — the pre-vectorization ``ConflictDetector`` kept
  verbatim below (per-address Python loops, uncached bit positions,
  array-shift eviction, per-commit re-hash of every address);
* ``live``      — whatever :mod:`repro.hw` currently ships (the
  interned mask cache, batched (W, A) compare, ring buffer, and
  incremental signatures after PR 10).

Both are decision-identical by construction and the sweep asserts it:
the verdict tallies of the two runs must match exactly (the
verdict-bit-identity invariant, DESIGN.md).  Speedup is measured
in-process on the same interpreter, so the 2x acceptance gate is
robust to machine noise; the committed absolute rates
(``benchmarks/BENCH_validation_baseline.json``, recorded on the
pre-optimization tree) are only compared as a non-gating drift report
in CI.

Request signatures are built *outside* the timed loop: in the real
runtime the CPU accumulates read/write signatures while the
transaction executes (Algorithm 1), so at commit time they are already
in hand — re-deriving them per commit is exactly the redundancy the
optimization removes.

Knobs (env):

* ``REPRO_BENCH_VAL_WINDOWS`` — space-separated window grid
  (default ``16 64``);
* ``REPRO_BENCH_VAL_TXNS``    — transactions per measurement
  (default 4000; CI's perf-smoke uses a smaller value);
* ``REPRO_BENCH_VAL_ROUNDS``  — measurement rounds per cell; each
  implementation reports its best-of-N rate (default 3), which is
  what makes the speedup gate robust to scheduler noise;
* ``REPRO_BENCH_VAL_JSON``    — output path (default
  ``BENCH_validation.json`` in the working directory).
"""

import json
import os
import random
import time
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Sequence, Tuple

import numpy as np

from repro.hw import ValidationManager, ValidationRequest
from repro.signatures import SignatureConfig

DEFAULT_WINDOWS = (16, 64)
DEFAULT_TXNS = 4000
DEFAULT_ROUNDS = 3
#: acceptance floor at the paper's W=64 window on the ssca2-like mix.
TARGET_SPEEDUP_AT_64 = 2.0
GATE_MIX = "ssca2"
GATE_WINDOW = 64

_WORD = 64

#: does the installed ValidationRequest carry incremental signatures?
_HAS_SIGS = "read_raw" in getattr(ValidationRequest, "__dataclass_fields__", {})


# ----------------------------------------------------------------------
# The pre-vectorization detector, kept verbatim as the in-process
# oracle.  Bit positions are computed straight from the hash lanes so
# the reference keeps the pre-PR10 cost model even though the live
# SignatureConfig now memoizes them.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _RefBookkeeping:
    label: Hashable
    commit_index: int
    read_raw: int
    write_raw: int


class ReferenceConflictDetector:
    """The array-shift, per-address-loop detector of PRs 0-9."""

    def __init__(self, config: SignatureConfig, window: int):
        self.config = config
        self.window = window
        self._words = (config.bits + _WORD - 1) // _WORD
        self._read_sigs = np.zeros((window, self._words), dtype=np.uint64)
        self._write_sigs = np.zeros((window, self._words), dtype=np.uint64)
        self._entries: List[_RefBookkeeping] = []

    # -- uncached bit positions (pre-PR10 SignatureConfig.bit_positions)
    def _bit_positions(self, element: int) -> List[int]:
        width = self.config.partition_bits
        return [i * width + h(element) for i, h in enumerate(self.config.hashes)]

    def _raw_to_words(self, raw: int) -> np.ndarray:
        out = np.zeros(self._words, dtype=np.uint64)
        for i in range(self._words):
            out[i] = (raw >> (i * _WORD)) & 0xFFFFFFFFFFFFFFFF
        return out

    @property
    def resident(self) -> int:
        return len(self._entries)

    @property
    def oldest_commit_index(self) -> int:
        return self._entries[0].commit_index if self._entries else 0

    def entries(self) -> List[_RefBookkeeping]:
        return list(self._entries)

    def _query_mask(self, addresses: Sequence[int], sigs: np.ndarray) -> np.ndarray:
        n = len(self._entries)
        hit = np.zeros(n, dtype=bool)
        if n == 0:
            return hit
        live = sigs[:n]
        for addr in addresses:
            mask_words = np.zeros(self._words, dtype=np.uint64)
            for pos in self._bit_positions(addr):
                mask_words[pos // _WORD] |= np.uint64(1 << (pos % _WORD))
            hit |= ((live & mask_words) == mask_words).all(axis=1)
        return hit

    def edges(
        self, read_addrs: Sequence[int], write_addrs: Sequence[int], snapshot: int
    ) -> Tuple[int, int]:
        n = len(self._entries)
        if n == 0:
            return 0, 0
        read_hits = self._query_mask(read_addrs, self._write_sigs)
        write_hits = self._query_mask(write_addrs, self._write_sigs)
        write_hits |= self._query_mask(write_addrs, self._read_sigs)

        observed = np.fromiter(
            (e.commit_index < snapshot for e in self._entries), dtype=bool, count=n
        )
        forward = _ref_bools_to_mask(read_hits & ~observed)
        backward = _ref_bools_to_mask((read_hits & observed) | write_hits)
        return forward, backward

    def record_commit(
        self,
        label: Hashable,
        commit_index: int,
        read_addrs: Iterable[int],
        write_addrs: Iterable[int],
        read_raw=None,
        write_raw=None,
    ) -> bool:
        # Pre-PR10 behavior: ignore shipped signatures, re-hash every
        # address from scratch.
        read_sig = 0
        for addr in read_addrs:
            for pos in self._bit_positions(addr):
                read_sig |= 1 << pos
        write_sig = 0
        for addr in write_addrs:
            for pos in self._bit_positions(addr):
                write_sig |= 1 << pos
        entry = _RefBookkeeping(label, commit_index, read_sig, write_sig)

        evicted = len(self._entries) == self.window
        if evicted:
            del self._entries[0]
            self._read_sigs[:-1] = self._read_sigs[1:]
            self._write_sigs[:-1] = self._write_sigs[1:]
        slot = len(self._entries)
        self._entries.append(entry)
        self._read_sigs[slot] = self._raw_to_words(entry.read_raw)
        self._write_sigs[slot] = self._raw_to_words(entry.write_raw)
        return evicted


def _ref_bools_to_mask(bools: np.ndarray) -> int:
    mask = 0
    for i in np.nonzero(bools)[0]:
        mask |= 1 << int(i)
    return mask


# ----------------------------------------------------------------------
# Request streams
# ----------------------------------------------------------------------

#: (reads, writes, address-space bits, hot-region size) per mix.  The
#: ssca2-like mix is the small-footprint low-contention graph kernel
#: the paper scales best on; the vacation-like mix stresses the
#: detector with wide read sets and a contended hot region.
MIXES = {
    "ssca2": (3, 2, 16, 0),
    "vacation": (24, 6, 14, 128),
}


def _address_stream(mix: str, txns: int, seed: int = 42):
    """Deterministic per-transaction (reads, writes, snapshot_lag)."""
    n_reads, n_writes, space_bits, hot = MIXES[mix]
    rng = random.Random(seed)
    space = 1 << space_bits
    stream = []
    for _ in range(txns):
        addrs = set()
        while len(addrs) < n_reads + n_writes:
            if hot and rng.random() < 0.1:
                addrs.add(space + rng.randrange(hot))
            else:
                addrs.add(rng.randrange(space))
        addrs = sorted(addrs)
        rng.shuffle(addrs)
        stream.append(
            (tuple(addrs[:n_reads]), tuple(addrs[n_reads:]), rng.randint(0, 4))
        )
    return stream


def _make_requests(config: SignatureConfig, stream):
    """Pre-built requests; signatures (when supported) ride along the
    way the runtime ships them — built during execution, not at
    validation time."""
    requests = []
    for label, (reads, writes, lag) in enumerate(stream):
        if _HAS_SIGS:
            requests.append(
                ValidationRequest(
                    label,
                    reads,
                    writes,
                    0,
                    read_raw=config.of(reads).raw,
                    write_raw=config.of(writes).raw,
                )
            )
        else:
            requests.append(ValidationRequest(label, reads, writes, 0))
    return requests


def _replace(request, snapshot):
    # dataclasses.replace re-runs __init__; building directly is ~2x
    # cheaper and identical for a frozen dataclass.
    if _HAS_SIGS:
        return ValidationRequest(
            request.label,
            request.read_addrs,
            request.write_addrs,
            snapshot,
            read_raw=request.read_raw,
            write_raw=request.write_raw,
        )
    return ValidationRequest(
        request.label, request.read_addrs, request.write_addrs, snapshot
    )


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------


def _measure(impl: str, mix: str, window: int, txns: int):
    """One timed run; returns (rate, commits, aborts)."""
    config = SignatureConfig()
    mgr = ValidationManager(config, window=window)
    if impl == "reference":
        mgr.detector = ReferenceConflictDetector(config, window)
    stream = _address_stream(mix, txns)
    requests = _make_requests(config, stream)
    lags = [lag for _, _, lag in stream]

    started = time.perf_counter()
    for request, lag in zip(requests, lags):
        snapshot = mgr.total_commits - lag
        if snapshot < 0:
            snapshot = 0
        mgr.validate(_replace(request, snapshot))
    elapsed = time.perf_counter() - started
    return txns / elapsed, mgr.stats_commits, mgr.stats_aborts


def _measure_best(mix: str, window: int, txns: int, rounds: int):
    """Best-of-``rounds`` rates for both implementations, with the
    rounds *interleaved* (ref, live, ref, live, ...) so a multi-second
    noise burst on a shared box degrades both sides rather than
    skewing the ratio; noise only ever slows a run down, so the best
    round is the honest estimate.  Verdict tallies are asserted
    identical across rounds and implementations."""
    best = {"reference": 0.0, "live": 0.0}
    tallies = {}
    for _ in range(rounds):
        for impl in ("reference", "live"):
            rate, commits, aborts = _measure(impl, mix, window, txns)
            expected = tallies.setdefault(impl, (commits, aborts))
            assert (commits, aborts) == expected, (impl, mix, window)
            best[impl] = max(best[impl], rate)
    return best, tallies


def _window_grid():
    raw = os.environ.get("REPRO_BENCH_VAL_WINDOWS", "")
    if raw.strip():
        return tuple(int(token) for token in raw.split())
    return DEFAULT_WINDOWS


def _txn_count():
    return int(os.environ.get("REPRO_BENCH_VAL_TXNS", DEFAULT_TXNS))


def _round_count():
    return int(os.environ.get("REPRO_BENCH_VAL_ROUNDS", DEFAULT_ROUNDS))


def sweep():
    """The full grid; returns the BENCH_validation.json payload."""
    txns = _txn_count()
    rounds = _round_count()
    rows = []
    for mix in sorted(MIXES):
        for window in _window_grid():
            best, tallies = _measure_best(mix, window, txns, rounds)
            ref_rate, live_rate = best["reference"], best["live"]
            ref_commits, ref_aborts = tallies["reference"]
            live_commits, live_aborts = tallies["live"]
            # Verdict bit-identity: the vectorized path must decide
            # exactly what the reference decides (DESIGN.md).
            assert (live_commits, live_aborts) == (ref_commits, ref_aborts), (
                mix,
                window,
                (ref_commits, ref_aborts),
                (live_commits, live_aborts),
            )
            rows.append(
                {
                    "mix": mix,
                    "window": window,
                    "txns": txns,
                    "commits": live_commits,
                    "aborts": live_aborts,
                    "reference_val_per_sec": round(ref_rate, 1),
                    "live_val_per_sec": round(live_rate, 1),
                    "speedup": round(live_rate / ref_rate, 3),
                }
            )
    return {
        "benchmark": "validation_hotpath",
        "unit": "validations per wall-clock second",
        "workload": "synthetic STAMP-like address mixes (decision path only)",
        "incremental_signatures": _HAS_SIGS,
        "target_speedup_at_64": TARGET_SPEEDUP_AT_64,
        "results": rows,
    }


def write_stamp(payload):
    path = os.environ.get("REPRO_BENCH_VAL_JSON", "BENCH_validation.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def print_report(payload):
    print(
        f"{'mix':>10} {'W':>4} {'ref val/s':>12} {'live val/s':>12} "
        f"{'speedup':>8} {'commits':>8}"
    )
    for row in payload["results"]:
        print(
            f"{row['mix']:>10} {row['window']:>4} "
            f"{row['reference_val_per_sec']:>12.0f} "
            f"{row['live_val_per_sec']:>12.0f} "
            f"{row['speedup']:>7.2f}x {row['commits']:>8}"
        )


def test_validation_hotpath_rate(benchmark):
    payload = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_report(payload)
    write_stamp(payload)
    # The vectorized path must never regress below the reference…
    for row in payload["results"]:
        assert row["speedup"] > 0.8, row
    # …and must clear the 2x acceptance floor at W=64 on the
    # ssca2-like mix (skipped while running on a pre-PR10 tree, where
    # live *is* the reference).
    if _HAS_SIGS:
        gate = [
            r
            for r in payload["results"]
            if r["mix"] == GATE_MIX and r["window"] == GATE_WINDOW
        ]
        if gate:
            assert gate[0]["speedup"] >= TARGET_SPEEDUP_AT_64, gate[0]


def main():
    payload = sweep()
    print_report(payload)
    path = write_stamp(payload)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
