"""Ablation — interconnect: in-package CCI vs discrete PCIe (§6.2 fn. 8).

The paper argues in-package integration (sub-600 ns round trip) is
what makes fine-grained CPU-FPGA interaction viable, contrasting the
">1 us" round trip of a discrete PCIe card.  This ablation runs
ROCoCoTM with both link models on a validation-heavy workload.
"""

from repro.bench import print_table
from repro.hw import FpgaValidationEngine, harp2_cci_link, pcie_link
from repro.runtime import RococoTMBackend, SequentialBackend
from repro.stamp import Ssca2Workload, VacationWorkload, run_stamp

THREADS = 14


def _run(workload_cls, link):
    backend = RococoTMBackend(engine=FpgaValidationEngine(link=link))
    return run_stamp(workload_cls, backend, THREADS, scale=0.5, seed=1)


def _sweep():
    rows = []
    for workload_cls in (VacationWorkload, Ssca2Workload):
        sequential = run_stamp(
            workload_cls, SequentialBackend(), 1, scale=0.5, seed=1
        )
        for link_name, link in (("CCI (HARP2)", harp2_cci_link()), ("PCIe", pcie_link())):
            stats = _run(workload_cls, link)
            rows.append(
                [
                    workload_cls.name,
                    link_name,
                    sequential.makespan_ns / stats.makespan_ns,
                    stats.validation_ns / max(1, stats.validations) / 1000.0,
                ]
            )
    return rows


def test_ablation_interconnect(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["workload", "link", "speedup", "validation us/txn"],
        rows,
        title=f"Interconnect ablation ({THREADS} threads)",
    )
    by = {(r[0], r[1]): r[2] for r in rows}
    # The low-latency link wins on both, and the gap is largest where
    # transactions are smallest (ssca2).
    assert by[("vacation", "CCI (HARP2)")] > by[("vacation", "PCIe")]
    assert by[("ssca2", "CCI (HARP2)")] > by[("ssca2", "PCIe")]
