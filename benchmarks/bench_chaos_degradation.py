"""Chaos matrix — fault injection and the validation degradation ladder.

No figure in the paper covers hardware failure: §5/§6 assume a healthy
CCI link and a live engine.  This benchmark quantifies what the
robustness layer (docs/FAULTS.md) costs when the "hardware" misbehaves:
every built-in fault schedule runs the same workload with the same
seeds, and the table reports throughput, injected-fault counts and the
ladder's activity (retries, timeouts, resubmissions, failover /
fail-back, software-validation share).

Assertions pin the contract rather than exact numbers:

* fault-free and null-plan runs are *bit-identical* (makespan and
  abort profile);
* every schedule completes the full workload — same commit count —
  no matter what is injected (progress + safety);
* the sustained-stall schedule demonstrably fails over to the software
  validator and fails back after the window ends;
* with failover disabled, a sustained stall instead drives
  transactions onto the irrevocable global-lock rung.
"""

import pytest

from repro.bench import DEGRADATION_HEADERS, degradation_row, print_table
from repro.exec import ExperimentSpec, SerialRunner
from repro.faults import (
    BUILTIN_SCHEDULES,
    ChaosValidationEngine,
    DegradationPolicy,
    FaultPlan,
    build_chaos_backend,
)
from repro.hw import FpgaValidationEngine
from repro.runtime import RococoTMBackend
from repro.stamp import KmeansWorkload, run_stamp

THREADS = 4
SCALE = 0.25
SEED = 1


def _run(backend):
    return run_stamp(KmeansWorkload, backend, THREADS, scale=SCALE, seed=SEED)


def _sweep():
    rows = []
    baseline = _run(RococoTMBackend())
    rows.append(["none"] + degradation_row(baseline))
    null_plan = _run(
        RococoTMBackend(
            engine=ChaosValidationEngine(FpgaValidationEngine(), FaultPlan())
        )
    )
    rows.append(["null-plan"] + degradation_row(null_plan))
    runs = {"none": (baseline, None), "null-plan": (null_plan, None)}
    # The per-schedule sweep goes through the exec layer: one spec per
    # schedule, identical to the old direct loop cell-for-cell.
    specs = [
        ExperimentSpec(
            "kmeans", "ROCoCoTM", THREADS,
            scale=SCALE, seed=SEED, faults=schedule, fault_seed=0,
        )
        for schedule in BUILTIN_SCHEDULES
    ]
    for schedule, stats in zip(BUILTIN_SCHEDULES, SerialRunner().run(specs)):
        rows.append([schedule] + degradation_row(stats))
        runs[schedule] = (stats, None)
    # Re-run the sustained stall directly: the assertions below inspect
    # the backend's degradation ladder, which stats don't carry.
    stall_backend = build_chaos_backend("stall", fault_seed=0)
    stall_stats = _run(stall_backend)
    assert stall_stats.makespan_ns == runs["stall"][0].makespan_ns
    runs["stall"] = (stall_stats, stall_backend)
    # Last rung: same sustained stall, software failover disabled.
    backend = build_chaos_backend(
        "stall",
        fault_seed=0,
        policy=DegradationPolicy(software_failover=False),
        irrevocable_after=6,
    )
    stats = _run(backend)
    rows.append(["stall/no-sw"] + degradation_row(stats))
    runs["stall/no-sw"] = (stats, backend)
    return rows, runs


def test_chaos_degradation(benchmark):
    rows, runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["schedule"] + DEGRADATION_HEADERS,
        rows,
        title="Chaos matrix: kmeans under every fault schedule",
    )

    baseline, _ = runs["none"]
    null_plan, _ = runs["null-plan"]
    # Null plan => bit-identical timings and outcomes (the wrapper
    # must cost nothing when injecting nothing).
    assert null_plan.makespan_ns == baseline.makespan_ns
    assert null_plan.commits == baseline.commits
    assert dict(null_plan.aborts_by_cause) == dict(baseline.aborts_by_cause)

    # Progress under every schedule: the full workload commits.
    for schedule in BUILTIN_SCHEDULES:
        stats, _ = runs[schedule]
        assert stats.commits == baseline.commits, schedule

    # The sustained stall crosses the whole ladder and comes back.
    stall, stall_backend = runs["stall"]
    assert stall.failovers >= 1 and stall.failbacks >= 1
    assert stall.software_validations > 0
    ladder = stall_backend.degradation
    window_end = stall_backend.engine.plan.stall_windows[0][1]
    assert ladder.failback_at[0] > window_end
    assert ladder.mode == "fpga"  # recovered by the end of the run

    # Without the software rung the same stall forces irrevocable mode.
    no_sw, _ = runs["stall/no-sw"]
    assert no_sw.irrevocable_fallbacks >= 1
    assert no_sw.aborts_by_cause.get("fpga-unavailable", 0) >= 1
    assert no_sw.commits == baseline.commits
