"""Ablation — sliding-window size at the full-system level (§5.1).

"The current implementation of ROCoCoTM supports serializability
among 64 transactions in the sliding window on FPGA ... W = 64 is
chosen as we spawn at most 28 threads."  The trace-level sweep
(`bench_ablation_window.py`) isolates the algorithm; this one runs the
whole ROCoCoTM stack on a STAMP application and shows where
window-overflow aborts appear as W shrinks toward the thread count.
"""

from repro.bench import print_table
from repro.runtime import RococoTMBackend, SequentialBackend
from repro.stamp import VacationWorkload, run_stamp

WINDOWS = (2, 4, 8, 16, 64)
THREADS = 14


def _sweep():
    sequential = run_stamp(VacationWorkload, SequentialBackend(), 1, scale=0.5, seed=1)
    rows = []
    for window in WINDOWS:
        backend = RococoTMBackend(window=window)
        stats = run_stamp(VacationWorkload, backend, THREADS, scale=0.5, seed=1)
        rows.append(
            [
                window,
                sequential.makespan_ns / stats.makespan_ns,
                stats.abort_rate,
                stats.aborts_by_cause.get("fpga-window-overflow", 0),
            ]
        )
    return rows


def test_ablation_window_at_runtime(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["window W", "speedup", "abort rate", "overflow aborts"],
        rows,
        title=f"Runtime window ablation (vacation, {THREADS} threads)",
    )
    by = {r[0]: r for r in rows}
    # Overflow aborts vanish once W comfortably exceeds the number of
    # concurrently in-flight transactions.
    assert by[64][3] == 0
    assert by[2][3] > by[64][3]
    # And the paper's W=64 configuration performs best (or ties).
    best = max(r[1] for r in rows)
    assert by[64][1] >= 0.85 * best
