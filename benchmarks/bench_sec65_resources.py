"""§6.5 — FPGA resource consumption and Fmax.

Regenerates the reported synthesis point (W=64, m=512 at 200 MHz:
113485 registers / 249442 ALMs / 223 DSPs / 2055802 BRAM bits) from
the parametric model and the two stated trends: the 1024-bit filter
still fits but at a lower clock, and BRAM stays tiny because it only
holds the historical signatures.
"""

from repro.bench import print_table
from repro.hw import estimate, paper_table


def _sweep():
    points = [paper_table()]
    for bits in (256, 1024):
        points.append(estimate(window=64, signature_bits=bits))
    for window in (32, 128, 256):
        points.append(estimate(window=window))
    return points


def test_sec65_resource_table(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [
            p.window,
            p.signature_bits,
            p.registers,
            f"{p.register_pct:.1f}%",
            p.alms,
            f"{p.alm_pct:.2f}%",
            p.dsps,
            p.bram_bits,
            f"{p.fmax_mhz:.0f} MHz",
            "yes" if p.fits else "NO",
        ]
        for p in points
    ]
    print_table(
        ["W", "m", "regs", "regs%", "ALMs", "ALM%", "DSPs", "BRAM bits", "Fmax", "fits"],
        rows,
        title="§6.5 resource model (first row = paper's synthesis point)",
    )

    anchor = points[0]
    assert (anchor.registers, anchor.alms, anchor.dsps, anchor.bram_bits) == (
        113_485,
        249_442,
        223,
        2_055_802,
    )
    wide = [p for p in points if p.signature_bits == 1024][0]
    assert wide.fits and wide.fmax_mhz < 200.0
