"""Ablation — TSX retry budget (§6.2: "the 4-time retry performs best").

The constant retry policy trades wasted hardware attempts against
premature serialization on the fallback lock.  This sweep runs the
TSX model with 1-16 hardware attempts on a contended application and
prints speedup and abort mix.

Expected deviation (EXPERIMENTS.md): on real TSX the sweet spot sits
at ~4 retries because a large share of aborts is *persistent*
(capacity, associativity) — retrying those is pure waste.  Our
functional model's aborts are mostly transient conflicts, so larger
budgets keep helping until the fallback path disappears entirely; the
half of the trade-off the model does reproduce is the left side:
small budgets trigger the lemming convoy and serialize.
"""

from repro.bench import print_table
from repro.runtime import SequentialBackend, TsxBackend
from repro.stamp import KmeansWorkload, run_stamp

ATTEMPTS = (1, 2, 5, 9, 16)  # 5 = 1 initial + 4 retries (the paper's pick)
THREADS = 8


def _sweep():
    sequential = run_stamp(KmeansWorkload, SequentialBackend(), 1, scale=0.5, seed=1)
    rows = []
    for attempts in ATTEMPTS:
        stats = run_stamp(
            KmeansWorkload, TsxBackend(hardware_attempts=attempts), THREADS,
            scale=0.5, seed=1,
        )
        fallbacks = stats.aborts_by_cause.get("cpu-lock-subscription", 0)
        rows.append(
            [
                attempts,
                sequential.makespan_ns / stats.makespan_ns,
                stats.abort_rate,
                fallbacks,
            ]
        )
    return rows


def test_ablation_tsx_retry_budget(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["hw attempts", "speedup", "abort rate", "lock-subscription aborts"],
        rows,
        title=f"TSX retry-policy ablation (kmeans, {THREADS} threads)",
    )
    speedups = {r[0]: r[1] for r in rows}
    fallbacks = {r[0]: r[3] for r in rows}
    # Left side of the trade-off: small budgets fall back constantly
    # (lemming convoy) and serialize.
    assert fallbacks[1] > fallbacks[9]
    assert speedups[1] <= speedups[9] + 1e-9
    # Diminishing returns once the fallback path is gone.
    assert abs(speedups[16] - speedups[9]) < 0.25 * speedups[9]
