"""Ablation — sliding-window size W (§4.2's W = 64 design choice).

The FPGA bounds the reachability matrix to W transactions; too small a
window aborts transactions whose snapshots fall off the back
(window overflow) and taints reordered residents.  The paper fixes
W = 64 for at most 28 threads; this sweep shows the abort cliff as W
shrinks below the number of in-flight transactions and the
convergence to the unbounded validator as W grows.
"""

from repro.bench import print_table
from repro.cc import RococoCC, generate_trace

WINDOWS = (2, 4, 8, 16, 64, 0)  # 0 = unbounded
CONCURRENCY = 16


def _sweep():
    rows = []
    for window in WINDOWS:
        commits = aborts = 0
        for seed in range(10):
            trace = generate_trace(
                n_txns=150, ops_per_txn=12, locations=256, seed=seed
            )
            result = RococoCC(CONCURRENCY, window=window).run(trace)
            commits += result.commits
            aborts += result.aborts
        rows.append(
            [
                "unbounded" if window == 0 else window,
                aborts / (commits + aborts),
            ]
        )
    return rows


def test_ablation_window_size(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["window W", "abort rate"],
        rows,
        title=f"Window-size ablation (T={CONCURRENCY}, 12 ops/txn)",
    )
    rates = {r[0]: r[1] for r in rows}
    # Tiny windows overflow constantly; W >= concurrency approaches the
    # unbounded validator.
    assert rates[2] > rates[64]
    assert abs(rates[64] - rates["unbounded"]) < 0.02
    # Monotone improvement (within noise) as W grows.
    ordered = [rates[w] for w in (2, 4, 8, 16, 64)]
    assert ordered[0] >= ordered[-1]
