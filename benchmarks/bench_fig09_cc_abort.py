"""Figure 9 — abort rate vs collision rate for 2PL / TOCC / ROCoCo.

Regenerates both panels (T = 4 and T = 16 concurrent transactions):
the §6.1 micro-benchmark of 1024 locations, N in {4..32} accesses per
transaction at 50/50 read/write, 50 random traces per point.

Paper's numbers to compare against (T = 16, collision 22.3%):
ROCoCo shows up to 56.2% / 20.2% lower aborts than 2PL / TOCC; at
T = 4 the ROCoCo-TOCC gap is small; above ~50% collision the three
algorithms converge.
"""

import pytest

from repro.bench import figure9_sweep, print_table, reduction_vs

SEEDS = 30      # 50 in the paper; 30 keeps the bench in tens of seconds
N_TXNS = 120


def _sweep(threads):
    return figure9_sweep(threads=(threads,), seeds=SEEDS, n_txns=N_TXNS)


@pytest.mark.parametrize("threads", [4, 16])
def test_fig9_abort_rates(benchmark, threads):
    points = benchmark.pedantic(_sweep, args=(threads,), rounds=1, iterations=1)
    by_n = {}
    for p in points:
        by_n.setdefault(p.ops_per_txn, {"collision": p.collision_rate})[
            p.algorithm
        ] = p.abort_rate
    rows = [
        [n, cell["collision"], cell["2PL"], cell["TOCC"], cell["ROCoCo"]]
        for n, cell in sorted(by_n.items())
    ]
    print_table(
        ["N", "collision", "2PL", "TOCC", "ROCoCo"],
        rows,
        title=f"Figure 9 (T={threads}): abort rate vs collision rate",
    )

    # Shape assertions (the paper's qualitative claims).
    for n, cell in by_n.items():
        assert cell["ROCoCo"] <= cell["TOCC"] + 1e-9, (threads, n)
        assert cell["TOCC"] <= cell["2PL"] + 1e-9, (threads, n)

    reductions_tocc = reduction_vs(points, "TOCC", "ROCoCo")
    reductions_2pl = reduction_vs(points, "2PL", "ROCoCo")
    # The paper's reference point is N=16 (collision 22.3%).
    at_ref_2pl = reductions_2pl[(threads, 16)]
    at_ref_tocc = reductions_tocc[(threads, 16)]
    print(
        f"\nabort reduction at collision=22.3%, T={threads}: "
        f"{at_ref_2pl:.1%} vs 2PL (paper @T=16: 56.2%), "
        f"{at_ref_tocc:.1%} vs TOCC (paper @T=16: 20.2%)"
    )
    assert at_ref_2pl > 0.2
    assert at_ref_tocc > 0.1
