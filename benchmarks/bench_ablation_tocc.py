"""Ablation — timestamp acquisition point in TOCC (Fig. 2).

Fig. 2 motivates ROCoCo with two phantom-ordering cases: (a) start-
time timestamps abort reads of fresh versions; (b) even commit-time
(LSA) timestamps forbid reorderings ROCoCo allows.  This ablation
quantifies both gaps on the §6.1 micro-benchmark with reads spread
through the execution interval (required for case (a) to exist).
"""

from repro.bench import print_table
from repro.cc import RococoCC, ToccCommitTime, ToccStartTime, generate_trace

ALGOS = (ToccStartTime, ToccCommitTime, RococoCC)
N_VALUES = (8, 16, 24)
CONCURRENCY = 16
SEEDS = 15


def _sweep():
    rows = []
    for n in N_VALUES:
        rates = {}
        for algo in ALGOS:
            commits = aborts = 0
            for seed in range(SEEDS):
                trace = generate_trace(
                    n_txns=150, ops_per_txn=n, locations=512, seed=seed * 10 + n
                )
                result = algo(CONCURRENCY, read_placement="spread").run(trace)
                commits += result.commits
                aborts += result.aborts
            rates[algo.name] = aborts / (commits + aborts)
        rows.append([n, rates["TOCC-start"], rates["TOCC"], rates["ROCoCo"]])
    return rows


def test_ablation_timestamp_acquisition(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["N", "TOCC (start-time)", "TOCC (commit-time/LSA)", "ROCoCo"],
        rows,
        title=f"Timestamp-acquisition ablation (T={CONCURRENCY}, spread reads)",
    )
    for n, start, commit, rococo in rows:
        # Fig. 2(a): LSA removes some start-time aborts...
        assert commit <= start + 1e-9, n
        # ...Fig. 2(b): but ROCoCo removes more.
        assert rococo <= commit + 1e-9, n
    # The gaps are real, not ties, somewhere in the sweep.
    assert any(start > commit for _, start, commit, _ in rows)
    assert any(commit > rococo for _, _, commit, rococo in rows)
