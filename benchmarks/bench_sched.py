"""Scheduler microbench: driver steps/sec, scan vs kernel (docs/PERF.md).

No paper figure covers the host-side scheduler — it is reproduction
infrastructure — but every figure's wall-clock bottoms out in
``Simulator.run``'s inner loop, so this benchmark is the repo's perf
trajectory for that loop.  Thread programs yield pure :class:`Work`
(no transactions, no memory traffic), making the run scheduler-bound:
the measured rate is driver steps per wall-clock second, for both
implementations selected by ``REPRO_SCHED``:

* ``scan``   — the legacy O(T)-per-step linear scan (the pre-kernel
  inner loop, kept for one release as the bit-identity reference);
* ``kernel`` — the indexed min-heap (:mod:`repro.runtime.sched`).

Running ``python benchmarks/bench_sched.py`` sweeps the thread grid
and writes ``BENCH_sched.json`` (schema in docs/PERF.md); under
pytest the same sweep also asserts the kernel's >= 2x step-rate at 28
threads.  Knobs:

* ``REPRO_BENCH_SCHED_THREADS`` — space-separated grid override
  (default ``1 4 14 28 64``);
* ``REPRO_BENCH_SCHED_STEPS``   — total steps per measurement
  (default 60000; CI's perf-smoke uses a smaller value);
* ``REPRO_BENCH_SCHED_JSON``    — output path (default
  ``BENCH_sched.json`` in the working directory).
"""

import json
import os
import time

from repro.runtime import Simulator, TinySTMBackend, Work

DEFAULT_THREADS = (1, 4, 14, 28, 64)
DEFAULT_TOTAL_STEPS = 60_000
#: acceptance floor for the kernel at the paper's 28-thread point.
TARGET_SPEEDUP_AT_28 = 2.0


def _thread_grid():
    raw = os.environ.get("REPRO_BENCH_SCHED_THREADS", "")
    if raw.strip():
        return tuple(int(token) for token in raw.split())
    return DEFAULT_THREADS


def _total_steps():
    return int(os.environ.get("REPRO_BENCH_SCHED_STEPS", DEFAULT_TOTAL_STEPS))


def _make_program(steps_per_thread):
    def program(tid):
        for _ in range(steps_per_thread):
            yield Work(10)

    return program


def _measure(impl, n_threads, total_steps):
    """One timed run; returns (steps, seconds, steps_per_sec)."""
    steps_per_thread = max(50, total_steps // n_threads)
    saved = os.environ.get("REPRO_SCHED")
    os.environ["REPRO_SCHED"] = impl
    try:
        sim = Simulator(TinySTMBackend(), n_threads)
        program = _make_program(steps_per_thread)
        started = time.perf_counter()
        sim.run([program] * n_threads)
        elapsed = time.perf_counter() - started
    finally:
        if saved is None:
            del os.environ["REPRO_SCHED"]
        else:
            os.environ["REPRO_SCHED"] = saved
    # One step per Work yield plus the StopIteration step per thread.
    steps = n_threads * (steps_per_thread + 1)
    return steps, elapsed, steps / elapsed


def sweep():
    """The full grid; returns the BENCH_sched.json payload."""
    total_steps = _total_steps()
    rows = []
    for n_threads in _thread_grid():
        steps, scan_s, scan_rate = _measure("scan", n_threads, total_steps)
        _, kernel_s, kernel_rate = _measure("kernel", n_threads, total_steps)
        rows.append(
            {
                "threads": n_threads,
                "steps": steps,
                "scan_steps_per_sec": round(scan_rate, 1),
                "kernel_steps_per_sec": round(kernel_rate, 1),
                "scan_wall_s": round(scan_s, 6),
                "kernel_wall_s": round(kernel_s, 6),
                "speedup": round(kernel_rate / scan_rate, 3),
            }
        )
    return {
        "benchmark": "sched",
        "unit": "driver steps per wall-clock second",
        "workload": "Work-only programs (scheduler-bound)",
        "target_speedup_at_28": TARGET_SPEEDUP_AT_28,
        "results": rows,
    }


def write_stamp(payload):
    path = os.environ.get("REPRO_BENCH_SCHED_JSON", "BENCH_sched.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def print_report(payload):
    print(f"{'T':>4} {'scan steps/s':>14} {'kernel steps/s':>15} {'speedup':>8}")
    for row in payload["results"]:
        print(
            f"{row['threads']:>4} {row['scan_steps_per_sec']:>14.0f} "
            f"{row['kernel_steps_per_sec']:>15.0f} {row['speedup']:>7.2f}x"
        )


def test_kernel_step_rate(benchmark):
    payload = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_report(payload)
    write_stamp(payload)
    # The kernel must never regress below the scan at any grid point…
    for row in payload["results"]:
        assert row["speedup"] > 0.8, row
    # …and must clear the 2x acceptance floor at the 28-thread point.
    gate = [r for r in payload["results"] if r["threads"] == 28]
    if gate:
        assert gate[0]["speedup"] >= TARGET_SPEEDUP_AT_28, gate[0]


def main():
    payload = sweep()
    print_report(payload)
    path = write_stamp(payload)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
