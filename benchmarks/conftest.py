"""Shared configuration for the figure/table benchmarks.

Every ``bench_*`` module regenerates one figure or table from the
paper: it prints the same rows/series the publication reports (so the
shapes can be compared directly) and registers the run with
pytest-benchmark for timing.  Scale factors keep a full
``pytest benchmarks/ --benchmark-only`` run in the minutes range.
"""

import pytest


def one_shot(benchmark, fn):
    """Benchmark a heavy harness exactly once and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return one_shot
