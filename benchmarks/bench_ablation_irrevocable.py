"""Ablation — irrevocability for window-starved transactions (§4.2).

"To ensure long transactions can eventually commit, irrevocability may
be required."  This bench runs a starvation workload — one long
transaction raced by streams of short committers on a deliberately
small FPGA window — with the irrevocability threshold swept from off
to aggressive, and reports the long transaction's attempt count and
the total makespan cost of the exclusive section.
"""

from repro.bench import print_table
from repro.runtime import (
    Memory,
    Read,
    RococoTMBackend,
    Simulator,
    Transaction,
    Work,
    Write,
)

WINDOW = 4
LONG_WORK_NS = 20_000.0
SHORT_TXNS = 150


def _run(irrevocable_after):
    memory = Memory()
    base = memory.alloc(80)
    backend = RococoTMBackend(window=WINDOW, irrevocable_after=irrevocable_after)

    def long_body():
        a = yield Read(base)
        yield Work(LONG_WORK_NS)
        yield Write(base, a + 1)

    def long_program(tid):
        yield Transaction(long_body, label="long")

    def make_short_body(addr):
        def body():
            v = yield Read(addr)
            yield Write(addr, v + 1)

        return body

    def short_program(tid):
        for i in range(SHORT_TXNS):
            yield Transaction(make_short_body(base + 1 + (tid * 16 + i % 16)))
            yield Work(40)

    sim = Simulator(backend, 4, memory=memory, seed=1)
    stats = sim.run([long_program, short_program, short_program, short_program])
    assert memory.load(base) == 1, "the long transaction must land exactly once"
    return stats, backend


def _sweep():
    rows = []
    for threshold in (None, 8, 3, 1):
        stats, backend = _run(threshold)
        overflow = stats.aborts_by_cause.get("fpga-window-overflow", 0)
        rows.append(
            [
                "off" if threshold is None else threshold,
                overflow,
                backend.stats_irrevocable_commits,
                stats.makespan_ns / 1e3,
            ]
        )
    return rows


def test_ablation_irrevocability(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["irrevocable after", "overflow aborts", "irrevocable commits", "makespan (us)"],
        rows,
        title=f"Irrevocability ablation (window W={WINDOW}, long txn vs 3 short streams)",
    )
    by = {r[0]: r for r in rows}
    # Without the escape hatch the long transaction burns through
    # window-overflow aborts; with it, retries are bounded by the
    # threshold.
    assert by["off"][1] > by[3][1]
    assert by[3][2] == 1 and by[1][2] == 1
    # More aggressive thresholds trade fewer wasted attempts for an
    # earlier exclusive section; both must beat unbounded retrying on
    # wasted aborts.
    assert by[1][1] <= 1
