"""The discrete-event simulator core: scheduling, retries, determinism."""

import pytest

from repro.runtime import (
    Alloc,
    CostModel,
    Memory,
    Read,
    SequentialBackend,
    Simulator,
    TinySTMBackend,
    Transaction,
    Work,
    Write,
)
from .conftest import run_counter


class TestBasics:
    def test_single_thread_counter(self):
        value, stats = run_counter(SequentialBackend(), 1, increments=10)
        assert value == 10
        assert stats.commits == 10
        assert stats.aborts == 0
        assert stats.makespan_ns > 0

    def test_thread_count_validated(self):
        with pytest.raises(ValueError):
            Simulator(SequentialBackend(), 0)

    def test_one_program_per_thread_required(self):
        sim = Simulator(TinySTMBackend(), 2)
        with pytest.raises(ValueError):
            sim.run([lambda tid: iter(())])

    def test_work_advances_clock(self):
        def program(tid):
            yield Work(1000)

        sim = Simulator(SequentialBackend(), 1)
        stats = sim.run([program])
        assert stats.makespan_ns >= 1000

    def test_alloc_inside_transaction(self):
        memory = Memory()

        def body():
            base = yield Alloc(4)
            yield Write(base, 7)
            value = yield Read(base)
            return (base, value)

        collected = []

        def program(tid):
            result = yield Transaction(body)
            collected.append(result)

        sim = Simulator(SequentialBackend(), 1, memory=memory)
        sim.run([program])
        base, value = collected[0]
        assert value == 7
        assert memory.load(base) == 7

    def test_invalid_yields_rejected(self):
        def bad_program(tid):
            yield Read(0)  # Read outside a transaction

        sim = Simulator(SequentialBackend(), 1)
        with pytest.raises(TypeError):
            sim.run([bad_program])

    def test_transaction_result_flows_to_program(self):
        results = []

        def body():
            yield Work(1)
            return 42

        def program(tid):
            results.append((yield Transaction(body)))

        Simulator(SequentialBackend(), 1).run([program])
        assert results == [42]


class TestConcurrency:
    def test_multithread_counter_is_exact(self):
        """The canonical lost-update test: the final counter equals the
        number of committed increments under any correct TM."""
        value, stats = run_counter(TinySTMBackend(), 8, increments=15)
        assert value == 8 * 15
        assert stats.commits == 8 * 15

    def test_aborts_happen_under_contention(self):
        _, stats = run_counter(TinySTMBackend(), 8, increments=15)
        assert stats.aborts > 0

    def test_determinism(self):
        v1, s1 = run_counter(TinySTMBackend(), 6, increments=10, seed=3)
        v2, s2 = run_counter(TinySTMBackend(), 6, increments=10, seed=3)
        assert v1 == v2
        assert s1.makespan_ns == s2.makespan_ns
        assert s1.aborts == s2.aborts

    def test_seed_changes_interleaving(self):
        _, s1 = run_counter(TinySTMBackend(), 6, increments=10, seed=1)
        _, s2 = run_counter(TinySTMBackend(), 6, increments=10, seed=2)
        # Backoff jitter differs, so makespans should differ.
        assert s1.makespan_ns != s2.makespan_ns


class TestCostModel:
    def test_smt_penalty_above_physical_cores(self):
        model = CostModel(physical_cores=4, smt_penalty=1.5)
        assert model.compute_scale(4) == 1.0
        assert model.compute_scale(8) == pytest.approx(1.5)
        assert model.compute_scale(8, footprint=0.5) == pytest.approx(1.25)

    def test_smt_penalty_slows_makespan(self):
        def run(n_threads, cores):
            return run_counter_with_cores(n_threads, cores)

        fast = run(4, cores=8)
        slow = run(4, cores=2)
        assert slow > fast


def run_counter_with_cores(n_threads, cores):
    memory = Memory()
    counter = memory.alloc(1)
    sim = Simulator(
        TinySTMBackend(),
        n_threads,
        memory=memory,
        cost_model=CostModel(physical_cores=cores),
    )
    from .conftest import make_counter_program

    stats = sim.run([make_counter_program(counter, 10)] * n_threads)
    return stats.makespan_ns
