"""Cross-backend correctness: every system preserves invariants."""

import pytest

from repro.runtime import (
    CoarseLockBackend,
    RococoTMBackend,
    SequentialBackend,
    TinySTMBackend,
    TsxBackend,
)
from .conftest import run_counter, run_transfers

CONCURRENT_BACKENDS = [CoarseLockBackend, TinySTMBackend, TsxBackend, RococoTMBackend]


class TestCounterInvariant:
    @pytest.mark.parametrize("backend_cls", CONCURRENT_BACKENDS)
    @pytest.mark.parametrize("n_threads", [1, 4, 8])
    def test_no_lost_updates(self, backend_cls, n_threads):
        value, stats = run_counter(backend_cls(), n_threads, increments=12)
        assert value == n_threads * 12
        assert stats.commits == n_threads * 12

    @pytest.mark.parametrize("backend_cls", CONCURRENT_BACKENDS)
    def test_deterministic(self, backend_cls):
        v1, s1 = run_counter(backend_cls(), 6, increments=8, seed=5)
        v2, s2 = run_counter(backend_cls(), 6, increments=8, seed=5)
        assert (v1, s1.makespan_ns, s1.aborts) == (v2, s2.makespan_ns, s2.aborts)


class TestBankInvariant:
    @pytest.mark.parametrize("backend_cls", CONCURRENT_BACKENDS)
    @pytest.mark.parametrize("n_threads", [2, 8])
    def test_total_balance_conserved(self, backend_cls, n_threads):
        total, stats = run_transfers(backend_cls(), n_threads, n_accounts=24, transfers=20)
        assert total == 24 * 100
        assert stats.commits == n_threads * 20


class TestLockBaseline:
    def test_global_lock_never_aborts(self):
        _, stats = run_counter(CoarseLockBackend(), 8, increments=10)
        assert stats.aborts == 0

    def test_global_lock_serializes(self):
        """More threads cannot make the lock faster per increment."""
        _, s2 = run_counter(CoarseLockBackend(), 2, increments=20)
        _, s8 = run_counter(CoarseLockBackend(), 8, increments=20)
        # Total work quadrupled but makespan must grow roughly as much.
        assert s8.makespan_ns > 2.0 * s2.makespan_ns


class TestTinySTM:
    def test_aborts_counted_by_cause(self):
        _, stats = run_counter(TinySTMBackend(), 8, increments=15)
        causes = set(stats.aborts_by_cause)
        assert causes <= {"cpu-read-validation", "cpu-commit-validation"}
        assert stats.aborts > 0

    def test_validation_time_accrued(self):
        _, stats = run_counter(TinySTMBackend(), 4, increments=10)
        assert stats.validation_ns > 0
        assert stats.validations > 0

    def test_read_only_txns_commit_free(self):
        from repro.runtime import Memory, Read, Simulator, Transaction

        memory = Memory()
        addr = memory.alloc(1)

        def body():
            return (yield Read(addr))

        def program(tid):
            for _ in range(5):
                yield Transaction(body)

        sim = Simulator(TinySTMBackend(), 4, memory=memory)
        stats = sim.run([program] * 4)
        assert stats.read_only_commits == 20
        assert stats.aborts == 0


class TestTsx:
    def test_fallback_bounds_retries(self):
        """Even pathological contention terminates via the lock."""
        value, stats = run_counter(TsxBackend(), 8, increments=15)
        assert value == 8 * 15
        # Footnote 10's ceiling: <= 5 aborts per commit (83.3%).
        assert stats.abort_rate <= 5 / 6 + 1e-9

    def test_conflicts_cause_remote_aborts(self):
        _, stats = run_counter(TsxBackend(), 8, increments=15)
        assert stats.aborts_by_cause.get("cpu-conflict", 0) > 0

    def test_capacity_abort_then_fallback_commit(self):
        from repro.runtime import Memory, Simulator, Transaction, Write

        memory = Memory()
        base = memory.alloc(8 * 600)  # > 512 cachelines

        def body():
            for line in range(600):
                yield Write(base + 8 * line, 1)

        def program(tid):
            yield Transaction(body)

        sim = Simulator(TsxBackend(), 1, memory=memory)
        stats = sim.run([program])
        assert stats.commits == 1
        # Every hardware attempt dies (capacity, or a spurious abort
        # first — a 600-op transaction has plenty of exposure); the
        # commit happens on the fallback lock after the retry budget.
        assert stats.aborts >= 5
        assert stats.aborts_by_cause.get("cpu-capacity-write", 0) + stats.aborts_by_cause.get(
            "cpu-spurious", 0
        ) == stats.aborts

    def test_undo_restores_memory_on_abort(self):
        """After a conflict-doomed attempt, memory shows no trace."""
        value, _ = run_counter(TsxBackend(), 6, increments=10)
        assert value == 60  # any stray dirty write would break this


class TestRococoTM:
    def test_read_only_fast_path(self):
        from repro.runtime import Memory, Read, Simulator, Transaction

        memory = Memory()
        addr = memory.alloc(1)

        def body():
            return (yield Read(addr))

        def program(tid):
            for _ in range(5):
                yield Transaction(body)

        backend = RococoTMBackend()
        sim = Simulator(backend, 4, memory=memory)
        stats = sim.run([program] * 4)
        assert stats.read_only_commits == 20
        assert backend.engine.stats_requests == 0  # never left the CPU

    def test_write_txns_validated_on_fpga(self):
        backend = RococoTMBackend()
        run_counter(backend, 4, increments=10)
        assert backend.engine.stats_requests >= 40

    def test_fpga_aborts_tracked_separately(self):
        _, stats = run_counter(RococoTMBackend(), 8, increments=15)
        assert stats.fpga_aborts <= stats.aborts

    def test_validation_includes_link_latency(self):
        _, stats = run_counter(RococoTMBackend(), 2, increments=10)
        # Each write-commit waits at least the ~600 ns round trip.
        assert stats.validation_ns / stats.validations >= 600.0

    def test_global_ts_counts_write_commits(self):
        backend = RococoTMBackend()
        _, stats = run_counter(backend, 4, increments=10)
        assert backend.global_ts == stats.commits - stats.read_only_commits


class TestTinySTMEtl:
    def test_counter_invariant(self):
        from repro.runtime import TinySTMEtlBackend

        value, stats = run_counter(TinySTMEtlBackend(), 8, increments=12)
        assert value == 96
        assert stats.commits == 96

    def test_lock_conflicts_reported(self):
        from repro.runtime import TinySTMEtlBackend

        _, stats = run_counter(TinySTMEtlBackend(), 8, increments=15)
        assert stats.aborts_by_cause.get("cpu-lock-conflict", 0) > 0

    def test_transfers_conserved(self):
        from repro.runtime import TinySTMEtlBackend

        total, _ = run_transfers(TinySTMEtlBackend(), 8, n_accounts=24, transfers=15)
        assert total == 2400

    def test_locks_released_after_abort(self):
        """A livelock would trip max_steps; completion proves release."""
        from repro.runtime import TinySTMEtlBackend

        value, _ = run_counter(TinySTMEtlBackend(), 6, increments=20)
        assert value == 120
