"""Irrevocability in ROCoCoTM (§4.2's forward-progress mechanism)."""

import pytest

from repro.runtime import (
    Memory,
    ParkThread,
    Read,
    RococoTMBackend,
    Simulator,
    Transaction,
    TransactionAborted,
    Work,
    Write,
)
from repro.runtime.coarse_lock import RELEASE_NS
from repro.runtime.driver import ManualDriver


def manual_backend(**kwargs):
    backend = RococoTMBackend(**kwargs)
    sim = ManualDriver(n_threads=4)
    backend.attach(sim)
    return backend, sim


def starvation_workload(window, irrevocable_after, long_work=20_000, seed=0):
    """One long transaction raced by streams of small committers.

    With a tiny FPGA window, the long transaction's snapshot falls off
    the back before it can validate: every attempt ends in a
    window-overflow abort unless irrevocability rescues it.
    """
    memory = Memory()
    base = memory.alloc(80)
    backend = RococoTMBackend(window=window, irrevocable_after=irrevocable_after)

    def long_body():
        a = yield Read(base)
        yield Work(long_work)  # long-running: many commits pass by
        yield Write(base, a + 1)
        return True

    def long_program(tid):
        yield Transaction(long_body, label="long")

    def make_short_body(addr):
        def body():
            v = yield Read(addr)
            yield Write(addr, v + 1)

        return body

    def short_program(tid):
        for i in range(120):
            yield Transaction(make_short_body(base + 1 + (tid * 16 + i % 16)))
            yield Work(40)

    sim = Simulator(backend, 4, memory=memory, seed=seed)
    stats = sim.run([long_program, short_program, short_program, short_program])
    return memory, base, backend, stats


class TestStarvation:
    def test_long_txn_starves_without_irrevocability(self):
        _, _, backend, stats = starvation_workload(window=4, irrevocable_after=None)
        # It completes eventually here only because the short streams
        # are finite; the long transaction pays many overflow aborts.
        assert stats.aborts_by_cause.get("fpga-window-overflow", 0) >= 3

    def test_irrevocability_bounds_retries(self):
        memory, base, backend, stats = starvation_workload(
            window=4, irrevocable_after=3
        )
        assert backend.stats_irrevocable_commits == 1
        assert stats.aborts_by_cause.get("fpga-window-overflow", 0) <= 3
        assert memory.load(base) == 1  # the long transaction's update landed

    def test_all_commits_land_exactly_once(self):
        memory, base, backend, stats = starvation_workload(
            window=4, irrevocable_after=3
        )
        assert stats.commits == 1 + 3 * 120
        total = sum(memory.load(base + 1 + i) for i in range(64))
        assert total == 3 * 120

    def test_disabled_by_default(self):
        backend = RococoTMBackend()
        assert backend.irrevocable_after is None


class TestFence:
    def test_optimistic_commits_fence_on_irrevocable_lock(self):
        _, _, backend, stats = starvation_workload(window=4, irrevocable_after=3)
        # While the long transaction ran irrevocably, short committers
        # either parked at begin or aborted at the commit fence; both
        # preserve the counters (asserted above) - here we just check
        # the fence cause is accounted when it fires.
        fence = stats.aborts_by_cause.get("cpu-irrevocable-fence", 0)
        assert fence >= 0  # presence depends on interleaving

    def test_deterministic(self):
        a = starvation_workload(window=4, irrevocable_after=3, seed=5)[3]
        b = starvation_workload(window=4, irrevocable_after=3, seed=5)[3]
        assert a.makespan_ns == b.makespan_ns
        assert a.aborts == b.aborts


class TestEscapeHatchMechanics:
    """Manual driving of the irrevocable protocol, step by step."""

    def test_begin_parks_under_held_lock_and_wakes_in_order(self):
        backend, sim = manual_backend()
        backend._force_irrevocable.add(0)
        backend.begin(0, 0.0)  # takes the global lock
        assert backend._irrevocable_lock.held

        # Optimistic threads cannot even begin: they park as watchers.
        with pytest.raises(ParkThread):
            backend.begin(1, 5.0)
        with pytest.raises(ParkThread):
            backend.begin(2, 6.0)
        assert backend._lock_watchers == [1, 2]
        assert sim.wakes == []

        addr = sim.memory.alloc(1)
        backend.write(0, addr, 7, 50.0)
        ready = backend.commit(0, 100.0)
        # Both watchers wake at the release instant, in park order.
        assert sim.wakes == [(1, ready), (2, ready)]
        assert backend._lock_watchers == []
        assert not backend._irrevocable_lock.held
        assert sim.memory.load(addr) == 7

    def test_optimistic_writer_aborts_on_the_fence(self):
        backend, sim = manual_backend()
        addr = sim.memory.alloc(2)
        # Thread 1 is already mid-transaction when thread 0 goes
        # irrevocable: at commit it hits the fence, not the FPGA.
        backend.begin(1, 0.0)
        backend.write(1, addr, 1, 10.0)
        backend._force_irrevocable.add(0)
        backend.begin(0, 20.0)
        with pytest.raises(TransactionAborted) as aborted:
            backend.commit(1, 30.0)
        assert aborted.value.cause == "cpu-irrevocable-fence"
        backend.rollback(1, 30.0, aborted.value.cause)
        assert 1 not in backend._txns  # no stale state left behind

    def test_read_only_commit_passes_the_fence(self):
        backend, sim = manual_backend()
        addr = sim.memory.alloc(2)
        sim.memory.store(addr, 41)
        backend.begin(1, 0.0)
        value, at = backend.read(1, addr, 10.0)
        assert value == 41
        backend._force_irrevocable.add(0)
        backend.begin(0, 20.0)
        # Read-only commits never invalidate the irrevocable reader.
        backend.commit(1, at)
        assert 1 not in backend._txns

    def test_read_only_irrevocable_commit_pays_no_writeback(self):
        backend, sim = manual_backend()
        addr = sim.memory.alloc(1)
        backend._force_irrevocable.add(0)
        backend.begin(0, 0.0)
        backend.read(0, addr, 100.0)
        ready = backend.commit(0, 1_000.0)
        # No written words: only the lock release is charged.
        assert ready == 1_000.0 + RELEASE_NS
        assert backend.stats_irrevocable_commits == 1
        # No write signature entered the queue, no window slot used.
        assert backend.global_ts == 0
        assert backend.engine.manager.total_commits == 0

    def test_writing_irrevocable_commit_stays_window_aligned(self):
        backend, sim = manual_backend()
        addr = sim.memory.alloc(1)
        backend._force_irrevocable.add(0)
        backend.begin(0, 0.0)
        backend.write(0, addr, 9, 10.0)
        backend.commit(0, 100.0)
        assert backend.stats_irrevocable_commits == 1
        assert backend.global_ts == 1
        assert backend.engine.manager.total_commits == 1
        assert len(backend.commit_queue) == 1

    def test_accounting_and_no_stale_state_after_a_run(self):
        memory, base, backend, stats = starvation_workload(
            window=4, irrevocable_after=3
        )
        # Exactly the rescued long transaction went irrevocable, and
        # the engine-side window stayed aligned with GlobalTS.
        assert backend.stats_irrevocable_commits == 1
        assert backend.global_ts == backend.engine.manager.total_commits
        assert backend._txns == {}  # every state popped on commit/rollback
        assert backend._force_irrevocable == set()
        assert not backend._irrevocable_lock.held
