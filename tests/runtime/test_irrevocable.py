"""Irrevocability in ROCoCoTM (§4.2's forward-progress mechanism)."""

import pytest

from repro.runtime import (
    Memory,
    Read,
    RococoTMBackend,
    Simulator,
    Transaction,
    Work,
    Write,
)


def starvation_workload(window, irrevocable_after, long_work=20_000, seed=0):
    """One long transaction raced by streams of small committers.

    With a tiny FPGA window, the long transaction's snapshot falls off
    the back before it can validate: every attempt ends in a
    window-overflow abort unless irrevocability rescues it.
    """
    memory = Memory()
    base = memory.alloc(80)
    backend = RococoTMBackend(window=window, irrevocable_after=irrevocable_after)

    def long_body():
        a = yield Read(base)
        yield Work(long_work)  # long-running: many commits pass by
        yield Write(base, a + 1)
        return True

    def long_program(tid):
        yield Transaction(long_body, label="long")

    def make_short_body(addr):
        def body():
            v = yield Read(addr)
            yield Write(addr, v + 1)

        return body

    def short_program(tid):
        for i in range(120):
            yield Transaction(make_short_body(base + 1 + (tid * 16 + i % 16)))
            yield Work(40)

    sim = Simulator(backend, 4, memory=memory, seed=seed)
    stats = sim.run([long_program, short_program, short_program, short_program])
    return memory, base, backend, stats


class TestStarvation:
    def test_long_txn_starves_without_irrevocability(self):
        _, _, backend, stats = starvation_workload(window=4, irrevocable_after=None)
        # It completes eventually here only because the short streams
        # are finite; the long transaction pays many overflow aborts.
        assert stats.aborts_by_cause.get("fpga-window-overflow", 0) >= 3

    def test_irrevocability_bounds_retries(self):
        memory, base, backend, stats = starvation_workload(
            window=4, irrevocable_after=3
        )
        assert backend.stats_irrevocable_commits == 1
        assert stats.aborts_by_cause.get("fpga-window-overflow", 0) <= 3
        assert memory.load(base) == 1  # the long transaction's update landed

    def test_all_commits_land_exactly_once(self):
        memory, base, backend, stats = starvation_workload(
            window=4, irrevocable_after=3
        )
        assert stats.commits == 1 + 3 * 120
        total = sum(memory.load(base + 1 + i) for i in range(64))
        assert total == 3 * 120

    def test_disabled_by_default(self):
        backend = RococoTMBackend()
        assert backend.irrevocable_after is None


class TestFence:
    def test_optimistic_commits_fence_on_irrevocable_lock(self):
        _, _, backend, stats = starvation_workload(window=4, irrevocable_after=3)
        # While the long transaction ran irrevocably, short committers
        # either parked at begin or aborted at the commit fence; both
        # preserve the counters (asserted above) - here we just check
        # the fence cause is accounted when it fires.
        fence = stats.aborts_by_cause.get("cpu-irrevocable-fence", 0)
        assert fence >= 0  # presence depends on interleaving

    def test_deterministic(self):
        a = starvation_workload(window=4, irrevocable_after=3, seed=5)[3]
        b = starvation_workload(window=4, irrevocable_after=3, seed=5)[3]
        assert a.makespan_ns == b.makespan_ns
        assert a.aborts == b.aborts
