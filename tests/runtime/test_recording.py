"""The recording oracle: serializability + opacity over live backends."""

import pytest

from repro.runtime import (
    Memory,
    Read,
    RecordingBackend,
    RococoTMBackend,
    Simulator,
    SnapshotIsolationBackend,
    TinySTMBackend,
    Transaction,
    TsxBackend,
    Work,
    Write,
)
from .conftest import make_transfer_program


def run_recorded(inner, n_threads, seed=0, transfers=15, n_accounts=16):
    memory = Memory()
    base = memory.alloc(n_accounts)
    for i in range(n_accounts):
        memory.store(base + i, 100)
    backend = RecordingBackend(inner)
    sim = Simulator(backend, n_threads, memory=memory, seed=seed)
    program = make_transfer_program(base, n_accounts, transfers)
    sim.run([program] * n_threads)
    return backend


SERIALIZABLE = [TinySTMBackend, TsxBackend, RococoTMBackend]


class TestSerializabilityOracle:
    @pytest.mark.parametrize("inner_cls", SERIALIZABLE)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_serializable_backends_pass(self, inner_cls, seed):
        backend = run_recorded(inner_cls(), 6, seed=seed)
        witness = backend.verify_serializable()
        assert set(witness) >= set(backend.committed_attempts)

    @pytest.mark.parametrize("inner_cls", SERIALIZABLE)
    def test_opacity_holds(self, inner_cls):
        backend = run_recorded(inner_cls(), 6, seed=3)
        backend.verify_opacity()  # must not raise

    def test_history_counts_match(self):
        backend = run_recorded(TinySTMBackend(), 4, seed=4)
        assert len(backend.committed_attempts) == 4 * 15
        stats_attempts = len(backend.committed_attempts) + len(backend.aborted_attempts)
        assert stats_attempts >= 4 * 15


class TestCatchesAnomalies:
    def test_si_write_skew_detected(self):
        """Drive the classic write-skew pattern on SI and let the
        oracle find the non-serializable history."""
        memory = Memory()
        base = memory.alloc(2)
        memory.store(base, 1)
        memory.store(base + 1, 1)

        def make_body(write_offset):
            def body():
                x = yield Read(base)
                y = yield Read(base + 1)
                yield Work(800)
                if x + y >= 2:
                    yield Write(base + write_offset, 0)

            return body

        def make_program(offset):
            def program(tid):
                yield Transaction(make_body(offset))

            return program

        backend = RecordingBackend(SnapshotIsolationBackend())
        sim = Simulator(backend, 2, memory=memory)
        sim.run([make_program(0), make_program(1)])
        assert backend.check_serializable() is None

    def test_broken_stm_detected(self):
        """A validation-free STM commits lost updates; the recorded
        history must be non-serializable."""
        from repro.runtime.tinystm import TinySTMBackend as Base

        class BrokenSTM(Base):
            name = "broken"

            def commit(self, tid, now):
                txn = self._txns[tid]
                self.global_clock += 1
                for addr, value in txn.writes.items():
                    self.memory.store(addr, value)
                    self._versions[addr] = self.global_clock
                return now + 10.0

        backend = run_recorded(BrokenSTM(), 8, seed=5, transfers=20, n_accounts=4)
        assert backend.check_serializable() is None
