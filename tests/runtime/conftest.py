"""Shared workloads for runtime tests."""

import pytest

from repro.runtime import Memory, Read, Simulator, Transaction, Work, Write


def make_counter_program(counter_addr, increments):
    """Each thread increments a shared counter `increments` times."""

    def body():
        value = yield Read(counter_addr)
        yield Work(20)
        yield Write(counter_addr, value + 1)
        return value

    def program(tid):
        for _ in range(increments):
            yield Transaction(body, label="inc")
            yield Work(30)

    return program


def make_transfer_program(accounts_base, n_accounts, transfers, seed_shift=0):
    """Random pairwise transfers preserving the total balance."""

    def make_body(src, dst):
        def body():
            a = yield Read(src)
            b = yield Read(dst)
            yield Work(25)
            yield Write(src, a - 1)
            yield Write(dst, b + 1)
            return None

        return body

    def program(tid):
        state = (tid + 1 + seed_shift) * 2654435761 % 2**32
        for _ in range(transfers):
            state = (state * 1103515245 + 12345) % 2**31
            src = accounts_base + state % n_accounts
            state = (state * 1103515245 + 12345) % 2**31
            dst = accounts_base + state % n_accounts
            if src == dst:
                dst = accounts_base + (state + 1) % n_accounts
            yield Transaction(make_body(src, dst), label="transfer")

    return program


def run_counter(backend, n_threads, increments=20, seed=0):
    memory = Memory()
    counter = memory.alloc(1)
    memory.store(counter, 0)
    sim = Simulator(backend, n_threads, memory=memory, seed=seed, workload_name="counter")
    program = make_counter_program(counter, increments)
    stats = sim.run([program] * n_threads)
    return memory.load(counter), stats


def run_transfers(backend, n_threads, n_accounts=32, transfers=25, seed=0):
    memory = Memory()
    base = memory.alloc(n_accounts)
    for i in range(n_accounts):
        memory.store(base + i, 100)
    sim = Simulator(backend, n_threads, memory=memory, seed=seed, workload_name="bank")
    program = make_transfer_program(base, n_accounts, transfers)
    stats = sim.run([program] * n_threads)
    total = sum(memory.load(base + i) for i in range(n_accounts))
    return total, stats
