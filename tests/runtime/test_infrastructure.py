"""Unit tests for runtime infrastructure: memory, stats, api, barriers,
parking — the pieces integration tests exercise only incidentally."""

import pytest

from repro.runtime import (
    AwaitBarrier,
    CELLS_PER_CACHELINE,
    CoarseLockBackend,
    Memory,
    RunStats,
    SequentialBackend,
    SimBarrier,
    Simulator,
    Transaction,
    Work,
    geomean,
    speedup,
)
from repro.runtime.api import Alloc, Read, TransactionAborted, Work as WorkOp, Write


class TestMemory:
    def test_alloc_bumps(self):
        memory = Memory()
        a = memory.alloc(4)
        b = memory.alloc(2)
        assert b == a + 4
        assert memory.allocated == 6

    def test_alloc_alignment(self):
        memory = Memory()
        memory.alloc(3)
        aligned = memory.alloc(1, align_line=True)
        assert aligned % CELLS_PER_CACHELINE == 0

    def test_zeroed_reads(self):
        memory = Memory()
        base = memory.alloc(2)
        assert memory.load(base) == 0

    def test_bounds_checked(self):
        memory = Memory()
        memory.alloc(2)
        with pytest.raises(IndexError):
            memory.load(2)
        with pytest.raises(IndexError):
            memory.store(-1, 5)

    def test_zero_alloc_rejected(self):
        with pytest.raises(ValueError):
            Memory().alloc(0)

    def test_store_load_many(self):
        memory = Memory()
        base = memory.alloc(3)
        memory.store_many(base, [7, 8, 9])
        assert memory.load_many(base, 3) == [7, 8, 9]

    def test_cacheline(self):
        assert Memory.cacheline(0) == 0
        assert Memory.cacheline(7) == 0
        assert Memory.cacheline(8) == 1


class TestStats:
    def test_abort_accounting(self):
        stats = RunStats(backend="x", workload="w", n_threads=2)
        stats.commits = 8
        stats.record_abort("cpu-a")
        stats.record_abort("fpga-cycle")
        assert stats.aborts == 2
        assert stats.fpga_aborts == 1
        assert stats.attempts == 10
        assert stats.abort_rate == pytest.approx(0.2)
        assert stats.fpga_abort_rate == pytest.approx(0.1)

    def test_empty_stats_rates(self):
        stats = RunStats()
        assert stats.abort_rate == 0.0
        assert stats.mean_validation_us == 0.0

    def test_mean_validation(self):
        stats = RunStats()
        stats.validation_ns = 3000.0
        stats.validations = 2
        assert stats.mean_validation_us == pytest.approx(1.5)

    def test_summary_mentions_key_facts(self):
        stats = RunStats(backend="B", workload="W", n_threads=4)
        stats.commits = 1
        stats.record_abort("cause")
        text = stats.summary()
        assert "W/B@4t" in text and "cause=1" in text

    def test_speedup(self):
        a = RunStats()
        a.makespan_ns = 100.0
        b = RunStats()
        b.makespan_ns = 50.0
        assert speedup(a, b) == pytest.approx(2.0)
        b.makespan_ns = 0.0
        with pytest.raises(ValueError):
            speedup(a, b)

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestApiValidation:
    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            WorkOp(-1)

    def test_zero_alloc_op_rejected(self):
        with pytest.raises(ValueError):
            Alloc(0)

    def test_abort_carries_cause(self):
        exc = TransactionAborted("some-cause")
        assert exc.cause == "some-cause"

    def test_barrier_needs_parties(self):
        with pytest.raises(ValueError):
            SimBarrier(0)


class TestBarrier:
    def test_all_threads_resume_at_latest_arrival(self):
        barrier = SimBarrier(3, cost_ns=100.0)
        arrivals = []

        def program(tid):
            yield Work(1000.0 * (tid + 1))  # staggered arrivals
            yield AwaitBarrier(barrier)
            arrivals.append(tid)
            yield Work(1.0)

        from repro.runtime import TinySTMBackend

        sim = Simulator(TinySTMBackend(), 3)
        stats = sim.run([program] * 3)
        assert sorted(arrivals) == [0, 1, 2]
        # Everyone waited for the slowest (3000 ns) + barrier cost.
        assert stats.makespan_ns >= 3000.0 + 100.0

    def test_barrier_reusable(self):
        barrier = SimBarrier(2)
        rounds = []

        def program(tid):
            for r in range(3):
                yield AwaitBarrier(barrier)
                rounds.append((tid, r))

        from repro.runtime import TinySTMBackend

        Simulator(TinySTMBackend(), 2).run([program] * 2)
        assert len(rounds) == 6

    def test_unbalanced_barrier_deadlocks(self):
        barrier = SimBarrier(2)

        def waiting(tid):
            yield AwaitBarrier(barrier)

        def not_waiting(tid):
            yield Work(1.0)

        from repro.runtime import TinySTMBackend

        sim = Simulator(TinySTMBackend(), 2)
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run([waiting, not_waiting])


class TestParking:
    def test_lock_waiters_eventually_run(self):
        order = []

        def body(tid):
            def gen():
                yield Work(500.0)
                order.append(tid)

            return gen

        def program(tid):
            yield Transaction(body(tid))

        sim = Simulator(CoarseLockBackend(), 4)
        stats = sim.run([program] * 4)
        assert sorted(order) == [0, 1, 2, 3]
        assert stats.commits == 4

    def test_wake_requires_parked(self):
        sim = Simulator(CoarseLockBackend(), 1)

        def program(tid):
            yield Work(1.0)

        sim.run([program])
        with pytest.raises(RuntimeError):
            sim.wake(0, 10.0)
