"""Property-based tests for the runtime: every backend, random
workloads, exact invariants (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    CoarseLockBackend,
    Memory,
    Read,
    RococoTMBackend,
    Simulator,
    TinySTMBackend,
    Transaction,
    TsxBackend,
    Work,
    Write,
)

BACKENDS = [CoarseLockBackend, TinySTMBackend, TsxBackend, RococoTMBackend]

#: Per-thread job lists: each job is a set of (addr, delta) increments
#: applied atomically.
jobs_strategy = st.lists(
    st.lists(  # one thread's jobs
        st.lists(  # one transaction's increments
            st.tuples(st.integers(0, 7), st.integers(-3, 3)),
            min_size=1,
            max_size=4,
        ),
        max_size=5,
    ),
    min_size=1,
    max_size=4,
)


def _run(backend_cls, thread_jobs, seed):
    memory = Memory()
    base = memory.alloc(8)
    expected = [0] * 8

    def make_body(increments):
        def body():
            for addr, delta in increments:
                value = yield Read(base + addr)
                yield Work(10)
                yield Write(base + addr, value + delta)

        return body

    def make_program(jobs):
        def program(tid):
            for increments in jobs:
                yield Transaction(make_body(increments))

        return program

    for jobs in thread_jobs:
        for increments in jobs:
            for addr, delta in increments:
                expected[addr] += delta

    programs = [make_program(jobs) for jobs in thread_jobs]
    sim = Simulator(backend_cls(), len(programs), memory=memory, seed=seed)
    stats = sim.run(programs)
    final = [memory.load(base + i) for i in range(8)]
    return final, expected, stats


class TestAtomicIncrements:
    @pytest.mark.parametrize("backend_cls", BACKENDS)
    @given(thread_jobs=jobs_strategy, seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_no_lost_updates(self, backend_cls, thread_jobs, seed):
        final, expected, stats = _run(backend_cls, thread_jobs, seed)
        assert final == expected
        assert stats.commits == sum(len(jobs) for jobs in thread_jobs)

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    @given(thread_jobs=jobs_strategy, seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_deterministic_replay(self, backend_cls, thread_jobs, seed):
        a = _run(backend_cls, thread_jobs, seed)
        b = _run(backend_cls, thread_jobs, seed)
        assert a[0] == b[0]
        assert a[2].makespan_ns == b[2].makespan_ns
        assert a[2].aborts == b[2].aborts
