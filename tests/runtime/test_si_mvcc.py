"""The SI backend: snapshot reads, first-committer-wins, and the
write-skew gap that separates it from the serializable systems."""

import pytest

from repro.runtime import (
    Memory,
    Read,
    RococoTMBackend,
    Simulator,
    SnapshotIsolationBackend,
    TinySTMBackend,
    Transaction,
    TsxBackend,
    Work,
    Write,
)
from .conftest import run_counter, run_transfers


class TestSiCorrectness:
    def test_counter_exact_under_si(self):
        """RMW counters create WW conflicts, which first-committer-wins
        resolves — SI preserves this invariant."""
        value, stats = run_counter(SnapshotIsolationBackend(), 8, increments=12)
        assert value == 96
        assert stats.commits == 96

    def test_transfers_conserved_under_si(self):
        total, _ = run_transfers(SnapshotIsolationBackend(), 8, n_accounts=24, transfers=15)
        assert total == 2400

    def test_first_committer_aborts_counted(self):
        _, stats = run_counter(SnapshotIsolationBackend(), 8, increments=12)
        assert stats.aborts_by_cause.get("cpu-first-committer", 0) > 0

    def test_deterministic(self):
        a = run_counter(SnapshotIsolationBackend(), 4, increments=10, seed=2)
        b = run_counter(SnapshotIsolationBackend(), 4, increments=10, seed=2)
        assert a[0] == b[0] and a[1].makespan_ns == b[1].makespan_ns

    def test_snapshot_reads_see_begin_state(self):
        """A long reader overlapping many writers sees one snapshot."""
        memory = Memory()
        base = memory.alloc(2)
        memory.store(base, 10)
        memory.store(base + 1, 10)
        observations = []

        def reader_body():
            a = yield Read(base)
            yield Work(5000)  # plenty of writer commits in between
            b = yield Read(base + 1)
            return (a, b)

        def writer_body():
            a = yield Read(base)
            b = yield Read(base + 1)
            yield Write(base, a + 1)
            yield Write(base + 1, b + 1)

        def reader(tid):
            observations.append((yield Transaction(reader_body)))

        def writer(tid):
            for _ in range(10):
                yield Transaction(writer_body)
                yield Work(100)

        sim = Simulator(SnapshotIsolationBackend(), 2, memory=memory)
        sim.run([reader, writer])
        a, b = observations[0]
        # Both cells move in lock-step per writer txn; a snapshot reader
        # must observe them equal — a torn view (a != b) would mean the
        # read crossed a commit boundary.
        assert a == b


class TestWriteSkewGap:
    """Fig. 1 as a runtime experiment: two transactions each read both
    cells and write one.  SI commits both (the anomaly); every
    serializable backend aborts/retries one of them into a serial
    outcome."""

    @staticmethod
    def _skew_run(backend):
        memory = Memory()
        base = memory.alloc(2)
        memory.store(base, 1)      # x = 1
        memory.store(base + 1, 1)  # y = 1

        def make_body(write_offset):
            def body():
                x = yield Read(base)
                y = yield Read(base + 1)
                yield Work(500)  # ensure temporal overlap
                if x + y >= 2:   # the "constraint check"
                    yield Write(base + write_offset, 0)

            return body

        def make_program(write_offset):
            def program(tid):
                yield Transaction(make_body(write_offset))

            return program

        sim = Simulator(backend, 2, memory=memory)
        sim.run([make_program(0), make_program(1)])
        return memory.load(base), memory.load(base + 1)

    def test_si_admits_write_skew(self):
        x, y = self._skew_run(SnapshotIsolationBackend())
        assert (x, y) == (0, 0), "SI should let both constraint checks pass"

    @pytest.mark.parametrize(
        "backend_cls", [TinySTMBackend, TsxBackend, RococoTMBackend]
    )
    def test_serializable_backends_prevent_write_skew(self, backend_cls):
        x, y = self._skew_run(backend_cls())
        # A serial execution zeroes exactly one cell: the second txn
        # re-reads, sees x + y == 1 < 2, and writes nothing.
        assert sorted((x, y)) == [0, 1], backend_cls.name
