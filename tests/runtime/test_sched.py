"""The scheduling kernel: unit behavior + the scan/kernel identity gate.

The kernel (:mod:`repro.runtime.sched`) must be *schedule-preserving*:
its heap orders by exactly the ``(clock, tid)`` key the legacy linear
scan minimized over, so every run — stats, traces, event streams — is
byte-identical whichever implementation drives it.  The classes below
test the kernel in isolation, then enforce the identity end-to-end
across every backend and seeds {0, 1} (the in-repo half of the CI
``sched-identity`` gate; the CI half byte-compares BENCH_stamp.json).
"""

import pytest

from repro.analysis.registry import EVENT_SCHEMAS
from repro.runtime import (
    AwaitBarrier,
    CoarseLockBackend,
    Memory,
    Read,
    RococoTMBackend,
    SchedulerKernel,
    SequentialBackend,
    SimBarrier,
    Simulator,
    SnapshotIsolationBackend,
    TinySTMBackend,
    TinySTMEtlBackend,
    Transaction,
    TsxBackend,
    Work,
    Write,
)
from repro.runtime.simulator import SCHED_ENV

from .conftest import make_counter_program, make_transfer_program


class TestKernelUnit:
    def test_picks_in_clock_order(self):
        kernel = SchedulerKernel(3)
        kernel.add(0, 30.0)
        kernel.add(1, 10.0)
        kernel.add(2, 20.0)
        assert kernel.pick() == 1
        assert kernel.pick() == 2
        assert kernel.pick() == 0
        assert kernel.pick() == -1

    def test_ties_break_by_tid(self):
        kernel = SchedulerKernel(3)
        kernel.add(2, 5.0)
        kernel.add(0, 5.0)
        kernel.add(1, 5.0)
        assert [kernel.pick() for _ in range(3)] == [0, 1, 2]

    def test_reschedule_reorders(self):
        kernel = SchedulerKernel(2)
        kernel.add(0, 0.0)
        kernel.add(1, 1.0)
        assert kernel.pick() == 0
        kernel.reschedule(0, 100.0)  # 0 ran and is now far ahead
        assert kernel.pick() == 1
        kernel.reschedule(1, 50.0)
        assert kernel.pick() == 1

    def test_parked_thread_never_surfaces(self):
        kernel = SchedulerKernel(2)
        kernel.add(0, 0.0)
        kernel.add(1, 1.0)
        assert kernel.pick() == 0
        kernel.park(0)
        assert kernel.pick() == 1
        kernel.reschedule(1, 2.0)
        assert kernel.pick() == 1  # 0 stays invisible while parked
        kernel.reschedule(1, 3.0)
        kernel.wake(0, 0.5)
        assert kernel.pick() == 0  # back, at its wake-time position
        assert kernel.n_parked == 0

    def test_park_of_scheduled_thread_is_lazy(self):
        kernel = SchedulerKernel(2)
        kernel.add(0, 0.0)
        kernel.add(1, 1.0)
        kernel.park(0)  # entry still physically in the heap
        assert kernel.pick() == 1
        kernel.retire(1)
        assert kernel.pick() == -1
        assert kernel.stale_pops == 1  # 0's dead entry was skipped

    def test_retire_decrements_live(self):
        kernel = SchedulerKernel(2)
        kernel.add(0, 0.0)
        kernel.add(1, 0.0)
        assert kernel.n_live == 2
        kernel.pick()
        kernel.retire(0)
        assert kernel.n_live == 1
        kernel.pick()
        kernel.retire(1)
        assert kernel.n_live == 0

    def test_deadlock_shape_all_parked(self):
        kernel = SchedulerKernel(2)
        kernel.add(0, 0.0)
        kernel.add(1, 0.0)
        kernel.pick()
        kernel.park(0)
        kernel.pick()
        kernel.park(1)
        assert kernel.pick() == -1
        assert kernel.n_live == 2  # live but nothing runnable: deadlock
        assert kernel.n_parked == 2

    def test_double_add_rejected(self):
        kernel = SchedulerKernel(1)
        kernel.add(0, 0.0)
        with pytest.raises(RuntimeError):
            kernel.add(0, 1.0)

    def test_counters_and_ratio(self):
        kernel = SchedulerKernel(2)
        kernel.add(0, 0.0)
        kernel.add(1, 1.0)
        kernel.park(1)  # goes stale in place
        kernel.pick()
        kernel.reschedule(0, 2.0)
        kernel.pick()  # skips 1's stale entry
        snap = kernel.snapshot()
        assert snap["picks"] == 2
        assert snap["pushes"] == 3
        assert snap["stale_pops"] == 1
        assert snap["lazy_invalidation_ratio"] == pytest.approx(1 / 3)
        assert snap["heap_high_water"] == 2

    def test_wake_coalescing_counted(self):
        kernel = SchedulerKernel(2)
        kernel.add(0, 0.0)
        kernel.pick()
        kernel.park(0)
        kernel.wake(0, 5.0, coalesced=True)
        kernel.pick()
        kernel.park(0)
        kernel.wake(0, 9.0)
        assert kernel.wakes == 2
        assert kernel.wakes_coalesced == 1

    def test_snapshot_matches_declared_sched_schema(self):
        # The snapshot IS the "sched" event payload; the registry's
        # exact-key emit assert makes any drift a hard failure.
        kernel = SchedulerKernel(1)
        assert frozenset(kernel.snapshot()) == EVENT_SCHEMAS["sched"].payload

    def test_needs_a_thread(self):
        with pytest.raises(ValueError):
            SchedulerKernel(0)


# ----------------------------------------------------------------------
# Scan-vs-kernel schedule identity
# ----------------------------------------------------------------------
CONTENDED_BACKENDS = [
    CoarseLockBackend,
    TinySTMBackend,
    TinySTMEtlBackend,
    TsxBackend,
    SnapshotIsolationBackend,
    RococoTMBackend,
]


def barrier_phase_program(memory, n_threads):
    """Transactions on both sides of a reused barrier (park/wake mix)."""
    base = memory.alloc(n_threads * 2, align_line=True)
    barrier = SimBarrier(parties=n_threads)

    def make_body(addr):
        def body():
            value = yield Read(addr)
            yield Work(15)
            yield Write(addr, value + 1)

        return body

    def program(tid):
        yield Transaction(make_body(base + tid), label="pre")
        yield AwaitBarrier(barrier)
        yield Work(10 * (tid + 1))
        yield AwaitBarrier(barrier)
        yield Transaction(make_body(base + n_threads + tid), label="post")

    return program


def run_grid(backend_factory, impl, seed, monkeypatch):
    monkeypatch.setenv(SCHED_ENV, impl)
    results = []
    for n_threads, workload in (
        (4, "counter"),
        (3, "transfer"),
        (4, "barrier"),
    ):
        memory = Memory()
        if workload == "counter":
            counter = memory.alloc(1)
            program = make_counter_program(counter, increments=12)
        elif workload == "transfer":
            base = memory.alloc(16)
            program = make_transfer_program(base, 16, transfers=15, seed_shift=seed)
        else:
            program = barrier_phase_program(memory, n_threads)
        sim = Simulator(
            backend_factory(),
            n_threads,
            memory=memory,
            seed=seed,
            workload_name=workload,
        )
        stats = sim.run([program] * n_threads)
        results.append((stats.to_dict(), sorted(memory._cells.items())))
    return results


class TestScheduleIdentity:
    @pytest.mark.parametrize("backend_factory", CONTENDED_BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_kernel_matches_scan_bit_for_bit(
        self, backend_factory, seed, monkeypatch
    ):
        scan = run_grid(backend_factory, "scan", seed, monkeypatch)
        kernel = run_grid(backend_factory, "kernel", seed, monkeypatch)
        assert scan == kernel

    @pytest.mark.parametrize("seed", [0, 1])
    def test_sequential_matches(self, seed, monkeypatch):
        def run(impl):
            monkeypatch.setenv(SCHED_ENV, impl)
            memory = Memory()
            counter = memory.alloc(1)
            sim = Simulator(SequentialBackend(), 1, memory=memory, seed=seed)
            stats = sim.run([make_counter_program(counter, 25)])
            return stats.to_dict(), memory.load(counter)

        assert run("scan") == run("kernel")

    def test_default_impl_is_the_kernel(self, monkeypatch):
        monkeypatch.delenv(SCHED_ENV, raising=False)
        memory = Memory()
        counter = memory.alloc(1)
        sim = Simulator(TinySTMBackend(), 2, memory=memory)
        sim.run([make_counter_program(counter, 4)] * 2)
        assert sim._kernel is not None

    def test_scan_env_disables_the_kernel(self, monkeypatch):
        monkeypatch.setenv(SCHED_ENV, "scan")
        memory = Memory()
        counter = memory.alloc(1)
        sim = Simulator(TinySTMBackend(), 2, memory=memory)
        sim.run([make_counter_program(counter, 4)] * 2)
        assert sim._kernel is None


# ----------------------------------------------------------------------
# The end-of-run "sched" event
# ----------------------------------------------------------------------
class TestSchedEvent:
    def _run(self, monkeypatch, impl):
        monkeypatch.setenv(SCHED_ENV, impl)
        memory = Memory()
        counter = memory.alloc(1)
        sim = Simulator(TinySTMBackend(), 3, memory=memory)
        seen = []
        sim.bus.subscribe(lambda e: seen.append(e), kinds=("sched",))
        sim.run([make_counter_program(counter, 10)] * 3)
        return seen

    def test_kernel_publishes_one_snapshot(self, monkeypatch):
        events = self._run(monkeypatch, "kernel")
        assert len(events) == 1
        data = events[0].data
        assert data["picks"] > 0
        assert data["pushes"] >= data["picks"]
        # No parks in this workload: one valid entry per thread, so the
        # heap never grows past T.
        assert data["heap_high_water"] == 3
        assert 0.0 <= data["lazy_invalidation_ratio"] < 1.0

    def test_scan_path_publishes_nothing(self, monkeypatch):
        assert self._run(monkeypatch, "scan") == []

    def test_unobserved_runs_emit_nothing(self, monkeypatch):
        # No subscriber => wants("sched") is False => zero event cost.
        monkeypatch.setenv(SCHED_ENV, "kernel")
        memory = Memory()
        counter = memory.alloc(1)
        sim = Simulator(TinySTMBackend(), 2, memory=memory)
        sim.run([make_counter_program(counter, 4)] * 2)
        assert not sim.bus.wants("sched")


# ----------------------------------------------------------------------
# Satellite: max_steps off-by-one + deadlock diagnostics
# ----------------------------------------------------------------------
def spinning_program(tid):
    while True:
        yield Work(1)


class TestRunLimits:
    @pytest.mark.parametrize("impl", ["scan", "kernel"])
    def test_max_steps_counts_exactly(self, impl, monkeypatch):
        monkeypatch.setenv(SCHED_ENV, impl)
        steps_seen = []
        sim = Simulator(SequentialBackend(), 1, max_steps=5)
        sim.bus.subscribe(lambda e: steps_seen.append(e.time), kinds=("step",))
        with pytest.raises(RuntimeError, match="max_steps=5"):
            sim.run([spinning_program])
        # Exactly max_steps steps executed — not max_steps + 1.
        assert len(steps_seen) == 5

    @pytest.mark.parametrize("impl", ["scan", "kernel"])
    def test_livelock_message_carries_thread_snapshot(self, impl, monkeypatch):
        monkeypatch.setenv(SCHED_ENV, impl)
        sim = Simulator(SequentialBackend(), 1, max_steps=3)
        with pytest.raises(RuntimeError, match=r"t0 runnable clock=\d+ns"):
            sim.run([spinning_program])

    @pytest.mark.parametrize("impl", ["scan", "kernel"])
    def test_deadlock_message_names_parked_threads(self, impl, monkeypatch):
        monkeypatch.setenv(SCHED_ENV, impl)
        barrier = SimBarrier(parties=3)  # one party short: never releases

        def program(tid):
            yield Work(5 * tid)
            yield AwaitBarrier(barrier)

        sim = Simulator(TinySTMBackend(), 2)
        with pytest.raises(RuntimeError, match="deadlock") as err:
            sim.run([program] * 2)
        message = str(err.value)
        assert "t0 parked(barrier)" in message
        assert "t1 parked(barrier)" in message


# ----------------------------------------------------------------------
# Satellite: back-to-back reuse of one barrier object
# ----------------------------------------------------------------------
class TestBarrierReuse:
    @pytest.mark.parametrize("impl", ["scan", "kernel"])
    def test_two_rounds_on_one_object(self, impl, monkeypatch):
        monkeypatch.setenv(SCHED_ENV, impl)
        barrier = SimBarrier(parties=3)
        passed = []

        def program(tid):
            yield Work(10 * tid)
            yield AwaitBarrier(barrier)
            passed.append(("round1", tid))
            # The fastest releasee re-arrives while others are still
            # being woken from round 1 — the release loop must not see
            # round-2 arrivals in its own batch.
            yield AwaitBarrier(barrier)
            passed.append(("round2", tid))

        del passed[:]
        Simulator(TinySTMBackend(), 3).run([program] * 3)
        assert sorted(p for p in passed if p[0] == "round1") == [
            ("round1", 0),
            ("round1", 1),
            ("round1", 2),
        ]
        assert sorted(p for p in passed if p[0] == "round2") == [
            ("round2", 0),
            ("round2", 1),
            ("round2", 2),
        ]

    @pytest.mark.parametrize("impl", ["scan", "kernel"])
    def test_waiting_list_is_fresh_per_round(self, impl, monkeypatch):
        monkeypatch.setenv(SCHED_ENV, impl)
        barrier = SimBarrier(parties=2)

        def program(tid):
            for _ in range(3):
                yield AwaitBarrier(barrier)
                yield Work(1 + tid)

        Simulator(TinySTMBackend(), 2).run([program] * 2)
        assert barrier.waiting == []

    def test_release_times_identical_across_impls(self, monkeypatch):
        def run(impl):
            monkeypatch.setenv(SCHED_ENV, impl)
            barrier = SimBarrier(parties=4)

            def program(tid):
                yield Work(7 * tid)
                yield AwaitBarrier(barrier)
                yield Work(3)
                yield AwaitBarrier(barrier)

            sim = Simulator(TinySTMBackend(), 4)
            stats = sim.run([program] * 4)
            return stats.makespan_ns

        assert run("scan") == run("kernel")
