"""The event bus: subscription semantics and simulator emission."""

import dataclasses

import pytest

from repro.runtime import (
    EVENT_KINDS,
    EventBus,
    Memory,
    Read,
    RunStats,
    SimEvent,
    Simulator,
    StatsCollector,
    TinySTMBackend,
    Transaction,
    Work,
    Write,
)


class TestEventBus:
    def test_delivery_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("first", e.kind)))
        bus.subscribe(lambda e: seen.append(("second", e.kind)), kinds=("commit",))
        bus.emit(SimEvent("commit", 0, 1.0))
        assert seen == [("first", "commit"), ("second", "commit")]

    def test_kind_filtering(self):
        bus = EventBus()
        commits = []
        bus.subscribe(commits.append, kinds=("commit",))
        bus.emit(SimEvent("abort", 0, 1.0, cause="conflict"))
        bus.emit(SimEvent("commit", 0, 2.0))
        assert [e.kind for e in commits] == ["commit"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventBus().subscribe(lambda e: None, kinds=("teleport",))

    def test_wants(self):
        bus = EventBus()
        assert not bus.wants("read")
        bus.subscribe(lambda e: None, kinds=("read",))
        assert bus.wants("read")
        assert not bus.wants("write")
        bus.subscribe(lambda e: None)  # catch-all makes every kind wanted
        assert bus.wants("write")

    def test_events_are_frozen(self):
        event = SimEvent("commit", 0, 1.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.kind = "abort"


class TestUnsubscribe:
    def test_removes_kind_subscriptions(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=("read", "write"))
        bus.emit(SimEvent("read", 0, 1.0))
        bus.unsubscribe(seen.append)
        bus.emit(SimEvent("read", 0, 2.0))
        assert len(seen) == 1

    def test_removes_catch_all(self):
        bus = EventBus()
        seen = []
        handler = seen.append
        bus.subscribe(handler)
        bus.unsubscribe(handler)
        bus.emit(SimEvent("commit", 0, 1.0))
        assert seen == []

    def test_wants_reverts_after_detach(self):
        # The emission fast path must return to its pre-subscription
        # answer — a detached tracer leaves zero per-event residue.
        bus = EventBus()
        handler = lambda e: None  # noqa: E731
        assert not bus.wants("read")
        bus.subscribe(handler, kinds=("read",))
        assert bus.wants("read")
        bus.unsubscribe(handler)
        assert not bus.wants("read")
        assert bus._by_kind == {}

    def test_removes_duplicate_registrations(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=("commit",))
        bus.subscribe(seen.append, kinds=("commit",))
        bus.emit(SimEvent("commit", 0, 1.0))
        assert len(seen) == 2
        bus.unsubscribe(seen.append)
        bus.emit(SimEvent("commit", 0, 2.0))
        assert len(seen) == 2

    def test_unknown_handler_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.unsubscribe(lambda e: None)

    def test_other_subscribers_survive(self):
        bus = EventBus()
        first, second = [], []
        bus.subscribe(first.append, kinds=("commit",))
        bus.subscribe(second.append, kinds=("commit",))
        bus.unsubscribe(first.append)
        bus.emit(SimEvent("commit", 0, 1.0))
        assert first == [] and len(second) == 1

    def test_emission_cost_returns_to_baseline(self):
        """After detach, a run constructs exactly as many events as a
        never-subscribed run (the wants() guard skips hot-path kinds)."""
        from repro.runtime import events as events_mod

        constructed = []

        class CountingEvent(SimEvent):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                constructed.append(self.kind)

        def run_once(subscribe_then_detach):
            memory = Memory()
            addr = memory.alloc(1)

            def program(tid):
                def body():
                    value = yield Read(addr)
                    yield Write(addr, value + 1)
                for _ in range(5):
                    yield Transaction(body)
                    yield Work(10.0)

            sim = Simulator(TinySTMBackend(), 2, memory=memory, seed=7)
            if subscribe_then_detach:
                handler = lambda e: None  # noqa: E731
                sim.bus.subscribe(handler, kinds=("read", "write", "step"))
                sim.bus.unsubscribe(handler)
            constructed.clear()
            sim.run([program] * 2)
            return list(constructed)

        original = events_mod.SimEvent
        import repro.runtime.simulator as sim_mod

        sim_mod.SimEvent = CountingEvent
        try:
            baseline = run_once(subscribe_then_detach=False)
            detached = run_once(subscribe_then_detach=True)
        finally:
            sim_mod.SimEvent = original
        assert detached == baseline
        # Only the always-on outcome events should have been built.
        assert set(baseline) <= {"commit", "abort"}


class TestStatsCollector:
    def test_accumulates_outcomes(self):
        stats = RunStats()
        bus = EventBus()
        StatsCollector(stats).install(bus)
        bus.emit(SimEvent("commit", 0, 1.0))
        bus.emit(SimEvent("commit", 1, 2.0))
        bus.emit(SimEvent("abort", 0, 3.0, cause="cpu-conflict", wasted=120.0))
        assert stats.commits == 2
        assert stats.aborts_by_cause == {"cpu-conflict": 1}
        assert stats.wasted_ns == 120.0


def _contended_counter(base, increments):
    def body():
        value = yield Read(base)
        yield Work(300)
        yield Write(base, value + 1)

    def program(tid):
        for _ in range(increments):
            yield Transaction(body, label="incr")
            yield Work(50)

    return program


class TestSimulatorEmission:
    def _run(self, n_threads=4, increments=5):
        memory = Memory()
        base = memory.alloc(1)
        memory.store(base, 0)
        simulator = Simulator(TinySTMBackend(), n_threads, memory=memory, seed=0)
        events = []
        simulator.bus.subscribe(events.append)
        stats = simulator.run([_contended_counter(base, increments)] * n_threads)
        return stats, events

    def test_every_kind_is_a_known_kind(self):
        _, events = self._run()
        assert {e.kind for e in events} <= set(EVENT_KINDS)

    def test_outcomes_match_stats(self):
        stats, events = self._run()
        kinds = [e.kind for e in events]
        assert kinds.count("commit") == stats.commits == 4 * 5
        assert kinds.count("abort") == stats.aborts
        # every abort is followed by backoff, and aborts imply retries:
        # more begins than attempts that succeeded.
        assert kinds.count("backoff") >= kinds.count("abort")
        assert kinds.count("begin") == stats.commits + sum(
            1 for e in events if e.kind == "abort" and e.began
        )

    def test_begin_carries_label_and_attempt_index(self):
        _, events = self._run()
        begins = [e for e in events if e.kind == "begin"]
        assert all(e.label == "incr" for e in begins)
        assert all(e.attempt_index >= 1 for e in begins)
        assert any(e.attempt_index > 1 for e in begins)  # contention retried

    def test_reads_and_writes_carry_addr_and_value(self):
        _, events = self._run(n_threads=1, increments=3)
        reads = [e for e in events if e.kind == "read"]
        writes = [e for e in events if e.kind == "write"]
        assert [e.value for e in reads] == [0, 1, 2]
        assert [e.value for e in writes] == [1, 2, 3]
        assert all(e.addr is not None for e in reads + writes)

    def test_time_is_monotone_per_thread(self):
        _, events = self._run()
        clocks = {}
        for event in events:
            if event.kind == "step":
                continue
            assert event.time >= clocks.get(event.tid, 0.0)
            clocks[event.tid] = event.time

    def test_no_subscriber_no_read_events(self):
        # The hot path must not fabricate events nobody consumes; the
        # stats collector only listens to commit/abort.
        memory = Memory()
        base = memory.alloc(1)
        memory.store(base, 0)
        simulator = Simulator(TinySTMBackend(), 2, memory=memory, seed=0)
        assert not simulator.bus.wants("read")
        assert simulator.bus.wants("commit")

    def test_in_backend_flag_raised_inside_hooks(self):
        memory = Memory()
        base = memory.alloc(1)
        memory.store(base, 0)
        simulator = Simulator(TinySTMBackend(), 2, memory=memory, seed=0)
        flags = []
        memory.subscribe(lambda addr, value: flags.append(simulator.bus.in_backend))
        simulator.run([_contended_counter(base, 2)] * 2)
        # TinySTM is write-back: every store observed during the run is
        # a commit-time write-back, performed inside a backend hook.
        assert flags and all(flags)
        assert simulator.bus.in_backend is False
