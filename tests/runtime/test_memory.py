"""Direct coverage for the simulated heap (bounds, bulk ops, alignment)."""

import pytest

from repro.runtime import CELLS_PER_CACHELINE, Memory


class TestBounds:
    def test_load_below_heap_raises(self):
        memory = Memory()
        memory.alloc(4)
        with pytest.raises(IndexError):
            memory.load(-1)

    def test_load_past_brk_raises(self):
        memory = Memory()
        base = memory.alloc(4)
        with pytest.raises(IndexError):
            memory.load(base + 4)

    def test_store_past_brk_raises(self):
        memory = Memory()
        base = memory.alloc(2)
        with pytest.raises(IndexError):
            memory.store(base + 2, 1)

    def test_empty_heap_rejects_address_zero(self):
        with pytest.raises(IndexError):
            Memory().load(0)

    def test_unwritten_cells_read_as_zero(self):
        memory = Memory()
        base = memory.alloc(3)
        assert memory.load_many(base, 3) == [0, 0, 0]


class TestBulkOps:
    def test_store_many_load_many_round_trip(self):
        memory = Memory()
        base = memory.alloc(5)
        memory.store_many(base, [10, 11, 12, 13, 14])
        assert memory.load_many(base, 5) == [10, 11, 12, 13, 14]

    def test_store_many_checks_every_cell(self):
        memory = Memory()
        base = memory.alloc(2)
        with pytest.raises(IndexError):
            memory.store_many(base, [1, 2, 3])  # third cell is off-heap
        # The in-bounds prefix landed before the bounds check fired.
        assert memory.load_many(base, 2) == [1, 2]

    def test_load_many_checks_every_cell(self):
        memory = Memory()
        base = memory.alloc(2)
        with pytest.raises(IndexError):
            memory.load_many(base, 3)

    def test_store_many_accepts_any_iterable(self):
        memory = Memory()
        base = memory.alloc(4)
        memory.store_many(base, (i * i for i in range(4)))
        assert memory.load_many(base, 4) == [0, 1, 4, 9]

    def test_store_many_notifies_observers_per_cell(self):
        memory = Memory()
        base = memory.alloc(3)
        seen = []
        memory.subscribe(lambda addr, value: seen.append((addr, value)))
        memory.store_many(base, [7, 8, 9])
        assert seen == [(base, 7), (base + 1, 8), (base + 2, 9)]


class TestLineAlignment:
    def test_aligned_alloc_starts_on_a_line_boundary(self):
        memory = Memory()
        memory.alloc(3)  # leave the brk mid-line
        base = memory.alloc(4, align_line=True)
        assert base % CELLS_PER_CACHELINE == 0

    def test_alignment_padding_never_overlaps_prior_block(self):
        memory = Memory()
        first = memory.alloc(5)
        aligned = memory.alloc(2, align_line=True)
        assert aligned >= first + 5

    def test_already_aligned_brk_pays_no_padding(self):
        memory = Memory()
        first = memory.alloc(CELLS_PER_CACHELINE, align_line=True)
        second = memory.alloc(1, align_line=True)
        assert first == 0
        assert second == CELLS_PER_CACHELINE

    def test_aligned_block_spans_whole_lines_when_sized_so(self):
        memory = Memory()
        memory.alloc(1)
        base = memory.alloc(2 * CELLS_PER_CACHELINE, align_line=True)
        lines = {
            Memory.cacheline(base + i) for i in range(2 * CELLS_PER_CACHELINE)
        }
        assert len(lines) == 2  # exactly two lines, no straddling

    def test_padding_cells_stay_allocated_and_readable(self):
        memory = Memory()
        memory.alloc(3)
        base = memory.alloc(1, align_line=True)
        # The padded gap [3, 8) is inside the heap (brk moved past it).
        for addr in range(3, base):
            assert memory.load(addr) == 0

    def test_unaligned_alloc_packs_densely(self):
        memory = Memory()
        first = memory.alloc(3)
        second = memory.alloc(3)
        assert second == first + 3

    def test_zero_cell_alloc_rejected(self):
        with pytest.raises(ValueError):
            Memory().alloc(0)
