"""Sliding-window ROCoCo: overflow aborts, taint, subset property."""

import random

import pytest

from repro.core import Footprint, RococoValidator, SlidingWindowValidator


def fp(reads=(), writes=(), snapshot=0, label=None):
    return Footprint.of(reads, writes, snapshot, label)


class TestBasics:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SlidingWindowValidator(0)

    def test_read_only_fast_path(self):
        v = SlidingWindowValidator(4)
        assert v.submit(fp(reads=[1, 2])).committed
        assert v.resident == 0

    def test_commits_mirror_unbounded_when_under_capacity(self):
        v = SlidingWindowValidator(8)
        v.submit(fp(writes=[10]))
        d = v.submit(fp(reads=[10], writes=[20], snapshot=0))
        assert d.committed  # the TOCC-restriction case still commits

    def test_cycle_still_detected(self):
        v = SlidingWindowValidator(8)
        v.submit(fp(reads=[5], writes=[10]))
        d = v.submit(fp(reads=[10], writes=[5], snapshot=0))
        assert not d.committed
        assert v.stats_cycle_aborts == 1


class TestEviction:
    def test_resident_bounded_by_window(self):
        v = SlidingWindowValidator(4)
        for i in range(10):
            assert v.submit(fp(writes=[1000 + i], snapshot=i)).committed
        assert v.resident == 4
        assert v.total_commits == 10

    def test_stale_snapshot_overflows(self):
        v = SlidingWindowValidator(2)
        for i in range(5):
            v.submit(fp(writes=[1000 + i], snapshot=i))
        # Oldest resident committed at index 3; snapshot 1 neglects
        # evicted updates.
        d = v.submit(fp(reads=[7], writes=[8], snapshot=1))
        assert not d.committed
        assert d.reason == "window-overflow"

    def test_fresh_snapshot_fine_after_eviction(self):
        v = SlidingWindowValidator(2)
        for i in range(5):
            v.submit(fp(writes=[1000 + i], snapshot=i))
        d = v.submit(fp(reads=[7], writes=[8], snapshot=5))
        assert d.committed

    def test_reachability_renumbered_after_eviction(self):
        v = SlidingWindowValidator(2)
        # Three independent commits; after eviction slots renumber.
        v.submit(fp(writes=[1], snapshot=0, label="a"))
        v.submit(fp(writes=[2], snapshot=1, label="b"))
        v.submit(fp(writes=[3], snapshot=2, label="c"))
        assert v.labels() == ["b", "c"]
        assert v.reaches(0, 0) and v.reaches(1, 1)
        assert not v.reaches(0, 1) and not v.reaches(1, 0)

    def test_taint_blocks_reaching_settled_history(self):
        v = SlidingWindowValidator(2)
        # t0 commits; t1 serializes before t0 (forward edge).
        v.submit(fp(writes=[10], snapshot=0, label="t0"))
        v.submit(fp(reads=[10], writes=[20], snapshot=0, label="t1"))
        # Force two evictions: t0 then t1 leave the window.  When t0 is
        # evicted, t1 (which reaches t0) becomes tainted.
        v.submit(fp(writes=[30], snapshot=2, label="t2"))
        assert v.labels() == ["t1", "t2"]
        # A candidate that *reaches* t1 (forward edge: it missed t1's
        # update of 20) is conservatively aborted, because t1 reaches
        # settled history we can no longer inspect.
        d = v.submit(fp(reads=[20], writes=[40], snapshot=1))
        assert not d.committed
        assert v.stats_taint_aborts == 1
        # Whereas merely *succeeding* t1 (observed read) is fine.
        d2 = v.submit(fp(reads=[20], writes=[41], snapshot=3))
        assert d2.committed


class TestWindowedSafety:
    """Safety of the bounded validator, checked against ground truth:
    the dependency graph over *all* windowed commits (rebuilt exactly,
    with no window) must stay acyclic after every accepted commit."""

    @pytest.mark.parametrize("seed", range(5))
    def test_windowed_commits_are_acyclic(self, seed):
        import networkx as nx

        rng = random.Random(seed)
        v = SlidingWindowValidator(8)
        committed = []  # (footprint, commit_index) in acceptance order
        graph = nx.DiGraph()
        for i in range(120):
            n_addr = rng.randint(1, 4)
            addrs = rng.sample(range(32), n_addr * 2)
            snapshot = max(0, v.total_commits - rng.randint(0, 6))
            candidate = fp(addrs[:n_addr], addrs[n_addr:], snapshot, label=i)
            decision = v.submit(candidate)
            if not (decision.committed and candidate.write_set):
                continue
            me = len(committed)
            graph.add_node(me)
            for j, (prior, prior_index) in enumerate(committed):
                if candidate.read_set & prior.write_set:
                    if prior_index < candidate.snapshot:
                        graph.add_edge(j, me)
                    else:
                        graph.add_edge(me, j)
                if candidate.write_set & (prior.write_set | prior.read_set):
                    graph.add_edge(j, me)
            committed.append((candidate, decision.commit_index))
            assert nx.is_directed_acyclic_graph(graph), (seed, i)
