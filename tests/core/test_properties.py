"""Property-based tests for the ROCoCo core (hypothesis)."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Footprint,
    ReachabilityClosure,
    RococoValidator,
    SlidingWindowValidator,
    tocc_would_abort,
)

# ----------------------------------------------------------------------
# Edge streams: each item is (forward_bits, backward_bits) drawn against
# however many transactions have committed so far.
# ----------------------------------------------------------------------

edge_streams = st.lists(
    st.tuples(st.integers(0, 2**20 - 1), st.integers(0, 2**20 - 1)),
    max_size=25,
)


class TestClosureProperties:
    @given(edge_streams)
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx_everywhere(self, stream):
        closure = ReachabilityClosure()
        graph = nx.DiGraph()
        for raw_fwd, raw_bwd in stream:
            k = len(closure)
            mask = (1 << k) - 1
            fwd, bwd = raw_fwd & mask, raw_bwd & mask
            result = closure.validate(fwd, bwd)

            trial = graph.copy()
            trial.add_node(k)
            trial.add_edges_from((k, i) for i in range(k) if fwd >> i & 1)
            trial.add_edges_from((i, k) for i in range(k) if bwd >> i & 1)
            assert result.ok == nx.is_directed_acyclic_graph(trial)
            if result.ok:
                closure.commit(result)
                graph = trial

        truth = nx.transitive_closure(graph, reflexive=True)
        for i in range(len(closure)):
            for j in range(len(closure)):
                assert closure.reaches(i, j) == truth.has_edge(i, j)

    @given(edge_streams)
    @settings(max_examples=40, deadline=None)
    def test_committed_set_stays_acyclic(self, stream):
        closure = ReachabilityClosure()
        for raw_fwd, raw_bwd in stream:
            mask = (1 << len(closure)) - 1
            result = closure.validate(raw_fwd & mask, raw_bwd & mask)
            if result.ok:
                closure.commit(result)
        # Off-diagonal reachability must be asymmetric in a DAG closure.
        for i in range(len(closure)):
            for j in range(i + 1, len(closure)):
                assert not (closure.reaches(i, j) and closure.reaches(j, i))


# ----------------------------------------------------------------------
# Footprint streams for the validators.
# ----------------------------------------------------------------------

footprints = st.lists(
    st.tuples(
        st.sets(st.integers(0, 15), max_size=3),   # reads
        st.sets(st.integers(0, 15), max_size=3),   # writes
        st.integers(0, 3),                          # snapshot lag
    ),
    max_size=30,
)


def _drive(validator, stream, committed_counter):
    """Feed footprints; snapshot = commits - lag (floored at 0)."""
    decisions = []
    for i, (reads, writes, lag) in enumerate(stream):
        snapshot = max(0, committed_counter() - lag)
        fp = Footprint.of(reads, writes, snapshot, label=i)
        decisions.append((fp, validator.submit(fp)))
    return decisions


class TestValidatorProperties:
    @given(footprints)
    @settings(max_examples=60, deadline=None)
    def test_rococo_never_aborts_where_tocc_commits(self, stream):
        validator = RococoValidator()
        for i, (reads, writes, lag) in enumerate(stream):
            snapshot = max(0, validator.committed_count - lag)
            fp = Footprint.of(reads, writes, snapshot, label=i)
            tocc_aborts = tocc_would_abort(fp, validator)
            decision = validator.submit(fp)
            if not decision.committed:
                assert tocc_aborts  # ROCoCo aborts are a subset

    @given(footprints)
    @settings(max_examples=60, deadline=None)
    def test_committed_dependencies_acyclic(self, stream):
        validator = RococoValidator()
        committed = []  # (footprint, commit_index)
        graph = nx.DiGraph()
        for i, (reads, writes, lag) in enumerate(stream):
            snapshot = max(0, validator.committed_count - lag)
            fp = Footprint.of(reads, writes, snapshot, label=i)
            decision = validator.submit(fp)
            if not (decision.committed and fp.write_set):
                continue
            me = len(committed)
            graph.add_node(me)
            for j, (prior, prior_index) in enumerate(committed):
                if fp.read_set & prior.write_set:
                    if prior_index < fp.snapshot:
                        graph.add_edge(j, me)
                    else:
                        graph.add_edge(me, j)
                if fp.write_set & (prior.write_set | prior.read_set):
                    graph.add_edge(j, me)
            committed.append((fp, decision.commit_index))
            assert nx.is_directed_acyclic_graph(graph)

    @given(footprints, st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_window_commits_subset_of_labels_stay_acyclic(self, stream, window):
        validator = SlidingWindowValidator(window=window)
        committed = []
        graph = nx.DiGraph()
        for i, (reads, writes, lag) in enumerate(stream):
            snapshot = max(0, validator.total_commits - lag)
            fp = Footprint.of(reads, writes, snapshot, label=i)
            decision = validator.submit(fp)
            if not (decision.committed and fp.write_set):
                continue
            me = len(committed)
            graph.add_node(me)
            for j, (prior, prior_index) in enumerate(committed):
                if fp.read_set & prior.write_set:
                    if prior_index < fp.snapshot:
                        graph.add_edge(j, me)
                    else:
                        graph.add_edge(me, j)
                if fp.write_set & (prior.write_set | prior.read_set):
                    graph.add_edge(j, me)
            committed.append((fp, decision.commit_index))
            assert nx.is_directed_acyclic_graph(graph)

    @given(footprints)
    @settings(max_examples=40, deadline=None)
    def test_read_only_always_commits(self, stream):
        validator = RococoValidator()
        for i, (reads, _writes, lag) in enumerate(stream):
            snapshot = max(0, validator.committed_count - lag)
            fp = Footprint.of(reads, (), snapshot, label=i)
            assert validator.submit(fp).committed

    @given(footprints)
    @settings(max_examples=40, deadline=None)
    def test_big_window_equals_unbounded(self, stream):
        unbounded = RococoValidator()
        windowed = SlidingWindowValidator(window=1024)
        for i, (reads, writes, lag) in enumerate(stream):
            snapshot = max(0, unbounded.committed_count - lag)
            fp = Footprint.of(reads, writes, snapshot, label=i)
            a = unbounded.submit(fp).committed
            b = windowed.submit(fp).committed
            assert a == b
