"""Direct tests of the WindowMatrix datapath (eviction + taint)."""

import pytest

from repro.core.window import WindowMatrix


class TestProbeCommit:
    def test_empty_matrix_accepts_anything(self):
        m = WindowMatrix(4)
        ok, p, s = m.probe(0, 0)
        assert ok and p == 0 and s == 0

    def test_self_reaches_self(self):
        m = WindowMatrix(4)
        m.commit(0, 0)
        assert m.reaches(0, 0)

    def test_two_cycle_rejected(self):
        m = WindowMatrix(4)
        m.commit(0, 0)
        ok, p, s = m.probe(0b1, 0b1)
        assert not ok
        assert p & s

    def test_transitive_paths_via_newcomer(self):
        m = WindowMatrix(4)
        m.commit(0, 0)              # slot 0 = A
        ok, p, s = m.probe(0b1, 0)  # B precedes A (forward edge)
        m.commit(p, s)              # slot 1 = B; B reaches A
        assert m.reaches(1, 0)
        # C follows B (backward edge): B -> C, so B keeps its reach to
        # A, and C gains none of it (edges into C grant C nothing).
        ok, p, s = m.probe(0, 0b10)
        m.commit(p, s)              # slot 2 = C
        assert m.reaches(1, 2)
        assert not m.reaches(2, 0)
        assert not m.reaches(0, 2)
        # And B -> C composed with C's future successors is covered by
        # the closure update: a D following C is reachable from B too.
        ok, p, s = m.probe(0, 0b100)
        m.commit(p, s)              # slot 3 = D
        assert m.reaches(1, 3)

    def test_eviction_shifts_and_taints(self):
        m = WindowMatrix(2)
        m.commit(0, 0)              # A (slot 0)
        ok, p, s = m.probe(0b1, 0)  # B precedes A
        m.commit(p, s)              # B (slot 1), reaches A
        assert m.reaches(1, 0)
        evicted = m.commit(0, 0b10)  # C follows B; window overflows, A leaves
        assert evicted
        assert len(m) == 2
        # B renumbered to slot 0 and tainted (it reached evicted A).
        assert m.taint & 0b1
        # C (slot 1) untainted.
        assert not (m.taint & 0b10)

    def test_taint_blocks_probes(self):
        m = WindowMatrix(2)
        m.commit(0, 0)
        ok, p, s = m.probe(0b1, 0)
        m.commit(p, s)
        m.commit(0, 0b10)  # evict; slot 0 (old B) tainted
        ok, p, s = m.probe(0b1, 0)  # candidate would reach tainted slot
        assert not ok

    def test_window_size_validated(self):
        with pytest.raises(ValueError):
            WindowMatrix(0)

    def test_taint_shifts_out_eventually(self):
        m = WindowMatrix(2)
        m.commit(0, 0)              # A
        ok, p, s = m.probe(0b1, 0)
        m.commit(p, s)              # B reaches A
        m.commit(0, 0b10)           # C follows B; A evicted, B tainted
        assert m.taint == 0b1
        m.commit(0, 0b10)           # D follows C; B (the tainted slot)
        assert m.taint == 0         # ... evicted: taint drains with it
