"""The footprint-level ROCoCo validator (§4.1/§5.3 commit rules)."""

import pytest

from repro.core import Footprint, RococoValidator, tocc_would_abort


def fp(reads=(), writes=(), snapshot=0, label=None):
    return Footprint.of(reads, writes, snapshot, label)


class TestFastPaths:
    def test_read_only_commits_without_validation(self):
        v = RococoValidator()
        decision = v.submit(fp(reads=[1, 2, 3]))
        assert decision.committed
        assert v.committed_count == 0  # not recorded in the closure
        assert v.stats_read_only == 1

    def test_first_writer_commits(self):
        v = RococoValidator()
        decision = v.submit(fp(reads=[1], writes=[2]))
        assert decision.committed
        assert decision.commit_index == 0


class TestEdgeExtraction:
    def test_observed_write_is_backward_edge(self):
        v = RococoValidator()
        v.submit(fp(writes=[10], label="w"))
        # Snapshot 1: observed w's commit, so reading 10 is RAW.
        forward, backward = v.edges(fp(reads=[10], writes=[99], snapshot=1))
        assert forward == 0
        assert backward == 1

    def test_unobserved_write_is_forward_edge(self):
        v = RococoValidator()
        v.submit(fp(writes=[10], label="w"))
        # Snapshot 0: w's update neglected -> candidate precedes w.
        forward, backward = v.edges(fp(reads=[10], writes=[99], snapshot=0))
        assert forward == 1
        assert backward == 0

    def test_write_overlap_is_backward_edge(self):
        v = RococoValidator()
        v.submit(fp(writes=[10]))
        forward, backward = v.edges(fp(writes=[10], snapshot=0))
        assert backward == 1

    def test_write_after_committed_read_is_backward_edge(self):
        v = RococoValidator()
        v.submit(fp(reads=[10], writes=[11]))
        forward, backward = v.edges(fp(writes=[10], snapshot=0))
        assert backward == 1


class TestCommitDecisions:
    def test_stale_read_commits_when_no_cycle(self):
        """The TOCC restriction removed: a transaction that missed a
        committed update simply serializes before the updater."""
        v = RococoValidator()
        v.submit(fp(writes=[10]))
        candidate = fp(reads=[10], writes=[20], snapshot=0)
        assert tocc_would_abort(candidate, v)  # TOCC aborts this
        decision = v.submit(candidate)  # ROCoCo does not
        assert decision.committed

    def test_stale_read_plus_conflicting_write_aborts(self):
        """Both directions to the same committed txn: a 2-cycle."""
        v = RococoValidator()
        v.submit(fp(reads=[5], writes=[10]))
        decision = v.submit(fp(reads=[10], writes=[5], snapshot=0))
        assert not decision.committed
        assert decision.reason == "cycle"

    def test_three_txn_cycle_aborts(self):
        v = RococoValidator()
        # t0 writes {1, 7}; t1 misses t0's update of 1, so t1 < t0.
        v.submit(fp(writes=[1, 7]))
        assert v.submit(fp(reads=[1], writes=[2], snapshot=0)).committed
        # Candidate c misses t1's update of 2 (c < t1) but overwrites
        # t0's 7 (t0 < c): c -> t1 -> t0 -> c is a transitive cycle.
        decision = v.submit(fp(reads=[2], writes=[7], snapshot=1))
        assert not decision.committed
        assert decision.reason == "cycle"

    def test_three_txn_pattern_without_back_edge_commits(self):
        # Same as above minus the overwrite of t0's data: no cycle.
        v = RococoValidator()
        v.submit(fp(writes=[1, 7]))
        assert v.submit(fp(reads=[1], writes=[2], snapshot=0)).committed
        assert v.submit(fp(reads=[2], writes=[3], snapshot=1)).committed

    def test_disjoint_transactions_all_commit(self):
        v = RococoValidator()
        for i in range(20):
            d = v.submit(fp(reads=[100 + i], writes=[200 + i], snapshot=i))
            assert d.committed
        assert v.stats_commits == 20
        assert v.stats_aborts == 0

    def test_write_skew_second_txn_aborts(self):
        """Fig. 1 under ROCoCo: the second writer closes a WAR/WAR
        2-cycle and must abort."""
        v = RococoValidator()
        assert v.submit(fp(reads=[0, 1], writes=[0], snapshot=0)).committed
        decision = v.submit(fp(reads=[0, 1], writes=[1], snapshot=0))
        assert not decision.committed


class TestSerializationOrder:
    def test_order_respects_reachability(self):
        v = RococoValidator()
        v.submit(fp(writes=[10], label="t0"))
        v.submit(fp(reads=[10], writes=[20], snapshot=0, label="t1"))  # t1 < t0
        order = v.serialization_order()
        assert order.index("t1") < order.index("t0")

    def test_order_is_topological(self):
        v = RococoValidator()
        v.submit(fp(writes=[1], label="a"))
        v.submit(fp(reads=[1], writes=[2], snapshot=1, label="b"))  # a < b
        v.submit(fp(reads=[2], writes=[3], snapshot=2, label="c"))  # b < c
        assert v.serialization_order() == ["a", "b", "c"]


class TestToccComparison:
    def test_tocc_aborts_superset_of_rococo(self):
        import random

        rng = random.Random(7)
        v = RococoValidator()
        tocc_aborts = rococo_aborts = 0
        for i in range(200):
            addresses = rng.sample(range(64), 6)
            candidate = fp(
                reads=addresses[:3],
                writes=addresses[3:],
                snapshot=max(0, v.committed_count - rng.randint(0, 3)),
            )
            would_tocc = tocc_would_abort(candidate, v)
            decision = v.submit(candidate)
            if would_tocc:
                tocc_aborts += 1
            if not decision.committed:
                rococo_aborts += 1
                assert would_tocc, "ROCoCo aborted where TOCC committed"
        assert rococo_aborts <= tocc_aborts
