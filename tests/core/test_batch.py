"""The non-greedy batch validator (§4.1 deficiency / §7 future work)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Footprint
from repro.core.batch import BatchRococoValidator
from repro.core.rococo import RococoValidator


def fp(reads=(), writes=(), snapshot=0, label=None):
    return Footprint.of(reads, writes, snapshot, label)


class TestHubSacrifice:
    """The canonical greedy pathology: a hub transaction mutually
    conflicting with N independent peers."""

    def _batch(self, n_peers=3):
        hub = fp(reads=range(n_peers), writes=range(n_peers), label="hub")
        peers = [
            fp(reads=[i], writes=[i], label=f"peer{i}") for i in range(n_peers)
        ]
        return [hub] + peers

    def test_greedy_commits_only_the_hub(self):
        validator = RococoValidator()
        decisions = [validator.submit(f) for f in self._batch()]
        assert decisions[0].committed
        assert not any(d.committed for d in decisions[1:])

    def test_batch_sacrifices_the_hub(self):
        validator = BatchRococoValidator()
        outcome = validator.submit_batch(self._batch())
        labels = {f.label for f in outcome.committed}
        assert labels == {"peer0", "peer1", "peer2"}
        assert [f.label for f in outcome.aborted] == ["hub"]

    def test_batch_beats_greedy_count(self):
        greedy = RococoValidator()
        greedy_commits = sum(
            greedy.submit(f).committed for f in self._batch(n_peers=5)
        )
        batched = BatchRococoValidator().submit_batch(self._batch(n_peers=5))
        assert batched.commit_count > greedy_commits


class TestBatchBasics:
    def test_read_only_always_committed(self):
        outcome = BatchRococoValidator().submit_batch(
            [fp(reads=[1, 2]), fp(reads=[3])]
        )
        assert outcome.commit_count == 2

    def test_disjoint_batch_commits_everything(self):
        batch = [fp(reads=[10 * i], writes=[10 * i + 1], label=i) for i in range(6)]
        outcome = BatchRococoValidator().submit_batch(batch)
        assert outcome.commit_count == 6

    def test_chain_without_cycle_commits_everything(self):
        # a reads what b writes: a -> b; no reverse edge.
        batch = [
            fp(reads=[1], writes=[2], label="a"),
            fp(reads=[3], writes=[1], label="b"),
        ]
        outcome = BatchRococoValidator().submit_batch(batch)
        assert outcome.commit_count == 2

    def test_two_cycle_drops_exactly_one(self):
        batch = [
            fp(reads=[1], writes=[2], label="a"),
            fp(reads=[2], writes=[1], label="b"),
        ]
        outcome = BatchRococoValidator().submit_batch(batch)
        assert outcome.commit_count == 1

    def test_history_conflicts_respected(self):
        validator = BatchRococoValidator()
        validator.submit_batch([fp(reads=[5], writes=[10], label="old")])
        # A candidate closing a 2-cycle with history must abort even
        # though the new batch itself is conflict-free.
        outcome = validator.submit_batch(
            [fp(reads=[10], writes=[5], snapshot=0, label="cyclic")]
        )
        assert outcome.commit_count == 0


batches = st.lists(
    st.tuples(
        st.sets(st.integers(0, 7), max_size=2),
        st.sets(st.integers(0, 7), min_size=1, max_size=2),
    ),
    min_size=1,
    max_size=8,
)


class TestBatchProperties:
    @given(batches)
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_greedy(self, specs):
        batch = [fp(r, w, 0, label=i) for i, (r, w) in enumerate(specs)]
        greedy = RococoValidator()
        greedy_commits = sum(greedy.submit(f).committed for f in batch)
        outcome = BatchRococoValidator().submit_batch(batch)
        assert outcome.commit_count >= greedy_commits

    @given(batches)
    @settings(max_examples=60, deadline=None)
    def test_committed_subset_is_serializable(self, specs):
        batch = [fp(r, w, 0, label=i) for i, (r, w) in enumerate(specs)]
        outcome = BatchRococoValidator().submit_batch(batch)
        graph = nx.DiGraph()
        chosen = [f for f in outcome.committed if f.write_set]
        graph.add_nodes_from(range(len(chosen)))
        for i, a in enumerate(chosen):
            for j, b in enumerate(chosen):
                if i != j and a.read_set & b.write_set:
                    graph.add_edge(i, j)
        assert nx.is_directed_acyclic_graph(graph)

    @given(st.lists(batches, min_size=1, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_multi_batch_stream_stays_sound(self, stream):
        validator = BatchRococoValidator()
        label = 0
        for specs in stream:
            batch = []
            for r, w in specs:
                batch.append(fp(r, w, validator.committed_count, label=label))
                label += 1
            validator.submit_batch(batch)  # must not raise
