"""Unit tests for the bit-matrix (2D-register) primitive."""

import pytest

from repro.core import BitMatrix, BitVec


class TestConstruction:
    def test_zero_matrix(self):
        m = BitMatrix(3)
        assert all(m.rows[i] == 0 for i in range(3))

    def test_identity(self):
        m = BitMatrix.identity(3)
        for i in range(3):
            for j in range(3):
                assert m.get(i, j) == (i == j)

    def test_row_count_validated(self):
        with pytest.raises(ValueError):
            BitMatrix(3, [1, 2])

    def test_rows_masked(self):
        m = BitMatrix(2, [0b111, 0])
        assert m.rows[0] == 0b11


class TestAccess:
    def test_get_set(self):
        m = BitMatrix(4)
        m.set(1, 2)
        assert m.get(1, 2)
        m.set(1, 2, False)
        assert not m.get(1, 2)

    def test_row_column(self):
        m = BitMatrix(3)
        m.set(0, 1)
        m.set(2, 1)
        assert m.row(0) == BitVec(3, 0b010)
        assert m.column(1) == BitVec(3, 0b101)

    def test_set_row_and_column(self):
        m = BitMatrix(3)
        m.set_row(1, BitVec(3, 0b110))
        assert m.get(1, 1) and m.get(1, 2)
        m.set_column(0, BitVec(3, 0b011))
        assert m.get(0, 0) and m.get(1, 0) and not m.get(2, 0)

    def test_bounds_checked(self):
        m = BitMatrix(2)
        with pytest.raises(IndexError):
            m.get(2, 0)
        with pytest.raises(ValueError):
            m.set_row(0, BitVec(3))


class TestProducts:
    def _matrix(self):
        # 0 -> 1, 1 -> 2 adjacency.
        m = BitMatrix(3)
        m.set(0, 1)
        m.set(1, 2)
        return m

    def test_mv(self):
        m = self._matrix()
        # rows intersecting {bit1} -> row 0.
        assert m.mv(BitVec(3, 0b010)) == BitVec(3, 0b001)

    def test_mv_transposed(self):
        m = self._matrix()
        # OR of rows selected by {bit0} -> row 0 = {bit1}.
        assert m.mv_transposed(BitVec(3, 0b001)) == BitVec(3, 0b010)

    def test_mv_transposed_equals_transpose_mv(self):
        m = self._matrix()
        v = BitVec(3, 0b101)
        assert m.mv_transposed(v) == m.transpose().mv(v)

    def test_transpose_involution(self):
        m = self._matrix()
        assert m.transpose().transpose() == m

    def test_copy_independent(self):
        m = self._matrix()
        c = m.copy()
        c.set(2, 0)
        assert not m.get(2, 0)
