"""The incremental transitive closure against ground truth (networkx)."""

import networkx as nx
import pytest

from repro.core import ReachabilityClosure


def build(edges_per_txn):
    """Commit a sequence of txns; edges_per_txn[i] = (forward, backward)
    as label lists against previously-committed txns."""
    closure = ReachabilityClosure()
    for label, (fwd, bwd) in enumerate(edges_per_txn):
        result = closure.validate_edges(fwd, bwd)
        assert result.ok, f"unexpected cycle at txn {label}"
        closure.commit(result, label=label)
    return closure


class TestBasics:
    def test_first_commit_reaches_itself(self):
        c = ReachabilityClosure()
        r = c.validate(0, 0)
        assert r.ok
        c.commit(r, label="t1")
        assert c.reaches(0, 0)
        assert c.labels == ["t1"]

    def test_commit_of_cycle_rejected(self):
        c = ReachabilityClosure()
        c.commit(c.validate(0, 0))
        bad = c.validate(1, 1)  # both forward and backward to txn 0
        assert not bad.ok
        with pytest.raises(ValueError):
            c.commit(bad)

    def test_direct_two_cycle_detected(self):
        c = ReachabilityClosure()
        c.commit(c.validate(0, 0), label="a")
        result = c.validate_edges(["a"], ["a"])
        assert not result.ok
        assert result.cycle_mask != 0

    def test_chain_reachability(self):
        # a <- b <- c (each new txn succeeds the previous one).
        c = build([((), ()), ((), (0,)), ((), (1,))])
        assert c.reaches(0, 1)
        assert c.reaches(0, 2)
        assert c.reaches(1, 2)
        assert not c.reaches(2, 0)

    def test_forward_edge_reverses_commit_order(self):
        # New txn t1 serializes *before* committed t0.
        c = build([((), ()), ((0,), ())])
        assert c.reaches(1, 0)
        assert not c.reaches(0, 1)

    def test_transitive_cycle_detected(self):
        # t0; t1 before t0 (forward); candidate after t0 and before t1:
        # t0 -> t, t -> t1, t1 -> t0 closes the cycle.
        c = build([((), ()), ((0,), ())])
        result = c.validate_edges(forward_labels=[1], backward_labels=[0])
        assert not result.ok

    def test_indirect_paths_recorded_on_commit(self):
        # t0; t1 after t0; t2 before t0 => t2 reaches t1 via t0.
        c = build([((), ()), ((), (0,)), ((0,), ())])
        assert c.reaches(2, 1)


class TestAgainstNetworkx:
    def _random_dag_trial(self, seed):
        import random

        rng = random.Random(seed)
        closure = ReachabilityClosure()
        graph = nx.DiGraph()
        committed = 0
        for label in range(30):
            k = committed
            fwd = [i for i in range(k) if rng.random() < 0.15]
            bwd = [i for i in range(k) if rng.random() < 0.15 and i not in fwd]
            f_mask = sum(1 << i for i in fwd)
            b_mask = sum(1 << i for i in bwd)
            result = closure.validate(f_mask, b_mask)

            # Ground truth: would adding these edges create a cycle?
            trial = graph.copy()
            trial.add_node(committed)
            trial.add_edges_from((committed, i) for i in fwd)
            trial.add_edges_from((i, committed) for i in bwd)
            truth_ok = nx.is_directed_acyclic_graph(trial)
            assert result.ok == truth_ok, (seed, label, fwd, bwd)

            if result.ok:
                closure.commit(result)
                graph = trial
                committed += 1

        # Full reachability check.
        tc = nx.transitive_closure(graph, reflexive=True)
        for i in range(committed):
            for j in range(committed):
                assert closure.reaches(i, j) == tc.has_edge(i, j), (seed, i, j)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_closure(self, seed):
        self._random_dag_trial(seed)


class TestReachableSet:
    def test_reachable_set_by_label(self):
        c = build([((), ()), ((), (0,))])
        assert c.reachable_set(0) == {0, 1}
        assert c.reachable_set(1) == {1}
