"""Unit tests for the bit-vector datapath primitive."""

import pytest

from repro.core import BitVec


class TestConstruction:
    def test_masked_to_width(self):
        v = BitVec(4, 0xFF)
        assert v.bits == 0xF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitVec(-1)

    def test_from_indices(self):
        v = BitVec.from_indices(8, [0, 3, 7])
        assert v.indices() == [0, 3, 7]

    def test_from_indices_out_of_range(self):
        with pytest.raises(IndexError):
            BitVec.from_indices(4, [4])

    def test_ones(self):
        assert BitVec.ones(5).bits == 0b11111


class TestBitAccess:
    def test_get_set(self):
        v = BitVec(8)
        v.set(3)
        assert v.get(3)
        v.set(3, False)
        assert not v.get(3)

    def test_out_of_range(self):
        v = BitVec(4)
        with pytest.raises(IndexError):
            v.get(4)
        with pytest.raises(IndexError):
            v.set(-1)


class TestWideOps:
    def test_and_or_xor(self):
        a = BitVec(4, 0b1100)
        b = BitVec(4, 0b1010)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (a ^ b).bits == 0b0110

    def test_invert_stays_in_width(self):
        v = ~BitVec(4, 0b0101)
        assert v.bits == 0b1010

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitVec(4) & BitVec(5)

    def test_any_and_popcount(self):
        assert not BitVec(4).any()
        v = BitVec(4, 0b1010)
        assert v.any()
        assert v.popcount() == 2

    def test_shifted_in_drops_oldest(self):
        v = BitVec(4, 0b1000)
        shifted = v.shifted_in(True)
        assert shifted.bits == 0b0001
        assert shifted.width == 4

    def test_iter_and_len(self):
        v = BitVec(3, 0b101)
        assert list(v) == [True, False, True]
        assert len(v) == 3

    def test_equality_and_hash(self):
        assert BitVec(4, 3) == BitVec(4, 3)
        assert BitVec(4, 3) != BitVec(5, 3)
        assert hash(BitVec(4, 3)) == hash(BitVec(4, 3))
