"""Smoke tests: every shipped example runs to completion.

Examples are deliverables; a refactor that breaks one should fail CI,
not a reader.  Each runs in-process at reduced scale where supported.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Total balance conserved" in result.stdout

    def test_semantics_tour(self):
        result = run_example("semantics_tour.py")
        assert result.returncode == 0, result.stderr
        assert "write skew" in result.stdout
        assert "committed=True" in result.stdout  # ROCoCo beats TOCC

    def test_fpga_pipeline(self):
        result = run_example("fpga_pipeline.py")
        assert result.returncode == 0, result.stderr
        assert "200 MHz" in result.stdout
        assert "amortization" in result.stdout

    def test_si_anomalies(self):
        result = run_example("si_anomalies.py")
        assert result.returncode == 0, result.stderr
        assert "VIOLATED" in result.stdout   # SI admits the skew
        assert "preserved" in result.stdout  # serializable systems don't

    def test_stamp_comparison_small(self):
        result = run_example("stamp_comparison.py", "0.15")
        assert result.returncode == 0, result.stderr
        assert "geomean" in result.stdout
