"""Cluster observability: shard metrics, per-shard hw lanes, export."""

from repro.cluster import ClusterTMBackend
from repro.exec import ExperimentSpec
from repro.exec.spec import WORKLOAD_REGISTRY
from repro.obs import chrome_trace_payload, observe_stamp
from repro.obs.export import HW_LANE_TIDS, _lane_tid


def _observe(shards=4, workload="ssca2", n_threads=8):
    return observe_stamp(
        WORKLOAD_REGISTRY[workload],
        ClusterTMBackend(shards=shards),
        n_threads,
        scale=0.1,
        seed=1,
    )


class TestShardMetrics:
    def test_shard_counters_populated(self):
        _, _, registry = _observe()
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["shard.single_commits"] > 0
        assert counters["shard.cross_commits"] > 0
        # Per-home-shard family: one key per shard that committed.
        homes = {k for k in counters if k.startswith("shard.commits.")}
        assert homes
        assert sum(counters[k] for k in homes) == (
            counters["shard.single_commits"] + counters["shard.cross_commits"]
        )

    def test_prepare_latency_histogram(self):
        _, _, registry = _observe()
        snap = registry.snapshot()
        hist = snap["histograms"]["shard.prepare_ns"]
        assert hist["count"] > 0
        assert hist["min"] > 0
        involved = snap["histograms"]["shard.involved"]
        assert involved["min"] >= 2  # cross-shard by definition

    def test_single_node_runs_emit_no_shard_metrics(self):
        _, _, registry = _observe(shards=1)
        snap = registry.snapshot()
        assert not any(k.startswith("shard.") for k in snap["counters"])

    def test_spec_obs_snapshot_carries_shard_metrics(self):
        stats = ExperimentSpec(
            "ssca2", "ClusterTM", 8, scale=0.1, shards=4, obs=True
        ).execute()
        assert stats.metrics["counters"]["shard.cross_commits"] > 0


class TestShardLanes:
    def test_hw_lanes_prefixed_per_shard(self):
        _, tracer, _ = _observe(shards=2)
        lanes = {s.lane for s in tracer.spans if s.pid == "hw"}
        assert any(str(lane).startswith("s1:") for lane in lanes)
        # Shard 0 keeps the unprefixed single-node lane names.
        assert "detector" in lanes

    def test_2pc_spans_on_cpu_lanes(self):
        _, tracer, _ = _observe(shards=2)
        tpc = [s for s in tracer.spans if s.name == "2pc"]
        assert tpc
        for span in tpc:
            assert span.pid == "cpu"
            assert span.args["involved"] >= 2

    def test_export_lane_tids_block_per_shard(self):
        size = len(HW_LANE_TIDS)
        assert _lane_tid("hw", "detector") == HW_LANE_TIDS["detector"]
        assert _lane_tid("hw", "s1:detector") == size + HW_LANE_TIDS["detector"]
        assert _lane_tid("hw", "s3:queue") == 3 * size + HW_LANE_TIDS["queue"]

    def test_chrome_export_separates_shard_lanes(self):
        _, tracer, _ = _observe(shards=2)
        payload = chrome_trace_payload(tracer, backend="ClusterTM")
        names = {
            ev["tid"]: ev["args"]["name"]
            for ev in payload["traceEvents"]
            if ev.get("ph") == "M" and ev["name"] == "thread_name"
            and ev["pid"] == 2
        }
        assert "detector" in names.values()
        assert "s1:detector" in names.values()
        # Distinct tids for every lane: no two lanes collide.
        assert len(names) == len(set(names))

    def test_export_deterministic(self):
        _, t1, _ = _observe(shards=2)
        _, t2, _ = _observe(shards=2)
        a = chrome_trace_payload(t1, backend="ClusterTM")
        b = chrome_trace_payload(t2, backend="ClusterTM")
        assert a == b
