"""The ``--shards`` surface: stamp/chaos/fig10 flags, guards, env."""

from repro.cli import main


class TestStampShards:
    def test_cluster_stamp_runs(self, capsys):
        assert main(["stamp", "ssca2", "ClusterTM", "--threads", "8",
                     "--shards", "4", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "ssca2/ClusterTM@8t" in out

    def test_shards_require_clustertm(self, capsys):
        assert main(["stamp", "ssca2", "ROCoCoTM", "--shards", "2",
                     "--scale", "0.1"]) == 1
        assert "requires the ClusterTM backend" in capsys.readouterr().err

    def test_cluster_accepts_faults(self, capsys):
        assert main(["stamp", "ssca2", "ClusterTM", "--threads", "4",
                     "--shards", "2", "--faults", "drop",
                     "--scale", "0.1"]) == 0
        assert "ssca2/ClusterTM" in capsys.readouterr().out

    def test_faults_still_guarded_on_other_backends(self, capsys):
        assert main(["stamp", "ssca2", "TinySTM", "--faults", "drop",
                     "--scale", "0.1"]) == 1
        assert "ROCoCoTM or ClusterTM" in capsys.readouterr().err

    def test_env_default(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        assert main(["stamp", "ssca2", "ClusterTM", "--threads", "4",
                     "--scale", "0.1"]) == 0
        assert "ssca2/ClusterTM@4t" in capsys.readouterr().out


class TestChaosShards:
    def test_cluster_chaos_matrix(self, capsys):
        assert main(["chaos", "ssca2", "--shards", "2",
                     "--schedule", "drop", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Chaos matrix" in out and "drop" in out

    def test_sanitize_conflicts_with_shards(self, capsys):
        assert main(["chaos", "ssca2", "--shards", "2", "--sanitize",
                     "--schedule", "drop", "--scale", "0.1"]) == 1
        assert "single-node" in capsys.readouterr().err


class TestFig10Shards:
    def test_cluster_column_and_ratio_table(self, capsys):
        assert main(["fig10", "--scale", "0.1", "--workloads", "ssca2",
                     "--threads", "4", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "ClusterTM" in out
        assert "Cluster scale-out ratio (2 shards)" in out

    def test_default_stays_single_node(self, capsys):
        assert main(["fig10", "--scale", "0.1", "--workloads", "ssca2",
                     "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "ClusterTM" not in out


class TestListShards:
    def test_list_names_cluster_backend(self, capsys):
        assert main(["list"]) == 0
        assert "ClusterTM" in capsys.readouterr().out


class TestObservedShards:
    def test_trace_cluster(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "ssca2", "ClusterTM", "--threads", "4",
                     "--shards", "2", "--scale", "0.1",
                     "--out", str(out)]) == 0
        assert out.exists()

    def test_metrics_cluster(self, capsys):
        assert main(["metrics", "ssca2", "ClusterTM", "--threads", "4",
                     "--shards", "2", "--scale", "0.1"]) == 0
        assert "shard.single_commits" in capsys.readouterr().out
