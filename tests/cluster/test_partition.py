"""Partitioners: line alignment, determinism, coverage, clamping."""

import pytest

from repro.cluster import (
    PARTITIONERS,
    HashPartitioner,
    RangePartitioner,
    make_partitioner,
)
from repro.runtime.memory import CELLS_PER_CACHELINE


class TestHashPartitioner:
    def test_line_aligned(self):
        part = HashPartitioner(4)
        for line in range(64):
            base = line * CELLS_PER_CACHELINE
            owners = {part.shard_of(base + off) for off in range(CELLS_PER_CACHELINE)}
            assert len(owners) == 1

    def test_covers_every_shard(self):
        part = HashPartitioner(8)
        owners = {part.shard_of(line * CELLS_PER_CACHELINE) for line in range(256)}
        assert owners == set(range(8))

    def test_deterministic_across_instances(self):
        a, b = HashPartitioner(4), HashPartitioner(4)
        assert [a.shard_of(i) for i in range(512)] == [
            b.shard_of(i) for i in range(512)
        ]

    def test_single_shard_owns_everything(self):
        part = HashPartitioner(1)
        assert {part.shard_of(i) for i in range(256)} == {0}


class TestRangePartitioner:
    def test_contiguous_ranges(self):
        part = RangePartitioner(2)
        part.bind(4 * CELLS_PER_CACHELINE)  # 4 lines, 2 per shard
        assert part.shard_of(0) == 0
        assert part.shard_of(1 * CELLS_PER_CACHELINE) == 0
        assert part.shard_of(2 * CELLS_PER_CACHELINE) == 1
        assert part.shard_of(3 * CELLS_PER_CACHELINE) == 1

    def test_late_allocations_clamp_to_last_shard(self):
        part = RangePartitioner(2)
        part.bind(2 * CELLS_PER_CACHELINE)
        assert part.shard_of(100 * CELLS_PER_CACHELINE) == 1

    def test_unbound_defaults_are_line_granular(self):
        part = RangePartitioner(4)
        assert part.shard_of(0) == 0
        assert part.shard_of(3 * CELLS_PER_CACHELINE) == 3


class TestFactory:
    def test_registry_policies(self):
        assert set(PARTITIONERS) == {"hash", "range"}
        for policy in PARTITIONERS:
            assert make_partitioner(policy, 2).policy == policy

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_partitioner("round-robin", 2)

    def test_bad_shard_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
