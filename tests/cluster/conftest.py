"""Shared fixtures for the cluster tests: tiny direct-drive programs
(the STAMP-level coverage lives in the spec/runner/CLI tests)."""

from repro.runtime import Memory, Read, Simulator, Transaction, Work, Write
from repro.runtime.memory import CELLS_PER_CACHELINE


def make_counter_program(counter_addr, increments):
    def body():
        value = yield Read(counter_addr)
        yield Work(20)
        yield Write(counter_addr, value + 1)
        return value

    def program(tid):
        for _ in range(increments):
            yield Transaction(body, label="inc")
            yield Work(30)

    return program


def run_counter(backend, n_threads, increments=20, seed=0):
    memory = Memory()
    counter = memory.alloc(1)
    memory.store(counter, 0)
    sim = Simulator(
        backend, n_threads, memory=memory, seed=seed, workload_name="counter"
    )
    stats = sim.run([make_counter_program(counter, increments)] * n_threads)
    return memory.load(counter), stats


def run_two_shard_transfers(rounds=1, work_ns=25, seed=0, backend=None):
    """Two threads moving value between one account per shard (range
    partition: line 0 -> shard 0, line 1 -> shard 1), in opposite
    directions — every commit is cross-shard by construction."""
    from repro.cluster import ClusterTMBackend

    memory = Memory()
    a = memory.alloc(CELLS_PER_CACHELINE)
    b = memory.alloc(CELLS_PER_CACHELINE)
    memory.store(a, 100)
    memory.store(b, 100)
    if backend is None:
        backend = ClusterTMBackend(shards=2, partition="range")

    def make_body(src, dst):
        def body():
            x = yield Read(src)
            y = yield Read(dst)
            yield Work(work_ns)
            yield Write(src, x - 10)
            yield Write(dst, y + 10)
            return None

        return body

    def program(tid):
        body = make_body(a, b) if tid == 0 else make_body(b, a)
        for _ in range(rounds):
            yield Transaction(body, label="xfer")

    sim = Simulator(backend, 2, memory=memory, seed=seed, workload_name="xfer")
    stats = sim.run([program] * 2)
    total = memory.load(a) + memory.load(b)
    return total, stats, backend
