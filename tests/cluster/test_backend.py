"""ClusterTMBackend: identity at one shard, invariants at many,
cross-shard conflicts, chaos, and the serializability oracle."""

import pytest

from repro.cluster import ClusterTMBackend
from repro.exec import ExperimentSpec
from repro.runtime import RococoTMBackend
from .conftest import run_counter, run_two_shard_transfers


class TestSingleShardIdentity:
    def test_counter_bit_identical_to_plain_rococotm(self):
        v_plain, s_plain = run_counter(RococoTMBackend(), 4, increments=10)
        v_cluster, s_cluster = run_counter(
            ClusterTMBackend(shards=1), 4, increments=10
        )
        assert v_plain == v_cluster
        plain, cluster = s_plain.to_dict(), s_cluster.to_dict()
        plain.pop("backend"), cluster.pop("backend")
        assert plain == cluster

    def test_stamp_cell_identical_to_plain_rococotm(self):
        plain = ExperimentSpec("ssca2", "ROCoCoTM", 4, scale=0.1).execute()
        cluster = ExperimentSpec("ssca2", "ClusterTM", 4, scale=0.1).execute()
        a, b = plain.to_dict(), cluster.to_dict()
        a.pop("backend"), b.pop("backend")
        assert a == b


class TestMultiShardInvariants:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("n_threads", [4, 8])
    def test_no_lost_updates(self, shards, n_threads):
        value, stats = run_counter(
            ClusterTMBackend(shards=shards), n_threads, increments=8
        )
        assert value == n_threads * 8
        assert stats.commits == n_threads * 8

    @pytest.mark.parametrize("shards", [2, 4])
    def test_deterministic(self, shards):
        v1, s1 = run_counter(ClusterTMBackend(shards=shards), 6, increments=6, seed=5)
        v2, s2 = run_counter(ClusterTMBackend(shards=shards), 6, increments=6, seed=5)
        assert v1 == v2
        assert s1.to_dict() == s2.to_dict()

    @pytest.mark.parametrize("workload", ["ssca2", "vacation"])
    def test_stamp_workloads_verify(self, workload):
        stats = ExperimentSpec(
            workload, "ClusterTM", 8, scale=0.1, shards=4
        ).execute()
        assert stats.commits > 0

    def test_round_robin_node_occupancy(self):
        backend = ClusterTMBackend(shards=4)
        backend.shards_n = 4  # before attach: pure arithmetic check
        backend.driver = type("D", (), {"n_threads": 10})()
        assert [backend._node_threads(node) for node in range(4)] == [3, 3, 2, 2]
        assert backend.local_threads(0) == 3
        assert backend.local_threads(3) == 2


class TestCrossShardConflicts:
    def test_symmetric_transfers_abort_exactly_one(self):
        """Two opposite transfers over the same two shards collide;
        the coordinator certifies the earlier commit and refuses the
        later one (stale forward edge), which retries and commits."""
        total, stats, _ = run_two_shard_transfers()
        assert total == 200
        assert stats.commits == 2
        assert stats.aborts_by_cause.get("fpga-xshard-stale") == 1
        assert stats.aborts == 1

    def test_refusals_count_as_fpga_aborts(self):
        _, stats, _ = run_two_shard_transfers(rounds=3)
        assert stats.commits == 6
        assert stats.fpga_aborts >= 1
        assert set(stats.aborts_by_cause) <= {
            "fpga-xshard-stale", "fpga-xshard-overflow"
        }

    def test_cross_shard_validations_accrue_latency(self):
        _, stats, _ = run_two_shard_transfers()
        # Every 2PC prepares on both shards: >= 2 validations/commit.
        assert stats.validations >= 2 * stats.commits
        assert stats.validation_ns > 0


class TestChaosAtScale:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_faults_inject_per_shard(self, shards):
        stats = ExperimentSpec(
            "ssca2", "ClusterTM", 8, scale=0.1, faults="drop", shards=shards
        ).execute()
        assert stats.total_faults_injected > 0
        assert stats.commits > 0

    def test_chaos_deterministic(self):
        spec = ExperimentSpec(
            "ssca2", "ClusterTM", 4, scale=0.1, faults="mixed", shards=2
        )
        assert spec.execute().to_dict() == spec.execute().to_dict()


class TestSanitizerOracle:
    @pytest.mark.parametrize("workload_name", ["ssca2", "vacation"])
    def test_multi_shard_history_serializable(self, workload_name):
        from repro.exec.spec import WORKLOAD_REGISTRY
        from repro.sanitizer.dynamic import run_sanitized

        report, _, _ = run_sanitized(
            WORKLOAD_REGISTRY[workload_name],
            ClusterTMBackend(shards=4),
            8,
            scale=0.1,
            seed=1,
        )
        assert report.ok, report.summary()

    def test_cross_shard_fixture_serializable(self):
        from repro.sanitizer import SanitizerBackend

        backend = SanitizerBackend(ClusterTMBackend(shards=2, partition="range"))
        total, _, _ = run_two_shard_transfers(backend=backend)
        assert total == 200
        report = backend.report("xfer")
        assert report.ok, report.summary()


class TestValidation:
    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError):
            ClusterTMBackend(shards=0)

    def test_spec_rejects_shards_on_single_node_backends(self):
        with pytest.raises(ValueError):
            ExperimentSpec("kmeans", "ROCoCoTM", 2, shards=2)

    def test_spec_accepts_cluster_faults(self):
        spec = ExperimentSpec("kmeans", "ClusterTM", 2, faults="drop", shards=2)
        assert spec.label() == "kmeans/ClusterTM@2tx2s+drop"

    def test_spec_hash_covers_shards(self):
        base = ExperimentSpec("kmeans", "ClusterTM", 2)
        assert base.content_hash() != base.with_(shards=2).content_hash()
