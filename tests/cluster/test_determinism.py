"""Cluster determinism: pool == serial, and single-shard ClusterTM
stamps byte-identically to plain ROCoCoTM (modulo the backend name)."""

import pytest

from repro.exec import (
    ExperimentSpec,
    ProcessPoolRunner,
    SerialRunner,
    write_bench_stamp,
)
from repro.bench import matrix_from_results, matrix_specs
from repro.cluster import ClusterTMBackend
from repro.runtime import RococoTMBackend

#: the cluster mini-grid: two shard counts across two thread counts.
CLUSTER_GRID = [
    ExperimentSpec("ssca2", "ClusterTM", n_threads, scale=0.1, shards=shards)
    for shards in (2, 4)
    for n_threads in (4, 8)
]


def _dicts(stats_list):
    return [stats.to_dict() for stats in stats_list]


class TestPoolIdentity:
    def test_pool_identical_to_serial(self):
        serial = SerialRunner().run(CLUSTER_GRID)
        pooled = ProcessPoolRunner(max_workers=2).run(CLUSTER_GRID)
        assert _dicts(serial) == _dicts(pooled)


class TestSingleShardStampIdentity:
    """``ClusterTM(shards=1)`` and plain ``ROCoCoTM`` produce
    byte-identical ``BENCH_stamp.json`` files once the backend-name
    strings are normalized, under both scheduler implementations."""

    @pytest.mark.parametrize("sched", ["scan", "kernel"])
    def test_stamp_bytes_match(self, sched, tmp_path, monkeypatch):
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "0")
        monkeypatch.setenv("REPRO_SCHED", sched)
        stamps = {}
        for backend_cls in (RococoTMBackend, ClusterTMBackend):
            specs = matrix_specs(
                workloads=[_workload("ssca2")],
                backends=(backend_cls,),
                threads=(1, 4),
                scale=0.1,
                shards=1,
            )
            results = SerialRunner().run(specs)
            matrix = matrix_from_results(specs, results)
            out = tmp_path / f"BENCH_stamp_{backend_cls.name}_{sched}.json"
            write_bench_stamp(str(out), matrix, specs, 0.0)
            stamps[backend_cls.name] = out.read_text()
        scrubbed = stamps["ClusterTM"].replace("ClusterTM", "ROCoCoTM")
        assert scrubbed == stamps["ROCoCoTM"]


def _workload(name):
    from repro.exec.spec import WORKLOAD_REGISTRY

    return WORKLOAD_REGISTRY[name]
