"""The command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kmeans" in out and "ROCoCoTM" in out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "m=512,k=4" in out

    def test_fig9_small(self, capsys):
        assert main(["fig9", "--threads", "4", "--seeds", "2", "--txns", "40"]) == 0
        out = capsys.readouterr().out
        assert "ROCoCo" in out and "collision" in out

    def test_fig10_small(self, capsys):
        assert (
            main(
                [
                    "fig10",
                    "--scale", "0.2",
                    "--threads", "1", "4",
                    "--workloads", "ssca2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Figure 10 - ssca2" in out
        assert "Geomean" in out

    def test_fig11_small(self, capsys):
        assert main(["fig11", "--threads", "4", "--scale", "0.2",
                     "--workloads", "kmeans"]) == 0
        out = capsys.readouterr().out
        assert "validation overhead" in out

    def test_resources(self, capsys):
        assert main(["resources", "--window", "64", "--bits", "512"]) == 0
        out = capsys.readouterr().out
        assert "249442" in out and "200 MHz" in out

    def test_stamp_run(self, capsys):
        assert main(["stamp", "ssca2", "ROCoCoTM", "--threads", "4",
                     "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "ssca2/ROCoCoTM@4t" in out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["stamp", "ssca2", "NotATm"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestVersionAndExitCodes:
    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as bail:
            main(["--version"])
        assert bail.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_unknown_workload_in_trace_exits_one(self, capsys):
        assert main(["trace", "not-a-workload", "ROCoCoTM"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_backend_in_trace_exits_one(self, capsys):
        assert main(["trace", "vacation", "not-a-backend"]) == 1
        assert "unknown backend" in capsys.readouterr().err

    def test_faults_on_wrong_backend_exits_one(self, capsys):
        assert main(["metrics", "kmeans", "TinySTM", "--faults", "mixed"]) == 1
        assert "ROCoCoTM" in capsys.readouterr().err

    def test_unwritable_out_path_exits_one(self, tmp_path, capsys):
        out = tmp_path / "no" / "such" / "dir" / "t.json"
        assert main(["trace", "ssca2", "ROCoCoTM", "--threads", "2",
                     "--scale", "0.2", "--out", str(out)]) == 1
        assert "repro: error" in capsys.readouterr().err

    def test_runtime_errors_become_exit_one(self, capsys, monkeypatch):
        import argparse

        import repro.cli as cli_mod

        def boom(args):
            raise RuntimeError("kaput")

        def stub_parser():
            parser = argparse.ArgumentParser()
            sub = parser.add_subparsers(required=True)
            sub.add_parser("fig7").set_defaults(func=boom)
            return parser

        monkeypatch.setattr(cli_mod, "build_parser", stub_parser)
        assert cli_mod.main(["fig7"]) == 1
        assert "kaput" in capsys.readouterr().err


class TestTraceCli:
    def test_trace_normalizes_names(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["trace", "stamp-vacation-low", "rococotm",
                     "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "spans" in captured
        import json

        payload = json.loads(out.read_text())
        assert payload["otherData"]["workload"] == "vacation"
        assert payload["otherData"]["backend"] == "ROCoCoTM"

    def test_trace_with_faults(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        assert main(["trace", "kmeans", "ROCoCoTM", "--faults", "mixed",
                     "--threads", "2", "--scale", "0.2",
                     "--out", str(out)]) == 0
        import json

        payload = json.loads(out.read_text())
        faults = [
            e for e in payload["traceEvents"]
            if e["ph"] == "i" and e["name"].startswith("fault:")
        ]
        assert faults


class TestMetricsCli:
    def test_metrics_table(self, capsys):
        assert main(["metrics", "ssca2", "ROCoCoTM", "--threads", "2",
                     "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "txn.commits" in out and "hw.validations" in out

    def test_metrics_json(self, capsys):
        import json

        assert main(["metrics", "ssca2", "ROCoCoTM", "--threads", "2",
                     "--scale", "0.2", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) == {"counters", "gauges", "histograms"}

    def test_metrics_out_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        assert main(["metrics", "ssca2", "ROCoCoTM", "--threads", "2",
                     "--scale", "0.2", "--out", str(out)]) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["counters"]["txn.commits"] > 0


class TestFig10Obs:
    def test_obs_metrics_land_in_stamp_json(self, tmp_path, capsys):
        import json

        stamp = tmp_path / "BENCH_stamp.json"
        assert main(["fig10", "--scale", "0.2", "--threads", "1", "2",
                     "--workloads", "ssca2", "--obs",
                     "--stamp-json", str(stamp)]) == 0
        payload = json.loads(stamp.read_text())
        assert payload["metrics"]["merged"]["counters"]["txn.commits"] > 0
        assert len(payload["metrics"]["cells"]) == payload["n_specs"]


class TestSanitizeCli:
    def test_clean_workload_exits_zero(self, capsys):
        assert main(["sanitize", "ssca2", "ROCoCoTM", "--threads", "4",
                     "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_requires_workload_and_backend(self, capsys):
        assert main(["sanitize"]) == 2
        assert "required" in capsys.readouterr().err

    def test_self_check(self, capsys):
        assert main(["sanitize", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "write-skew" in out and "FAIL" not in out

    def test_dump_log(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        assert main(["sanitize", "ssca2", "ROCoCoTM", "--threads", "2",
                     "--scale", "0.2", "--dump-log", str(log)]) == 0
        from repro.sanitizer import EventLog

        events = EventLog.load_jsonl(log.read_text())
        assert len(events) > 0

    def test_diff_mode(self, capsys):
        assert main(["sanitize", "ssca2", "ROCoCoTM", "--diff", "global-lock",
                     "--threads", "4", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "vs" in out


class TestLintCli:
    def test_src_is_clean(self, capsys):
        from pathlib import Path

        src = Path(__file__).resolve().parents[1] / "src"
        assert main(["lint", str(src)]) == 0
        assert "0 lint error(s)" in capsys.readouterr().out

    def test_bad_file_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "cc" / "entropy.py"
        bad.parent.mkdir()
        bad.write_text("import time\nNOW = time.time()\n")
        assert main(["lint", str(bad)]) == 1
        assert "TM001" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestSupervisedCli:
    """The --timeout/--max-retries/--resume/--worker-faults flags on
    stamp/chaos/fig10, and the exit-3 quarantine convention."""

    def test_stamp_supervised_ok(self, capsys):
        assert main(["stamp", "kmeans", "TinySTM", "--threads", "2",
                     "--scale", "0.1", "--timeout", "120"]) == 0
        captured = capsys.readouterr()
        assert "supervised: 1 executed" in captured.err
        assert "kmeans/TinySTM@2t" in captured.out

    def test_stamp_poison_cell_exits_three(self, capsys):
        assert main(["stamp", "kmeans", "TinySTM", "--threads", "2",
                     "--scale", "0.1", "--worker-faults", "crash@0",
                     "--max-retries", "0"]) == 3
        captured = capsys.readouterr()
        assert "quarantined cell 0" in captured.err

    def test_stamp_resume_serves_from_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        args = ["stamp", "kmeans", "TinySTM", "--threads", "2",
                "--scale", "0.1", "--resume", journal]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        captured = capsys.readouterr()
        assert captured.out == first  # same result, not re-derived
        assert "1 from journal" in captured.err

    def test_env_defaults_route_through_supervisor(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "120")
        assert main(["stamp", "kmeans", "TinySTM", "--threads", "2",
                     "--scale", "0.1"]) == 0
        assert "supervised:" in capsys.readouterr().err

    def test_bad_env_value_is_rejected(self, monkeypatch):
        # Env defaults are parsed while the parser is built, so a bad
        # value bails like any other usage error (through SystemExit).
        monkeypatch.setenv("REPRO_BENCH_RETRIES", "many")
        with pytest.raises(SystemExit) as bail:
            main(["stamp", "kmeans", "TinySTM", "--threads", "2",
                  "--scale", "0.1"])
        assert "REPRO_BENCH_RETRIES" in str(bail.value.code)

    def test_chaos_quarantine_row_and_exit(self, capsys):
        assert main(["chaos", "kmeans", "--schedule", "drop", "spike",
                     "--threads", "2", "--scale", "0.1",
                     "--worker-faults", "crash@0", "--max-retries", "0"]) == 3
        captured = capsys.readouterr()
        assert "QUARANTINED" in captured.out

    def test_fig10_partial_matrix_renders_dashes(self, tmp_path, capsys):
        stamp = tmp_path / "stamp.json"
        # Quarantine one non-baseline cell; the table shows "-" for it
        # and the sweep still exits 3 with a written stamp.
        assert main(["fig10", "--scale", "0.1", "--workloads", "kmeans",
                     "--threads", "1", "4", "--worker-faults", "crash@2",
                     "--max-retries", "0",
                     "--stamp-json", str(stamp)]) == 3
        captured = capsys.readouterr()
        assert "-" in captured.out
        import json

        payload = json.loads(stamp.read_text())
        assert len(payload["quarantined"]) == 1

    def test_fig10_resume_is_bit_identical(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "0")
        ref = tmp_path / "ref.json"
        out = tmp_path / "out.json"
        journal = str(tmp_path / "sweep.jsonl")
        # Both runs supervised (--timeout) so the stamp's runner field
        # matches; only the second also resumes from the journal.
        base = ["fig10", "--scale", "0.1", "--workloads", "kmeans",
                "--threads", "1", "4", "--timeout", "120"]
        assert main(base + ["--stamp-json", str(ref)]) == 0
        capsys.readouterr()
        # Interrupted run: only part of the grid reached the journal.
        assert main(["stamp", "kmeans", "sequential", "--scale", "0.1",
                     "--resume", journal]) == 0
        capsys.readouterr()
        assert main(base + ["--stamp-json", str(out), "--resume", journal]) == 0
        assert "from journal" in capsys.readouterr().err
        assert ref.read_bytes() == out.read_bytes()
