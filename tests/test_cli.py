"""The command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kmeans" in out and "ROCoCoTM" in out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "m=512,k=4" in out

    def test_fig9_small(self, capsys):
        assert main(["fig9", "--threads", "4", "--seeds", "2", "--txns", "40"]) == 0
        out = capsys.readouterr().out
        assert "ROCoCo" in out and "collision" in out

    def test_fig10_small(self, capsys):
        assert (
            main(
                [
                    "fig10",
                    "--scale", "0.2",
                    "--threads", "1", "4",
                    "--workloads", "ssca2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Figure 10 - ssca2" in out
        assert "Geomean" in out

    def test_fig11_small(self, capsys):
        assert main(["fig11", "--threads", "4", "--scale", "0.2",
                     "--workloads", "kmeans"]) == 0
        out = capsys.readouterr().out
        assert "validation overhead" in out

    def test_resources(self, capsys):
        assert main(["resources", "--window", "64", "--bits", "512"]) == 0
        out = capsys.readouterr().out
        assert "249442" in out and "200 MHz" in out

    def test_stamp_run(self, capsys):
        assert main(["stamp", "ssca2", "ROCoCoTM", "--threads", "4",
                     "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "ssca2/ROCoCoTM@4t" in out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["stamp", "ssca2", "NotATm"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
