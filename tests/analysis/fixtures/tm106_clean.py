"""Clean twin of tm106_bad: reads buffer, commit installs."""


class BufferedBackend:
    def __init__(self, memory):
        self.memory = memory
        self.writes = {}

    def read(self, tid, addr, now):
        if addr in self.writes:
            return self.writes[addr], now
        return self.memory.load(addr), now

    def write(self, tid, addr, value, now):
        self.writes[addr] = value
        return now

    def commit(self, tid, now):
        for addr in sorted(self.writes):
            self.memory.store(addr, self.writes[addr])  # commit path
        self.writes.clear()
        return now
