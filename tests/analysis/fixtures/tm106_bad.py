"""Seeded TM106 violations: stores reachable from a backend's read
path, both directly and through a self-call chain."""


class EagerBackend:
    def __init__(self, memory):
        self.memory = memory

    def read(self, tid, addr, now):
        value = self.memory.load(addr)
        self.memory.store(addr, value)  # direct store on the read path
        self._refresh(addr)
        return value, now

    def _refresh(self, addr):
        self.memory.store(addr, 0)  # reachable from read via self-call

    def write(self, tid, addr, value, now):
        self._stash(addr, value)
        return now

    def _stash(self, addr, value):
        # Only reachable from write: legal (write-through designs).
        self.memory.store(addr, value)
