"""Seeded TM101 violations: every ambient-entropy shape, outside the
TM001 directories (this fixture's path has no core/hw/cc/faults part)."""

import os
import secrets  # entropy import
import time  # wall-clock import
import uuid


def fresh_nonce():
    return os.urandom(8)  # kernel entropy


def now_ns():
    return time.time_ns()  # wall-clock read


def mint_id():
    return uuid.uuid4()  # urandom-backed uuid


def token():
    return secrets.token_hex(4)


def address_order(xs):
    return sorted(xs, key=id)  # allocation-address ordering
