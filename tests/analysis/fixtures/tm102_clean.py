"""Clean twin of tm102_bad: order-free consumption and sorted escapes."""


def publish_all(bus, make_event):
    pending = {1, 2, 3}
    for item in sorted(pending):  # fixed order
        bus.emit(make_event(item))


def freeze(tags):
    seen = set(tags)
    return sorted(seen)


def total(xs):
    seen = set(xs)
    return sum(seen)  # commutative: order-free


def reach(seeds, graph):
    # Worklist exemption: `stack` is popped by this same scope, so
    # appends from set iteration impose no order on anything lasting.
    frontier = set(seeds)
    stack = []
    for seed in frontier:
        stack.append(seed)
    visited = set()
    while stack:
        node = stack.pop()
        if node not in visited:
            visited.add(node)
    return len(visited)
