"""Seeded TM102 violations: set iteration order leaking into ordered
protocol surfaces."""


def publish_all(bus, make_event):
    pending = {1, 2, 3}
    for item in pending:  # hash order into the event stream
        bus.emit(make_event(item))


def freeze(tags):
    seen = set(tags)
    return list(seen)  # materializes hash order


def shout(tags):
    seen = {t for t in tags}
    return [t.upper() for t in seen]  # comprehension freezes hash order


def cache_key(parts):
    names = frozenset(parts)
    return ",".join(names)  # hash order into a cache key
