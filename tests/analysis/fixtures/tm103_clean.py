"""Clean twin of tm103_bad: declared kinds, exact payloads, declared
field reads — plus a KINDS constant from a different vocabulary."""

from repro.runtime.events import SimEvent


def emit_ok(bus):
    if bus.wants("commit"):
        bus.emit(SimEvent("commit", tid=1, time=5.0))


def install(bus, fn):
    bus.subscribe(fn, kinds=("failover", "failback"))


def publish_fault(bus):
    bus.emit(
        SimEvent(
            "fault", tid=-1, time=0.0,
            data={"kind": "detector-drop", "count": 3},
        )
    )


# Not bus kinds at all (the sanitizer's violation vocabulary): a KINDS
# constant sharing no vocabulary with the registry is out of scope.
VIOLATION_KINDS = ("opacity", "lost-update")


def consume(event):
    data = event.data
    return data["mode"], data.get("timeouts")
