"""Seeded TM105 violations: poking Memory internals from outside
runtime/memory.py."""


def silent_store(memory, addr, value):
    memory._cells[addr] = value  # no observer sees this store


def rewind(memory):
    memory._brk = 0  # corrupts the bump allocator


def spy(memory):
    return memory._observers  # subverts subscription semantics
