"""Seeded TM103 violations: typo'd kinds, malformed payloads, and an
undeclared payload-field read."""

from repro.runtime.events import SimEvent


def emit_typo(bus):
    bus.emit(SimEvent("validated", tid=0, time=0.0))  # kind typo


def guard(bus):
    return bus.wants("comit")  # permanently-False guard


def install(bus, fn):
    bus.subscribe(fn, kinds=("commit", "abrt"))  # dead subscription


BASE_KINDS = ("commit", "abort", "valdiate")  # typo in a KINDS constant


def publish_fault(bus):
    # 'fault' requires {kind, count}; 'count' is missing.
    bus.emit(SimEvent("fault", tid=-1, time=0.0, data={"kind": "drop"}))


def consume(event):
    return event.data["n_reads"]  # declared field is 'n_read'
