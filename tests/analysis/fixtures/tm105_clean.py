"""Clean twin of tm105_bad: the public Memory protocol."""


def observed_store(memory, addr, value):
    memory.store(addr, value)


def heap_size(memory):
    return memory.allocated


def watch(memory, observer):
    memory.subscribe(observer)
    return memory.load(0)
