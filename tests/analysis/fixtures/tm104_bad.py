"""Seeded TM104 violations: typo'd, wrong-instrument, and unattributable
metric names."""


def record(reg, cause):
    reg.count("txn.comits")  # typo'd counter
    reg.gauge("hw.validation_ns", 5)  # declared as a histogram
    reg.observe(f"txn.retry.{cause}", 1.0)  # undeclared dynamic family
    reg.count(f"{cause}.aborts")  # no constant family prefix at all
