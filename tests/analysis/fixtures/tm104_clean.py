"""Clean twin of tm104_bad: declared names, declared families, and
non-registry receivers that must not be confused for metric calls."""


def record(reg, cause):
    reg.count("txn.commits")
    reg.count(f"txn.aborts.{cause}")  # declared dynamic family
    reg.observe("hw.validation_ns", 12.0)
    reg.gauge("hw.window_resident", 4)


def tally(metrics):
    metrics.count("fault.detector-drop")  # concrete name in a family


def popcount(x):
    return bin(x).count("1")  # str.count, not a metrics receiver


def vowels(text):
    return text.count("a")
