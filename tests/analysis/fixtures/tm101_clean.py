"""Clean twin of tm101_bad: deterministic spellings of the same needs."""

import uuid
from random import Random

NAMESPACE = uuid.UUID("12345678-1234-5678-1234-567812345678")


def make_rng(seed):
    return Random(seed)


def mint_id(label):
    return uuid.uuid5(NAMESPACE, label)  # content hash: deterministic


def stable_order(xs):
    return sorted(xs, key=lambda x: x.key)


def not_the_module(random):
    # parameter named `random` shadows nothing: the module is never
    # imported here, so attribute reads on it are not module reads.
    return random.random()
