"""Each TM101+ rule proven on a seeded fixture and its clean twin.

The bad fixture pins true positives (the rule fires, with the right
count and wording); the clean twin pins the false-positive guards
(order-free consumption, worklists, foreign vocabularies, non-registry
receivers).
"""

from pathlib import Path

from repro.analysis import analyze_paths, parse_rules

FIXTURES = Path(__file__).parent / "fixtures"


def run(name, rules):
    findings, _ = analyze_paths([FIXTURES / name], parse_rules(rules))
    return findings


def codes(findings):
    return sorted({f.rule for f in findings})


class TestTM101AmbientEntropy:
    def test_bad(self):
        findings = run("tm101_bad.py", "TM101")
        assert codes(findings) == ["TM101"]
        # secrets import, time import, os.urandom, time.time_ns,
        # uuid.uuid4, sorted(key=id)
        assert len(findings) == 6
        messages = "\n".join(f.message for f in findings)
        assert "os.urandom" in messages
        assert "uuid.uuid4" in messages
        assert "id()" in messages

    def test_clean_twin(self):
        assert run("tm101_clean.py", "TM101") == []


class TestTM102UnorderedIteration:
    def test_bad(self):
        findings = run("tm102_bad.py", "TM102")
        assert codes(findings) == ["TM102"]
        # for-loop into emit, list(), list-comp, join
        assert len(findings) == 4
        messages = "\n".join(f.message for f in findings)
        assert "emit" in messages
        assert "join" in messages

    def test_clean_twin(self):
        assert run("tm102_clean.py", "TM102") == []


class TestTM103EventSchema:
    def test_bad(self):
        findings = run("tm103_bad.py", "TM103")
        assert codes(findings) == ["TM103"]
        # kind typo, wants typo, subscribe typo, KINDS-constant typo,
        # payload mismatch, undeclared field read
        assert len(findings) == 6
        messages = "\n".join(f.message for f in findings)
        assert "'validated'" in messages
        assert "missing count" in messages
        assert "'n_reads'" in messages

    def test_clean_twin(self):
        assert run("tm103_clean.py", "TM103") == []


class TestTM104MetricSchema:
    def test_bad(self):
        findings = run("tm104_bad.py", "TM104")
        assert codes(findings) == ["TM104"]
        assert len(findings) == 4
        messages = "\n".join(f.message for f in findings)
        assert "txn.comits" in messages
        assert "histogram" in messages
        assert "txn.retry." in messages

    def test_clean_twin(self):
        assert run("tm104_clean.py", "TM104") == []


class TestTM105MemoryInternals:
    def test_bad(self):
        findings = run("tm105_bad.py", "TM105")
        assert codes(findings) == ["TM105"]
        internals = {f.message.split("'")[1] for f in findings}
        assert internals == {"_cells", "_brk", "_observers"}

    def test_clean_twin(self):
        assert run("tm105_clean.py", "TM105") == []

    def test_memory_module_itself_exempt(self):
        root = Path(__file__).resolve().parents[2]
        memory = root / "src" / "repro" / "runtime" / "memory.py"
        assert run(memory, "TM105") == []


class TestTM106ReadPathStores:
    def test_bad(self):
        findings = run("tm106_bad.py", "TM106")
        assert codes(findings) == ["TM106"]
        # the direct store in read() and the one behind _refresh();
        # _stash (write path only) must not fire.
        assert len(findings) == 2
        methods = {f.message.split(" ")[0] for f in findings}
        assert methods == {"EagerBackend.read", "EagerBackend._refresh"}

    def test_clean_twin(self):
        assert run("tm106_clean.py", "TM106") == []
