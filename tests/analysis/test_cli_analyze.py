"""The `repro analyze` command and the deprecated `repro lint` alias."""

import json
from pathlib import Path

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

SEEDED = "import secrets\n\nTOKEN = secrets.token_hex(4)\n"


class TestAnalyzeCli:
    def test_src_is_clean(self, capsys):
        assert main(["analyze", str(SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_violation_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text(SEEDED)
        assert main(["analyze", str(bad)]) == 1
        assert "TM101" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text(SEEDED)
        assert main(["analyze", str(bad), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["files"] == 1
        assert {f["rule"] for f in report["findings"]} == {"TM101"}
        assert report["baselined"] == []

    def test_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text(SEEDED)
        assert main(["analyze", str(bad), "--rules", "TM102"]) == 0
        capsys.readouterr()

    def test_bad_rules_exit_two(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path), "--rules", "TM999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_update_baseline_then_pass(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "mod.py"
        bad.write_text(SEEDED)
        assert main(["analyze", str(bad), "--update-baseline"]) == 0
        assert (tmp_path / "analysis-baseline.json").is_file()
        capsys.readouterr()

        # Baselined debt tolerated (default baseline found in CWD)...
        assert main(["analyze", str(bad)]) == 0
        assert "baselined" in capsys.readouterr().out
        # ...but --no-baseline surfaces it again.
        assert main(["analyze", str(bad), "--no-baseline"]) == 1

    def test_explicit_baseline_missing_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text(SEEDED)
        assert main(
            ["analyze", str(bad), "--baseline", str(tmp_path / "nope.json")]
        ) == 2
        capsys.readouterr()


class TestLintAlias:
    def test_warns_and_stays_compatible(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        captured = capsys.readouterr()
        assert "0 lint error(s)" in captured.out
        assert "deprecated" in captured.err

    def test_legacy_rules_only(self, tmp_path, capsys):
        # TM101-only material (entropy outside the TM001 directories)
        # must NOT fail the legacy alias.
        bad = tmp_path / "mod.py"
        bad.write_text(SEEDED)
        assert main(["lint", str(bad)]) == 0
        capsys.readouterr()

    def test_tm001_still_fires(self, tmp_path, capsys):
        bad = tmp_path / "cc" / "entropy.py"
        bad.parent.mkdir()
        bad.write_text("import time\nNOW = time.time()\n")
        assert main(["lint", str(bad)]) == 1
        assert "TM001" in capsys.readouterr().out
