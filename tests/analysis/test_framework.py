"""Framework behaviors: rule selection, suppressions, the baseline
round trip, the fingerprint cache, and the registry contracts the
runtime asserts on."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    analyze_paths,
    analyze_paths_cached,
    analyze_source,
    apply_baseline,
    baseline_from,
    parse_rules,
    suppressed_rules,
)
from repro.analysis import registry
from repro.analysis.framework import RULE_IDS

REPO = Path(__file__).resolve().parents[2]

BAD_ENTROPY = "import secrets\n\nTOKEN = secrets.token_hex(4)\n"


class TestRuleSelection:
    def test_range_expands(self):
        assert parse_rules("TM001-TM004") == {
            "TM001", "TM002", "TM003", "TM004",
        }

    def test_combo(self):
        assert parse_rules("TM101, TM103-TM104") == {
            "TM101", "TM103", "TM104",
        }

    def test_all_is_none(self):
        assert parse_rules(None) is None
        assert parse_rules("all") is None

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            parse_rules("TM999")

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            parse_rules("TM001-banana")

    def test_catalogue_is_complete(self):
        assert RULE_IDS == (
            "TM000", "TM001", "TM002", "TM003", "TM004",
            "TM101", "TM102", "TM103", "TM104", "TM105", "TM106",
        )


class TestSuppressions:
    def test_syntax_error_is_tm000(self):
        findings = analyze_source("def broken(:\n", "x.py")
        assert [f.rule for f in findings] == ["TM000"]

    def test_targeted_suppression(self):
        source = "import secrets  # tm: ignore[TM101]\n"
        assert analyze_source(source, "x.py") == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = "import secrets  # tm: ignore[TM102]\n"
        assert [f.rule for f in analyze_source(source, "x.py")] == ["TM101"]

    def test_bare_ignore_suppresses_all(self):
        assert analyze_source("import secrets  # tm: ignore\n", "x.py") == []

    def test_legacy_marker_honored(self):
        source = "import secrets  # tm-lint: ignore\n"
        assert analyze_source(source, "x.py") == []

    def test_parser(self):
        assert suppressed_rules("x = 1") is None
        assert suppressed_rules("x  # tm: ignore") == set()
        assert suppressed_rules("x  # tm: ignore[TM101, TM102]") == {
            "TM101", "TM102",
        }


class TestBaseline:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(BAD_ENTROPY)
        findings, _ = analyze_paths([target])
        assert len(findings) == 1  # the secrets import

        baseline_file = tmp_path / "baseline.json"
        baseline_from(findings).dump(baseline_file)
        reloaded = Baseline.load(baseline_file)
        new, baselined = apply_baseline(findings, reloaded)
        assert new == [] and len(baselined) == 1

    def test_baseline_survives_line_shifts(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(BAD_ENTROPY)
        findings, _ = analyze_paths([target])
        baseline = baseline_from(findings)

        # Unrelated edits above the finding must not resurrect it.
        target.write_text("X = 1\nY = 2\n" + BAD_ENTROPY)
        findings, _ = analyze_paths([target])
        new, baselined = apply_baseline(findings, baseline)
        assert new == [] and len(baselined) == 1

    def test_second_identical_violation_is_new(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(BAD_ENTROPY)
        baseline = baseline_from(analyze_paths([target])[0])

        # A *new* copy of a baselined line still fails: entries are a
        # multiset consumed one-for-one, even when the source context
        # is byte-identical.
        target.write_text(BAD_ENTROPY + "import secrets\n")
        findings, _ = analyze_paths([target])
        new, baselined = apply_baseline(findings, baseline)
        assert len(baselined) == 1 and len(new) == 1

    def test_version_check(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(bad)


class TestResultCache:
    def test_warm_run_hits(self, tmp_path):
        target = REPO / "src" / "repro" / "txlib"
        cache = tmp_path / "cache.json"
        cold, files, hit = analyze_paths_cached([target], cache_path=cache)
        assert not hit and files > 0
        warm, warm_files, warm_hit = analyze_paths_cached(
            [target], cache_path=cache
        )
        assert warm_hit and warm_files == files and warm == cold

    def test_paths_outside_package_bypass(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("X = 1\n")
        cache = tmp_path / "cache.json"
        _, _, hit = analyze_paths_cached([target], cache_path=cache)
        assert not hit
        _, _, hit = analyze_paths_cached([target], cache_path=cache)
        assert not hit  # fingerprint does not cover tmp_path: never cached

    def test_rule_selection_keys_cache(self, tmp_path):
        target = REPO / "src" / "repro" / "txlib"
        cache = tmp_path / "cache.json"
        analyze_paths_cached([target], {"TM101"}, cache_path=cache)
        _, _, hit = analyze_paths_cached([target], {"TM102"}, cache_path=cache)
        assert not hit


class TestRepoIsClean:
    def test_src_analyzes_clean(self):
        findings, files = analyze_paths([REPO / "src" / "repro"])
        assert findings == []
        assert files > 100


class TestRegistryContracts:
    def test_event_kinds_shared_with_runtime(self):
        from repro.runtime.events import EVENT_KINDS

        assert EVENT_KINDS is registry.EVENT_KINDS

    def test_check_event(self):
        assert registry.check_event("commit", None) is None
        assert registry.check_event(
            "fault", {"kind": "x", "count": 1}
        ) is None
        assert "undeclared" in registry.check_event("nope", None)
        assert "requires a data payload" in registry.check_event(
            "validate", None
        )
        assert "does not carry" in registry.check_event("commit", {"x": 1})
        assert "missing count" in registry.check_event("fault", {"kind": "x"})

    def test_check_metric(self):
        assert registry.check_metric("txn.commits", registry.COUNTER) is None
        assert registry.check_metric(
            "txn.aborts.fpga-cycle", registry.COUNTER
        ) is None
        assert "undeclared" in registry.check_metric(
            "txn.nope", registry.COUNTER
        )
        assert "histogram" in registry.check_metric(
            "hw.validation_ns", registry.GAUGE
        )

    def test_emit_asserts_on_contract_breach(self):
        from repro.runtime.events import EventBus, SimEvent

        bus = EventBus()
        bus.emit(SimEvent("commit", tid=0, time=0.0))  # fine
        with pytest.raises(AssertionError):
            bus.emit(SimEvent("comit", tid=0, time=0.0))
        with pytest.raises(AssertionError):
            bus.emit(SimEvent("commit", tid=0, time=0.0, data={"x": 1}))
        with pytest.raises(AssertionError):
            bus.emit(SimEvent("fault", tid=-1, time=0.0, data={"kind": "x"}))
