"""The sweep journal: durability, corruption tolerance, provenance."""

import json

from repro.exec import ExperimentSpec, SweepJournal, sweep_key
from repro.exec.cache import code_fingerprint

SPECS = [
    ExperimentSpec("kmeans", "TinySTM", 2, scale=0.2, seed=1),
    ExperimentSpec("ssca2", "ROCoCoTM", 2, scale=0.2, seed=1),
]
HASHES = [spec.content_hash() for spec in SPECS]


def _stats_dict(spec):
    return spec.execute().to_dict()


class TestRoundTrip:
    def test_result_round_trip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(str(path))
        journal.start(HASHES)
        stats = _stats_dict(SPECS[0])
        journal.record_result(HASHES[0], stats)
        journal.record_quarantine(HASHES[1], {"attempts": 3, "failures": []})
        journal.close()

        state = SweepJournal(str(path)).load()
        assert not state.stale
        assert state.results == {HASHES[0]: stats}
        assert state.quarantined == {HASHES[1]: {"attempts": 3, "failures": []}}
        assert state.corrupt == []

    def test_resume_appends(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(str(path))
        journal.start(HASHES)
        journal.record_result(HASHES[0], _stats_dict(SPECS[0]))
        journal.close()

        again = SweepJournal(str(path))
        state = again.start(HASHES)
        assert HASHES[0] in state.results  # served, not re-run
        again.record_result(HASHES[1], _stats_dict(SPECS[1]))
        again.close()
        final = SweepJournal(str(path)).load()
        assert set(final.results) == set(HASHES)

    def test_no_resume_truncates(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(str(path))
        journal.start(HASHES)
        journal.record_result(HASHES[0], _stats_dict(SPECS[0]))
        journal.close()
        state = SweepJournal(str(path)).start(HASHES, resume=False)
        assert state.results == {}
        assert SweepJournal(str(path)).load().results == {}


class TestCorruption:
    """Corrupt or truncated entries are tolerated on load — reported
    in ``state.corrupt``, never raised — and only the affected cell
    loses its entry."""

    def test_torn_tail_is_skipped_and_healed(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(str(path))
        journal.start(HASHES)
        journal.record_result(HASHES[0], _stats_dict(SPECS[0]))
        # Crash mid-write: half a record, no newline.
        journal.record_torn_result(HASHES[1], _stats_dict(SPECS[1]))
        journal.close()

        state = SweepJournal(str(path)).load()
        assert state.results.keys() == {HASHES[0]}
        assert len(state.corrupt) == 1

        # Healing: appending after the torn tail starts a fresh line,
        # so the new record survives the next load.
        again = SweepJournal(str(path))
        again.start(HASHES)
        again.record_result(HASHES[1], _stats_dict(SPECS[1]))
        again.close()
        healed = SweepJournal(str(path)).load()
        assert set(healed.results) == set(HASHES)
        assert len(healed.corrupt) == 1  # the debris is still skipped

    def test_bitflip_fails_crc(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(str(path))
        journal.start(HASHES)
        stats = _stats_dict(SPECS[0])
        journal.record_result(HASHES[0], stats)
        journal.close()

        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a digit inside the stats payload of the result line.
        record = json.loads(lines[1])
        record["stats"]["makespan_ns"] = record["stats"]["makespan_ns"] + 1
        lines[1] = (
            json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
            + b"\n"
        )
        path.write_bytes(b"".join(lines))

        state = SweepJournal(str(path)).load()
        assert state.results == {}
        assert any("checksum" in note for note in state.corrupt)

    def test_garbage_lines_never_crash(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(str(path))
        journal.start(HASHES)
        journal.record_result(HASHES[0], _stats_dict(SPECS[0]))
        journal.close()
        with open(path, "ab") as sink:
            sink.write(b"\x00\xffnot json\n")
            sink.write(b'[1, 2, 3]\n')
            sink.write(b'{"type": "martian", "crc": "00"}\n')
        state = SweepJournal(str(path)).load()
        assert state.results.keys() == {HASHES[0]}
        assert len(state.corrupt) == 3


class TestProvenance:
    def test_foreign_fingerprint_discards_everything(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(str(path))
        journal.start(HASHES, fingerprint="code-at-rev-A")
        journal.record_result(HASHES[0], _stats_dict(SPECS[0]))
        journal.close()
        state = SweepJournal(str(path)).load(fingerprint="code-at-rev-B")
        assert state.stale
        assert state.results == {}

    def test_current_fingerprint_is_the_default(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(str(path))
        state = journal.start(HASHES)
        journal.close()
        assert state.header["fingerprint"] == code_fingerprint()
        assert state.header["sweep_key"] == sweep_key(HASHES, code_fingerprint())

    def test_missing_file_starts_fresh(self, tmp_path):
        state = SweepJournal(str(tmp_path / "absent.jsonl")).load()
        assert state.stale
        assert state.results == {}
