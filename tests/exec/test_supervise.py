"""SupervisedRunner: crash paths, deadlines, quarantine, resume.

The acceptance bar for the robustness layer: a sweep survives
SIGKILLed workers, hung workers, garbage output and torn journal
writes, and a killed-and-resumed sweep is *bit-identical* to an
uninterrupted one.
"""

import multiprocessing

import pytest

from repro.exec import (
    ExperimentSpec,
    SerialRunner,
    SupervisedRunner,
    SupervisorPolicy,
    SweepJournal,
)
from repro.exec.cache import ResultCache
from repro.faults import WorkerFaultPlan

MINI_GRID = [
    ExperimentSpec(workload, backend, n_threads, scale=0.2, seed=1)
    for workload in ("kmeans", "ssca2")
    for backend, n_threads in (
        ("sequential", 1),
        ("TinySTM", 2),
        ("ROCoCoTM", 2),
    )
]

#: generous per-cell deadline for tests that must never hit it.
SLACK = SupervisorPolicy(timeout_s=120.0)

needs_processes = pytest.mark.skipif(
    not multiprocessing.get_all_start_methods(),
    reason="no multiprocessing start method",
)


def _dicts(stats_list):
    return [stats.to_dict() for stats in stats_list]


class TestBitIdentity:
    @needs_processes
    def test_supervised_identical_to_serial(self):
        serial = SerialRunner().run(MINI_GRID)
        supervised = SupervisedRunner(max_workers=2, policy=SLACK).run(MINI_GRID)
        assert _dicts(supervised) == _dicts(serial)

    def test_in_process_identical_to_serial(self):
        supervised = SupervisedRunner(in_process=True).run(MINI_GRID)
        assert _dicts(supervised) == _dicts(SerialRunner().run(MINI_GRID))


class TestCrashRecovery:
    @needs_processes
    def test_sigkilled_worker_is_retried(self):
        """A worker SIGKILLs itself mid-sweep; the supervisor detects
        the silent death, retries the cell, and the sweep's results
        are unaffected."""
        specs = MINI_GRID[:3]
        plan = WorkerFaultPlan.parse("crash@1:0")
        runner = SupervisedRunner(max_workers=2, policy=SLACK, worker_faults=plan)
        results = runner.run(specs)
        assert _dicts(results) == _dicts(SerialRunner().run(specs))
        counters = runner.metrics.snapshot()["counters"]
        assert counters["runner.failures.crash"] == 1
        assert counters["runner.retries"] == 1
        assert counters["runner.cells"] == len(specs)

    @needs_processes
    def test_garbage_output_is_detected_and_retried(self):
        specs = MINI_GRID[1:3]
        plan = WorkerFaultPlan.parse("garbage@0:0")
        runner = SupervisedRunner(max_workers=2, policy=SLACK, worker_faults=plan)
        results = runner.run(specs)
        assert _dicts(results) == _dicts(SerialRunner().run(specs))
        counters = runner.metrics.snapshot()["counters"]
        assert counters["runner.failures.garbage-output"] == 1

    @needs_processes
    def test_retry_markers_on_supervisor_lane(self):
        plan = WorkerFaultPlan.parse("crash@0:0")
        runner = SupervisedRunner(max_workers=1, policy=SLACK, worker_faults=plan)
        runner.run(MINI_GRID[1:2])
        retry = [m for m in runner.markers if m.name.startswith("retry:")]
        assert len(retry) == 1
        assert retry[0].lane == "supervisor"
        assert retry[0].args["kind"] == "crash"


class TestHangDetection:
    @needs_processes
    def test_deadline_expiry_kills_and_retries(self):
        """A hung worker (no heartbeats configured) is killed at the
        per-cell deadline and the cell recovered on retry."""
        policy = SupervisorPolicy(timeout_s=1.0, heartbeat_s=None, max_retries=1)
        plan = WorkerFaultPlan.parse("hang@0:0")
        runner = SupervisedRunner(max_workers=1, policy=policy, worker_faults=plan)
        results = runner.run(MINI_GRID[1:2])
        assert _dicts(results) == _dicts(SerialRunner().run(MINI_GRID[1:2]))
        counters = runner.metrics.snapshot()["counters"]
        assert counters["runner.timeouts"] == 1
        assert counters["runner.failures.timeout"] == 1

    @needs_processes
    def test_heartbeat_staleness_beats_the_deadline(self):
        """With heartbeats on, a silent worker is caught by staleness
        long before a (here: generous) deadline would fire."""
        policy = SupervisorPolicy(
            timeout_s=120.0, heartbeat_s=0.1, heartbeat_misses=5, max_retries=1
        )
        plan = WorkerFaultPlan.parse("hang@0:0")
        runner = SupervisedRunner(max_workers=1, policy=policy, worker_faults=plan)
        results = runner.run(MINI_GRID[1:2])
        assert results[0] is not None
        counters = runner.metrics.snapshot()["counters"]
        assert counters["runner.failures.hang"] == 1
        assert "runner.timeouts" not in counters


class TestQuarantine:
    def test_poison_cell_is_quarantined_not_fatal(self, tmp_path):
        """A cell that fails every attempt is recorded with
        diagnostics and skipped; the rest of the sweep completes."""
        specs = MINI_GRID[1:3]
        plan = WorkerFaultPlan.parse("crash@0")  # every attempt
        policy = SupervisorPolicy(max_retries=1, backoff_base_s=0.0)
        journal = tmp_path / "sweep.jsonl"
        runner = SupervisedRunner(
            in_process=True, policy=policy, worker_faults=plan,
            journal=str(journal),
        )
        results = runner.run(specs)
        assert results[0] is None
        assert results[1] is not None
        diag = runner.quarantined[0]
        assert diag["attempts"] == 2
        assert [f["kind"] for f in diag["failures"]] == ["crash", "crash"]
        assert diag["spec"]["workload"] == specs[0].workload
        counters = runner.metrics.snapshot()["counters"]
        assert counters["runner.quarantined"] == 1

    def test_quarantine_is_sticky_across_resume(self, tmp_path):
        specs = MINI_GRID[1:3]
        journal = tmp_path / "sweep.jsonl"
        plan = WorkerFaultPlan.parse("crash@0")
        policy = SupervisorPolicy(max_retries=0, backoff_base_s=0.0)
        SupervisedRunner(
            in_process=True, policy=policy, worker_faults=plan,
            journal=str(journal),
        ).run(specs)
        # Resume without the fault plan: the poison verdict is served
        # from the journal, not retried.
        again = SupervisedRunner(in_process=True, journal=str(journal))
        results = again.run(specs)
        assert results[0] is None and 0 in again.quarantined
        assert again.journal_hits == 1  # the healthy cell
        counters = again.metrics.snapshot()["counters"]
        assert "runner.cells" not in counters  # nothing re-executed

    def test_backoff_is_deterministic(self):
        policy = SupervisorPolicy(seed=9)
        spec_hash = MINI_GRID[0].content_hash()
        series = [policy.backoff_s(spec_hash, attempt) for attempt in range(4)]
        assert series == [policy.backoff_s(spec_hash, a) for a in range(4)]
        assert all(0 < b <= policy.backoff_cap_s for b in series)
        other = SupervisorPolicy(seed=10)
        assert series != [other.backoff_s(spec_hash, a) for a in range(4)]


class TestResume:
    def test_killed_sweep_resumes_bit_identically(self, tmp_path):
        """The acceptance criterion: a sweep interrupted after some
        completed cells, resumed from its journal, yields results
        bit-identical to an uninterrupted serial run — with the
        completed cells served from the journal, not re-executed."""
        journal = tmp_path / "sweep.jsonl"
        serial = SerialRunner().run(MINI_GRID)

        # "Kill" after three cells: a first supervised run that only
        # ever saw the prefix (the journal is what a SIGKILLed full
        # run would have left behind — same records, same file).
        first = SupervisedRunner(in_process=True, journal=str(journal))
        first.run(MINI_GRID[:3])

        resumed = SupervisedRunner(in_process=True, journal=str(journal))
        results = resumed.run(MINI_GRID)
        assert _dicts(results) == _dicts(serial)
        assert resumed.journal_hits == 3
        counters = resumed.metrics.snapshot()["counters"]
        assert counters["runner.journal_hits"] == 3
        assert counters["runner.cells"] == len(MINI_GRID) - 3

    def test_partial_write_fault_is_tolerated_on_resume(self, tmp_path):
        """A torn journal record (crash mid-write) costs exactly one
        re-execution — never a crash, never a poisoned neighbor."""
        specs = MINI_GRID[1:3]
        journal = tmp_path / "sweep.jsonl"
        plan = WorkerFaultPlan.parse("partial-write@0:0")
        policy = SupervisorPolicy(max_retries=1, backoff_base_s=0.0)
        first = SupervisedRunner(
            in_process=True, policy=policy, worker_faults=plan,
            journal=str(journal),
        )
        first_results = first.run(specs)
        # The torn write failed attempt 0; the retry completed the
        # cell and its record healed the journal tail.
        assert all(stats is not None for stats in first_results)
        counters = first.metrics.snapshot()["counters"]
        assert counters["runner.failures.partial-write"] == 1

        resumed = SupervisedRunner(in_process=True, journal=str(journal))
        results = resumed.run(specs)
        assert _dicts(results) == _dicts(SerialRunner().run(specs))
        counters = resumed.metrics.snapshot()["counters"]
        assert counters["runner.journal_corrupt"] >= 1
        assert resumed.journal_hits == 2

    def test_corrupt_journal_line_never_crashes_the_sweep(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = SupervisedRunner(in_process=True, journal=str(journal))
        first.run(MINI_GRID[:2])
        with open(journal, "ab") as sink:
            sink.write(b'{"type": "result", "spec": "xx", "crc": "bad"}\n')
            sink.write(b"\x00\xff torn garbage")
        resumed = SupervisedRunner(in_process=True, journal=str(journal))
        results = resumed.run(MINI_GRID[:2])
        assert _dicts(results) == _dicts(SerialRunner().run(MINI_GRID[:2]))
        assert resumed.journal_hits == 2

    def test_stale_journal_reexecutes(self, tmp_path):
        """A journal written by different code is discarded wholesale."""
        journal = SweepJournal(str(tmp_path / "sweep.jsonl"))
        hashes = [spec.content_hash() for spec in MINI_GRID[:2]]
        journal.start(hashes, fingerprint="other-code")
        journal.record_result(hashes[0], MINI_GRID[0].execute().to_dict())
        journal.close()
        runner = SupervisedRunner(
            in_process=True, journal=str(tmp_path / "sweep.jsonl")
        )
        results = runner.run(MINI_GRID[:2])
        assert runner.journal_hits == 0
        assert _dicts(results) == _dicts(SerialRunner().run(MINI_GRID[:2]))


class TestCacheInterplay:
    def test_cached_cells_skip_supervision(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        SerialRunner(cache=cache).run(MINI_GRID[:2])
        runner = SupervisedRunner(in_process=True, cache=cache)
        results = runner.run(MINI_GRID[:2])
        assert all(stats is not None for stats in results)
        assert "runner.cells" not in runner.metrics.snapshot()["counters"]

    def test_journal_hits_warm_the_cache(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        SupervisedRunner(in_process=True, journal=str(journal)).run(MINI_GRID[:1])
        cache = ResultCache(str(tmp_path / "cache"))
        runner = SupervisedRunner(
            in_process=True, journal=str(journal), cache=cache
        )
        runner.run(MINI_GRID[:1])
        assert runner.journal_hits == 1
        assert cache.get(MINI_GRID[0]) is not None


class TestStampDeterminism:
    def test_source_date_epoch_pins_the_stamp(self, tmp_path, monkeypatch):
        """With SOURCE_DATE_EPOCH set, two stamps of the same sweep are
        byte-identical regardless of wall clock — the property the CI
        crash-smoke byte comparison rests on."""
        from repro.bench import matrix_from_results
        from repro.exec import write_bench_stamp

        monkeypatch.setenv("SOURCE_DATE_EPOCH", "0")
        specs = MINI_GRID[:3]
        results = SerialRunner().run(specs)
        matrix = matrix_from_results(specs, results)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_bench_stamp(str(a), matrix, specs, 1.23)
        write_bench_stamp(str(b), matrix, specs, 45.6)  # different wall clock
        assert a.read_bytes() == b.read_bytes()
        assert b'"generated_at": "1970-01-01T00:00:00Z"' in a.read_bytes()

    def test_quarantine_diagnostics_ride_in_the_stamp(self, tmp_path):
        from repro.bench import matrix_from_results
        from repro.exec import bench_stamp_payload

        specs = MINI_GRID[1:3]
        plan = WorkerFaultPlan.parse("crash@0")
        policy = SupervisorPolicy(max_retries=0, backoff_base_s=0.0)
        runner = SupervisedRunner(
            in_process=True, policy=policy, worker_faults=plan
        )
        results = runner.run(specs)
        matrix = matrix_from_results(specs, results)
        payload = bench_stamp_payload(matrix, specs, 0.0, runner)
        assert len(payload["quarantined"]) == 1
        assert payload["quarantined"][0]["spec"]["workload"] == specs[0].workload


class TestPartialMatrix:
    def test_matrix_tolerates_quarantined_baseline(self):
        """A missing sequential baseline drops its dependent speedup
        cells instead of crashing the assembly."""
        from repro.bench import matrix_from_results

        specs = MINI_GRID  # kmeans: [seq, TinySTM, ROCoCoTM], then ssca2
        results = SerialRunner().run(specs)
        results = list(results)
        results[0] = None  # quarantine kmeans's sequential baseline
        matrix = matrix_from_results(specs, results)
        assert matrix.workloads() == ["ssca2"]
        assert len(matrix.cells) == 2


class TestWorkerFaultsInProcessMode:
    def test_hang_and_crash_faults_are_immediate_in_process(self):
        """in_process mode cannot preempt a real hang, so the fault
        models degrade to immediate failures — the retry/quarantine
        bookkeeping is still exercised deterministically."""
        specs = MINI_GRID[1:2]
        plan = WorkerFaultPlan.parse("hang@0:0")
        policy = SupervisorPolicy(max_retries=1, backoff_base_s=0.0)
        runner = SupervisedRunner(
            in_process=True, policy=policy, worker_faults=plan
        )
        results = runner.run(specs)
        assert results[0] is not None
        counters = runner.metrics.snapshot()["counters"]
        assert counters["runner.failures.hang"] == 1
