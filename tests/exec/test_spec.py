"""ExperimentSpec: canonical naming, hashing, execution."""

import pytest

from repro.exec import BACKEND_REGISTRY, WORKLOAD_REGISTRY, ExperimentSpec
from repro.runtime import CostModel


class TestRegistries:
    def test_backend_keys_are_backend_names(self):
        for key, factory in BACKEND_REGISTRY.items():
            assert factory.name == key
        assert {"sequential", "TinySTM", "TSX", "ROCoCoTM"} <= set(BACKEND_REGISTRY)

    def test_workload_keys_are_workload_names(self):
        for key, cls in WORKLOAD_REGISTRY.items():
            assert cls.name == key
        assert {"kmeans", "ssca2", "vacation", "genome"} <= set(WORKLOAD_REGISTRY)


class TestValidation:
    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            ExperimentSpec("no-such-app", "TinySTM", 2)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            ExperimentSpec("kmeans", "no-such-tm", 2)

    def test_faults_require_rococotm(self):
        with pytest.raises(ValueError):
            ExperimentSpec("kmeans", "TinySTM", 2, faults="drop")

    def test_unknown_cost_field(self):
        with pytest.raises(ValueError):
            ExperimentSpec("kmeans", "TinySTM", 2, cost_model=(("warp_speed", 2.0),))

    def test_bad_threads_and_scale(self):
        with pytest.raises(ValueError):
            ExperimentSpec("kmeans", "TinySTM", 0)
        with pytest.raises(ValueError):
            ExperimentSpec("kmeans", "TinySTM", 2, scale=0.0)


class TestHashing:
    def test_hash_is_stable(self):
        a = ExperimentSpec("kmeans", "TinySTM", 4, scale=0.25, seed=3)
        b = ExperimentSpec("kmeans", "TinySTM", 4, scale=0.25, seed=3)
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_hash_covers_every_field(self):
        base = ExperimentSpec("kmeans", "ROCoCoTM", 4, scale=0.25, seed=3)
        variants = [
            base.with_(workload="ssca2"),
            base.with_(backend="TinySTM"),
            base.with_(n_threads=8),
            base.with_(scale=0.5),
            base.with_(seed=4),
            base.with_(verify=False),
            base.with_(faults="drop"),
            base.with_(fault_seed=1),
            base.with_(irrevocable_after=6),
            base.with_(cost_model=(("backoff_base_ns", 100.0),)),
        ]
        hashes = {base.content_hash()} | {v.content_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_cost_model_order_canonicalized(self):
        a = ExperimentSpec(
            "kmeans", "TinySTM", 2,
            cost_model=(("smt_penalty", 1.2), ("backoff_base_ns", 80.0)),
        )
        b = ExperimentSpec(
            "kmeans", "TinySTM", 2,
            cost_model=(("backoff_base_ns", 80.0), ("smt_penalty", 1.2)),
        )
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_round_trip(self):
        spec = ExperimentSpec(
            "vacation", "ROCoCoTM", 8, scale=0.3, seed=7,
            faults="mixed", fault_seed=2,
            cost_model=(("physical_cores", 8),),
        )
        assert ExperimentSpec.from_dict(spec.canonical()) == spec


class TestExecution:
    def test_execute_is_deterministic(self):
        spec = ExperimentSpec("kmeans", "TinySTM", 4, scale=0.2, seed=1)
        assert spec.execute().to_dict() == spec.execute().to_dict()

    def test_stats_carry_spec_identity(self):
        spec = ExperimentSpec("ssca2", "ROCoCoTM", 2, scale=0.2, seed=1)
        stats = spec.execute()
        assert stats.workload == "ssca2"
        assert stats.backend == "ROCoCoTM"
        assert stats.n_threads == 2
        assert stats.commits > 0

    def test_cost_model_override_changes_outcome(self):
        base = ExperimentSpec("kmeans", "TinySTM", 28, scale=0.2, seed=1)
        relaxed = base.with_(cost_model=(("smt_penalty", 1.0),))
        assert base.make_cost_model() is None
        assert relaxed.make_cost_model() == CostModel(smt_penalty=1.0)
        # SMT penalty off => 28-thread run gets strictly faster.
        assert relaxed.execute().makespan_ns < base.execute().makespan_ns

    def test_faulted_execution_runs_chaos_backend(self):
        spec = ExperimentSpec(
            "kmeans", "ROCoCoTM", 2, scale=0.2, seed=1,
            faults="drop", fault_seed=0,
        )
        stats = spec.execute()
        assert stats.total_faults_injected > 0

    def test_label(self):
        assert (
            ExperimentSpec("kmeans", "TinySTM", 4, scale=0.2).label()
            == "kmeans/TinySTM@4t"
        )
        assert (
            ExperimentSpec(
                "kmeans", "ROCoCoTM", 4, scale=0.2, faults="stall"
            ).label()
            == "kmeans/ROCoCoTM@4t+stall"
        )
