"""Runners: bit-identity, ordering, cache awareness, fallback."""

import multiprocessing
import os

import pytest

from repro.exec import (
    ExperimentSpec,
    ProcessPoolRunner,
    ResultCache,
    SerialRunner,
    default_runner,
    run_payload,
)

#: the satellite's 2-workload x 2-backend mini-grid (plus per-workload
#: sequential baselines), kept tiny so tier-1 stays fast.
MINI_GRID = [
    ExperimentSpec(workload, backend, n_threads, scale=0.2, seed=1)
    for workload in ("kmeans", "ssca2")
    for backend, n_threads in (
        ("sequential", 1),
        ("TinySTM", 2),
        ("ROCoCoTM", 2),
    )
]


def _dicts(stats_list):
    return [stats.to_dict() for stats in stats_list]


class TestSerialRunner:
    def test_order_matches_input(self):
        results = SerialRunner().run(MINI_GRID)
        assert [(s.workload, s.backend) for s in results] == [
            (spec.workload, spec.backend) for spec in MINI_GRID
        ]

    def test_progress_called_per_cell(self):
        seen = []
        SerialRunner().run(MINI_GRID[:2], progress=seen.append)
        assert len(seen) == 2
        assert "kmeans/sequential@1t" in seen[0]


class TestBitIdentity:
    def test_pool_identical_to_serial_on_mini_grid(self):
        """The tentpole contract: sharding cells across processes
        changes nothing about any cell (each spec owns its RNGs)."""
        serial = SerialRunner().run(MINI_GRID)
        pooled = ProcessPoolRunner(max_workers=2).run(MINI_GRID)
        assert _dicts(serial) == _dicts(pooled)

    def test_run_payload_round_trip(self):
        spec = MINI_GRID[1]
        via_payload = run_payload(spec.canonical())
        assert via_payload == spec.execute().to_dict()


class TestProcessPoolRunner:
    def test_single_spec_stays_in_process(self):
        runner = ProcessPoolRunner(max_workers=4)
        [stats] = runner.run(MINI_GRID[:1])
        assert stats.commits > 0
        assert runner.fallback_reason is None

    def test_one_worker_degrades_to_serial(self):
        runner = ProcessPoolRunner(max_workers=1)
        assert _dicts(runner.run(MINI_GRID[:2])) == _dicts(
            SerialRunner().run(MINI_GRID[:2])
        )

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="speedup is only a contract at >= 4 host cores",
    )
    def test_speedup_at_four_cores(self):
        import time

        grid = [
            ExperimentSpec(workload, backend, n_threads, scale=0.4, seed=1)
            for workload in ("kmeans", "vacation", "ssca2", "genome")
            for backend in ("TinySTM", "ROCoCoTM")
            for n_threads in (4, 8)
        ]
        started = time.perf_counter()
        serial = SerialRunner().run(grid)
        serial_s = time.perf_counter() - started
        started = time.perf_counter()
        pooled = ProcessPoolRunner().run(grid)
        pooled_s = time.perf_counter() - started
        assert _dicts(serial) == _dicts(pooled)
        assert serial_s / pooled_s > 1.5

    def test_cache_short_circuits_pool(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = ProcessPoolRunner(max_workers=2, cache=cache).run(MINI_GRID)
        assert cache.misses == len(MINI_GRID)
        rerun = ProcessPoolRunner(max_workers=2, cache=cache).run(MINI_GRID)
        assert cache.hits == len(MINI_GRID)
        assert _dicts(first) == _dicts(rerun)


class TestDefaultRunner:
    def test_jobs_semantics(self):
        assert isinstance(default_runner(None), SerialRunner)
        assert isinstance(default_runner(1), SerialRunner)
        pool = default_runner(3)
        assert isinstance(pool, ProcessPoolRunner)
        assert pool.max_workers == 3
        sized = default_runner(0)
        assert isinstance(sized, ProcessPoolRunner)
        assert sized.max_workers == multiprocessing.cpu_count()
