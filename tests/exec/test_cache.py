"""ResultCache: content addressing, invalidation, durability."""

import json

from repro.exec import ExperimentSpec, ResultCache, code_fingerprint
from repro.exec.stampfile import write_bench_stamp
from repro.bench import matrix_from_results, matrix_specs
from repro.exec.runner import SerialRunner
from repro.runtime import RunStats

SPEC = ExperimentSpec("kmeans", "TinySTM", 2, scale=0.2, seed=1)


def _stats():
    return RunStats(backend="TinySTM", workload="kmeans", n_threads=2, commits=7)


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get(SPEC) is None
        cache.put(SPEC, _stats())
        got = cache.get(SPEC)
        assert got is not None
        assert got.to_dict() == _stats().to_dict()

    def test_counters_and_hit_rate(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.get(SPEC)
        cache.put(SPEC, _stats())
        cache.get(SPEC)
        cache.get(SPEC)
        assert (cache.hits, cache.misses, cache.lookups) == (2, 1, 3)
        assert cache.hit_rate == 2 / 3
        assert len(cache) == 1

    def test_real_run_round_trips_exactly(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        stats = SPEC.execute()
        cache.put(SPEC, stats)
        assert cache.get(SPEC).to_dict() == stats.to_dict()


class TestInvalidation:
    def test_different_spec_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC, _stats())
        assert cache.get(SPEC.with_(seed=2)) is None

    def test_code_fingerprint_keys_the_entry(self, tmp_path):
        old = ResultCache(str(tmp_path), fingerprint="a" * 64)
        old.put(SPEC, _stats())
        fresh = ResultCache(str(tmp_path), fingerprint="b" * 64)
        assert fresh.get(SPEC) is None  # code changed: entry orphaned
        assert ResultCache(str(tmp_path), fingerprint="a" * 64).get(SPEC) is not None

    def test_fingerprint_is_memoized_and_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC, _stats())
        [path] = tmp_path.glob("*.json")
        path.write_text("{not json")
        assert cache.get(SPEC) is None

    def test_entries_are_self_describing(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC, _stats())
        [path] = tmp_path.glob("*.json")
        entry = json.loads(path.read_text())
        assert entry["spec"] == SPEC.canonical()
        assert entry["fingerprint"] == cache.fingerprint
        assert entry["stats"]["commits"] == 7


class TestBenchStamp:
    def test_write_bench_stamp(self, tmp_path):
        from repro.stamp import KmeansWorkload

        cache = ResultCache(str(tmp_path / "cache"))
        runner = SerialRunner(cache=cache)
        specs = matrix_specs(
            workloads=[KmeansWorkload], threads=(2,), scale=0.2, seed=1
        )
        results = runner.run(specs)
        matrix = matrix_from_results(specs, results)
        out = tmp_path / "BENCH_stamp.json"
        payload = write_bench_stamp(
            str(out), matrix, specs, wall_clock_s=1.25, runner=runner, cache=cache
        )
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        assert on_disk["n_specs"] == len(specs)
        assert on_disk["runner"] == "serial"
        assert on_disk["wall_clock_s"] == 1.25
        assert on_disk["cache"]["misses"] == len(specs)
        assert len(on_disk["cells"]) == len(matrix.cells)
        assert on_disk["specs"][0] == specs[0].canonical()
        assert on_disk["code_fingerprint"] == code_fingerprint()
