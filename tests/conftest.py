"""Shared fixtures: re-export the TM sanitizer's pytest plugin."""

from repro.sanitizer.pytest_plugin import tm_sanitizer  # noqa: F401
