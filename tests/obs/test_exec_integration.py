"""Observability through the exec layer: specs, runners, stamps."""

import json

from repro.exec import (
    ExperimentSpec,
    ProcessPoolRunner,
    ResultCache,
    SerialRunner,
    bench_stamp_payload,
    write_bench_stamp,
)
from repro.bench import matrix_from_results, matrix_specs
from repro.stamp import Ssca2Workload


def obs_specs():
    return [
        ExperimentSpec("ssca2", "ROCoCoTM", nt, scale=0.2, seed=1, obs=True)
        for nt in (1, 2, 4)
    ]


class TestSpecObs:
    def test_execute_attaches_metrics(self):
        spec = ExperimentSpec("ssca2", "ROCoCoTM", 2, scale=0.2, seed=1, obs=True)
        stats = spec.execute()
        assert stats.metrics is not None
        assert stats.metrics["counters"]["txn.commits"] == stats.commits

    def test_obs_off_by_default(self):
        spec = ExperimentSpec("ssca2", "ROCoCoTM", 2, scale=0.2, seed=1)
        assert spec.execute().metrics is None

    def test_obs_changes_content_hash(self):
        base = ExperimentSpec("ssca2", "ROCoCoTM", 2, scale=0.2, seed=1)
        observed = base.with_(obs=True)
        assert base.content_hash() != observed.content_hash()

    def test_obs_does_not_change_outcomes(self):
        base = ExperimentSpec("ssca2", "ROCoCoTM", 2, scale=0.2, seed=1)
        plain = base.execute()
        observed = base.with_(obs=True).execute()
        assert observed.commits == plain.commits
        assert observed.aborts_by_cause == plain.aborts_by_cause
        assert observed.makespan_ns == plain.makespan_ns

    def test_canonical_roundtrip_keeps_obs(self):
        spec = ExperimentSpec("ssca2", "ROCoCoTM", 2, scale=0.2, seed=1, obs=True)
        assert ExperimentSpec.from_dict(spec.canonical()) == spec


class TestRunnerTransport:
    def test_pool_snapshots_bit_identical_to_serial(self):
        specs = obs_specs()
        serial = SerialRunner().run(specs)
        pooled = ProcessPoolRunner(max_workers=2).run(specs)
        for left, right in zip(serial, pooled):
            assert left.metrics is not None
            assert json.dumps(left.metrics, sort_keys=True) == json.dumps(
                right.metrics, sort_keys=True
            )

    def test_cache_roundtrips_metrics(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        [spec] = obs_specs()[:1]
        [fresh] = SerialRunner(cache=cache).run([spec])
        [cached] = SerialRunner(cache=cache).run([spec])
        assert cache.hits == 1
        assert cached.metrics == fresh.metrics


class TestBenchStampMetrics:
    def _payload(self, runner):
        specs = matrix_specs(
            workloads=[Ssca2Workload],
            threads=(1, 2),
            scale=0.2,
            seed=1,
            obs=True,
        )
        results = runner.run(specs)
        matrix = matrix_from_results(specs, results)
        return bench_stamp_payload(matrix, specs, 0.0, results=results)

    def test_stamp_carries_merged_metrics(self):
        payload = self._payload(SerialRunner())
        assert "metrics" in payload
        cells = payload["metrics"]["cells"]
        assert len(cells) == len(payload["specs"])
        merged = payload["metrics"]["merged"]
        total = sum(
            cell["snapshot"]["counters"]["txn.commits"] for cell in cells
        )
        assert merged["counters"]["txn.commits"] == total

    def test_pool_stamp_metrics_identical_to_serial(self):
        serial = self._payload(SerialRunner())["metrics"]
        pooled = self._payload(ProcessPoolRunner(max_workers=2))["metrics"]
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_no_metrics_section_without_obs(self):
        specs = matrix_specs(
            workloads=[Ssca2Workload], threads=(1,), scale=0.2, seed=1
        )
        results = SerialRunner().run(specs)
        matrix = matrix_from_results(specs, results)
        payload = bench_stamp_payload(matrix, specs, 0.0, results=results)
        assert "metrics" not in payload

    def test_write_bench_stamp_passes_results(self, tmp_path):
        specs = matrix_specs(
            workloads=[Ssca2Workload], threads=(1,), scale=0.2, seed=1, obs=True
        )
        results = SerialRunner().run(specs)
        matrix = matrix_from_results(specs, results)
        out = tmp_path / "BENCH_stamp.json"
        write_bench_stamp(str(out), matrix, specs, 0.0, results=results)
        payload = json.loads(out.read_text())
        assert payload["metrics"]["merged"]["counters"]["txn.commits"] > 0
