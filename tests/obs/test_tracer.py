"""The span tracer: lifecycle assembly, nesting, chaos interaction."""

import pytest

from repro.faults import build_chaos_backend
from repro.obs import SpanTracer, observe_stamp
from repro.runtime import CoarseLockBackend, RococoTMBackend
from repro.stamp import KmeansWorkload, VacationWorkload


def spans_by_name(tracer, prefix):
    return [s for s in tracer.spans if s.name.startswith(prefix)]


class TestLifecycleSpans:
    @pytest.fixture(scope="class")
    def observed(self):
        return observe_stamp(
            VacationWorkload, RococoTMBackend(), 4, scale=0.2, seed=1
        )

    def test_one_txn_span_per_outcome(self, observed):
        stats, tracer, _ = observed
        txn_spans = spans_by_name(tracer, "txn:")
        commits = [s for s in txn_spans if s.args.get("outcome") == "commit"]
        aborts = [s for s in txn_spans if s.args.get("outcome") == "abort"]
        assert len(commits) == stats.commits
        assert len(aborts) == stats.aborts
        assert not [s for s in txn_spans if s.args.get("outcome") == "truncated"]

    def test_spans_have_nonnegative_duration(self, observed):
        _, tracer, _ = observed
        for span in tracer.spans:
            assert span.end_ns >= span.start_ns >= 0.0

    def test_children_nest_inside_parents(self, observed):
        _, tracer, _ = observed
        by_id = {s.span_id: s for s in tracer.spans}
        children = [s for s in tracer.spans if s.parent_id is not None]
        assert children, "expected begin/validate children"
        for child in children:
            parent = by_id[child.parent_id]
            assert parent.start_ns <= child.start_ns
            assert child.end_ns <= parent.end_ns
            assert parent.lane == child.lane and parent.pid == child.pid

    def test_every_txn_span_has_a_begin_child(self, observed):
        _, tracer, _ = observed
        txn_ids = {s.span_id for s in spans_by_name(tracer, "txn:")}
        begin_parents = {s.parent_id for s in tracer.spans if s.name == "begin"}
        assert txn_ids <= begin_parents

    def test_validate_children_and_hw_lanes(self, observed):
        stats, tracer, _ = observed
        validates = [s for s in tracer.spans if s.cat == "validate"]
        assert len(validates) == stats.validations
        for stage in ("link-req", "queue", "detector", "manager", "link-resp"):
            stage_spans = [
                s for s in tracer.spans if s.pid == "hw" and s.lane == stage
            ]
            assert len(stage_spans) == stats.validations

    def test_hw_stage_edges_are_contiguous(self, observed):
        """Per request, the five stage spans tile [sent, ready]."""
        _, tracer, _ = observed
        hw = {}
        for span in tracer.spans:
            if span.pid == "hw":
                hw.setdefault(span.args["tid"], []).append(span)
        order = ("link-req", "queue", "detector", "manager", "link-resp")
        validates = sorted(
            (s for s in tracer.spans if s.cat == "validate"),
            key=lambda s: s.start_ns,
        )
        lanes = {
            stage: sorted(
                (s for s in tracer.spans if s.pid == "hw" and s.lane == stage),
                key=lambda s: s.span_id,
            )
            for stage in order
        }
        for index, validate in enumerate(validates):
            chain = [lanes[stage][index] for stage in order]
            # The cpu-side child is clamped to its parent; its args
            # keep the unclamped round trip the hw lanes tile.
            assert chain[0].start_ns == validate.args["sent_ns"]
            assert chain[-1].end_ns == validate.args["ready_ns"]
            for prev, nxt in zip(chain, chain[1:]):
                assert prev.end_ns == nxt.start_ns

    def test_deterministic_span_ids(self):
        first = observe_stamp(
            VacationWorkload, RococoTMBackend(), 4, scale=0.2, seed=1
        )[1]
        second = observe_stamp(
            VacationWorkload, RococoTMBackend(), 4, scale=0.2, seed=1
        )[1]
        assert [
            (s.span_id, s.name, s.start_ns, s.end_ns) for s in first.spans
        ] == [(s.span_id, s.name, s.start_ns, s.end_ns) for s in second.spans]

    def test_detail_off_skips_read_write_markers(self):
        _, tracer, _ = observe_stamp(
            VacationWorkload,
            RococoTMBackend(),
            2,
            scale=0.2,
            seed=1,
            detail=False,
        )
        assert not [m for m in tracer.markers if m.cat == "mem"]


class TestParkSpans:
    def test_lock_contention_produces_parked_spans(self):
        stats, tracer, _ = observe_stamp(
            VacationWorkload, CoarseLockBackend(), 4, scale=0.2, seed=1
        )
        parked = spans_by_name(tracer, "parked:")
        assert parked, "global lock at 4 threads must park someone"
        for span in parked:
            assert span.end_ns >= span.start_ns


class TestChaosInteraction:
    """ISSUE requirement: drops/resets still yield a well-nested trace
    whose counters agree with RunStats."""

    @pytest.fixture(scope="class")
    def observed(self):
        backend = build_chaos_backend("mixed", 0)
        return observe_stamp(
            KmeansWorkload, backend, 4, scale=0.2, seed=1
        )

    def test_trace_is_well_nested_under_faults(self, observed):
        _, tracer, _ = observed
        by_id = {s.span_id: s for s in tracer.spans}
        for child in tracer.spans:
            if child.parent_id is None:
                continue
            parent = by_id[child.parent_id]
            assert parent.start_ns <= child.start_ns <= child.end_ns <= parent.end_ns
        assert not [
            s for s in tracer.spans if s.args.get("outcome") == "truncated"
        ]

    def test_fault_markers_match_injected_counts(self, observed):
        stats, tracer, _ = observed
        marked = {}
        for marker in tracer.markers:
            if marker.cat == "fault":
                kind = marker.name.split(":", 1)[1]
                marked[kind] = marked.get(kind, 0) + marker.args["count"]
        assert marked == dict(stats.faults_injected)

    def test_abort_and_degradation_counters_match_run_stats(self, observed):
        stats, _, registry = observed
        counters = registry.snapshot()["counters"]
        assert counters["txn.aborts"] == stats.aborts
        assert counters.get("ladder.failovers", 0) == stats.failovers
        assert counters.get("ladder.failbacks", 0) == stats.failbacks
        injected = {
            name.split(".", 1)[1]: value
            for name, value in counters.items()
            if name.startswith("fault.")
        }
        assert injected == dict(stats.faults_injected)

    def test_ladder_markers_match_transitions(self):
        from repro.faults import DegradationPolicy, FaultPlan, build_chaos_backend

        backend = build_chaos_backend(
            plan=FaultPlan(seed=3, drop_rate=0.9),
            policy=DegradationPolicy(timeout_ns=4_000.0),
        )
        stats, tracer, _ = observe_stamp(
            VacationWorkload, backend, 2, scale=0.2, seed=1
        )
        failovers = [m for m in tracer.markers if m.name == "failover"]
        failbacks = [m for m in tracer.markers if m.name == "failback"]
        assert stats.failovers > 0
        assert len(failovers) == stats.failovers
        assert len(failbacks) == stats.failbacks


class TestTracerMechanics:
    def test_finish_closes_dangling_spans(self):
        from repro.runtime.events import EventBus, SimEvent

        bus = EventBus()
        tracer = SpanTracer()
        tracer.install(bus)
        bus.emit(SimEvent("begin", 0, 10.0, label="t", attempt_index=1, start=8.0))
        bus.emit(SimEvent("park", 0, 12.0, cause="begin"))
        tracer.finish()
        outcomes = {s.args.get("outcome") for s in spans_by_name(tracer, "txn")}
        assert "truncated" in outcomes
        assert any(s.args.get("truncated") for s in spans_by_name(tracer, "parked:"))

    def test_detach_leaves_no_residue(self):
        from repro.runtime.events import EventBus

        bus = EventBus()
        tracer = SpanTracer()
        tracer.install(bus)
        assert bus.wants("read")
        tracer.detach()
        assert bus._by_kind == {}
