"""Chrome trace-event export: schema, monotonicity, CLI acceptance."""

import json

import pytest

from repro.cli import main
from repro.obs import chrome_trace_payload, observe_stamp
from repro.runtime import RococoTMBackend
from repro.stamp import VacationWorkload


def lanes_of(payload):
    lanes = {}
    for event in payload["traceEvents"]:
        if event["ph"] in ("X", "i"):
            lanes.setdefault((event["pid"], event["tid"]), []).append(event)
    return lanes


class TestAcceptanceTrace:
    """ISSUE acceptance: ``repro trace stamp-vacation-low rococotm
    --out trace.json`` emits valid Chrome trace JSON with >=1 span per
    committed transaction and hw pipeline lanes."""

    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace") / "t.json"
        code = main(
            ["trace", "stamp-vacation-low", "rococotm", "--out", str(out)]
        )
        assert code == 0
        return json.loads(out.read_text())

    def test_schema_required_keys(self, traced):
        assert "traceEvents" in traced
        assert traced["displayTimeUnit"] == "ns"
        for event in traced["traceEvents"]:
            assert event["ph"] in ("X", "M", "i")
            if event["ph"] == "M":
                assert event["name"] in ("process_name", "thread_name")
                continue
            assert {"name", "pid", "tid", "ts"} <= set(event)
            assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_at_least_one_span_per_committed_txn(self, traced):
        commits = [
            e
            for e in traced["traceEvents"]
            if e["ph"] == "X"
            and e["name"].startswith("txn:")
            and e["args"].get("outcome") == "commit"
        ]
        # vacation at the default trace scale commits plenty.
        assert len(commits) >= 1
        stats, _, _ = observe_stamp(
            VacationWorkload,
            RococoTMBackend(),
            4,
            scale=0.25,
            seed=1,
            trace=False,
            metrics=False,
        )
        assert len(commits) == stats.commits

    def test_hw_pipeline_lanes_present(self, traced):
        names = {
            e["args"]["name"]
            for e in traced["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for lane in ("link-req", "queue", "detector", "manager", "link-resp"):
            assert lane in names
        hw_spans = [
            e
            for e in traced["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 2
        ]
        assert hw_spans

    def test_ts_monotonic_per_lane(self, traced):
        for lane, events in lanes_of(traced).items():
            timestamps = [e["ts"] for e in events]
            assert timestamps == sorted(timestamps), f"lane {lane} not sorted"

    def test_nesting_within_lane(self, traced):
        """A child 'X' event must sit inside its parent's [ts, ts+dur]."""
        spans = {
            e["args"]["span_id"]: e
            for e in traced["traceEvents"]
            if e["ph"] == "X"
        }
        checked = 0
        for event in spans.values():
            parent_id = event["args"].get("parent")
            if parent_id is None or parent_id not in spans:
                continue
            parent = spans[parent_id]
            assert parent["ts"] <= event["ts"]
            assert event["ts"] + event["dur"] <= parent["ts"] + parent["dur"] + 1e-9
            checked += 1
        assert checked > 0

    def test_no_wall_clock_in_payload(self, traced):
        blob = json.dumps(traced)
        assert "generated_at" not in blob
        assert "2026" not in json.dumps(traced["otherData"])


class TestDeterminism:
    def test_payload_is_bit_identical_across_runs(self):
        def build():
            _, tracer, _ = observe_stamp(
                VacationWorkload, RococoTMBackend(), 4, scale=0.2, seed=1
            )
            return chrome_trace_payload(tracer, workload="vacation", seed=1)

        assert json.dumps(build(), sort_keys=True) == json.dumps(
            build(), sort_keys=True
        )

    def test_meta_lands_in_other_data(self):
        _, tracer, _ = observe_stamp(
            VacationWorkload, RococoTMBackend(), 2, scale=0.2, seed=1
        )
        payload = chrome_trace_payload(tracer, workload="vacation", seed=9)
        assert payload["otherData"] == {"workload": "vacation", "seed": 9}
