"""The metrics registry: histograms, merging, and bus collection."""

import pytest

from repro.obs import (
    LATENCY_BOUNDS_NS,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    merge_metric_snapshots,
    observe_stamp,
)
from repro.runtime import RococoTMBackend
from repro.stamp import VacationWorkload


class TestHistogram:
    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_bucket_edges_are_inclusive_upper(self):
        hist = Histogram((10.0, 20.0))
        for value in (0.0, 10.0, 10.5, 20.0, 21.0):
            hist.observe(value)
        # (-inf,10], (10,20], (20,inf)
        assert hist.counts == [2, 2, 1]
        assert hist.count == 5
        assert hist.min == 0.0 and hist.max == 21.0
        assert hist.mean == pytest.approx(61.5 / 5)

    def test_roundtrip_through_dict(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(0.5)
        hist.observe(3.0)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()

    def test_merge_adds_buckets_and_extremes(self):
        a, b = Histogram((1.0, 2.0)), Histogram((1.0, 2.0))
        a.observe(0.5)
        b.observe(5.0)
        a.merge(b)
        assert a.counts == [1, 0, 1]
        assert a.min == 0.5 and a.max == 5.0 and a.count == 2

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_merge_with_empty_keeps_none_extremes(self):
        a, b = Histogram((1.0,)), Histogram((1.0,))
        a.merge(b)
        assert a.min is None and a.max is None and a.count == 0


class TestRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.count("x")
        reg.count("x", 2)
        reg.gauge("g", 7.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"x": 3}
        assert snap["gauges"] == {"g": 7.0}

    def test_histogram_create_or_fetch(self):
        reg = MetricsRegistry()
        reg.observe("lat", 150.0)
        reg.observe("lat", 50.0)
        hist = reg.histogram("lat")
        assert hist.count == 2
        assert hist.bounds == tuple(LATENCY_BOUNDS_NS)

    def test_snapshot_keys_are_sorted(self):
        reg = MetricsRegistry()
        reg.count("zeta")
        reg.count("alpha")
        assert list(reg.snapshot()["counters"]) == ["alpha", "zeta"]


class TestMerge:
    def test_merge_sums_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("c", 2)
        b.count("c", 3)
        b.count("only-b")
        a.observe("h", 150.0)
        b.observe("h", 150.0)
        merged = merge_metric_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"c": 5, "only-b": 1}
        assert merged["histograms"]["h"]["count"] == 2

    def test_gauges_merge_by_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth", 3.0)
        b.gauge("depth", 9.0)
        merged = merge_metric_snapshots([a.snapshot(), b.snapshot()])
        assert merged["gauges"] == {"depth": 9.0}

    def test_merge_is_order_independent(self):
        regs = []
        for seed in range(3):
            reg = MetricsRegistry()
            reg.count("c", seed + 1)
            reg.gauge("g", float(seed))
            reg.observe("h", 100.0 * (seed + 1))
            regs.append(reg.snapshot())
        forward = merge_metric_snapshots(regs)
        backward = merge_metric_snapshots(list(reversed(regs)))
        assert forward == backward

    def test_merge_of_nothing_is_empty(self):
        assert merge_metric_snapshots([]) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestCollector:
    @pytest.fixture(scope="class")
    def observed(self):
        return observe_stamp(
            VacationWorkload,
            RococoTMBackend(),
            4,
            scale=0.2,
            seed=1,
            trace=False,
        )

    def test_counters_match_run_stats(self, observed):
        stats, _, registry = observed
        counters = registry.snapshot()["counters"]
        assert counters["txn.commits"] == stats.commits
        assert counters["txn.aborts"] == stats.aborts
        for cause, count in stats.aborts_by_cause.items():
            assert counters[f"txn.aborts.{cause}"] == count
        assert counters["hw.validations"] == stats.validations

    def test_latency_histograms_populated(self, observed):
        stats, _, registry = observed
        hists = registry.snapshot()["histograms"]
        assert hists["txn.commit_latency_ns"]["count"] == stats.commits
        assert hists["hw.validation_ns"]["count"] == stats.validations
        assert hists["txn.attempts"]["count"] == stats.commits
        assert hists["hw.validation_ns"]["min"] > 0

    def test_window_occupancy_recorded(self, observed):
        _, _, registry = observed
        snap = registry.snapshot()
        assert snap["histograms"]["hw.window_occupancy"]["count"] > 0
        assert snap["gauges"]["hw.window_resident"] >= 0

    def test_snapshot_rides_run_stats_serialization(self, observed):
        from repro.runtime import RunStats

        stats, _, registry = observed
        clone = RunStats.from_dict(stats.to_dict())
        assert clone.metrics == registry.snapshot()

    def test_does_not_subscribe_to_hot_path_kinds(self):
        from repro.runtime.events import EventBus

        bus = EventBus()
        MetricsCollector().install(bus)
        for kind in ("read", "write", "step"):
            assert not bus.wants(kind)
        assert bus.wants("validate")

    def test_detach_leaves_no_residue(self):
        from repro.runtime.events import EventBus

        bus = EventBus()
        collector = MetricsCollector()
        collector.install(bus)
        collector.detach()
        assert bus._by_kind == {}
