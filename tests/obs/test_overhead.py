"""The zero-cost-when-disabled contract.

Two proofs, one deterministic and one timed:

* With no observer attached, a run constructs exactly as many
  SimEvents as before this subsystem existed — only the always-on
  ``commit``/``abort`` outcomes.  That is the *structural* proof that
  tracing-off adds zero per-event work on the hot path.
* A lenient wall-clock microbenchmark (min-of-N, generous 5% bound
  per the ISSUE acceptance criteria) guards against accidental
  un-gating of the step loop.
"""

import time

import repro.runtime.simulator as sim_mod
from repro.runtime import (
    Memory,
    Read,
    SimEvent,
    Simulator,
    TinySTMBackend,
    Transaction,
    Work,
    Write,
)


def make_program(addr, txns=20):
    def program(tid):
        def body():
            value = yield Read(addr)
            yield Work(5.0)
            yield Write(addr, value + 1)

        for _ in range(txns):
            yield Transaction(body)
            yield Work(10.0)

    return program


class TestZeroEventConstruction:
    def test_unobserved_run_builds_only_outcome_events(self, monkeypatch):
        constructed = []

        class CountingEvent(SimEvent):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                constructed.append(self.kind)

        monkeypatch.setattr(sim_mod, "SimEvent", CountingEvent)
        memory = Memory()
        addr = memory.alloc(1)
        sim = Simulator(TinySTMBackend(), 4, memory=memory, seed=3)
        stats = sim.run([make_program(addr)] * 4)
        # Exactly one event per outcome; nothing for steps/reads/
        # writes/begins — the wants() guard kept them un-built.
        assert len(constructed) == stats.commits + stats.aborts
        assert set(constructed) <= {"commit", "abort"}

    def test_observed_run_builds_more(self, monkeypatch):
        constructed = []

        class CountingEvent(SimEvent):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                constructed.append(self.kind)

        monkeypatch.setattr(sim_mod, "SimEvent", CountingEvent)
        memory = Memory()
        addr = memory.alloc(1)
        sim = Simulator(TinySTMBackend(), 4, memory=memory, seed=3)
        sim.bus.subscribe(lambda e: None, kinds=("read", "write", "begin"))
        stats = sim.run([make_program(addr)] * 4)
        assert len(constructed) > stats.commits + stats.aborts
        assert "read" in constructed and "begin" in constructed


class TestStepLoopOverhead:
    def test_disabled_observability_under_five_percent(self):
        """Min-of-N wall-clock of the same simulation before/after the
        obs subsystem can only differ via the step loop; the wants()
        gate must keep the delta under the 5% acceptance bound (with
        slack for timer noise — min-of-7 on a deterministic workload).
        """

        def run_once():
            memory = Memory()
            addr = memory.alloc(1)
            sim = Simulator(TinySTMBackend(), 4, memory=memory, seed=3)
            started = time.perf_counter()
            sim.run([make_program(addr, txns=200)] * 4)
            return time.perf_counter() - started

        # Identical code path either way today — this is a regression
        # tripwire, not an A/B: it fails if someone un-gates an
        # emission so the unobserved loop starts paying for events.
        samples = sorted(run_once() for _ in range(7))
        baseline = samples[0]
        # Re-measure with the collector *detached* again: the bus must
        # be as cheap after a subscribe/unsubscribe cycle.
        from repro.obs import MetricsCollector

        def run_detached():
            memory = Memory()
            addr = memory.alloc(1)
            sim = Simulator(TinySTMBackend(), 4, memory=memory, seed=3)
            collector = MetricsCollector()
            collector.install(sim.bus)
            collector.detach()
            started = time.perf_counter()
            sim.run([make_program(addr, txns=200)] * 4)
            return time.perf_counter() - started

        detached = sorted(run_detached() for _ in range(7))[0]
        assert detached <= baseline * 1.05 + 2e-3
