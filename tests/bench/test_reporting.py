"""format_table edge cases: empty rows, tiny floats, title handling."""

from repro.bench.reporting import format_table


class TestEmptyRows:
    def test_headers_and_rule_only(self):
        out = format_table(["workload", "speedup"], [])
        lines = out.splitlines()
        assert lines == ["workload  speedup", "--------  -------"]

    def test_empty_rows_with_title(self):
        out = format_table(["a"], [], title="Figure 10")
        assert out.splitlines()[0] == "Figure 10"
        assert len(out.splitlines()) == 3


class TestFloatFormatting:
    def test_tiny_floats_go_scientific(self):
        out = format_table(["v"], [[0.001]])
        assert "1.00e-03" in out
        # threshold: 0.005 and above stays fixed-point
        assert "0.005" in format_table(["v"], [[0.005]])
        assert "4.99e-03" in format_table(["v"], [[0.00499]])

    def test_zero_is_not_scientific(self):
        assert "0.000" in format_table(["v"], [[0.0]])

    def test_negative_tiny_floats_go_scientific(self):
        assert "-2.50e-03" in format_table(["v"], [[-0.0025]])

    def test_ordinary_floats_three_decimals(self):
        assert "3.142" in format_table(["v"], [[3.14159]])

    def test_non_floats_pass_through(self):
        out = format_table(["n", "name"], [[7, "kmeans"]])
        assert "7" in out and "kmeans" in out


class TestTitle:
    def test_title_is_first_line(self):
        out = format_table(["h"], [["x"]], title="Table 2")
        assert out.splitlines()[0] == "Table 2"

    def test_no_title_starts_with_headers(self):
        out = format_table(["h"], [["x"]])
        assert out.splitlines()[0].startswith("h")

    def test_columns_align_to_widest_cell(self):
        out = format_table(["h"], [["wide-cell"], ["x"]], title="t")
        _, header, rule, first, second = out.splitlines()
        assert len(header) == len(rule) == len(first) == len(second)
