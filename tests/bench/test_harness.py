"""The benchmark harness itself (small configurations)."""

import pytest

from repro.bench import (
    MicroPoint,
    format_table,
    reduction_vs,
    run_matrix,
    run_microbenchmark,
    series_by,
    validation_overhead_rows,
)
from repro.stamp import KmeansWorkload, Ssca2Workload


class TestMicrobench:
    def test_points_cover_all_algorithms(self):
        points = run_microbenchmark(4, 8, seeds=3, n_txns=60)
        assert {p.algorithm for p in points} == {"2PL", "TOCC", "ROCoCo"}

    def test_rococo_lowest_abort_rate(self):
        points = run_microbenchmark(16, 16, seeds=5, n_txns=100)
        rates = {p.algorithm: p.abort_rate for p in points}
        assert rates["ROCoCo"] <= rates["TOCC"] <= rates["2PL"]

    def test_reduction_vs(self):
        points = run_microbenchmark(16, 16, seeds=5, n_txns=100)
        reductions = reduction_vs(points, baseline="TOCC", candidate="ROCoCo")
        assert (16, 16) in reductions
        assert 0.0 <= reductions[(16, 16)] <= 1.0

    def test_collision_rate_attached(self):
        points = run_microbenchmark(4, 16, seeds=2, n_txns=40)
        assert all(abs(p.collision_rate - 0.223) < 0.01 for p in points)


class TestStampMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_matrix(
            workloads=[KmeansWorkload, Ssca2Workload],
            threads=(1, 4),
            scale=0.25,
        )

    def test_grid_complete(self, matrix):
        assert len(matrix.cells) == 2 * 3 * 2
        assert matrix.workloads() == ["kmeans", "ssca2"]

    def test_get_cell(self, matrix):
        cell = matrix.get("kmeans", "TinySTM", 4)
        assert cell.speedup > 0
        assert 0 <= cell.abort_rate <= 1

    def test_geomeans(self, matrix):
        g = matrix.geomean_speedup("ROCoCoTM", 4)
        assert g > 0
        ratio = matrix.geomean_ratio("ROCoCoTM", "TinySTM", 4)
        assert ratio == pytest.approx(
            (
                matrix.get("kmeans", "ROCoCoTM", 4).speedup
                / matrix.get("kmeans", "TinySTM", 4).speedup
                * matrix.get("ssca2", "ROCoCoTM", 4).speedup
                / matrix.get("ssca2", "TinySTM", 4).speedup
            )
            ** 0.5
        )

    def test_missing_cell_raises(self, matrix):
        with pytest.raises(KeyError):
            matrix.get("kmeans", "TinySTM", 99)


class TestValidationRows:
    def test_rows_have_both_systems(self):
        rows = validation_overhead_rows([KmeansWorkload], n_threads=4, scale=0.25)
        assert rows[0]["workload"] == "kmeans"
        assert rows[0]["TinySTM"] > 0
        assert rows[0]["ROCoCoTM"] > 0


class TestReporting:
    def test_format_table(self):
        text = format_table(
            ["name", "value"], [["a", 1.2345], ["b", 0.001]], title="T"
        )
        assert "T" in text
        assert "a" in text and "1.234" in text
        assert "1.00e-03" in text

    def test_series_by(self):
        points = [
            MicroPoint("x", 4, 8, 0.1, 0.2, 10, 2),
            MicroPoint("x", 4, 16, 0.2, 0.3, 10, 3),
        ]
        series = series_by(points, ["algorithm", "concurrency"], "abort_rate")
        assert series[("x", 4)] == [0.2, 0.3]
