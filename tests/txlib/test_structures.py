"""Transactional data structures: sequential semantics + concurrent
linearizability smoke tests."""

import pytest

from repro.runtime import (
    Memory,
    SequentialBackend,
    Simulator,
    TinySTMBackend,
    Transaction,
)
from repro.txlib import NULL, TArray, THashMap, THashSet, THeap, TQueue, TSortedList, TVar, mix


def run_txn(memory, body_factory, backend=None):
    """Run one transaction on a single thread; returns its result."""
    results = []

    def program(tid):
        results.append((yield Transaction(body_factory)))

    sim = Simulator(backend or SequentialBackend(), 1, memory=memory)
    sim.run([program])
    return results[0]


class TestMix:
    def test_deterministic(self):
        assert mix(42) == mix(42)
        assert mix((1, 2)) == mix((1, 2))

    def test_spreads(self):
        assert len({mix(i) % 64 for i in range(256)}) > 40

    def test_tuple_order_matters(self):
        assert mix((1, 2)) != mix((2, 1))


class TestTVarAndArray:
    def test_tvar_roundtrip(self):
        memory = Memory()
        var = TVar(memory, initial=5)

        def body():
            old = yield from var.get()
            yield from var.set(old + 1)
            return (yield from var.add(10))

        assert run_txn(memory, body) == 16
        assert var.peek() == 16

    def test_array_bounds(self):
        memory = Memory()
        arr = TArray(memory, 4)
        with pytest.raises(IndexError):
            list(arr.get(4))
        with pytest.raises(ValueError):
            TArray(memory, 0)

    def test_array_fill_and_snapshot(self):
        memory = Memory()
        arr = TArray(memory, 3)
        arr.fill([7, 8, 9])
        assert arr.snapshot() == [7, 8, 9]

        def body():
            yield from arr.add(1, 100)

        run_txn(memory, body)
        assert arr.snapshot() == [7, 108, 9]


class TestHashMap:
    def test_put_get_update_remove(self):
        memory = Memory()
        table = THashMap(memory, n_buckets=8)

        def body():
            assert (yield from table.get(1)) is None
            assert (yield from table.put(1, 10)) is None
            assert (yield from table.put(1, 11)) == 10
            assert (yield from table.put(9, 90)) is None  # same bucket as 1 maybe
            assert (yield from table.get(1)) == 11
            assert (yield from table.remove(1)) == 11
            assert (yield from table.get(1)) is None
            return (yield from table.get(9))

        assert run_txn(memory, body) == 90

    def test_collisions_chain(self):
        memory = Memory()
        table = THashMap(memory, n_buckets=1)  # everything collides

        def body():
            for k in range(10):
                yield from table.put(k, k * k)
            values = []
            for k in range(10):
                values.append((yield from table.get(k)))
            return values

        assert run_txn(memory, body) == [k * k for k in range(10)]

    def test_put_if_absent(self):
        memory = Memory()
        table = THashMap(memory, 8)

        def body():
            first = yield from table.put_if_absent(5, 1)
            second = yield from table.put_if_absent(5, 2)
            return (first, second, (yield from table.get(5)))

        assert run_txn(memory, body) == (True, False, 1)

    def test_size_tracking(self):
        memory = Memory()
        table = THashMap(memory, 8, track_size=True)

        def body():
            yield from table.put(1, 1)
            yield from table.put(2, 2)
            yield from table.remove(1)
            return (yield from table.size())

        assert run_txn(memory, body) == 1

    def test_size_disabled_raises(self):
        memory = Memory()
        table = THashMap(memory, 8)

        def body():
            return (yield from table.size())

        with pytest.raises(RuntimeError):
            run_txn(memory, body)

    def test_items_direct(self):
        memory = Memory()
        table = THashMap(memory, 4)

        def body():
            yield from table.put(3, 30)
            yield from table.put((4, 5), 45)

        run_txn(memory, body)
        assert sorted(table.items_direct(), key=repr) == sorted(
            [(3, 30), ((4, 5), 45)], key=repr
        )

    def test_tuple_keys(self):
        memory = Memory()
        table = THashMap(memory, 16)

        def body():
            yield from table.put((1, 2, 3), 99)
            return (yield from table.get((1, 2, 3)))

        assert run_txn(memory, body) == 99


class TestHashSet:
    def test_add_contains_remove(self):
        memory = Memory()
        bag = THashSet(memory, 8)

        def body():
            added = yield from bag.add(7)
            again = yield from bag.add(7)
            has = yield from bag.contains(7)
            gone = yield from bag.remove(7)
            missing = yield from bag.contains(7)
            return (added, again, has, gone, missing)

        assert run_txn(memory, body) == (True, False, True, True, False)


class TestQueue:
    def test_fifo_order(self):
        memory = Memory()
        queue = TQueue(memory)

        def body():
            for v in (1, 2, 3):
                yield from queue.push(v)
            out = []
            for _ in range(4):
                out.append((yield from queue.pop()))
            return out

        assert run_txn(memory, body) == [1, 2, 3, None]

    def test_seed_and_drain_direct(self):
        memory = Memory()
        queue = TQueue(memory)
        queue.seed_direct([5, 6])
        assert queue.drain_direct() == [5, 6]

        def body():
            first = yield from queue.pop()
            yield from queue.push(7)
            return first

        assert run_txn(memory, body) == 5
        assert queue.drain_direct() == [6, 7]

    def test_empty_check(self):
        memory = Memory()
        queue = TQueue(memory)

        def body():
            before = yield from queue.is_empty()
            yield from queue.push(1)
            after = yield from queue.is_empty()
            return (before, after)

        assert run_txn(memory, body) == (True, False)


class TestSortedList:
    def test_sorted_insert(self):
        memory = Memory()
        lst = TSortedList(memory)

        def body():
            for k in (5, 1, 3, 2, 4):
                assert (yield from lst.insert(k))
            return (yield from lst.insert(3))  # duplicate

        assert run_txn(memory, body) is False
        assert lst.keys_direct() == [1, 2, 3, 4, 5]

    def test_find_and_remove(self):
        memory = Memory()
        lst = TSortedList(memory)

        def body():
            yield from lst.insert(2, "b")
            yield from lst.insert(1, "a")
            found = yield from lst.find(2)
            missing = yield from lst.find(9)
            removed = yield from lst.remove(1)
            not_removed = yield from lst.remove(9)
            return (found, missing, removed, not_removed)

        assert run_txn(memory, body) == ("b", None, True, False)
        assert lst.keys_direct() == [2]

    def test_minimum(self):
        memory = Memory()
        lst = TSortedList(memory)

        def body():
            empty = yield from lst.minimum()
            yield from lst.insert(9, "i")
            yield from lst.insert(4, "d")
            return (empty, (yield from lst.minimum()))

        assert run_txn(memory, body) == (None, (4, "d"))


class TestHeap:
    def test_heap_order(self):
        memory = Memory()
        heap = THeap(memory, capacity=16)

        def body():
            for v in (5, 1, 4, 1, 3):
                yield from heap.push(v)
            out = []
            while True:
                v = yield from heap.pop_min()
                if v is None:
                    break
                out.append(v)
            return out

        assert run_txn(memory, body) == [1, 1, 3, 4, 5]

    def test_overflow(self):
        memory = Memory()
        heap = THeap(memory, capacity=1)

        def body():
            yield from heap.push(1)
            yield from heap.push(2)

        with pytest.raises(OverflowError):
            run_txn(memory, body)

    def test_seed_direct(self):
        memory = Memory()
        heap = THeap(memory, capacity=8)
        heap.seed_direct([9, 2, 7])

        def body():
            return (yield from heap.pop_min())

        assert run_txn(memory, body) == 2
        assert sorted(heap.snapshot_direct()) == [7, 9]

    def test_tuple_elements(self):
        memory = Memory()
        heap = THeap(memory, capacity=8)

        def body():
            yield from heap.push((2, 10))
            yield from heap.push((1, 99))
            return (yield from heap.pop_min())

        assert run_txn(memory, body) == (1, 99)


class TestConcurrentUse:
    def test_hashmap_under_contention(self):
        """8 threads inserting disjoint keys: all must land."""
        memory = Memory()
        table = THashMap(memory, n_buckets=4)

        def make_body(key):
            def body():
                yield from table.put(key, key)

            return body

        def program(tid):
            for i in range(10):
                yield Transaction(make_body(tid * 100 + i))

        sim = Simulator(TinySTMBackend(), 8, memory=memory)
        stats = sim.run([program] * 8)
        assert stats.commits == 80
        assert len(table.items_direct()) == 80

    def test_queue_producer_consumer(self):
        memory = Memory()
        queue = TQueue(memory)
        queue.seed_direct(range(40))
        popped = []

        def body():
            return (yield from queue.pop())

        def program(tid):
            for _ in range(10):
                value = yield Transaction(body)
                popped.append(value)

        sim = Simulator(TinySTMBackend(), 4, memory=memory)
        sim.run([program] * 4)
        real = [p for p in popped if p is not None]
        assert sorted(real) == list(range(40))  # each popped exactly once
