"""Model-based property tests: txlib structures vs Python models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Memory, SequentialBackend, Simulator, Transaction
from repro.txlib import THashMap, THeap, TQueue, TSortedList


def run_ops(structure_ops):
    """Run a generator of txlib ops in one sequential transaction."""
    results = []

    def program(tid):
        def body():
            out = yield from structure_ops()
            return out

        results.append((yield Transaction(body)))

    # memory is captured by the structure at construction time.
    return results


map_commands = st.lists(
    st.tuples(
        st.sampled_from(["put", "get", "remove", "put_if_absent"]),
        st.integers(0, 12),
        st.integers(0, 99),
    ),
    max_size=40,
)


class TestHashMapModel:
    @given(map_commands)
    @settings(max_examples=60, deadline=None)
    def test_matches_dict(self, commands):
        memory = Memory()
        table = THashMap(memory, n_buckets=4)
        model = {}
        observed = []
        expected = []

        def ops():
            for cmd, key, value in commands:
                if cmd == "put":
                    observed.append((yield from table.put(key, value)))
                    expected.append(model.get(key))
                    model[key] = value
                elif cmd == "get":
                    observed.append((yield from table.get(key)))
                    expected.append(model.get(key))
                elif cmd == "remove":
                    observed.append((yield from table.remove(key)))
                    expected.append(model.pop(key, None))
                else:
                    inserted = key not in model
                    observed.append((yield from table.put_if_absent(key, value)))
                    expected.append(inserted)
                    if inserted:
                        model[key] = value

        sim = Simulator(SequentialBackend(), 1, memory=memory)

        def program(tid):
            yield Transaction(lambda: ops())

        sim.run([program])
        assert observed == expected
        assert dict(table.items_direct()) == model


queue_commands = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 99)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=40,
)


class TestQueueModel:
    @given(queue_commands)
    @settings(max_examples=60, deadline=None)
    def test_matches_deque(self, commands):
        from collections import deque

        memory = Memory()
        queue = TQueue(memory)
        model = deque()
        observed, expected = [], []

        def ops():
            for cmd, value in commands:
                if cmd == "push":
                    yield from queue.push(value)
                    model.append(value)
                else:
                    observed.append((yield from queue.pop()))
                    expected.append(model.popleft() if model else None)

        sim = Simulator(SequentialBackend(), 1, memory=memory)

        def program(tid):
            yield Transaction(lambda: ops())

        sim.run([program])
        assert observed == expected
        assert queue.drain_direct() == list(model)


heap_commands = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 99)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=30,
)


class TestHeapModel:
    @given(heap_commands)
    @settings(max_examples=60, deadline=None)
    def test_matches_heapq(self, commands):
        import heapq

        memory = Memory()
        heap = THeap(memory, capacity=64)
        model = []
        observed, expected = [], []

        def ops():
            for cmd, value in commands:
                if cmd == "push":
                    yield from heap.push(value)
                    heapq.heappush(model, value)
                else:
                    observed.append((yield from heap.pop_min()))
                    expected.append(heapq.heappop(model) if model else None)

        sim = Simulator(SequentialBackend(), 1, memory=memory)

        def program(tid):
            yield Transaction(lambda: ops())

        sim.run([program])
        assert observed == expected
        assert sorted(heap.snapshot_direct()) == sorted(model)


list_commands = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove", "find"]),
        st.integers(0, 15),
    ),
    max_size=30,
)


class TestSortedListModel:
    @given(list_commands)
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted_set(self, commands):
        memory = Memory()
        lst = TSortedList(memory)
        model = set()
        observed, expected = [], []

        def ops():
            for cmd, key in commands:
                if cmd == "insert":
                    observed.append((yield from lst.insert(key, key)))
                    expected.append(key not in model)
                    model.add(key)
                elif cmd == "remove":
                    observed.append((yield from lst.remove(key)))
                    expected.append(key in model)
                    model.discard(key)
                else:
                    observed.append((yield from lst.find(key)))
                    expected.append(key if key in model else None)

        sim = Simulator(SequentialBackend(), 1, memory=memory)

        def program(tid):
            yield Transaction(lambda: ops())

        sim.run([program])
        assert observed == expected
        assert lst.keys_direct() == sorted(model)
