"""Deeper engine invariants: ordering, decision consistency, scaling."""

import pytest

from repro.core import Footprint, SlidingWindowValidator
from repro.hw import (
    FpgaValidationEngine,
    InterconnectLink,
    ValidationRequest,
    harp2_cci_link,
)
from repro.signatures import SignatureConfig


def req(reads=(), writes=(), snapshot=0, label=None):
    return ValidationRequest(label, tuple(reads), tuple(writes), snapshot)


class TestOrdering:
    def test_decision_order_is_submission_order(self):
        """The pipeline is in-order: a later submission can never be
        decided against a state that excludes an earlier commit."""
        engine = FpgaValidationEngine(window=8)
        engine.submit(req(writes=[10], snapshot=0, label="first"), 0.0)
        # The second txn read 10 *before* the first committed; the
        # engine must see the first commit when deciding the second.
        response = engine.submit(req(reads=[10], writes=[20], snapshot=0), 1.0)
        assert response.verdict.committed  # stale read, no cycle
        assert engine.manager.total_commits == 2

    def test_ready_times_monotone_for_simultaneous_sends(self):
        engine = FpgaValidationEngine()
        times = [
            engine.submit(req(reads=[i], writes=[100 + i], snapshot=i), 0.0).ready_ns
            for i in range(10)
        ]
        assert times == sorted(times)

    def test_commit_indices_dense(self):
        engine = FpgaValidationEngine(window=16)
        indices = []
        for i in range(10):
            v = engine.submit(req(writes=[1000 + i], snapshot=i), float(i)).verdict
            indices.append(v.commit_index)
        assert indices == list(range(10))


class TestDecisionConsistency:
    @pytest.mark.parametrize("seed", range(3))
    def test_engine_equals_bare_manager_decisions(self, seed):
        """Timing must never change *decisions*: the engine and a
        plain windowed validator agree on every verdict."""
        import random

        rng = random.Random(seed)
        engine = FpgaValidationEngine(window=8)
        exact = SlidingWindowValidator(window=8)
        now = 0.0
        for i in range(150):
            addrs = rng.sample(range(48), 4)
            snapshot = max(0, engine.manager.total_commits - rng.randint(0, 4))
            hw = engine.submit(req(addrs[:2], addrs[2:], snapshot, label=i), now)
            sw = exact.submit(Footprint.of(addrs[:2], addrs[2:], snapshot, label=i))
            assert hw.verdict.committed == sw.committed, (seed, i)
            now += rng.random() * 100.0

    def test_signature_false_positives_only_add_aborts(self):
        """A tiny (collision-prone) signature can abort transactions an
        exact validator commits — never the other way around."""
        import random

        rng = random.Random(7)
        tiny = SignatureConfig(bits=32, partitions=2, seed=3)
        engine = FpgaValidationEngine(window=8, config=tiny)
        exact = SlidingWindowValidator(window=8)
        fp_aborts = missed = 0
        for i in range(200):
            addrs = rng.sample(range(512), 4)
            snapshot = max(0, exact.total_commits - rng.randint(0, 3))
            sw = exact.submit(Footprint.of(addrs[:2], addrs[2:], snapshot, label=i))
            hw = engine.submit(req(addrs[:2], addrs[2:], snapshot, label=i), float(i))
            if sw.committed and not hw.verdict.committed:
                fp_aborts += 1
            # Keep the two validators in the same committed state by
            # resynchronizing when they diverge: count and move on.
            if sw.committed != hw.verdict.committed:
                missed += 1
                engine = FpgaValidationEngine(window=8, config=tiny)
                exact = SlidingWindowValidator(window=8)
        assert fp_aborts >= 0  # presence depends on collisions
        # With 32-bit signatures over 512 addresses, collisions are
        # near-certain across 200 transactions.
        assert missed > 0


class TestLinkScaling:
    def test_zero_latency_link_still_pipelines(self):
        free = InterconnectLink(0.0, 0.0, 0.0)
        engine = FpgaValidationEngine(link=free)
        r = engine.submit(req(reads=[1], writes=[2]), 0.0)
        # Pure pipeline cost: 3 cycles at 200 MHz.
        assert r.round_trip_ns == pytest.approx(15.0)

    def test_round_trip_decomposition(self):
        engine = FpgaValidationEngine()
        r = engine.submit(req(reads=[1], writes=[2]), 0.0)
        link = harp2_cci_link()
        pipeline = r.finished_ns - r.started_ns
        assert r.round_trip_ns == pytest.approx(
            link.to_device_ns + (r.started_ns - r.arrived_ns) + pipeline + link.from_device_ns,
            abs=engine.clock.period_ns,
        )

    def test_busy_cycles_track_occupancy(self):
        engine = FpgaValidationEngine()
        engine.submit(req(reads=range(16), writes=range(20, 28)), 0.0)
        # 24 addresses = 3 cachelines + 2 manager cycles.
        assert engine.stats_busy_cycles == 5


class TestSoftwareEngine:
    """Fig. 6(c)'s dedicated-thread validator: same decisions, serial
    service."""

    def test_decision_identical_to_fpga(self):
        import random

        from repro.hw import SoftwareValidationEngine

        rng = random.Random(11)
        fpga = FpgaValidationEngine(window=8)
        soft = SoftwareValidationEngine(window=8)
        for i in range(150):
            addrs = rng.sample(range(64), 4)
            snapshot = max(0, fpga.manager.total_commits - rng.randint(0, 3))
            request = req(addrs[:2], addrs[2:], snapshot, label=i)
            a = fpga.submit(request, float(i))
            b = soft.submit(request, float(i))
            assert a.verdict.committed == b.verdict.committed, i

    def test_serial_service_does_not_overlap(self):
        from repro.hw import SoftwareValidationEngine

        engine = SoftwareValidationEngine(window=8)
        first = engine.submit(req(reads=range(8), writes=[99], snapshot=0), 0.0)
        second = engine.submit(req(reads=range(8), writes=[98], snapshot=0), 0.0)
        assert second.started_ns >= first.finished_ns

    def test_slower_than_fpga_under_load(self):
        from repro.hw import SoftwareValidationEngine

        fpga = FpgaValidationEngine()
        soft = SoftwareValidationEngine()
        for i in range(50):
            request = req(reads=range(8), writes=[1000 + i], snapshot=i)
            fpga.submit(request, float(i * 10))
            soft.submit(request, float(i * 10))
        assert soft.mean_round_trip_ns > fpga.mean_round_trip_ns
