"""Pipeline timing of the assembled offload engine."""

import pytest

from repro.hw import (
    ClockDomain,
    FpgaValidationEngine,
    ValidationRequest,
    harp2_cci_link,
)


def req(reads=(), writes=(), snapshot=0, label=None):
    return ValidationRequest(label, tuple(reads), tuple(writes), snapshot)


class TestLatency:
    def test_single_validation_round_trip(self):
        engine = FpgaValidationEngine(window=8)
        response = engine.submit(req(reads=[1, 2], writes=[3], snapshot=0), now_ns=0.0)
        assert response.verdict.committed
        # One cacheline of addresses: 200 ns there, 1 detector cycle +
        # 2 manager cycles (15 ns), 400 ns back, plus edge alignment.
        assert 600.0 <= response.round_trip_ns <= 640.0

    def test_round_trip_under_a_microsecond(self):
        """The §6.4 claim at the single-transaction level."""
        engine = FpgaValidationEngine()
        response = engine.submit(req(reads=range(8), writes=[99], snapshot=0), 0.0)
        assert response.round_trip_ns < 1000.0

    def test_bigger_footprint_takes_longer(self):
        small = FpgaValidationEngine().submit(req(reads=[1], writes=[2]), 0.0)
        big = FpgaValidationEngine().submit(
            req(reads=range(32), writes=range(100, 132)), 0.0
        )
        assert big.round_trip_ns > small.round_trip_ns

    def test_timing_is_monotone_through_stages(self):
        engine = FpgaValidationEngine()
        r = engine.submit(req(reads=[1], writes=[2]), now_ns=10.0)
        assert r.sent_ns <= r.arrived_ns <= r.started_ns <= r.finished_ns <= r.ready_ns


class TestPipelining:
    def test_back_to_back_amortization(self):
        """Fig. 6(d): pipelined validation amortizes the link latency —
        100 overlapped validations finish far sooner than 100 serial
        round trips."""
        engine = FpgaValidationEngine()
        last_ready = 0.0
        for i in range(100):
            r = engine.submit(req(reads=[i], writes=[1000 + i], snapshot=i), now_ns=float(i))
            last_ready = max(last_ready, r.ready_ns)
        serial = 100 * harp2_cci_link().round_trip_ns
        assert last_ready < 0.5 * serial

    def test_initiation_interval_one_cacheline(self):
        engine = FpgaValidationEngine()
        a = engine.submit(req(reads=[1], writes=[2]), 0.0)
        b = engine.submit(req(reads=[3], writes=[4]), 0.0)
        # Second request starts exactly one cycle after the first.
        assert b.started_ns - a.started_ns == pytest.approx(engine.clock.period_ns)

    def test_queueing_accounted(self):
        engine = FpgaValidationEngine()
        for i in range(50):
            engine.submit(req(reads=range(32), writes=range(50, 82)), now_ns=0.0)
        assert engine.mean_queueing_ns > 0.0

    def test_throughput_limit(self):
        engine = FpgaValidationEngine()
        # 200 MHz, one 8-address txn per cycle: 200 validations/us.
        assert engine.throughput_limit_per_us == pytest.approx(200.0)


class TestDecisionsAndStats:
    def test_decisions_flow_through(self):
        engine = FpgaValidationEngine(window=8)
        engine.submit(req(reads=[5], writes=[10], snapshot=0), 0.0)
        r = engine.submit(req(reads=[10], writes=[5], snapshot=0), 1.0)
        assert not r.verdict.committed

    def test_stats_accumulate(self):
        engine = FpgaValidationEngine()
        for i in range(10):
            engine.submit(req(reads=[i], writes=[100 + i], snapshot=i), float(i * 10))
        assert engine.stats_requests == 10
        assert engine.stats_busy_cycles >= 10 * 3
        assert engine.mean_round_trip_ns > 600.0

    def test_slower_clock_raises_latency(self):
        fast = FpgaValidationEngine(clock=ClockDomain(200_000_000))
        slow = FpgaValidationEngine(clock=ClockDomain(100_000_000))
        rf = fast.submit(req(reads=range(16), writes=range(20, 36)), 0.0)
        rs = slow.submit(req(reads=range(16), writes=range(20, 36)), 0.0)
        assert rs.round_trip_ns > rf.round_trip_ns
