"""Detector + manager: signature-based edges and windowed decisions.

The key cross-check: on conflict patterns without hash collisions, the
hardware path must make the *same decisions* as the exact-set
SlidingWindowValidator of repro.core.
"""

import random

import pytest

from repro.core import Footprint, SlidingWindowValidator
from repro.hw import ConflictDetector, ValidationManager, ValidationRequest
from repro.signatures import SignatureConfig


@pytest.fixture()
def config():
    return SignatureConfig(bits=512, partitions=4)


def req(reads=(), writes=(), snapshot=0, label=None):
    return ValidationRequest(label, tuple(reads), tuple(writes), snapshot)


class TestDetector:
    def test_empty_detector_no_edges(self, config):
        det = ConflictDetector(config, window=8)
        assert det.edges([1, 2], [3], snapshot=0) == (0, 0)

    def test_read_write_conflict_direction(self, config):
        det = ConflictDetector(config, window=8)
        det.record_commit("w", commit_index=0, read_addrs=[], write_addrs=[10])
        # Observed -> backward.
        fwd, bwd = det.edges([10], [99], snapshot=1)
        assert (fwd, bwd) == (0, 1)
        # Unobserved -> forward.
        fwd, bwd = det.edges([10], [99], snapshot=0)
        assert (fwd, bwd) == (1, 0)

    def test_write_conflicts_always_backward(self, config):
        det = ConflictDetector(config, window=8)
        det.record_commit("t", commit_index=0, read_addrs=[5], write_addrs=[10])
        fwd, bwd = det.edges([], [10], snapshot=0)  # WAW
        assert (fwd, bwd) == (0, 1)
        fwd, bwd = det.edges([], [5], snapshot=0)  # WAR vs their read
        assert (fwd, bwd) == (0, 1)

    def test_no_conflict_no_edges(self, config):
        det = ConflictDetector(config, window=8)
        det.record_commit("t", commit_index=0, read_addrs=[5], write_addrs=[10])
        assert det.edges([77], [88], snapshot=1) == (0, 0)

    def test_eviction_shifts_slots(self, config):
        det = ConflictDetector(config, window=2)
        det.record_commit("a", 0, [], [1])
        det.record_commit("b", 1, [], [2])
        evicted = det.record_commit("c", 2, [], [3])
        assert evicted
        assert [e.label for e in det.entries()] == ["b", "c"]
        assert det.oldest_commit_index == 1
        # Conflict with "c" now maps to slot 1.
        fwd, bwd = det.edges([], [3], snapshot=3)
        assert bwd == 0b10

    def test_window_must_be_positive(self, config):
        with pytest.raises(ValueError):
            ConflictDetector(config, window=0)


class TestManager:
    def test_read_only_commits_without_bookkeeping(self, config):
        mgr = ValidationManager(config, window=8)
        verdict = mgr.validate(req(reads=[1, 2]))
        assert verdict.committed
        assert mgr.total_commits == 0

    def test_tocc_restriction_removed(self, config):
        mgr = ValidationManager(config, window=8)
        assert mgr.validate(req(writes=[10], snapshot=0, label="t0")).committed
        # Stale read of t0's update, no cycle: commits under ROCoCo.
        verdict = mgr.validate(req(reads=[10], writes=[20], snapshot=0, label="t1"))
        assert verdict.committed

    def test_two_cycle_aborts(self, config):
        mgr = ValidationManager(config, window=8)
        mgr.validate(req(reads=[5], writes=[10], snapshot=0))
        verdict = mgr.validate(req(reads=[10], writes=[5], snapshot=0))
        assert not verdict.committed
        assert verdict.reason == "cycle"
        assert mgr.stats_cycle_aborts == 1

    def test_window_overflow_abort(self, config):
        mgr = ValidationManager(config, window=2)
        for i in range(5):
            assert mgr.validate(req(writes=[100 + i], snapshot=i)).committed
        verdict = mgr.validate(req(reads=[7], writes=[8], snapshot=1))
        assert not verdict.committed
        assert verdict.reason == "window-overflow"

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_exact_validator_without_collisions(self, config, seed):
        """With few, well-separated addresses the signatures are exact,
        so hardware decisions == exact-set decisions."""
        rng = random.Random(seed)
        mgr = ValidationManager(config, window=16)
        exact = SlidingWindowValidator(window=16)
        snapshot_lag = 0
        for i in range(200):
            addrs = rng.sample(range(64), 4)
            reads, writes = addrs[:2], addrs[2:]
            snapshot = max(0, mgr.total_commits - rng.randint(0, 4))
            hw = mgr.validate(req(reads, writes, snapshot, label=i))
            sw = exact.submit(Footprint.of(reads, writes, snapshot, label=i))
            assert hw.committed == sw.committed, (seed, i)
