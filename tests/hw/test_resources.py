"""The §6.5 resource/Fmax model: anchor reproduction and trends."""

import pytest

from repro.hw import estimate, paper_table


class TestAnchor:
    def test_paper_numbers_reproduced(self):
        est = paper_table()
        assert est.registers == 113_485
        assert est.alms == 249_442
        assert est.dsps == 223
        assert est.bram_bits == 2_055_802
        assert est.fmax_mhz == pytest.approx(200.0)

    def test_paper_utilizations(self):
        est = paper_table()
        assert est.register_pct == pytest.approx(62.9, abs=0.1)
        assert est.alm_pct == pytest.approx(58.39, abs=0.05)
        assert est.dsp_pct == pytest.approx(14.7, abs=0.1)
        assert est.bram_pct == pytest.approx(3.7, abs=0.1)
        assert est.fits


class TestTrends:
    def test_1024_bit_filter_still_fits_but_slower(self):
        """§6.5: the 1024-bit variant fits at a lower clock."""
        wide = estimate(window=64, signature_bits=1024, partitions=4)
        assert wide.fits
        assert wide.fmax_mhz < 200.0

    def test_resources_monotone_in_window(self):
        small = estimate(window=32)
        large = estimate(window=128)
        assert small.alms < large.alms
        assert small.registers < large.registers
        assert small.bram_bits < large.bram_bits

    def test_resources_monotone_in_signature(self):
        assert estimate(signature_bits=256).alms < estimate(signature_bits=1024).alms

    def test_fmax_independent_of_window(self):
        """The critical path is the bloom filter, not the matrix."""
        assert estimate(window=32).fmax_mhz == estimate(window=128).fmax_mhz

    def test_dsps_scale_with_partitions(self):
        assert estimate(partitions=8).dsps > estimate(partitions=4).dsps

    def test_huge_matrix_eventually_does_not_fit(self):
        assert not estimate(window=1024).fits

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate(window=0)
        with pytest.raises(ValueError):
            estimate(signature_bits=0)
