"""Ring-buffer detector vs an array-shift reference (PR 10).

The vectorized :class:`ConflictDetector` stores its W slots in a ring
buffer (head index + modular slot math) and computes edge masks in
physical order, rotating only the final packed integer.  These tests
drive W + k commits — several full wraparounds — against an
independent array-shift model that keeps slots physically oldest-first
and queries each address with *uncached* bit positions, asserting that
``edges()`` masks, ``oldest_commit_index``, and the resident entries
agree bit-for-bit at every step.

The pre-vectorization boolean packing survives here as the reference
oracle for ``_bools_to_mask`` (both the original per-bit loop and the
dot-against-powers-of-two formulation it briefly became).
"""

import random

import numpy as np
import pytest

from repro.hw import ConflictDetector
from repro.hw.detector import _bools_to_mask
from repro.signatures import SignatureConfig


# ----------------------------------------------------------------------
# Reference model: physical oldest-first slots, per-address queries.
# ----------------------------------------------------------------------


class ArrayShiftDetector:
    """The pre-PR10 semantics: shift-down eviction, big-int queries."""

    def __init__(self, config, window):
        self.config = config
        self.window = window
        self.entries = []  # (commit_index, read_raw, write_raw), oldest first

    def _bit_positions(self, element):
        width = self.config.partition_bits
        return [i * width + h(element) for i, h in enumerate(self.config.hashes)]

    def _raw_of(self, addrs):
        raw = 0
        for addr in addrs:
            for pos in self._bit_positions(addr):
                raw |= 1 << pos
        return raw

    @property
    def oldest_commit_index(self):
        return self.entries[0][0] if self.entries else 0

    def record_commit(self, commit_index, read_addrs, write_addrs):
        if len(self.entries) == self.window:
            del self.entries[0]
        self.entries.append(
            (commit_index, self._raw_of(read_addrs), self._raw_of(write_addrs))
        )

    def edges(self, read_addrs, write_addrs, snapshot):
        read_masks = [self._raw_of([a]) for a in read_addrs]
        write_masks = [self._raw_of([a]) for a in write_addrs]
        forward = 0
        backward = 0
        for slot, (commit_index, read_raw, write_raw) in enumerate(self.entries):
            bit = 1 << slot
            if any(write_raw & m == m for m in read_masks):
                if commit_index < snapshot:
                    backward |= bit
                else:
                    forward |= bit
            if any(write_raw & m == m for m in write_masks) or any(
                read_raw & m == m for m in write_masks
            ):
                backward |= bit
        return forward, backward


def _stream(rng, txns, space=4096, n_reads=3, n_writes=2):
    out = []
    for _ in range(txns):
        addrs = rng.sample(range(space), n_reads + n_writes)
        out.append((tuple(addrs[:n_reads]), tuple(addrs[n_reads:])))
    return out


# ----------------------------------------------------------------------


@pytest.mark.parametrize("window", [3, 8, 64, 100])
def test_wraparound_matches_array_shift_reference(window):
    """W + k commits (several wraparounds) with a probe after each."""
    config = SignatureConfig()
    live = ConflictDetector(config, window)
    ref = ArrayShiftDetector(config, window)
    rng = random.Random(1234 + window)

    for commit_index, (reads, writes) in enumerate(
        _stream(rng, 3 * window + 7)
    ):
        probe_reads, probe_writes = _stream(rng, 1)[0]
        snapshot = rng.randint(max(0, commit_index - window), commit_index)
        assert live.edges(probe_reads, probe_writes, snapshot) == ref.edges(
            probe_reads, probe_writes, snapshot
        ), (window, commit_index)

        live.record_commit(commit_index, commit_index, reads, writes)
        ref.record_commit(commit_index, reads, writes)
        assert live.oldest_commit_index == ref.oldest_commit_index
        assert live.resident == len(ref.entries)
        assert [e.commit_index for e in live.entries()] == [
            e[0] for e in ref.entries
        ]


@pytest.mark.parametrize("window", [4, 16])
def test_non_consecutive_commit_indices_fall_back(window):
    """Gapped commit indices (direct detector use) must disable the
    prefix fast path and still agree with the reference."""
    config = SignatureConfig()
    live = ConflictDetector(config, window)
    ref = ArrayShiftDetector(config, window)
    rng = random.Random(99)

    commit_index = 0
    for step, (reads, writes) in enumerate(_stream(rng, 3 * window)):
        commit_index += rng.randint(1, 3)  # gaps -> non-consecutive
        live.record_commit(step, commit_index, reads, writes)
        ref.record_commit(commit_index, reads, writes)

        probe_reads, probe_writes = _stream(rng, 1)[0]
        snapshot = rng.randint(0, commit_index + 1)
        assert live.edges(probe_reads, probe_writes, snapshot) == ref.edges(
            probe_reads, probe_writes, snapshot
        ), (window, step)
    assert not live._consecutive


def test_shipped_signatures_equal_rehash():
    """record_commit with incremental raws is bit-identical to the
    address-set fallback (the ValidationRequest.read_raw contract)."""
    config = SignatureConfig()
    with_sigs = ConflictDetector(config, 8)
    without = ConflictDetector(config, 8)
    rng = random.Random(7)
    for commit_index, (reads, writes) in enumerate(_stream(rng, 20)):
        read_raw = config.of(reads).raw
        write_raw = config.of(writes).raw
        with_sigs.record_commit(
            commit_index, commit_index, reads, writes,
            read_raw=read_raw, write_raw=write_raw,
        )
        without.record_commit(commit_index, commit_index, reads, writes)
        probe_reads, probe_writes = _stream(rng, 1)[0]
        snapshot = rng.randint(0, commit_index + 1)
        assert with_sigs.edges(
            probe_reads, probe_writes, snapshot
        ) == without.edges(probe_reads, probe_writes, snapshot)


# ----------------------------------------------------------------------
# Boolean packing oracles.
# ----------------------------------------------------------------------


def _bools_to_mask_bit_loop(bools):
    """The original per-bit packing (pre-PR10)."""
    mask = 0
    for i in np.nonzero(bools)[0]:
        mask |= 1 << int(i)
    return mask


def _bools_to_mask_pow2_dot(bools):
    """The dot-against-powers-of-two formulation."""
    pow2 = np.uint64(1) << np.arange(64, dtype=np.uint64)
    mask = 0
    for base in range(0, bools.size, 64):
        chunk = bools[base : base + 64]
        mask |= int((chunk * pow2[: chunk.size]).sum(dtype=np.uint64)) << base
    return mask


@pytest.mark.parametrize("size", [1, 7, 63, 64, 65, 128, 200])
def test_bools_to_mask_matches_oracles(size):
    rng = np.random.default_rng(size)
    for density in (0.0, 0.1, 0.5, 1.0):
        bools = rng.random(size) < density
        expected = _bools_to_mask_bit_loop(bools)
        assert _bools_to_mask(bools) == expected
        assert _bools_to_mask_pow2_dot(bools) == expected
