"""Clock, link and queue timing substrate."""

import pytest

from repro.hw import ClockDomain, InterconnectLink, LatencyQueue, harp2_cci_link, pcie_link


class TestClock:
    def test_period_at_200mhz(self):
        assert ClockDomain(200_000_000).period_ns == pytest.approx(5.0)

    def test_cycles_roundtrip(self):
        clk = ClockDomain(200_000_000)
        assert clk.cycles_to_ns(3) == pytest.approx(15.0)
        assert clk.ns_to_cycles(15.0) == 3
        assert clk.ns_to_cycles(15.1) == 4

    def test_align_up(self):
        clk = ClockDomain(200_000_000)
        assert clk.align_up(12.0) == pytest.approx(15.0)
        assert clk.align_up(15.0) == pytest.approx(15.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ClockDomain(0)
        clk = ClockDomain()
        with pytest.raises(ValueError):
            clk.cycles_to_ns(-1)
        with pytest.raises(ValueError):
            clk.ns_to_cycles(-1.0)

    @pytest.mark.parametrize(
        "frequency_hz",
        [200_000_000, 300_000_000, 333_000_000, 7_000_000, 999_999_937],
    )
    def test_roundtrip_exact_multiples_never_round_up(self, frequency_hz):
        """ns_to_cycles(cycles_to_ns(k)) == k for every k, including
        the large quotients where ``k / f`` carries float error bigger
        than any fixed absolute epsilon (periods like 1e9/333e6 are
        not exactly representable)."""
        clk = ClockDomain(frequency_hz)
        ks = list(range(2048)) + [10**5, 10**6, 10**7, 123_456_789, 10**9]
        for k in ks:
            assert clk.ns_to_cycles(clk.cycles_to_ns(k)) == k

    @pytest.mark.parametrize("frequency_hz", [200_000_000, 333_000_000])
    def test_align_up_is_idempotent(self, frequency_hz):
        clk = ClockDomain(frequency_hz)
        for k in (0, 1, 17, 4095, 10**6, 123_456_789):
            edge = clk.align_up(clk.cycles_to_ns(k))
            assert clk.align_up(edge) == edge

    def test_ceiling_still_strict_above_the_edge(self):
        clk = ClockDomain(200_000_000)
        assert clk.ns_to_cycles(5.000001) == 2
        assert clk.ns_to_cycles(4.999999) == 1
        assert clk.ns_to_cycles(0.0) == 0


class TestLink:
    def test_harp2_constants_match_paper(self):
        link = harp2_cci_link()
        assert link.to_device_ns == 200.0
        assert link.from_device_ns == 400.0
        assert link.round_trip_ns <= 600.0

    def test_pcie_slower(self):
        assert pcie_link().round_trip_ns > harp2_cci_link().round_trip_ns

    def test_streaming_beats(self):
        link = harp2_cci_link()
        assert link.request_ns(1) == pytest.approx(200.0)
        assert link.request_ns(3) == pytest.approx(210.0)

    def test_lines_for_addresses(self):
        assert InterconnectLink.lines_for_addresses(1) == 1
        assert InterconnectLink.lines_for_addresses(8) == 1
        assert InterconnectLink.lines_for_addresses(9) == 2
        assert InterconnectLink.lines_for_addresses(0) == 1

    def test_zero_cachelines_rejected(self):
        with pytest.raises(ValueError):
            harp2_cci_link().request_ns(0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            InterconnectLink(-1.0, 0.0, 0.0)


class TestLatencyQueue:
    def test_visibility_delay(self):
        q = LatencyQueue(latency_ns=100.0)
        q.push("a", now_ns=0.0)
        assert q.pop(now_ns=50.0) is None
        visible, payload = q.pop(now_ns=100.0)
        assert payload == "a"
        assert visible == pytest.approx(100.0)

    def test_fifo_order_for_same_time(self):
        q = LatencyQueue(latency_ns=0.0)
        q.push("a", 0.0)
        q.push("b", 0.0)
        assert q.pop(0.0)[1] == "a"
        assert q.pop(0.0)[1] == "b"

    def test_peek_time(self):
        q = LatencyQueue(latency_ns=10.0)
        assert q.peek_time() is None
        q.push("x", 5.0)
        assert q.peek_time() == pytest.approx(15.0)

    def test_max_depth_tracked(self):
        q = LatencyQueue()
        for i in range(5):
            q.push(i, 0.0)
        assert q.max_depth == 5
        q.pop(0.0)
        assert q.max_depth == 5

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyQueue(-1.0)
