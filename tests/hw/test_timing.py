"""Clock, link and queue timing substrate."""

import pytest

from repro.hw import ClockDomain, InterconnectLink, LatencyQueue, harp2_cci_link, pcie_link


class TestClock:
    def test_period_at_200mhz(self):
        assert ClockDomain(200_000_000).period_ns == pytest.approx(5.0)

    def test_cycles_roundtrip(self):
        clk = ClockDomain(200_000_000)
        assert clk.cycles_to_ns(3) == pytest.approx(15.0)
        assert clk.ns_to_cycles(15.0) == 3
        assert clk.ns_to_cycles(15.1) == 4

    def test_align_up(self):
        clk = ClockDomain(200_000_000)
        assert clk.align_up(12.0) == pytest.approx(15.0)
        assert clk.align_up(15.0) == pytest.approx(15.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ClockDomain(0)
        clk = ClockDomain()
        with pytest.raises(ValueError):
            clk.cycles_to_ns(-1)
        with pytest.raises(ValueError):
            clk.ns_to_cycles(-1.0)


class TestLink:
    def test_harp2_constants_match_paper(self):
        link = harp2_cci_link()
        assert link.to_device_ns == 200.0
        assert link.from_device_ns == 400.0
        assert link.round_trip_ns <= 600.0

    def test_pcie_slower(self):
        assert pcie_link().round_trip_ns > harp2_cci_link().round_trip_ns

    def test_streaming_beats(self):
        link = harp2_cci_link()
        assert link.request_ns(1) == pytest.approx(200.0)
        assert link.request_ns(3) == pytest.approx(210.0)

    def test_lines_for_addresses(self):
        assert InterconnectLink.lines_for_addresses(1) == 1
        assert InterconnectLink.lines_for_addresses(8) == 1
        assert InterconnectLink.lines_for_addresses(9) == 2
        assert InterconnectLink.lines_for_addresses(0) == 1

    def test_zero_cachelines_rejected(self):
        with pytest.raises(ValueError):
            harp2_cci_link().request_ns(0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            InterconnectLink(-1.0, 0.0, 0.0)


class TestLatencyQueue:
    def test_visibility_delay(self):
        q = LatencyQueue(latency_ns=100.0)
        q.push("a", now_ns=0.0)
        assert q.pop(now_ns=50.0) is None
        visible, payload = q.pop(now_ns=100.0)
        assert payload == "a"
        assert visible == pytest.approx(100.0)

    def test_fifo_order_for_same_time(self):
        q = LatencyQueue(latency_ns=0.0)
        q.push("a", 0.0)
        q.push("b", 0.0)
        assert q.pop(0.0)[1] == "a"
        assert q.pop(0.0)[1] == "b"

    def test_peek_time(self):
        q = LatencyQueue(latency_ns=10.0)
        assert q.peek_time() is None
        q.push("x", 5.0)
        assert q.peek_time() == pytest.approx(15.0)

    def test_max_depth_tracked(self):
        q = LatencyQueue()
        for i in range(5):
            q.push(i, 0.0)
        assert q.max_depth == 5
        q.pop(0.0)
        assert q.max_depth == 5

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyQueue(-1.0)
