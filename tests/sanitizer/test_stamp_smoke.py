"""Sanitizer smoke: real STAMP workloads under ROCoCoTM, zero violations."""

import pytest

from repro.runtime import RococoTMBackend
from repro.sanitizer import diff_backends, sanitize_stamp
from repro.stamp import KmeansWorkload, VacationWorkload


@pytest.mark.parametrize(
    "workload_cls,scale",
    [(KmeansWorkload, 0.25), (VacationWorkload, 0.2)],
    ids=["kmeans", "vacation"],
)
def test_stamp_under_rococotm_is_clean(workload_cls, scale):
    report = sanitize_stamp(
        workload_cls, RococoTMBackend(), n_threads=4, scale=scale, seed=1
    )
    assert report.ok, report.summary()
    assert report.committed > 0


def test_differential_mode_runs_both_sides():
    from repro.runtime import CoarseLockBackend

    report = diff_backends(
        KmeansWorkload,
        RococoTMBackend(),
        CoarseLockBackend(),
        n_threads=4,
        scale=0.2,
        seed=1,
    )
    assert report.ok, report.summary()
    assert "vs" in report.backend
    assert any("committed state" in note for note in report.notes)
