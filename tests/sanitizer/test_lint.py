"""The AST lint pass: each rule demonstrated on a negative fixture."""

from pathlib import Path

from repro.sanitizer import lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def codes(errors):
    return sorted({e.code for e in errors})


class TestNegativeFixtures:
    def test_tm001_ambient_entropy(self):
        errors = lint_paths([FIXTURES / "cc" / "tm001_bad_entropy.py"])
        assert codes(errors) == ["TM001"]
        assert len(errors) >= 3  # import time, random.random, time.time
        assert any("random.random" in e.message for e in errors)

    def test_tm002_mutable_default(self):
        errors = lint_paths([FIXTURES / "misc" / "tm002_bad_default.py"])
        assert codes(errors) == ["TM002"]
        assert len(errors) == 2  # list literal + dict() call

    def test_tm003_undeclared_hot_path_mutation(self):
        errors = lint_paths([FIXTURES / "runtime" / "tm003_bad_backend.py"])
        assert codes(errors) == ["TM003"]
        roots = {e.message.split("'")[1] for e in errors}
        assert roots == {"self.global_clock", "self.readers"}

    def test_tm004_unfrozen_record(self):
        errors = lint_paths([FIXTURES / "cc" / "tm004_bad_record.py"])
        assert codes(errors) == ["TM004"]
        assert {e.message.split("'")[1] for e in errors} == {
            "LeakyView",
            "MutableTrace",
        }

    def test_suppression_marker(self):
        errors = lint_paths([FIXTURES / "cc" / "suppressed_ok.py"])
        assert errors == []


class TestScoping:
    def test_tm001_only_inside_validator_dirs(self):
        source = "import time\n\nSTAMP = time.time()\n"
        assert lint_source(source, "src/repro/cc/clock.py")
        assert lint_source(source, "src/repro/bench.py") == []

    def test_tm001_allows_injected_random(self):
        source = (
            "from random import Random\n\n"
            "def make(seed):\n    return Random(seed)\n"
        )
        assert lint_source(source, "src/repro/cc/trace.py") == []

    def test_tm004_only_inside_record_dirs(self):
        source = (
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass PlotView:\n    x: int\n"
        )
        assert lint_source(source, "src/repro/cc/views.py")
        assert lint_source(source, "src/repro/plots.py") == []

    def test_tm003_declaration_silences(self):
        bad = (
            "class CountingBackend:\n"
            "    def __init__(self):\n"
            "        self.hits = 0\n"
            "    def read(self, tid, addr, now):\n"
            "        self.hits += 1\n"
            "        return 0, now\n"
        )
        assert lint_source(bad, "src/repro/runtime/x.py")
        declared = bad.replace(
            "class CountingBackend:\n",
            "class CountingBackend:\n    _sanitizer_locked = (\"hits\",)\n",
        )
        assert lint_source(declared, "src/repro/runtime/x.py") == []

    def test_syntax_error_reported_not_raised(self):
        errors = lint_source("def broken(:\n", "src/repro/cc/x.py")
        assert len(errors) == 1 and errors[0].code == "TM000"


class TestRepoIsClean:
    def test_src_lints_clean(self):
        root = Path(__file__).resolve().parents[2] / "src"
        assert lint_paths([root]) == []
