"""The event-log format: construction, queries, JSONL round-trip."""

import pytest

from repro.sanitizer import EventLog, TxEvent


class TestTxEvent:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            TxEvent("jump", 1, 0, 0.0)

    def test_frozen(self):
        event = TxEvent("read", 1, 0, 3.0, addr=7, value=42, version=-1)
        with pytest.raises(Exception):
            event.addr = 8

    def test_to_dict_drops_unused_fields(self):
        event = TxEvent("commit", 3, 1, 9.0)
        data = event.to_dict()
        assert "addr" not in data and "version" not in data
        assert data["kind"] == "commit" and data["attempt"] == 3


class TestEventLog:
    def _log(self):
        log = EventLog()
        log.append(TxEvent("begin", 1, 0, 0.0))
        log.append(TxEvent("read", 1, 0, 1.0, addr=5, value=0, version=-1))
        log.append(TxEvent("write", 1, 0, 2.0, addr=5, value=1))
        log.append(TxEvent("commit", 1, 0, 3.0))
        log.append(TxEvent("begin", 2, 1, 0.5))
        log.append(TxEvent("abort", 2, 1, 1.5, cause="cpu-validation"))
        return log

    def test_queries(self):
        log = self._log()
        assert len(log) == 6
        assert [e.kind for e in log.of_attempt(1)] == ["begin", "read", "write", "commit"]
        reads = log.reads_of(1)
        assert len(reads) == 1 and reads[0].version == -1
        assert log.of_attempt(2)[-1].cause == "cpu-validation"

    def test_jsonl_round_trip(self):
        log = self._log()
        text = log.dump_jsonl()
        back = EventLog.load_jsonl(text)
        assert list(back) == list(log)
