"""Fixture: the same TM001 offence, suppressed line-by-line."""

import random


def draw():
    return random.random()  # tm-lint: ignore
