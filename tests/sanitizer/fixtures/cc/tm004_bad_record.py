"""Negative fixture: unfrozen record dataclass in cc/ (TM004)."""

from dataclasses import dataclass


@dataclass
class LeakyView:
    txn: int


@dataclass(frozen=False)
class MutableTrace:
    ops: tuple
