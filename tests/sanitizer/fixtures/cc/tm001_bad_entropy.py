"""Negative fixture: ambient entropy inside a cc/ module (TM001)."""

import random
import time


def draw():
    return random.random()


def stamp():
    return time.time()
