"""Negative fixture: mutable default argument (TM002, any directory)."""


def enqueue(item, queue=[]):
    queue.append(item)
    return queue


def tally(key, counts=dict()):
    counts[key] = counts.get(key, 0) + 1
    return counts
