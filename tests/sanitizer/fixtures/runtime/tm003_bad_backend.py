"""Negative fixture: undeclared hot-path mutation in a backend (TM003)."""


class RacyBackend:
    def __init__(self):
        self.global_clock = 0
        self.readers = []

    def read(self, tid, addr, now):
        self.global_clock += 1
        self._note(tid)
        return 0, now

    def write(self, tid, addr, value, now):
        return now

    def _note(self, tid):
        self.readers.append(tid)
