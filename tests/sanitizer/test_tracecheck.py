"""Oracle replay for the trace-level CC engines."""

from repro.cc import ALL_ALGORITHMS
from repro.cc.engine import TraceCC
from repro.cc.trace import generate_trace
from repro.sanitizer import check_trace_algorithm, record_trace_history


class _CommitEverything(TraceCC):
    """Broken validator: accepts every transaction unconditionally."""

    name = "commit-everything"

    def validate(self, view, committed):
        return True


class TestRecordTraceHistory:
    def test_history_matches_decisions(self):
        trace = generate_trace(n_txns=60, ops_per_txn=8, locations=64, seed=7)
        algo = ALL_ALGORITHMS[0](concurrency=8)
        result, history = record_trace_history(algo, trace)
        assert len(result.decisions) == 60
        assert len(history.committed) == result.commits

    def test_reads_carry_observed_versions(self):
        trace = generate_trace(n_txns=40, ops_per_txn=6, locations=32, seed=3)
        algo = ALL_ALGORITHMS[0](concurrency=4)
        _, history = record_trace_history(algo, trace)
        committed = set(history.committed)
        for txn in committed:
            for version in history.record(txn).reads.values():
                assert version == -1 or version in committed


class TestCheckTraceAlgorithm:
    def test_real_algorithms_pass(self):
        trace = generate_trace(n_txns=80, ops_per_txn=8, locations=64, seed=11)
        for algo_cls in ALL_ALGORITHMS:
            report = check_trace_algorithm(algo_cls(concurrency=12), trace)
            assert report.ok, report.summary()

    def test_commit_everything_flagged(self):
        trace = generate_trace(n_txns=80, ops_per_txn=8, locations=32, seed=11)
        report = check_trace_algorithm(_CommitEverything(concurrency=12), trace)
        assert not report.ok
        assert report.by_kind("serializability")
