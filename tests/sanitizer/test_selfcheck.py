"""The self-check fixtures: every oracle catches its known-bad input."""

from repro.sanitizer.selfcheck import CHECKS, run_self_check


def test_all_fixtures_detected():
    lines = []
    assert run_self_check(emit=lines.append)
    assert len(lines) == len(CHECKS)
    assert all(line.startswith("ok") for line in lines)


def test_check_names_cover_the_oracles():
    names = {name for name, _ in CHECKS}
    assert {
        "write-skew",
        "lost-update",
        "writeback-race",
        "opacity",
        "lint-rules",
        "clean-run",
    } <= names
