"""The dynamic sanitizer: clean backends pass, broken ones are caught."""

import pytest

from repro.runtime import (
    CoarseLockBackend,
    Memory,
    Read,
    RococoTMBackend,
    Simulator,
    SnapshotIsolationBackend,
    TinySTMBackend,
    TinySTMEtlBackend,
    Transaction,
    TsxBackend,
    Work,
    Write,
)
from repro.sanitizer import SanitizerBackend
from repro.sanitizer.pytest_plugin import SanitizerHarness
from repro.sanitizer.selfcheck import _NoValidationSTM, _TornWritebackSTM

from ..runtime.conftest import make_transfer_program

SERIALIZABLE = [
    CoarseLockBackend,
    TinySTMBackend,
    TinySTMEtlBackend,
    TsxBackend,
    RococoTMBackend,
]


def run_sanitized_transfers(inner, n_threads=6, seed=0, transfers=15, n_accounts=8):
    memory = Memory()
    base = memory.alloc(n_accounts)
    for i in range(n_accounts):
        memory.store(base + i, 100)
    backend = SanitizerBackend(inner)
    sim = Simulator(backend, n_threads, memory=memory, seed=seed)
    sim.run([make_transfer_program(base, n_accounts, transfers)] * n_threads)
    return backend


class TestCleanBackends:
    @pytest.mark.parametrize("inner_cls", SERIALIZABLE, ids=lambda c: c.name)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_no_violations(self, inner_cls, seed):
        backend = run_sanitized_transfers(inner_cls(), seed=seed)
        report = backend.report(workload="bank")
        assert report.ok, report.summary()
        assert report.committed == 6 * 15

    def test_event_log_shape(self):
        backend = run_sanitized_transfers(TinySTMBackend(), n_threads=2, transfers=5)
        committed = set(backend.committed_attempts)
        for attempt in committed:
            kinds = [e.kind for e in backend.log.of_attempt(attempt)]
            assert kinds[0] == "begin" and kinds[-1] == "commit"
        # Every read names a version: a committed attempt, a direct-store
        # pseudo-attempt, itself (read-own-write), or -1 (initial).
        valid = committed | set(backend.nt_attempts) | {-1}
        for event in backend.log:
            if event.kind == "read":
                assert event.version in valid or event.version == event.attempt


class TestCatchesBrokenBackends:
    def test_si_write_skew_flagged(self):
        memory = Memory()
        base = memory.alloc(2)
        memory.store(base, 1)
        memory.store(base + 1, 1)

        def make_program(offset):
            def body():
                x = yield Read(base)
                y = yield Read(base + 1)
                yield Work(800)
                if x + y >= 2:
                    yield Write(base + offset, 0)

            def program(tid):
                yield Transaction(body)

            return program

        backend = SanitizerBackend(SnapshotIsolationBackend())
        Simulator(backend, 2, memory=memory, seed=0).run(
            [make_program(0), make_program(1)]
        )
        report = backend.report(workload="write-skew")
        assert not report.ok
        assert report.by_kind("serializability")

    def test_lost_updates_flagged(self):
        backend = run_sanitized_transfers(
            _NoValidationSTM(), n_threads=8, transfers=20, n_accounts=4
        )
        report = backend.report(workload="bank")
        assert report.by_kind("serializability") or report.by_kind("lost-update")

    def test_torn_writeback_flagged(self):
        backend = run_sanitized_transfers(
            _TornWritebackSTM(), n_threads=2, transfers=5, n_accounts=4
        )
        report = backend.report(workload="bank")
        assert report.by_kind("writeback-race")


class TestDirectStores:
    def test_phase_stores_become_pseudo_txns(self):
        """Non-transactional stores (workload phase code) must fold into
        the history as committed pseudo-transactions, not false races."""
        memory = Memory()
        counter = memory.alloc(1)
        memory.store(counter, 0)

        def body():
            value = yield Read(counter)
            yield Write(counter, value + 1)

        def program(tid):
            yield Transaction(body)
            memory.store(counter, 100)  # direct reset between transactions
            yield Transaction(body)

        backend = SanitizerBackend(TinySTMBackend())
        Simulator(backend, 1, memory=memory, seed=0).run([program])
        report = backend.report(workload="direct-store")
        assert report.ok, report.summary()
        assert len(backend.nt_attempts) == 1
        assert memory.load(counter) == 101


class TestHarness:
    def test_clean_backend_passes(self):
        harness = SanitizerHarness()
        inner = TinySTMBackend()
        memory = Memory()
        base = memory.alloc(4)
        for i in range(4):
            memory.store(base + i, 100)
        backend = harness.wrap(inner)
        Simulator(backend, 4, memory=memory, seed=0).run(
            [make_transfer_program(base, 4, 10)] * 4
        )
        reports = harness.check()
        assert len(reports) == 1 and reports[0].ok

    def test_broken_backend_fails_check(self):
        harness = SanitizerHarness()
        memory = Memory()
        base = memory.alloc(4)
        for i in range(4):
            memory.store(base + i, 100)
        backend = harness.wrap(_NoValidationSTM())
        Simulator(backend, 8, memory=memory, seed=5).run(
            [make_transfer_program(base, 4, 20)] * 8
        )
        with pytest.raises(AssertionError, match="TM sanitizer violations"):
            harness.check()

    def test_fixture_integration(self, tm_sanitizer):
        inner = RococoTMBackend()
        memory = Memory()
        base = memory.alloc(8)
        for i in range(8):
            memory.store(base + i, 100)
        backend = tm_sanitizer.wrap(inner)
        Simulator(backend, 4, memory=memory, seed=2).run(
            [make_transfer_program(base, 8, 10)] * 4
        )
        # teardown runs the oracles
