"""The interned mask cache must be invisible (PR 10).

Property tests pinning the cache-backed fast paths to the uncached
ground truth: every address's cached query mask, matrix row, and
memoized bit positions must equal what the raw hash lanes produce,
for random addresses and random (bits, partitions, seed) geometries —
the verdict-bit-identity invariant's foundation (DESIGN.md).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signatures import SignatureConfig
from repro.signatures.hashing import hash_rows

element = st.integers(min_value=0, max_value=2**64 - 1)
element_lists = st.lists(element, max_size=24)

geometries = st.sampled_from(
    [(512, 4, 0x5EED), (512, 8, 1), (256, 4, 11), (64, 2, 7), (1024, 4, 3)]
)


def _uncached_positions(config, e):
    width = config.partition_bits
    return [i * width + h(e) for i, h in enumerate(config.hashes)]


def _uncached_mask(config, e):
    mask = 0
    for pos in _uncached_positions(config, e):
        mask |= 1 << pos
    return mask


class TestMaskCacheTransparency:
    @given(geometries, element_lists)
    @settings(max_examples=60)
    def test_cached_query_equals_uncached_bit_positions(self, geo, elements):
        bits, partitions, seed = geo
        config = SignatureConfig(bits, partitions, seed=seed)
        sig = config.of(elements)
        for probe in elements + [0, 1, 2**63]:
            uncached = all(
                sig.raw >> pos & 1 for pos in _uncached_positions(config, probe)
            )
            assert sig.query(probe) == uncached

    @given(geometries, element_lists)
    @settings(max_examples=60)
    def test_cached_masks_equal_uncached(self, geo, elements):
        bits, partitions, seed = geo
        config = SignatureConfig(bits, partitions, seed=seed)
        for e in elements:
            assert config.query_mask(e) == _uncached_mask(config, e)
            assert config.bit_positions(e) == _uncached_positions(config, e)

    @given(geometries, element_lists)
    @settings(max_examples=60)
    def test_batch_and_scalar_intern_agree(self, geo, elements):
        """One config interns via the vectorized batch, another one
        element at a time; masks, rows, and matrix must agree."""
        bits, partitions, seed = geo
        batched = SignatureConfig(bits, partitions, seed=seed)
        scalar = SignatureConfig(bits, partitions, seed=seed)
        batched.intern_rows(elements)
        for e in elements:
            scalar.query_mask(e)
        assert batched._masks == scalar._masks
        assert batched._index == scalar._index
        n = batched.mask_cache_entries
        assert (
            batched.mask_matrix()[:n] == scalar.mask_matrix()[:n]
        ).all()

    @given(element_lists)
    @settings(max_examples=60)
    def test_raw_of_equals_insert_loop(self, elements):
        config = SignatureConfig()
        assert config.raw_of(elements) == config.of(elements).raw

    @given(geometries, element_lists)
    @settings(max_examples=60)
    def test_hash_rows_matches_scalar_lanes(self, geo, elements):
        bits, partitions, seed = geo
        config = SignatureConfig(bits, partitions, seed=seed)
        if not elements:
            return
        rows = hash_rows(config.hashes, elements)
        for j, e in enumerate(elements):
            for i, h in enumerate(config.hashes):
                assert int(rows[j][i]) == h(e)

    def test_hit_miss_accounting(self):
        config = SignatureConfig()
        config.intern_rows([1, 2, 3])
        assert config.mask_cache_misses == 3
        assert config.mask_cache_hits == 0
        config.intern_rows([1, 2, 4])
        assert config.mask_cache_misses == 4
        assert config.mask_cache_hits == 2
        config.query_mask(1)
        assert config.mask_cache_hits == 3
        assert config.mask_cache_entries == 4

    def test_cache_grows_past_initial_capacity(self):
        config = SignatureConfig()
        elements = list(range(1000))  # > _INITIAL_ROWS
        rows = config.intern_rows(elements)
        assert list(rows) == list(range(1000))
        for e in (0, 500, 999):
            assert config.query_mask(e) == _uncached_mask(config, e)
