"""Multiply-shift hashing lanes."""

import pytest

from repro.signatures import MultiplyShiftHash, hash_family


class TestMultiplyShift:
    def test_output_range(self):
        h = MultiplyShiftHash(0x9E3779B97F4A7C15 | 1, out_bits=7)
        for x in range(0, 10_000, 97):
            assert 0 <= h(x) < 128

    def test_even_multiplier_rejected(self):
        with pytest.raises(ValueError):
            MultiplyShiftHash(2, out_bits=4)

    def test_out_bits_bounds(self):
        with pytest.raises(ValueError):
            MultiplyShiftHash(3, out_bits=0)
        with pytest.raises(ValueError):
            MultiplyShiftHash(3, out_bits=65)

    def test_deterministic(self):
        h = MultiplyShiftHash(3, out_bits=8)
        assert h(12345) == h(12345)

    def test_spreads_sequential_keys(self):
        """Multiply-shift must not collapse arithmetic sequences (the
        common address pattern) onto a few buckets."""
        h = hash_family(1, out_bits=7, seed=3)[0]
        buckets = {h(8 * i) for i in range(128)}  # cacheline-strided
        assert len(buckets) > 48


class TestFamily:
    def test_family_size_and_independence(self):
        fam = hash_family(4, out_bits=7, seed=1)
        assert len(fam) == 4
        assert len({h.multiplier for h in fam}) == 4

    def test_family_deterministic_in_seed(self):
        a = hash_family(4, out_bits=7, seed=9)
        b = hash_family(4, out_bits=7, seed=9)
        assert [h.multiplier for h in a] == [h.multiplier for h in b]

    def test_different_seeds_differ(self):
        a = hash_family(4, out_bits=7, seed=1)
        b = hash_family(4, out_bits=7, seed=2)
        assert [h.multiplier for h in a] != [h.multiplier for h in b]

    def test_multipliers_odd(self):
        assert all(h.multiplier % 2 for h in hash_family(8, 6))
