"""The Fig. 7 false-positivity model vs the real implementation."""

import pytest

from repro.signatures import (
    SignatureConfig,
    bit_occupancy,
    figure7_rows,
    intersection_false_positive,
    measure_intersection_false_positive,
    measure_query_false_positive,
    query_false_positive,
)


class TestClosedForms:
    def test_occupancy_zero_elements(self):
        assert bit_occupancy(0, 512, 4) == 0.0

    def test_occupancy_monotone(self):
        values = [bit_occupancy(n, 512, 4) for n in range(0, 64, 4)]
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            bit_occupancy(-1, 512, 4)

    def test_query_fp_small_for_rococotm_point(self):
        """At the chosen m=512 with n=8, queries are almost exact."""
        assert query_false_positive(8, 512, 4) < 1e-4

    def test_intersection_fp_much_larger_than_query_fp(self):
        """Fig. 7's headline: false set-overlap dwarfs query FP."""
        for n in (4, 8, 16):
            q = query_false_positive(n, 512, 4)
            i = intersection_false_positive(n, n, 512, 4)
            assert i > 10 * q

    def test_intersection_fp_acceptable_at_8_elements(self):
        """The §5.2 design point: intersecting <= 8-element signatures
        keeps false overlap low; big sets would not."""
        at_8 = intersection_false_positive(8, 8, 512, 4)
        at_64 = intersection_false_positive(64, 64, 512, 4)
        assert at_8 < 0.05
        assert at_64 > 0.5

    def test_bigger_filter_helps(self):
        assert intersection_false_positive(8, 8, 1024, 4) < intersection_false_positive(
            8, 8, 512, 4
        )

    def test_figure7_rows_structure(self):
        rows = figure7_rows(max_elements=8)
        assert {r["n"] for r in rows} == set(range(1, 9))
        for row in rows:
            assert 0.0 <= row["query_fp"] <= 1.0
            assert 0.0 <= row["intersect_fp"] <= 1.0


class TestModelMatchesImplementation:
    """Monte-Carlo rates of the real signatures track the closed forms."""

    def test_query_fp_matches(self):
        config = SignatureConfig(bits=256, partitions=4, seed=5)
        n = 24
        predicted = query_false_positive(n, 256, 4)
        measured = measure_query_false_positive(n, config, trials=3000, seed=1)
        assert measured == pytest.approx(predicted, abs=0.02)

    def test_intersection_fp_matches(self):
        config = SignatureConfig(bits=256, partitions=4, seed=5)
        predicted = intersection_false_positive(8, 8, 256, 4)
        measured = measure_intersection_false_positive(8, 8, config, trials=3000, seed=2)
        assert measured == pytest.approx(predicted, abs=0.05)

    def test_no_false_negative_ever_measured(self):
        config = SignatureConfig(bits=128, partitions=4, seed=7)
        import random

        rng = random.Random(3)
        for _ in range(200):
            elements = [rng.getrandbits(40) for _ in range(12)]
            sig = config.of(elements)
            assert all(sig.query(e) for e in elements)
