"""Bloom signatures: soundness, bit layout, set algebra."""

import pytest

from repro.signatures import BloomSignature, SignatureConfig


@pytest.fixture(scope="module")
def config():
    return SignatureConfig(bits=512, partitions=4)


class TestConfig:
    def test_rococotm_default_shape(self, config):
        assert config.bits == 512
        assert config.partitions == 4
        assert config.partition_bits == 128

    def test_uneven_partitions_rejected(self):
        with pytest.raises(ValueError):
            SignatureConfig(bits=512, partitions=3)

    def test_non_power_of_two_partition_rejected(self):
        with pytest.raises(ValueError):
            SignatureConfig(bits=96, partitions=2)

    def test_bit_positions_one_per_partition(self, config):
        positions = config.bit_positions(0xDEADBEEF)
        assert len(positions) == 4
        for i, pos in enumerate(positions):
            assert i * 128 <= pos < (i + 1) * 128

    def test_deterministic_across_instances(self):
        a = SignatureConfig(bits=512, partitions=4, seed=1)
        b = SignatureConfig(bits=512, partitions=4, seed=1)
        assert a.bit_positions(12345) == b.bit_positions(12345)

    def test_of_builds_from_iterable(self, config):
        sig = config.of([1, 2, 3])
        assert sig.query(1) and sig.query(2) and sig.query(3)


class TestSoundness:
    def test_no_false_negatives(self, config):
        """The load-bearing guarantee: a member always queries true."""
        import random

        rng = random.Random(42)
        elements = [rng.getrandbits(48) for _ in range(64)]
        sig = config.of(elements)
        assert all(sig.query(e) for e in elements)

    def test_empty_signature_rejects_everything(self, config):
        sig = config.new()
        assert not sig.query(1)
        assert sig.is_empty()

    def test_disjoint_signature_intersection_sound(self, config):
        """intersects() == False guarantees set disjointness is
        *possible*; what must hold is: shared element => intersects."""
        a = config.of([1, 2, 3])
        b = config.of([3, 4, 5])
        assert a.intersects(b)

    def test_clear(self, config):
        sig = config.of([1])
        sig.clear()
        assert sig.is_empty()


class TestAlgebra:
    def test_union_contains_both(self, config):
        u = config.of([1, 2]).union(config.of([3]))
        assert u.query(1) and u.query(2) and u.query(3)

    def test_unite_in_place(self, config):
        sig = config.of([1])
        sig.unite(config.of([2]))
        assert sig.query(1) and sig.query(2)

    def test_union_equals_bulk_insert(self, config):
        assert config.of([1, 2]).union(config.of([3, 4])) == config.of([1, 2, 3, 4])

    def test_intersect_subset_of_operands(self, config):
        a, b = config.of([1, 2, 5]), config.of([2, 9])
        inter = a.intersect(b)
        assert inter.raw & ~a.raw == 0
        assert inter.raw & ~b.raw == 0

    def test_incompatible_configs_rejected(self):
        a = SignatureConfig(bits=512, partitions=4)
        b = SignatureConfig(bits=512, partitions=4)
        with pytest.raises(ValueError):
            a.new().union(b.new())

    def test_copy_independent(self, config):
        a = config.of([1])
        b = a.copy()
        b.insert(2)
        assert not a.query(2)

    def test_popcount_bounded_by_k_times_n(self, config):
        sig = config.of(range(10))
        assert 0 < sig.popcount() <= 4 * 10
