"""Property-based tests for bloom signatures (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signatures import BloomSignature, SignatureConfig

CONFIG = SignatureConfig(bits=256, partitions=4, seed=11)

element = st.integers(min_value=0, max_value=2**48)
element_sets = st.sets(element, max_size=24)


class TestSignatureLaws:
    @given(element_sets)
    def test_no_false_negatives(self, elements):
        sig = CONFIG.of(elements)
        assert all(sig.query(e) for e in elements)

    @given(element_sets, element_sets)
    def test_union_superset_queries(self, a, b):
        union = CONFIG.of(a).union(CONFIG.of(b))
        assert all(union.query(e) for e in a | b)

    @given(element_sets, element_sets)
    def test_union_commutative_and_raw_or(self, a, b):
        sa, sb = CONFIG.of(a), CONFIG.of(b)
        assert sa.union(sb) == sb.union(sa)
        assert sa.union(sb).raw == sa.raw | sb.raw

    @given(element_sets, element_sets)
    def test_intersection_sound(self, a, b):
        """A real overlap is always detected (no false negatives on
        the intersection test)."""
        sa, sb = CONFIG.of(a), CONFIG.of(b)
        if a & b:
            assert sa.intersects(sb)

    @given(element_sets, element_sets)
    def test_intersect_symmetric(self, a, b):
        sa, sb = CONFIG.of(a), CONFIG.of(b)
        assert sa.intersects(sb) == sb.intersects(sa)
        assert sa.intersect(sb) == sb.intersect(sa)

    @given(element_sets)
    def test_incremental_equals_bulk(self, elements):
        incremental = CONFIG.new()
        for e in elements:
            incremental.insert(e)
        assert incremental == CONFIG.of(elements)

    @given(element_sets)
    def test_empty_only_when_no_elements(self, elements):
        sig = CONFIG.of(elements)
        assert sig.is_empty() == (len(elements) == 0)

    @given(element_sets, element_sets)
    def test_unite_matches_union(self, a, b):
        sig = CONFIG.of(a)
        sig.unite(CONFIG.of(b))
        assert sig == CONFIG.of(a).union(CONFIG.of(b))

    @given(element_sets)
    def test_popcount_bounds(self, elements):
        sig = CONFIG.of(elements)
        n = len(elements)
        assert sig.popcount() <= CONFIG.partitions * n
        if n:
            # Every non-empty signature sets at least one bit in each
            # of the k partitions (one per element, possibly shared).
            assert sig.popcount() >= CONFIG.partitions
