"""Property-based tests over the trace-level CC algorithms."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import (
    ALL_ALGORITHMS,
    BackwardOCC,
    ForwardOCC,
    KahnCC,
    RococoCC,
    ToccCommitTime,
    ToccStartTime,
    TwoPhaseLocking,
    generate_trace,
)

trace_params = st.tuples(
    st.integers(20, 80),    # n_txns
    st.integers(2, 10),     # ops_per_txn
    st.integers(16, 128),   # locations
    st.integers(0, 50),     # seed
    st.sampled_from([2, 4, 8, 16]),  # concurrency
)


def _ground_truth_acyclic(views):
    """Exact dependency graph over committed TxnViews."""
    graph = nx.DiGraph()
    graph.add_nodes_from(v.txn for v in views)
    for view in views:
        for read in view.reads:
            if read.version in {v.txn for v in views} and read.version != view.txn:
                graph.add_edge(read.version, view.txn)
            for other in views:
                if (
                    other.txn != view.txn
                    and read.addr in other.write_set
                    and other.commit_time > read.version_time
                ):
                    graph.add_edge(view.txn, other.txn)
        for write in view.writes:
            for other in views:
                if (
                    other.txn != view.txn
                    and write.addr in other.write_set
                    and other.commit_time < view.commit_time
                ):
                    graph.add_edge(other.txn, view.txn)
    return nx.is_directed_acyclic_graph(graph)


class TestAllAlgorithmsSound:
    @given(trace_params)
    @settings(max_examples=20, deadline=None)
    def test_every_algorithm_commits_serializable_subsets(self, params):
        n_txns, ops, locations, seed, concurrency = params
        ops = min(ops, locations)
        trace = generate_trace(n_txns, ops, locations, seed=seed)
        for algo_cls in ALL_ALGORITHMS + (KahnCC,):
            captured = []

            class Recorder(algo_cls):  # type: ignore[misc, valid-type]
                def on_commit(self, view):
                    super().on_commit(view)
                    captured.append(view)

            Recorder(concurrency).run(trace)
            assert _ground_truth_acyclic(captured), algo_cls.name


class TestDominanceLaws:
    @given(trace_params)
    @settings(max_examples=25, deadline=None)
    def test_rococo_aborts_only_stale_readers(self, params):
        """The *per-decision* dominance theorem: every transaction
        ROCoCo aborts had a stale read (a forward edge) — i.e. a
        TOCC validator over the same committed prefix would have
        aborted it too.  (The end-to-end abort *counts* can invert on
        adversarial traces because the extra transactions ROCoCo
        commits change the downstream conflict landscape — the greedy
        deficiency of §4.1; hypothesis found such a trace, and the
        aggregate Fig. 9 claim lives in the statistics, not in a
        per-trace theorem.)"""
        n_txns, ops, locations, seed, concurrency = params
        ops = min(ops, locations)
        trace = generate_trace(n_txns, ops, locations, seed=seed)

        aborted_forward_masks = []

        class Probe(RococoCC):
            def validate(self, view, committed):
                ok = super().validate(view, committed)
                if not ok:
                    # Recompute the forward mask the same way validate
                    # did, to witness the stale read.
                    forward = 0
                    for read in view.reads:
                        for commit_time, index in reversed(
                            self._writers.get(read.addr, ())
                        ):
                            if commit_time > read.version_time:
                                forward |= 1 << index
                            else:
                                break
                    aborted_forward_masks.append(forward)
                return ok

        Probe(concurrency).run(trace)
        assert all(mask != 0 for mask in aborted_forward_masks)

    @given(trace_params)
    @settings(max_examples=15, deadline=None)
    def test_aggregate_dominance_over_seeds(self, params):
        """The Fig. 9 statistical claim, on a 10-seed aggregate."""
        n_txns, ops, locations, _seed, concurrency = params
        ops = min(ops, locations)
        totals = {"2PL": 0, "TOCC": 0, "ROCoCo": 0}
        for seed in range(10):
            trace = generate_trace(n_txns, ops, locations, seed=seed)
            for algo in (TwoPhaseLocking, ToccCommitTime, RococoCC):
                totals[algo.name] += algo(concurrency).run(trace).aborts
        # Aggregated over seeds the ordering is robust; allow a tiny
        # absolute slack for the path-dependence noted above.
        slack = max(2, totals["TOCC"] // 20)
        assert totals["ROCoCo"] <= totals["TOCC"] + slack
        assert totals["TOCC"] <= totals["2PL"] + slack

    @given(trace_params)
    @settings(max_examples=25, deadline=None)
    def test_kahn_equals_commit_time_tocc(self, params):
        n_txns, ops, locations, seed, concurrency = params
        ops = min(ops, locations)
        trace = generate_trace(n_txns, ops, locations, seed=seed)
        assert (
            KahnCC(concurrency).run(trace).decisions
            == ToccCommitTime(concurrency).run(trace).decisions
        )

    @given(trace_params)
    @settings(max_examples=25, deadline=None)
    def test_bocc_no_better_than_focc(self, params):
        n_txns, ops, locations, seed, concurrency = params
        ops = min(ops, locations)
        trace = generate_trace(n_txns, ops, locations, seed=seed)
        assert (
            BackwardOCC(concurrency).run(trace).aborts
            >= ForwardOCC(concurrency).run(trace).aborts
        )

    @given(trace_params)
    @settings(max_examples=25, deadline=None)
    def test_start_time_no_better_than_commit_time(self, params):
        """Commit-time timestamps dominate start-time ones (Fig. 2) —
        but like every abort-count ordering here, only statistically:
        a single adversarial trace can invert the counts because the
        transactions one variant aborts reshape the conflict landscape
        for the rest (hypothesis found (22, 9, 121, seed=9, c=16)).
        So aggregate over seeds, with the same slack as the Fig. 9
        aggregate above."""
        n_txns, ops, locations, _seed, concurrency = params
        ops = min(ops, locations)
        eager_total = lazy_total = 0
        for seed in range(10):
            trace = generate_trace(n_txns, ops, locations, seed=seed)
            eager_total += ToccStartTime(
                concurrency, read_placement="spread"
            ).run(trace).aborts
            lazy_total += ToccCommitTime(
                concurrency, read_placement="spread"
            ).run(trace).aborts
        slack = max(2, eager_total // 20)
        assert lazy_total <= eager_total + slack

    @given(trace_params)
    @settings(max_examples=15, deadline=None)
    def test_serial_concurrency_never_aborts(self, params):
        n_txns, ops, locations, seed, _ = params
        ops = min(ops, locations)
        trace = generate_trace(n_txns, ops, locations, seed=seed)
        for algo_cls in ALL_ALGORITHMS:
            assert algo_cls(1).run(trace).aborts == 0, algo_cls.name
