"""The micro-benchmark trace generator (§6.1 parameters)."""

import pytest

from repro.cc import OpKind, collision_probability, generate_trace


class TestGeneration:
    def test_trace_shape(self):
        trace = generate_trace(n_txns=10, ops_per_txn=8, seed=1)
        assert len(trace) == 10
        assert all(len(t.ops) == 8 for t in trace)

    def test_addresses_distinct_within_txn(self):
        trace = generate_trace(n_txns=50, ops_per_txn=16, seed=2)
        for txn in trace:
            addrs = [op.addr for op in txn.ops]
            assert len(addrs) == len(set(addrs))

    def test_addresses_in_range(self):
        trace = generate_trace(n_txns=20, ops_per_txn=4, locations=64, seed=3)
        for txn in trace:
            assert all(0 <= op.addr < 64 for op in txn.ops)

    def test_read_fraction_roughly_half(self):
        trace = generate_trace(n_txns=200, ops_per_txn=16, seed=4)
        reads = sum(
            1 for t in trace for op in t.ops if op.kind is OpKind.READ
        )
        total = 200 * 16
        assert 0.45 < reads / total < 0.55

    def test_deterministic_by_seed(self):
        a = generate_trace(n_txns=10, ops_per_txn=4, seed=7)
        b = generate_trace(n_txns=10, ops_per_txn=4, seed=7)
        assert a == b
        c = generate_trace(n_txns=10, ops_per_txn=4, seed=8)
        assert a != c

    def test_too_many_ops_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(n_txns=1, ops_per_txn=100, locations=10)

    def test_footprints(self):
        trace = generate_trace(n_txns=5, ops_per_txn=6, seed=5)
        for txn in trace:
            assert txn.read_set | txn.write_set == {op.addr for op in txn.ops}
            assert not (txn.read_set & txn.write_set)


class TestCollisionProbability:
    def test_paper_range(self):
        """The paper: N = 4..32 corresponds to 1.5%-63.8% collisions."""
        assert collision_probability(4) == pytest.approx(0.0155, abs=1e-3)
        assert collision_probability(32) == pytest.approx(0.638, abs=1e-2)

    def test_monotone_in_n(self):
        probs = [collision_probability(n) for n in range(4, 33, 4)]
        assert probs == sorted(probs)

    def test_zero_ops(self):
        assert collision_probability(0) == 0.0
