"""Regression: every CC algorithm commits only serializable histories.

Fig. 9 compares the algorithms' abort *rates*; the comparison silently
assumes each algorithm is sound — that whatever it commits admits a
serial order.  This suite makes the assumption a checked invariant:
for every algorithm (including KahnCC, which the figure sweep omits),
across seeds × contention levels × both read-placement models, the
committed history must pass the serializability oracle (acyclic
``->_rw`` plus a serial-replay-verified witness).
"""

import pytest

from repro.cc import ALL_ALGORITHMS, KahnCC
from repro.cc.trace import generate_trace
from repro.sanitizer import check_trace_algorithm

ALGORITHMS = ALL_ALGORITHMS + (KahnCC,)

SEEDS = (11, 12, 13)

#: (ops_per_txn, locations) — collision probability rises left to right.
CONTENTION = (
    pytest.param(4, 1024, id="low"),
    pytest.param(8, 256, id="medium"),
    pytest.param(12, 64, id="high"),
)


@pytest.mark.parametrize("algo_cls", ALGORITHMS, ids=lambda c: c.name)
@pytest.mark.parametrize("read_placement", ["start", "spread"])
@pytest.mark.parametrize("ops_per_txn,locations", CONTENTION)
@pytest.mark.parametrize("seed", SEEDS)
def test_commits_only_serializable_histories(
    algo_cls, read_placement, ops_per_txn, locations, seed
):
    trace = generate_trace(
        n_txns=100, ops_per_txn=ops_per_txn, locations=locations, seed=seed
    )
    algo = algo_cls(concurrency=16, read_placement=read_placement)
    report = check_trace_algorithm(algo, trace)
    assert report.ok, report.summary()
    # The check must not be vacuous: something committed.
    assert report.committed > 0
