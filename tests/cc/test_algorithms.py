"""Behavioural tests for the CC contenders, plus cross-algorithm laws."""

import pytest

from repro.cc import (
    BackwardOCC,
    ForwardOCC,
    RococoCC,
    ToccCommitTime,
    ToccStartTime,
    TwoPhaseLocking,
    generate_trace,
)


def rates(algo_cls, trace, concurrency, **kwargs):
    return algo_cls(concurrency, **kwargs).run(trace)


@pytest.fixture(scope="module")
def contended_trace():
    return generate_trace(n_txns=120, ops_per_txn=12, locations=64, seed=11)


@pytest.fixture(scope="module")
def sparse_trace():
    return generate_trace(n_txns=120, ops_per_txn=2, locations=4096, seed=12)


class TestNoContention:
    def test_everything_commits_when_disjoint(self, sparse_trace):
        for algo in (TwoPhaseLocking, BackwardOCC, ForwardOCC,
                     ToccStartTime, ToccCommitTime, RococoCC):
            result = rates(algo, sparse_trace, 4)
            assert result.abort_rate < 0.05, algo.name

    def test_serial_execution_never_aborts(self, contended_trace):
        # T = 1: no overlap at all.
        for algo in (TwoPhaseLocking, BackwardOCC, ForwardOCC,
                     ToccStartTime, ToccCommitTime, RococoCC):
            result = rates(algo, contended_trace, 1)
            assert result.aborts == 0, algo.name


class TestOrderings:
    """The abort-rate dominance relations the paper relies on."""

    @pytest.mark.parametrize("concurrency", [4, 16])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rococo_no_worse_than_tocc(self, concurrency, seed):
        trace = generate_trace(n_txns=150, ops_per_txn=12, locations=128, seed=seed)
        tocc = rates(ToccCommitTime, trace, concurrency)
        rococo = rates(RococoCC, trace, concurrency)
        assert rococo.aborts <= tocc.aborts

    @pytest.mark.parametrize("concurrency", [4, 16])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_commit_time_no_worse_than_start_time(self, concurrency, seed):
        trace = generate_trace(n_txns=150, ops_per_txn=12, locations=128, seed=seed)
        lazy = rates(ToccCommitTime, trace, concurrency, read_placement="spread")
        eager = rates(ToccStartTime, trace, concurrency, read_placement="spread")
        assert lazy.aborts <= eager.aborts

    def test_start_time_strictly_worse_somewhere(self):
        """Fig. 2(a): with reads spread through execution, eager
        timestamps abort reads of fresh versions that LSA forgives."""
        diffs = 0
        for seed in range(6):
            trace = generate_trace(n_txns=200, ops_per_txn=12, locations=96, seed=seed)
            lazy = rates(ToccCommitTime, trace, 16, read_placement="spread")
            eager = rates(ToccStartTime, trace, 16, read_placement="spread")
            diffs += eager.aborts - lazy.aborts
        assert diffs > 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tocc_beats_2pl_under_contention(self, seed):
        trace = generate_trace(n_txns=200, ops_per_txn=16, locations=128, seed=seed)
        two_pl = rates(TwoPhaseLocking, trace, 16)
        tocc = rates(ToccCommitTime, trace, 16)
        assert tocc.aborts < two_pl.aborts

    @pytest.mark.parametrize("seed", [0, 1])
    def test_focc_matches_commit_time_tocc(self, seed):
        """In the trace model they abort exactly the same txns (see
        focc.py docstring)."""
        trace = generate_trace(n_txns=150, ops_per_txn=8, locations=64, seed=seed)
        focc = rates(ForwardOCC, trace, 8)
        tocc = rates(ToccCommitTime, trace, 8)
        assert focc.decisions == tocc.decisions

    @pytest.mark.parametrize("seed", [0, 1])
    def test_bocc_no_better_than_focc(self, seed):
        trace = generate_trace(n_txns=150, ops_per_txn=8, locations=64, seed=seed)
        bocc = rates(BackwardOCC, trace, 8)
        focc = rates(ForwardOCC, trace, 8)
        assert bocc.aborts >= focc.aborts


class TestWindowedRococo:
    def test_window_only_adds_aborts(self, contended_trace):
        unbounded = rates(RococoCC, contended_trace, 16)
        windowed = rates(RococoCC, contended_trace, 16, window=8)
        assert windowed.aborts >= unbounded.aborts

    def test_large_window_equals_unbounded(self, contended_trace):
        unbounded = rates(RococoCC, contended_trace, 16)
        windowed = rates(RococoCC, contended_trace, 16, window=1024)
        assert windowed.decisions == unbounded.decisions


class TestSerializabilityOracle:
    """Every algorithm's committed subset must be serializable."""

    @pytest.mark.parametrize(
        "algo", [TwoPhaseLocking, BackwardOCC, ForwardOCC,
                 ToccStartTime, ToccCommitTime, RococoCC]
    )
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_committed_subset_serializable(self, algo, seed):
        import networkx as nx

        from repro.cc.engine import INITIAL, CommittedTxn, TraceCC

        captured = []

        class Recorder(algo):  # type: ignore[misc, valid-type]
            def on_commit(self, view):
                super().on_commit(view)
                captured.append(view)

        trace = generate_trace(n_txns=120, ops_per_txn=10, locations=48, seed=seed)
        Recorder(12).run(trace)

        # Ground-truth dependency graph over committed views.
        graph = nx.DiGraph()
        views = {v.txn: v for v in captured}
        graph.add_nodes_from(views)
        commit_time = {v.txn: v.commit_time for v in captured}
        for view in captured:
            for read in view.reads:
                if read.version in views and read.version != view.txn:
                    graph.add_edge(read.version, view.txn)  # RAW
                # WAR: we precede every committed writer that overwrote
                # our observed version.
                for other in captured:
                    if other.txn == view.txn:
                        continue
                    if read.addr in other.write_set and other.commit_time > read.version_time:
                        graph.add_edge(view.txn, other.txn)
            for write in view.writes:
                for other in captured:
                    if other.txn == view.txn:
                        continue
                    if write.addr in other.write_set and other.commit_time < view.commit_time:
                        graph.add_edge(other.txn, view.txn)  # WAW
        assert nx.is_directed_acyclic_graph(graph), algo.name


class TestKahnEquivalence:
    """§4.1: Kahn-based online cycle detection == commit-time TOCC."""

    @pytest.mark.parametrize("concurrency", [4, 16])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_identical_decisions(self, concurrency, seed):
        from repro.cc import KahnCC

        trace = generate_trace(n_txns=150, ops_per_txn=10, locations=96, seed=seed)
        kahn = rates(KahnCC, trace, concurrency)
        tocc = rates(ToccCommitTime, trace, concurrency)
        assert kahn.decisions == tocc.decisions

    def test_emitted_order_is_commit_order(self):
        from repro.cc import KahnCC

        trace = generate_trace(n_txns=60, ops_per_txn=6, locations=64, seed=9)
        algo = KahnCC(8)
        result = algo.run(trace)
        committed_ids = [t.txn for t, ok in zip(trace, result.decisions) if ok]
        assert algo.emitted_order == committed_ids
