"""The shared timed execution model."""

import pytest

from repro.cc import INITIAL, TraceCC, VersionStore, generate_trace
from repro.cc.engine import TxnView


class AlwaysCommit(TraceCC):
    name = "always"

    def validate(self, view, committed):
        return True


class AlwaysAbort(TraceCC):
    name = "never"

    def validate(self, view, committed):
        return False


class TestVersionStore:
    def test_initial_version(self):
        store = VersionStore()
        assert store.observe(0, 10.0) == (INITIAL, 0.0)
        assert store.current(0) == (INITIAL, 0.0)

    def test_observe_respects_time(self):
        store = VersionStore()
        store.install(0, commit_time=5.0, writer=1)
        store.install(0, commit_time=9.0, writer=2)
        assert store.observe(0, 4.0) == (INITIAL, 0.0)
        assert store.observe(0, 5.0) == (1, 5.0)
        assert store.observe(0, 7.0) == (1, 5.0)
        assert store.observe(0, 9.5) == (2, 9.0)
        assert store.current(0) == (2, 9.0)


class TestDriver:
    def test_concurrency_must_be_positive(self):
        with pytest.raises(ValueError):
            AlwaysCommit(0)

    def test_all_commit(self):
        trace = generate_trace(n_txns=20, ops_per_txn=4, seed=1)
        result = AlwaysCommit(4).run(trace)
        assert result.commits == 20
        assert result.abort_rate == 0.0

    def test_all_abort(self):
        trace = generate_trace(n_txns=20, ops_per_txn=4, seed=1)
        result = AlwaysAbort(4).run(trace)
        assert result.aborts == 20
        assert result.abort_rate == 1.0

    def test_op_times_inside_interval(self):
        captured = []

        class Capture(AlwaysCommit):
            def validate(self, view, committed):
                captured.append(view)
                return True

        trace = generate_trace(n_txns=5, ops_per_txn=4, seed=2)
        Capture(8, read_placement="spread").run(trace)
        for view in captured:
            for read in view.reads:
                assert view.start < read.time < view.commit_time
            for write in view.writes:
                assert view.start < write.time < view.commit_time
            assert view.commit_time == view.start + 8

    def test_start_placement_reads_at_snapshot(self):
        captured = []

        class Capture(AlwaysCommit):
            def validate(self, view, committed):
                captured.append(view)
                return True

        trace = generate_trace(n_txns=5, ops_per_txn=4, seed=2)
        Capture(8).run(trace)  # default placement: "start"
        for view in captured:
            for read in view.reads:
                assert read.time == view.start

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError):
            AlwaysCommit(4, read_placement="middle")

    def test_reads_observe_committed_writes_only(self):
        """With concurrency T, txn i never observes txns > i - T."""
        observed = []

        class Capture(AlwaysCommit):
            def validate(self, view, committed):
                observed.append(view)
                return True

        trace = generate_trace(n_txns=60, ops_per_txn=8, seed=3, locations=16)
        Capture(4).run(trace)
        for view in observed:
            for read in view.reads:
                if read.version != INITIAL:
                    # The writer's commit (writer + T) precedes the read.
                    assert read.version + 4 <= read.time

    def test_overlapping_suffix(self):
        views = []

        class Capture(AlwaysCommit):
            def validate(self, view, committed):
                overlaps = list(self.overlapping(view, committed))
                views.append((view, [p.view.txn for p in overlaps]))
                return True

        trace = generate_trace(n_txns=10, ops_per_txn=2, seed=4)
        Capture(3).run(trace)
        for view, overlap_ids in views:
            expected = [t for t in range(max(0, view.txn - 2), view.txn)]
            assert overlap_ids == expected
