"""The anomaly catalog and its classification matrix."""

import pytest

from repro.semantics import CATALOG, classify
from repro.semantics.anomalies import dirty_write, lost_update, read_skew, write_skew


class TestCatalogMatrix:
    @pytest.mark.parametrize("case", CATALOG, ids=lambda c: c.name)
    def test_classification_matches_expectation(self, case):
        result = classify(case.build())
        assert result["snapshot-isolation"] == case.admitted_by_si, case.name
        assert result["serializability"] == case.admitted_by_serializability, case.name

    def test_write_skew_is_the_si_ser_gap(self):
        gaps = [
            c for c in CATALOG if c.admitted_by_si and not c.admitted_by_serializability
        ]
        assert [c.name for c in gaps] == ["write-skew"]

    def test_dirty_write_is_the_reverse_gap(self):
        reverse = [
            c for c in CATALOG if not c.admitted_by_si and c.admitted_by_serializability
        ]
        assert [c.name for c in reverse] == ["dirty-write"]


class TestIndividualAnomalies:
    def test_lost_update_cycle(self):
        h = lost_update()
        rw = h.rw_dependencies()
        assert rw.related(1, 2) and rw.related(2, 1)

    def test_read_skew_torn_view(self):
        h = read_skew()
        rec = h.record(1)
        assert rec.reads[0] == -1  # old x
        assert rec.reads[1] == 2   # new y

    def test_dirty_write_collapses_to_waw(self):
        h = dirty_write()
        rw = h.rw_dependencies()
        assert rw.related(1, 2)
        assert not rw.related(2, 1)

    def test_builders_are_fresh(self):
        assert write_skew() is not write_skew()
