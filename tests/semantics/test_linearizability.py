"""Linearizability as single-object strict serializability (§3.2 fn. 4/5)."""

import pytest

from repro.semantics import (
    Relation,
    History,
    interval_order_implies_acyclic_for_single_objects,
    is_linearizable,
    is_single_object_history,
    linearization_points,
)


def single_op_history(steps):
    """Steps: (txn, 'r'|'w', obj, begin_order) executed sequentially."""
    h = History()
    for txn, kind, obj in steps:
        h.begin(txn)
        if kind == "r":
            h.read(txn, obj)
        else:
            h.write(txn, obj)
        h.commit(txn)
    return h


class TestSingleObjectRestriction:
    def test_single_op_history_recognized(self):
        h = single_op_history([(1, "w", 0), (2, "r", 0)])
        assert is_single_object_history(h)

    def test_multi_object_txn_rejected(self):
        h = History()
        h.begin(1)
        h.read(1, 0)
        h.write(1, 1)
        h.commit(1)
        assert not is_single_object_history(h)

    def test_linearizability_requires_single_ops(self):
        h = History()
        h.begin(1)
        h.read(1, 0)
        h.write(1, 1)
        h.commit(1)
        with pytest.raises(ValueError):
            is_linearizable(h)


class TestLinearizability:
    def test_sequential_ops_linearizable(self):
        h = single_op_history([(1, "w", 0), (2, "r", 0), (3, "w", 0)])
        assert is_linearizable(h)
        points = linearization_points(h)
        assert points.index(1) < points.index(2) < points.index(3)

    def test_stale_read_after_write_not_linearizable(self):
        # Writer finishes entirely before reader begins, yet the reader
        # observes the initial version: forbidden by real-time order.
        h = History()
        h.begin(1)
        h.write(1, 0)
        h.commit(1)
        h.begin(2)
        h.read(2, 0, version=-1)
        h.commit(2)
        assert not is_linearizable(h)
        assert linearization_points(h) is None

    def test_concurrent_ops_linearize_either_way(self):
        h = History()
        h.begin(1)
        h.begin(2)
        h.write(1, 0)
        h.read(2, 0, version=-1)  # overlapped: reading old value is fine
        h.commit(1)
        h.commit(2)
        assert is_linearizable(h)


class TestFootnote4:
    """Irreflexive interval orders over single objects are acyclic."""

    def test_implication_holds_on_interval_order(self):
        rel = Relation(pairs=[(1, 2), (2, 3), (1, 3)])
        assert interval_order_implies_acyclic_for_single_objects(rel)

    def test_implication_vacuous_on_2plus2(self):
        rel = Relation(pairs=[(1, 2), (3, 4)])  # premise fails
        assert interval_order_implies_acyclic_for_single_objects(rel)

    def test_implication_vacuous_on_broken_chain(self):
        rel = Relation(pairs=[(1, 2), (2, 3)])  # not transitive: premise fails
        assert interval_order_implies_acyclic_for_single_objects(rel)
