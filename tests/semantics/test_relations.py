"""Unit tests for finite binary relations and order axioms."""

import pytest

from repro.semantics import Relation


def rel(pairs, elements=()):
    return Relation(elements, pairs)


class TestConstruction:
    def test_empty_relation_has_no_pairs(self):
        r = Relation()
        assert len(r) == 0
        assert list(r.pairs()) == []

    def test_add_relates_and_extends_carrier(self):
        r = Relation()
        r.add(1, 2)
        assert r.related(1, 2)
        assert not r.related(2, 1)
        assert r.elements == frozenset({1, 2})

    def test_carrier_may_exceed_pairs(self):
        r = Relation(elements=[1, 2, 3], pairs=[(1, 2)])
        assert 3 in r.elements
        assert r.concurrent(1, 3)

    def test_discard_removes_pair(self):
        r = rel([(1, 2)])
        r.discard(1, 2)
        assert not r.related(1, 2)
        assert r.elements == frozenset({1, 2})

    def test_copy_is_independent(self):
        r = rel([(1, 2)])
        c = r.copy()
        c.add(2, 3)
        assert not r.related(2, 3)
        assert c.related(2, 3)

    def test_contains_and_len(self):
        r = rel([(1, 2), (2, 3)])
        assert (1, 2) in r
        assert (3, 1) not in r
        assert len(r) == 2

    def test_equality(self):
        assert rel([(1, 2)]) == rel([(1, 2)])
        assert rel([(1, 2)]) != rel([(2, 1)])
        assert rel([(1, 2)]) != rel([(1, 2)], elements=[9])


class TestAxioms:
    def test_irreflexive(self):
        assert rel([(1, 2)]).is_irreflexive()
        assert not rel([(1, 1)]).is_irreflexive()

    def test_asymmetric(self):
        assert rel([(1, 2)]).is_asymmetric()
        assert not rel([(1, 2), (2, 1)]).is_asymmetric()
        assert not rel([(1, 1)]).is_asymmetric()

    def test_transitive(self):
        assert rel([(1, 2), (2, 3), (1, 3)]).is_transitive()
        assert not rel([(1, 2), (2, 3)]).is_transitive()
        assert rel([]).is_transitive()

    def test_total(self):
        assert rel([(1, 2), (2, 3), (1, 3)]).is_total()
        assert not rel([(1, 2)], elements=[1, 2, 3]).is_total()

    def test_strict_partial_order(self):
        assert rel([(1, 2), (2, 3), (1, 3)]).is_strict_partial_order()
        assert not rel([(1, 2), (2, 3)]).is_strict_partial_order()

    def test_strict_total_order(self):
        chain = Relation.from_order([1, 2, 3])
        assert chain.is_strict_total_order()
        assert not rel([(1, 2)], elements=[1, 2, 3]).is_strict_total_order()

    def test_acyclic_simple(self):
        assert rel([(1, 2), (2, 3)]).is_acyclic()
        assert not rel([(1, 2), (2, 1)]).is_acyclic()
        assert not rel([(1, 1)]).is_acyclic()

    def test_acyclic_long_cycle(self):
        assert not rel([(1, 2), (2, 3), (3, 4), (4, 1)]).is_acyclic()

    def test_acyclic_diamond(self):
        assert rel([(1, 2), (1, 3), (2, 4), (3, 4)]).is_acyclic()


class TestConstructions:
    def test_transitive_closure(self):
        closure = rel([(1, 2), (2, 3)]).transitive_closure()
        assert closure.related(1, 3)
        assert closure.is_transitive()

    def test_closure_of_cycle_relates_everything(self):
        closure = rel([(1, 2), (2, 1)]).transitive_closure()
        assert closure.related(1, 1)
        assert closure.related(2, 2)

    def test_closure_preserves_carrier(self):
        r = rel([(1, 2)], elements=[7])
        assert 7 in r.transitive_closure().elements

    def test_extends(self):
        weak = rel([(1, 2)])
        strong = rel([(1, 2), (1, 3)])
        assert strong.extends(weak)
        assert not weak.extends(strong)

    def test_topological_order_respects_pairs(self):
        order = rel([(1, 2), (1, 3), (3, 4)]).topological_order()
        assert order.index(1) < order.index(2)
        assert order.index(1) < order.index(3)
        assert order.index(3) < order.index(4)

    def test_topological_order_of_cycle_is_none(self):
        assert rel([(1, 2), (2, 1)]).topological_order() is None

    def test_linear_extension_is_total_and_extends(self):
        r = rel([(1, 2), (3, 4)])
        ext = r.linear_extension()
        assert ext.is_strict_total_order()
        assert ext.extends(r)

    def test_linear_extension_of_cycle_is_none(self):
        assert rel([(1, 2), (2, 3), (3, 1)]).linear_extension() is None

    def test_restrict(self):
        r = rel([(1, 2), (2, 3), (1, 3)])
        sub = r.restrict([1, 3])
        assert sub.elements == frozenset({1, 3})
        assert sub.related(1, 3)
        assert not sub.related(1, 2)

    def test_from_order(self):
        r = Relation.from_order([3, 1, 2])
        assert r.related(3, 1) and r.related(3, 2) and r.related(1, 2)
        assert r.is_strict_total_order()

    def test_concurrent(self):
        r = rel([(1, 2)], elements=[3])
        assert r.concurrent(1, 3)
        assert not r.concurrent(1, 2)
