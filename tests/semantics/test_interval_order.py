"""Interval orders, the 2+2 obstruction, phantom orderings (Fig. 2/3)."""

import pytest

from repro.semantics import (
    Interval,
    Relation,
    admissible_timestamp_orders,
    find_two_plus_two,
    history_from_steps,
    history_real_time_intervals,
    interval_precedence,
    is_interval_order,
    is_strict_serializable,
    phantom_orderings,
    serializable_but_not_strictly,
)


class TestIntervals:
    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_precedence_is_disjointness(self):
        a, b = Interval(0, 1, "a"), Interval(2, 3, "b")
        assert a.precedes(b)
        assert not b.precedes(a)
        assert not a.overlaps(b)

    def test_overlap(self):
        a, b = Interval(0, 2, "a"), Interval(1, 3, "b")
        assert a.overlaps(b)
        assert not a.precedes(b)

    def test_interval_precedence_relation(self):
        rel = interval_precedence(
            [Interval(0, 1, "a"), Interval(2, 3, "b"), Interval(0.5, 2.5, "c")]
        )
        assert rel.related("a", "b")
        assert rel.concurrent("a", "c")
        assert rel.concurrent("c", "b")


class TestTwoPlusTwo:
    def test_detects_fig3b_pattern(self):
        rel = Relation(pairs=[(1, 2), (3, 4)])
        found = find_two_plus_two(rel)
        assert found is not None
        a, b, c, d = found
        assert {a, b, c, d} == {1, 2, 3, 4}

    def test_cross_edge_dissolves_pattern(self):
        rel = Relation(pairs=[(1, 2), (3, 4), (1, 4), (3, 2)])
        assert find_two_plus_two(rel) is None

    def test_interval_precedence_is_interval_order(self):
        # Any set of intervals induces an interval order: no 2+2.
        rel = interval_precedence(
            [
                Interval(0, 1, 1),
                Interval(2, 3, 2),
                Interval(0.5, 1.5, 3),
                Interval(2.5, 4, 4),
            ]
        )
        assert is_interval_order(rel)

    def test_two_chains_not_interval_order(self):
        assert not is_interval_order(Relation(pairs=[(1, 2), (3, 4)]))


class TestPhantomOrdering:
    def _fig2b_history(self):
        """Fig. 2(b): serializable as t2 -> t3 -> t1, but timestamps
        forbid ordering t2 before t1 (t1 ends before t2 begins).

        x is object 0, y is object 1.  t3 starts early and reads the
        initial y; t1 then overwrites y and commits; t2 writes x and
        commits; t3 finally reads t2's x and commits.
        """
        h = history_from_steps(
            [
                ("begin", 3),
                ("read", 3, 1),           # t3 reads y (initial version)
                ("begin", 1),
                ("write", 1, 1),          # t1 overwrites y -> t3 ->rw t1
                ("commit", 1),
                ("begin", 2),
                ("write", 2, 0),          # t2 writes x
                ("commit", 2),
                ("read", 3, 0),           # t3 reads t2's x -> t2 ->rw t3
                ("commit", 3),
            ]
        )
        return h

    def test_fig2b_is_serializable(self):
        h = self._fig2b_history()
        rw = h.rw_dependencies()
        assert rw.is_acyclic()
        assert rw.related(2, 3)
        assert rw.related(3, 1)

    def test_fig2b_needs_reordering_against_real_time(self):
        # t3 must precede t1 (t1 overwrote y that t3 read), yet t1
        # finished before t3 began: not strict serializable.
        h = self._fig2b_history()
        rw = h.rw_dependencies()
        rt = h.real_time_order()
        assert serializable_but_not_strictly(rw, rt)

    def test_phantom_orderings_present(self):
        h = self._fig2b_history()
        phantoms = phantom_orderings(h.rw_dependencies(), h.real_time_order())
        assert (1, 3) in phantoms or (1, 2) in phantoms

    def test_no_timestamp_scheme_commits_all_of_fig2b(self):
        h = self._fig2b_history()
        intervals = history_real_time_intervals(h)
        orders = admissible_timestamp_orders(h.rw_dependencies(), intervals)
        assert orders == []

    def test_strict_serializable_when_compatible(self):
        h = history_from_steps(
            [
                ("begin", 1), ("write", 1, 0), ("commit", 1),
                ("begin", 2), ("read", 2, 0), ("commit", 2),
            ]
        )
        assert is_strict_serializable(h.rw_dependencies(), h.real_time_order())
