"""Property-based tests for the semantics layer (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics import (
    History,
    Relation,
    history_is_serializable,
    is_interval_order,
    is_serializable,
    replay_serially,
    satisfies_snapshot_isolation,
    serialization_witness,
)

elements = st.integers(min_value=0, max_value=7)
pairs = st.tuples(elements, elements).filter(lambda p: p[0] != p[1])
relations = st.lists(pairs, max_size=16).map(lambda ps: Relation(range(8), ps))


class TestRelationLaws:
    @given(relations)
    def test_transitive_closure_is_transitive_and_contains(self, rel):
        closure = rel.transitive_closure()
        assert closure.is_transitive()
        assert closure.extends(rel)

    @given(relations)
    def test_closure_idempotent(self, rel):
        once = rel.transitive_closure()
        twice = once.transitive_closure()
        assert set(once.pairs()) == set(twice.pairs())

    @given(relations)
    def test_linear_extension_iff_acyclic(self, rel):
        ext = rel.linear_extension()
        if rel.is_acyclic():
            assert ext is not None
            assert ext.is_strict_total_order()
            assert ext.extends(rel)
        else:
            assert ext is None

    @given(relations)
    def test_topological_order_respects_all_pairs(self, rel):
        order = rel.topological_order()
        if order is not None:
            position = {e: i for i, e in enumerate(order)}
            for a, b in rel.pairs():
                assert position[a] < position[b]

    @given(relations)
    def test_restriction_preserves_acyclicity(self, rel):
        if rel.is_acyclic():
            assert rel.restrict(range(4)).is_acyclic()

    @given(relations)
    def test_total_orders_are_interval_orders(self, rel):
        ext = rel.linear_extension()
        if ext is not None:
            assert is_interval_order(ext)


# ----------------------------------------------------------------------
# Random histories: serial generation is always serializable; witness
# orders always replay.
# ----------------------------------------------------------------------

history_ops = st.lists(
    st.tuples(
        st.integers(0, 3),              # txn slot
        st.sampled_from(["read", "write"]),
        st.integers(0, 4),              # object
    ),
    min_size=1,
    max_size=24,
)


def _serial_history(ops):
    """Execute txns 0..3 serially: txn k's ops happen in block k."""
    history = History()
    for txn in range(4):
        mine = [op for op in ops if op[0] == txn]
        history.begin(txn)
        for _, kind, obj in mine:
            if kind == "read":
                history.read(txn, obj)
            else:
                history.write(txn, obj)
        history.commit(txn)
    return history


def _interleaved_history(ops):
    """All txns begin first, then ops interleave in list order."""
    history = History()
    for txn in range(4):
        history.begin(txn)
    for txn, kind, obj in ops:
        if kind == "read":
            history.read(txn, obj)
        else:
            history.write(txn, obj)
    for txn in range(4):
        history.commit(txn)
    return history


class TestHistoryLaws:
    @given(history_ops)
    def test_serial_histories_always_serializable(self, ops):
        history = _serial_history(ops)
        assert history_is_serializable(history)

    @given(history_ops)
    def test_serial_histories_satisfy_si(self, ops):
        assert satisfies_snapshot_isolation(_serial_history(ops))

    @given(history_ops)
    def test_witness_always_replays(self, ops):
        history = _interleaved_history(ops)
        rw = history.rw_dependencies()
        order = serialization_witness(rw)
        if order is not None:
            assert replay_serially(history, order)

    @given(history_ops)
    def test_dependencies_irreflexive(self, ops):
        rw = _interleaved_history(ops).rw_dependencies()
        assert rw.is_irreflexive()
