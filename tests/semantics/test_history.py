"""Unit tests for multi-version histories and dependency extraction."""

import pytest

from repro.semantics import INITIAL_VERSION, History, history_from_steps


class TestRecording:
    def test_begin_twice_rejected(self):
        h = History()
        h.begin(1)
        with pytest.raises(ValueError):
            h.begin(1)

    def test_read_before_begin_rejected(self):
        h = History()
        with pytest.raises(ValueError):
            h.read(1, 0)

    def test_ops_after_commit_rejected(self):
        h = History()
        h.begin(1)
        h.commit(1)
        with pytest.raises(ValueError):
            h.write(1, 0)

    def test_read_defaults_to_latest_committed_version(self):
        h = History()
        h.begin(1)
        h.write(1, 0)
        h.commit(1)
        h.begin(2)
        assert h.read(2, 0) == 1

    def test_read_of_untouched_object_sees_initial_version(self):
        h = History()
        h.begin(1)
        assert h.read(1, 0) == INITIAL_VERSION

    def test_first_read_version_is_retained(self):
        h = History()
        h.begin(1)
        h.read(1, 0, version=INITIAL_VERSION)
        h.read(1, 0, version=42)  # later read: snapshot keeps the first
        assert h.record(1).reads[0] == INITIAL_VERSION

    def test_aborted_txn_leaves_no_version(self):
        h = History()
        h.begin(1)
        h.write(1, 0)
        h.abort(1)
        assert h.latest_version(0) == INITIAL_VERSION
        assert h.committed == []

    def test_version_order(self):
        h = history_from_steps(
            [
                ("begin", 1), ("write", 1, 0), ("commit", 1),
                ("begin", 2), ("write", 2, 0), ("commit", 2),
            ]
        )
        assert h.version_order(0) == [INITIAL_VERSION, 1, 2]

    def test_footprint_properties(self):
        h = history_from_steps(
            [("begin", 1), ("read", 1, 5), ("write", 1, 6), ("commit", 1)]
        )
        rec = h.record(1)
        assert rec.read_set == {5}
        assert rec.write_set == {6}
        assert not rec.is_read_only

    def test_read_only_footprint(self):
        h = history_from_steps([("begin", 1), ("read", 1, 5), ("commit", 1)])
        assert h.record(1).is_read_only


class TestDependencies:
    def test_raw_edge(self):
        h = history_from_steps(
            [
                ("begin", 1), ("write", 1, 0), ("commit", 1),
                ("begin", 2), ("read", 2, 0), ("commit", 2),
            ]
        )
        assert h.rw_dependencies().related(1, 2)

    def test_war_edge(self):
        # 2 reads the initial version; 1 then overwrites it.
        h = history_from_steps(
            [
                ("begin", 2), ("read", 2, 0), ("commit", 2),
                ("begin", 1), ("write", 1, 0), ("commit", 1),
            ]
        )
        rw = h.rw_dependencies()
        assert rw.related(2, 1)
        assert not rw.related(1, 2)

    def test_waw_edge(self):
        h = history_from_steps(
            [
                ("begin", 1), ("write", 1, 0), ("commit", 1),
                ("begin", 2), ("write", 2, 0), ("commit", 2),
            ]
        )
        assert h.rw_dependencies().related(1, 2)

    def test_war_targets_only_next_version(self):
        # Reader of v_init precedes writer 1 but not transitively-added 2.
        h = history_from_steps(
            [
                ("begin", 3), ("read", 3, 0), ("commit", 3),
                ("begin", 1), ("write", 1, 0), ("commit", 1),
                ("begin", 2), ("write", 2, 0), ("commit", 2),
            ]
        )
        rw = h.rw_dependencies()
        assert rw.related(3, 1)
        assert not rw.related(3, 2)  # only via transitivity through 1

    def test_aborted_txns_excluded_by_default(self):
        h = History()
        h.begin(1)
        h.write(1, 0)
        h.abort(1)
        h.begin(2)
        h.read(2, 0)
        h.commit(2)
        rw = h.rw_dependencies()
        assert 1 not in rw.elements

    def test_write_skew_creates_cycle(self):
        h = history_from_steps(
            [
                ("begin", 1), ("begin", 2),
                ("read", 1, 0), ("read", 1, 1),
                ("read", 2, 0), ("read", 2, 1),
                ("write", 1, 0), ("write", 2, 1),
                ("commit", 1), ("commit", 2),
            ]
        )
        assert not h.rw_dependencies().is_acyclic()

    def test_real_time_order(self):
        h = history_from_steps(
            [
                ("begin", 1), ("commit", 1),
                ("begin", 2), ("commit", 2),
            ]
        )
        rt = h.real_time_order()
        assert rt.related(1, 2)
        assert not rt.related(2, 1)

    def test_overlapping_txns_are_rt_concurrent(self):
        h = history_from_steps(
            [
                ("begin", 1), ("begin", 2),
                ("commit", 1), ("commit", 2),
            ]
        )
        assert h.real_time_order().concurrent(1, 2)
