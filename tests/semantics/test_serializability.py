"""Serializability: acyclicity iff-condition, witnesses, replay oracle."""

import pytest

from repro.semantics import (
    Relation,
    assert_serializable,
    explain_cycle,
    history_from_steps,
    history_is_serializable,
    is_serializable,
    replay_serially,
    serialization_witness,
)


def chain(*pairs):
    return Relation(pairs=pairs)


class TestAcyclicityCondition:
    def test_acyclic_is_serializable(self):
        assert is_serializable(chain((1, 2), (2, 3)))

    def test_cyclic_is_not_serializable(self):
        assert not is_serializable(chain((1, 2), (2, 1)))

    def test_witness_extends_dependencies(self):
        rw = chain((1, 2), (3, 2), (1, 3))
        order = serialization_witness(rw)
        assert order is not None
        for a, b in rw.pairs():
            assert order.index(a) < order.index(b)

    def test_witness_none_for_cycle(self):
        assert serialization_witness(chain((1, 2), (2, 1))) is None

    def test_explain_cycle_returns_closed_walk(self):
        rw = chain((1, 2), (2, 3), (3, 1))
        cycle = explain_cycle(rw)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        for a, b in zip(cycle, cycle[1:]):
            assert rw.related(a, b)

    def test_explain_cycle_none_when_acyclic(self):
        assert explain_cycle(chain((1, 2), (2, 3))) is None


class TestHistoryOracle:
    def _serializable_history(self):
        return history_from_steps(
            [
                ("begin", 1), ("write", 1, 0), ("commit", 1),
                ("begin", 2), ("read", 2, 0), ("write", 2, 1), ("commit", 2),
            ]
        )

    def _write_skew_history(self):
        return history_from_steps(
            [
                ("begin", 1), ("begin", 2),
                ("read", 1, 0), ("read", 1, 1),
                ("read", 2, 0), ("read", 2, 1),
                ("write", 1, 0), ("write", 2, 1),
                ("commit", 1), ("commit", 2),
            ]
        )

    def test_history_is_serializable(self):
        assert history_is_serializable(self._serializable_history())

    def test_write_skew_not_serializable(self):
        assert not history_is_serializable(self._write_skew_history())

    def test_assert_serializable_returns_replayable_order(self):
        h = self._serializable_history()
        order = assert_serializable(h)
        assert replay_serially(h, order)

    def test_assert_serializable_raises_with_cycle(self):
        with pytest.raises(AssertionError, match="cycle"):
            assert_serializable(self._write_skew_history())

    def test_replay_detects_wrong_order(self):
        h = self._serializable_history()
        assert replay_serially(h, [1, 2])
        assert not replay_serially(h, [2, 1])

    def test_subset_serializability(self):
        # The full set is cyclic, but aborting one leg restores it.
        h = self._write_skew_history()
        assert history_is_serializable(h, txns=[1])
        assert history_is_serializable(h, txns=[2])

    def test_reordering_against_commit_order_is_allowed(self):
        # Fig. 2(a)-style: t1 reads initial x, t2 writes x and commits
        # first; serializing t1 before t2 works even though t2
        # committed first.
        h = history_from_steps(
            [
                ("begin", 1), ("begin", 2),
                ("read", 1, 0),
                ("write", 2, 0), ("commit", 2),
                ("write", 1, 1), ("commit", 1),
            ]
        )
        order = assert_serializable(h)
        assert order.index(1) < order.index(2)
