"""The Fig. 3(a) semantics lattice, as executable implications.

The paper's formalization orders semantics by strength: each arrow in
the lattice adds axioms, so a stronger semantics implies every weaker
one.  These tests assert the implications on random histories and
exhibit the separating examples for each strict inclusion.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics import (
    History,
    history_from_steps,
    history_is_serializable,
    is_linearizable,
    is_single_object_history,
    is_strict_serializable,
    satisfies_snapshot_isolation,
    si_but_not_serializable,
    write_skew_example,
)

# Random single-object operation schedules: (txn, op, obj, explicit)
single_op_schedules = st.lists(
    st.tuples(st.sampled_from(["r", "w"]), st.integers(0, 2)),
    min_size=1,
    max_size=8,
)


def _single_op_history(schedule, overlap_mask):
    """Each op is its own transaction; bit i of overlap_mask makes txn
    i overlap txn i+1 (begin before the predecessor commits)."""
    history = History()
    open_txn = None
    for txn, (kind, obj) in enumerate(schedule):
        history.begin(txn)
        if open_txn is not None:
            history.commit(open_txn)
            open_txn = None
        if kind == "r":
            history.read(txn, obj)
        else:
            history.write(txn, obj)
        if overlap_mask >> txn & 1:
            open_txn = txn
        else:
            history.commit(txn)
    if open_txn is not None:
        history.commit(open_txn)
    return history


class TestImplications:
    @given(single_op_schedules, st.integers(0, 255))
    @settings(max_examples=80, deadline=None)
    def test_linearizable_implies_strict_serializable(self, schedule, mask):
        history = _single_op_history(schedule, mask)
        assert is_single_object_history(history)
        if is_linearizable(history):
            rw = history.rw_dependencies()
            rt = history.real_time_order()
            assert is_strict_serializable(rw, rt)

    @given(single_op_schedules, st.integers(0, 255))
    @settings(max_examples=80, deadline=None)
    def test_strict_serializable_implies_serializable(self, schedule, mask):
        history = _single_op_history(schedule, mask)
        rw = history.rw_dependencies()
        rt = history.real_time_order()
        if is_strict_serializable(rw, rt):
            assert rw.is_acyclic()


class TestSeparations:
    def test_si_does_not_imply_serializability(self):
        """Fig. 1: the write-skew history separates SI from SER."""
        assert si_but_not_serializable(write_skew_example())

    def test_serializability_does_not_imply_si(self):
        """A stale-read history: serializable (the reader serializes
        before the writer) but not a legal SI snapshot read."""
        history = history_from_steps(
            [
                ("begin", 1), ("write", 1, 0), ("commit", 1),
                ("begin", 2), ("read", 2, 0, -1), ("commit", 2),
            ]
        )
        assert history_is_serializable(history)
        assert not satisfies_snapshot_isolation(history)

    def test_serializable_but_not_strict(self):
        """Fig. 2(b)'s shape: serializable only by ordering against
        real time — the exact gap ROCoCo exploits over TOCC."""
        history = history_from_steps(
            [
                ("begin", 3), ("read", 3, 1),
                ("begin", 1), ("write", 1, 1), ("commit", 1),
                ("begin", 2), ("write", 2, 0), ("commit", 2),
                ("read", 3, 0), ("commit", 3),
            ]
        )
        rw = history.rw_dependencies()
        rt = history.real_time_order()
        assert rw.is_acyclic()
        assert not is_strict_serializable(rw, rt)

    def test_strict_but_not_linearizable_shape(self):
        """Linearizability only *speaks* about single-op transactions;
        a multi-object strict-serializable history sits strictly above
        it in generality."""
        history = history_from_steps(
            [
                ("begin", 1), ("write", 1, 0), ("write", 1, 1), ("commit", 1),
                ("begin", 2), ("read", 2, 0), ("read", 2, 1), ("commit", 2),
            ]
        )
        rw = history.rw_dependencies()
        rt = history.real_time_order()
        assert is_strict_serializable(rw, rt)
        assert not is_single_object_history(history)
