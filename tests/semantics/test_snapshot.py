"""Snapshot isolation, write skew (Fig. 1), compositionality (§2.2)."""

from repro.semantics import (
    find_write_skew,
    history_from_steps,
    history_is_serializable,
    per_object_serializable,
    satisfies_snapshot_isolation,
    si_but_not_serializable,
    write_skew_example,
)


class TestSnapshotIsolation:
    def test_write_skew_example_satisfies_si(self):
        assert satisfies_snapshot_isolation(write_skew_example())

    def test_write_skew_example_not_serializable(self):
        assert not history_is_serializable(write_skew_example())

    def test_fig1_is_the_si_serializability_gap(self):
        assert si_but_not_serializable(write_skew_example())

    def test_serial_history_satisfies_si(self):
        h = history_from_steps(
            [
                ("begin", 1), ("write", 1, 0), ("commit", 1),
                ("begin", 2), ("read", 2, 0), ("write", 2, 1), ("commit", 2),
            ]
        )
        assert satisfies_snapshot_isolation(h)
        assert history_is_serializable(h)

    def test_stale_read_violates_si(self):
        # Reader begins after writer committed but observes the initial
        # version: not a snapshot read.
        h = history_from_steps(
            [
                ("begin", 1), ("write", 1, 0), ("commit", 1),
                ("begin", 2), ("read", 2, 0, -1), ("commit", 2),
            ]
        )
        assert not satisfies_snapshot_isolation(h)

    def test_first_committer_wins_violation(self):
        # Two overlapping committed writers of the same object.
        h = history_from_steps(
            [
                ("begin", 1), ("begin", 2),
                ("write", 1, 0), ("write", 2, 0),
                ("commit", 1), ("commit", 2),
            ]
        )
        assert not satisfies_snapshot_isolation(h)

    def test_disjoint_overlapping_writers_fine(self):
        h = history_from_steps(
            [
                ("begin", 1), ("begin", 2),
                ("write", 1, 0), ("write", 2, 1),
                ("commit", 1), ("commit", 2),
            ]
        )
        assert satisfies_snapshot_isolation(h)


class TestWriteSkew:
    def test_detects_fig1(self):
        pair = find_write_skew(write_skew_example())
        assert pair == (1, 2)

    def test_no_skew_without_cross_reads(self):
        h = history_from_steps(
            [
                ("begin", 1), ("begin", 2),
                ("read", 1, 0), ("write", 1, 0),
                ("read", 2, 1), ("write", 2, 1),
                ("commit", 1), ("commit", 2),
            ]
        )
        assert find_write_skew(h) is None

    def test_no_skew_when_serial(self):
        h = history_from_steps(
            [
                ("begin", 1), ("read", 1, 1), ("write", 1, 0), ("commit", 1),
                ("begin", 2), ("read", 2, 0), ("write", 2, 1), ("commit", 2),
            ]
        )
        assert find_write_skew(h) is None


class TestCompositionality:
    def test_serializability_is_not_compositional(self):
        """Fig. 1 (b): per-object projections are acyclic, the
        composition is not — serializability does not compose."""
        h = write_skew_example()
        assert per_object_serializable(h, objects=[0, 1])
        assert not history_is_serializable(h)
