"""STAMP contention variants behave as configured."""

import pytest

from repro.runtime import TinySTMBackend
from repro.stamp import (
    KmeansLowWorkload,
    KmeansWorkload,
    VacationHighWorkload,
    VacationWorkload,
    run_stamp,
)


class TestContentionOrdering:
    def test_kmeans_low_aborts_less(self):
        high = run_stamp(KmeansWorkload, TinySTMBackend(), 8, scale=0.5, seed=3)
        low = run_stamp(KmeansLowWorkload, TinySTMBackend(), 8, scale=0.5, seed=3)
        assert low.abort_rate < high.abort_rate

    def test_vacation_high_aborts_more(self):
        base = run_stamp(VacationWorkload, TinySTMBackend(), 8, scale=0.5, seed=3)
        high = run_stamp(VacationHighWorkload, TinySTMBackend(), 8, scale=0.5, seed=3)
        assert high.abort_rate > base.abort_rate

    @pytest.mark.parametrize("workload_cls", [KmeansLowWorkload, VacationHighWorkload])
    def test_variants_verify_on_all_paths(self, workload_cls):
        stats = run_stamp(workload_cls, TinySTMBackend(), 4, scale=0.25, seed=1)
        assert stats.commits > 0

    def test_variant_names_distinct(self):
        assert KmeansLowWorkload.name == "kmeans-low"
        assert VacationHighWorkload.name == "vacation-high"
