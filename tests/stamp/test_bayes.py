"""The bayes port (suite-completing; excluded from Fig. 10)."""

import pytest

from repro.runtime import (
    CoarseLockBackend,
    RococoTMBackend,
    SequentialBackend,
    TinySTMBackend,
    TsxBackend,
)
from repro.stamp import ALL_WORKLOADS, BayesWorkload, run_stamp


class TestBayes:
    def test_sequential_learns_a_dag(self):
        stats = run_stamp(BayesWorkload, SequentialBackend(), 1, scale=0.5)
        assert stats.commits > 0

    @pytest.mark.parametrize(
        "backend_cls",
        [CoarseLockBackend, TinySTMBackend, TsxBackend, RococoTMBackend],
    )
    def test_concurrent_verifies(self, backend_cls):
        stats = run_stamp(BayesWorkload, backend_cls(), 4, scale=0.5, seed=2)
        assert stats.commits > 0

    def test_excluded_from_fig10(self):
        assert BayesWorkload not in ALL_WORKLOADS

    def test_deterministic(self):
        a = run_stamp(BayesWorkload, TinySTMBackend(), 4, scale=0.5, seed=3)
        b = run_stamp(BayesWorkload, TinySTMBackend(), 4, scale=0.5, seed=3)
        assert a.commits == b.commits
        assert a.makespan_ns == b.makespan_ns

    def test_read_heavy_profile(self):
        """Most learning transactions only probe (read) the network."""
        stats = run_stamp(BayesWorkload, RococoTMBackend(), 4, scale=1.0, seed=4)
        assert stats.read_only_commits > 0
