"""Every STAMP port x every backend: the verify() oracle must hold.

These are the system-level integration tests: a workload's invariants
(conservation of stock, exact counter totals, connected disjoint
paths, drained queues) can only survive if the backend provided real
atomicity and isolation under the simulated interleaving.
"""

import pytest

from repro.runtime import (
    CoarseLockBackend,
    RococoTMBackend,
    SequentialBackend,
    TinySTMBackend,
    TsxBackend,
)
from repro.stamp import (
    ALL_WORKLOADS,
    GenomeWorkload,
    IntruderWorkload,
    KmeansWorkload,
    LabyrinthWorkload,
    Ssca2Workload,
    VacationWorkload,
    YadaWorkload,
    run_stamp,
)

SCALE = 0.25  # small inputs: these are correctness tests, not benches
BACKENDS = [CoarseLockBackend, TinySTMBackend, TsxBackend, RococoTMBackend]


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS, ids=lambda w: w.name)
class TestSequentialBaseline:
    def test_single_thread_verifies(self, workload_cls):
        stats = run_stamp(workload_cls, SequentialBackend(), 1, scale=SCALE)
        assert stats.commits > 0
        assert stats.aborts == 0


@pytest.mark.parametrize("backend_cls", BACKENDS, ids=lambda b: b.name)
@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS, ids=lambda w: w.name)
class TestConcurrentCorrectness:
    def test_four_threads_verify(self, workload_cls, backend_cls):
        stats = run_stamp(workload_cls, backend_cls(), 4, scale=SCALE, seed=1)
        assert stats.commits > 0

    def test_deterministic(self, workload_cls, backend_cls):
        a = run_stamp(workload_cls, backend_cls(), 2, scale=SCALE, seed=7)
        b = run_stamp(workload_cls, backend_cls(), 2, scale=SCALE, seed=7)
        assert a.makespan_ns == b.makespan_ns
        assert a.commits == b.commits
        assert a.aborts == b.aborts


class TestWorkloadShapes:
    """Per-application characteristics the paper's analysis relies on."""

    def test_genome_has_empty_write_commits(self):
        stats = run_stamp(GenomeWorkload, RococoTMBackend(), 4, scale=0.5)
        assert stats.read_only_commits > 0.2 * stats.commits

    def test_ssca2_transactions_are_tiny_and_plentiful(self):
        stats = run_stamp(Ssca2Workload, TinySTMBackend(), 4, scale=0.5)
        assert stats.commits >= 256  # one per edge
        assert stats.abort_rate < 0.05

    def test_kmeans_is_contended(self):
        stats = run_stamp(KmeansWorkload, TinySTMBackend(), 8, scale=0.5, seed=2)
        assert stats.abort_rate > 0.05

    def test_labyrinth_reads_whole_grid(self):
        backend = RococoTMBackend()
        run_stamp(LabyrinthWorkload, backend, 2, scale=0.5)
        # Each validated route shipped a grid-sized read set.
        engine = backend.engine
        assert engine.stats_requests > 0
        assert engine.mean_round_trip_ns > 600.0

    def test_intruder_drains_exactly_once(self):
        stats = run_stamp(IntruderWorkload, TsxBackend(), 4, scale=0.5, seed=3)
        assert stats.commits > 0

    def test_vacation_mostly_reads(self):
        stats = run_stamp(VacationWorkload, TinySTMBackend(), 4, scale=0.5)
        assert stats.commits > 0

    def test_yada_generates_work_dynamically(self):
        stats = run_stamp(YadaWorkload, TinySTMBackend(), 4, scale=0.5, seed=4)
        assert stats.commits > 0


class TestOracleCatchesBrokenTM:
    """The verify() oracle must actually detect atomicity violations."""

    def test_broken_backend_fails_verification(self):
        from repro.runtime import Memory, Simulator
        from repro.runtime.tinystm import TinySTMBackend as Base

        class BrokenSTM(Base):
            name = "broken"

            def commit(self, tid, now):
                # Skip read-set validation entirely: lost updates ahead.
                txn = self._txns[tid]
                self.global_clock += 1
                for addr, value in txn.writes.items():
                    self.memory.store(addr, value)
                    self._versions[addr] = self.global_clock
                return now + 10.0

        with pytest.raises(AssertionError):
            run_stamp(KmeansWorkload, BrokenSTM(), 8, scale=0.5, seed=5)
