"""The degradation ladder: resubmission, failover, fail-back, last rung."""

import pytest

from repro.faults import (
    MODE_FPGA,
    MODE_SOFTWARE,
    ChaosValidationEngine,
    DegradationManager,
    DegradationPolicy,
    FaultPlan,
    ValidationTimeout,
    ValidationUnavailable,
    build_chaos_backend,
)
from repro.hw import FpgaValidationEngine, ValidationRequest, ValidationResponse, Verdict
from repro.runtime import RococoTMBackend
from repro.runtime.stats import RunStats
from repro.stamp import KmeansWorkload, run_stamp


def request(label=1):
    return ValidationRequest(label=label, read_addrs=(1,), write_addrs=(2,), snapshot=0)


def response(verdict=None, at=100.0):
    return ValidationResponse(
        verdict=verdict or Verdict(committed=True),
        sent_ns=at,
        arrived_ns=at,
        started_ns=at,
        finished_ns=at,
        ready_ns=at,
    )


class ScriptedEngine:
    """A primary whose submit follows a script of outcomes.

    Script entries: "ok" returns a committed response, "timeout" raises
    an applied ValidationTimeout 10 us later.  ``healthy`` drives
    probe(); ``buffer`` backs recall().
    """

    def __init__(self, script, healthy=True, buffer=None):
        self.script = list(script)
        self.healthy = healthy
        self.buffer = buffer or {}
        self.submits = 0
        self.probes = 0

    def submit(self, req, now_ns):
        self.submits += 1
        action = self.script.pop(0) if self.script else "ok"
        if action == "timeout":
            raise ValidationTimeout(now_ns + 10_000.0, applied=True, label=req.label)
        return response(at=now_ns + 500.0)

    def probe(self, now_ns):
        self.probes += 1
        return self.healthy

    def recall(self, label):
        return self.buffer.get(label)


class TestPassThrough:
    def test_clean_primary_is_untouched(self):
        primary = ScriptedEngine(["ok"])
        ladder = DegradationManager(primary, software=ScriptedEngine([]))
        out = ladder.submit(request(), 0.0)
        assert out.verdict.committed
        assert ladder.mode == MODE_FPGA
        assert (ladder.timeouts, ladder.resubmits, ladder.failovers) == (0, 0, 0)

    def test_real_engine_pass_through_is_exact(self):
        plain = FpgaValidationEngine()
        ladder = DegradationManager(FpgaValidationEngine())
        assert ladder.submit(request(), 0.0) == plain.submit(request(), 0.0)


class TestResubmission:
    def test_timeouts_within_budget_recover(self):
        primary = ScriptedEngine(["timeout", "timeout", "ok"])
        stats = RunStats()
        ladder = DegradationManager(
            primary, software=ScriptedEngine([]), policy=DegradationPolicy(max_resubmits=2)
        )
        out = ladder.submit(request(), 0.0, stats)
        assert out.verdict.committed
        assert ladder.mode == MODE_FPGA
        assert ladder.timeouts == 2 and ladder.resubmits == 2
        assert stats.validation_timeouts == 2 and stats.validation_resubmits == 2
        assert primary.submits == 3

    def test_each_resubmission_starts_after_the_timeout(self):
        primary = ScriptedEngine(["timeout", "ok"])
        ladder = DegradationManager(primary, software=ScriptedEngine([]))
        out = ladder.submit(request(), 0.0)
        # The retry was issued at the first attempt's give-up instant.
        assert out.ready_ns == 10_000.0 + 500.0


class TestFailover:
    def policy(self, **kw):
        kw.setdefault("max_resubmits", 1)
        return DegradationPolicy(**kw)

    def test_exhausted_budget_fails_over_to_software(self):
        primary = ScriptedEngine(["timeout"] * 5)
        software = ScriptedEngine(["ok"])
        stats = RunStats()
        ladder = DegradationManager(primary, software, self.policy())
        out = ladder.submit(request(), 0.0, stats)
        assert out.verdict.committed
        assert ladder.mode == MODE_SOFTWARE
        assert ladder.failovers == 1 and stats.failovers == 1
        assert ladder.software_validations == 1 and stats.software_validations == 1
        assert software.submits == 1

    def test_failover_honours_the_response_buffer(self):
        # The primary decided the verdict before its response was lost:
        # failover must replay it, not re-validate.
        recorded = Verdict(committed=False, reason="cycle")
        primary = ScriptedEngine(["timeout"] * 5, buffer={1: recorded})
        software = ScriptedEngine(["ok"])
        ladder = DegradationManager(primary, software, self.policy())
        out = ladder.submit(request(1), 0.0)
        assert out.verdict is recorded
        assert software.submits == 0

    def test_software_mode_skips_the_primary(self):
        primary = ScriptedEngine(["timeout"] * 5, healthy=False)
        software = ScriptedEngine([])
        ladder = DegradationManager(primary, software, self.policy())
        ladder.submit(request(1), 0.0)
        submits_at_failover = primary.submits
        ladder.submit(request(2), 1_000.0)
        assert primary.submits == submits_at_failover
        assert software.submits == 2

    def test_no_software_raises_unavailable(self):
        primary = ScriptedEngine(["timeout"] * 5)
        ladder = DegradationManager(primary, software=None, policy=self.policy())
        with pytest.raises(ValidationUnavailable) as outage:
            ladder.submit(request(), 0.0)
        # Both attempts' waits are charged before giving up.
        assert outage.value.at_ns == 20_000.0

    def test_disabled_failover_raises_despite_software(self):
        primary = ScriptedEngine(["timeout"] * 5)
        ladder = DegradationManager(
            primary,
            software=ScriptedEngine([]),
            policy=self.policy(software_failover=False),
        )
        with pytest.raises(ValidationUnavailable):
            ladder.submit(request(), 0.0)


class TestFailback:
    def test_green_probes_restore_the_fpga_path(self):
        # Two timeouts exhaust the budget; the primary then recovers.
        primary = ScriptedEngine(["timeout"] * 2)
        software = ScriptedEngine([])
        policy = DegradationPolicy(
            max_resubmits=1, probe_interval_ns=10_000.0, probe_successes=2
        )
        stats = RunStats()
        ladder = DegradationManager(primary, software, policy)
        ladder.submit(request(1), 0.0, stats)
        assert ladder.mode == MODE_SOFTWARE
        # Probes fire only once the interval elapses; two greens flip back.
        ladder.submit(request(2), ladder.failover_at[0] + 11_000.0, stats)
        assert ladder.mode == MODE_SOFTWARE  # one green is not enough
        ladder.submit(request(3), ladder.failover_at[0] + 23_000.0, stats)
        assert ladder.mode == MODE_FPGA
        assert ladder.failbacks == 1 and stats.failbacks == 1
        # The next submission uses the (recovered) primary again.
        out = ladder.submit(request(4), ladder.failover_at[0] + 30_000.0, stats)
        assert out.verdict.committed and primary.submits > 2

    def test_red_probe_resets_the_streak(self):
        primary = ScriptedEngine(["timeout"] * 2, healthy=False)
        policy = DegradationPolicy(
            max_resubmits=1, probe_interval_ns=10_000.0, probe_successes=1
        )
        ladder = DegradationManager(primary, ScriptedEngine([]), policy)
        ladder.submit(request(1), 0.0)
        ladder.submit(request(2), 50_000.0)
        assert ladder.mode == MODE_SOFTWARE
        primary.healthy = True
        ladder.submit(request(3), 100_000.0)
        assert ladder.mode == MODE_FPGA


class TestBackendIntegration:
    """The ladder wired into RococoTMBackend, end to end."""

    def test_sustained_stall_fails_over_and_recovers(self):
        backend = build_chaos_backend("stall", fault_seed=0)
        stats = run_stamp(KmeansWorkload, backend, 4, scale=0.25, seed=1)
        clean = run_stamp(KmeansWorkload, RococoTMBackend(), 4, scale=0.25, seed=1)
        # Progress: the whole workload still commits.
        assert stats.commits == clean.commits
        assert stats.failovers >= 1 and stats.software_validations > 0
        # Recovery: failed back after the stall window ended.
        window_end = backend.engine.plan.stall_windows[0][1]
        assert stats.failbacks >= 1
        assert backend.degradation.failback_at[0] > window_end
        assert backend.degradation.mode == MODE_FPGA

    def test_exhausted_ladder_goes_irrevocable(self):
        backend = build_chaos_backend(
            "stall", fault_seed=0, policy=DegradationPolicy(software_failover=False)
        )
        stats = run_stamp(KmeansWorkload, backend, 4, scale=0.25, seed=1)
        clean = run_stamp(KmeansWorkload, RococoTMBackend(), 4, scale=0.25, seed=1)
        assert stats.commits == clean.commits  # the last rung keeps progress
        assert stats.irrevocable_fallbacks >= 1
        assert stats.aborts_by_cause.get("fpga-unavailable", 0) >= 1
        assert backend.stats_irrevocable_commits >= 1
        # A commit the engine applied but the CPU never learned about
        # occupies a ghost slot on both sides — the counters must stay
        # aligned or the window stops sliding (livelock).
        assert stats.phantom_commits >= 1
        assert backend.global_ts == backend.engine.manager.total_commits

    def test_fault_aborts_back_off_harder(self):
        backend = RococoTMBackend()
        scale = backend.degradation.policy.fault_backoff_scale
        assert backend.abort_backoff_scale("fpga-unavailable") == scale > 1.0
        assert backend.abort_backoff_scale("cpu-miss") == 1.0

    def test_run_finished_harvests_engine_counters(self):
        backend = build_chaos_backend("drop", fault_seed=0)
        stats = run_stamp(KmeansWorkload, backend, 4, scale=0.25, seed=1)
        assert stats.faults_injected["drop"] == backend.engine.fault_counts["drop"] > 0
        assert stats.link_retries == backend.engine.link_retries > 0

    def test_determinism_under_chaos(self):
        def one():
            backend = build_chaos_backend("mixed", fault_seed=3)
            stats = run_stamp(KmeansWorkload, backend, 4, scale=0.25, seed=1)
            return (
                stats.makespan_ns,
                stats.commits,
                dict(stats.aborts_by_cause),
                dict(stats.faults_injected),
                stats.failovers,
            )

        assert one() == one()
