"""Correctness is invariant under injected faults.

Every built-in fault schedule replays through the sanitizer's full
oracle stack (serializability, opacity, doomed reads, lost updates,
write-back races, workload invariants).  Faults may cost time —
retries, failovers, irrevocable commits — but they must never cost
correctness; any violation here is a bug in the robustness layer.
"""

from repro.faults import BUILTIN_SCHEDULES, chaos_sanitize
from repro.stamp import KmeansWorkload


class TestChaosSanitize:
    def test_every_schedule_is_violation_free(self):
        results = chaos_sanitize(KmeansWorkload, n_threads=4, scale=0.25, seed=1)
        assert {name for name, _, _ in results} == set(BUILTIN_SCHEDULES)
        for name, report, backend in results:
            assert report.ok, f"{name}: {report.summary()}"
            # The oracles saw real chaos, not a quiet run.
            assert backend.stats.total_faults_injected > 0, name
            # Ghost-slot alignment held to the very end (docs/FAULTS.md):
            # a drift here is the window-stops-sliding livelock.
            assert backend.global_ts == backend.engine.manager.total_commits, name

    def test_schedule_subset_and_determinism(self):
        def once():
            ((name, report, backend),) = chaos_sanitize(
                KmeansWorkload, schedules=["mixed"], fault_seed=7
            )
            assert name == "mixed" and report.ok
            stats = backend.stats
            return (
                stats.makespan_ns,
                stats.commits,
                dict(stats.aborts_by_cause),
                dict(stats.faults_injected),
            )

        assert once() == once()
