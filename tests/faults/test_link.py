"""FaultyLink: per-message faults, bounded retransmission, determinism."""

import random

import pytest

from repro.faults import FaultPlan, FaultyLink, LinkDown
from repro.hw import harp2_cci_link


def make_link(plan, seed=None):
    base = harp2_cci_link()
    rng = random.Random(plan.seed if seed is None else seed)
    return base, FaultyLink(base, plan, rng)


class TestNullPlan:
    def test_pass_through(self):
        base, faulty = make_link(FaultPlan())
        for lines in (1, 2, 7):
            assert faulty.request_ns(lines) == base.request_ns(lines)
        assert faulty.response_ns(1) == base.response_ns(1)
        assert faulty.retries == 0 and not faulty.counters

    def test_consumes_no_randomness(self):
        _, faulty = make_link(FaultPlan())
        state = faulty.rng.getstate()
        faulty.request_ns(4)
        faulty.response_ns(1)
        assert faulty.rng.getstate() == state

    def test_interface_mirrors_base(self):
        base, faulty = make_link(FaultPlan())
        assert faulty.to_device_ns == base.to_device_ns
        assert faulty.from_device_ns == base.from_device_ns
        assert faulty.beat_ns == base.beat_ns
        assert faulty.round_trip_ns == base.round_trip_ns
        assert faulty.lines_for_addresses(17) == base.lines_for_addresses(17)


class TestDrop:
    def test_certain_drop_exhausts_retries(self):
        plan = FaultPlan(drop_rate=1.0, retry_timeout_ns=1000.0, max_link_retries=2)
        _, faulty = make_link(plan)
        with pytest.raises(LinkDown) as down:
            faulty.request_ns(1)
        # attempts at backoff 1000, 2000, 4000 all lost
        assert down.value.elapsed_ns == 1000.0 + 2000.0 + 4000.0
        assert down.value.cause == "drop"
        assert faulty.retries == 3
        assert faulty.counters["drop"] == 3

    def test_drop_backoff_is_exponential(self):
        # Seeded so exactly the first crossing is lost, then delivered.
        plan = FaultPlan(seed=0, drop_rate=0.5, retry_timeout_ns=500.0)
        base, faulty = make_link(plan)
        results = []
        for _ in range(200):
            try:
                results.append(faulty.request_ns(1))
            except LinkDown:
                pass  # retry budget exhausted: the ladder's problem
        delayed = [r for r in results if r > base.request_ns(1)]
        assert delayed, "with drop_rate=0.5, some crossing must have retried"
        # Every injected delay is a sum of doubling ack timeouts.
        for r in delayed:
            extra = r - base.request_ns(1)
            assert extra % 500.0 == 0.0

    def test_zero_retries_means_immediate_linkdown(self):
        plan = FaultPlan(drop_rate=1.0, max_link_retries=0)
        _, faulty = make_link(plan)
        with pytest.raises(LinkDown):
            faulty.response_ns(1)


class TestCorrupt:
    def test_corrupt_applies_only_to_responses(self):
        plan = FaultPlan(corrupt_rate=1.0, max_link_retries=1)
        base, faulty = make_link(plan)
        # Request legs carry no modeled CRC: never corrupted.
        assert faulty.request_ns(3) == base.request_ns(3)
        with pytest.raises(LinkDown) as down:
            faulty.response_ns(1)
        assert down.value.cause == "corrupt"
        assert faulty.counters["corrupt"] == 2  # initial + 1 retry

    def test_corrupt_pays_the_wasted_crossing(self):
        plan = FaultPlan(corrupt_rate=1.0, retry_timeout_ns=100.0, max_link_retries=1)
        base, faulty = make_link(plan)
        with pytest.raises(LinkDown) as down:
            faulty.response_ns(1)
        # Each corrupted arrival burns the full crossing + the backoff.
        assert down.value.elapsed_ns == 2 * base.response_ns(1) + 100.0 + 200.0


class TestSpike:
    def test_certain_spike_adds_exact_delay(self):
        plan = FaultPlan(spike_rate=1.0, spike_ns=777.0)
        base, faulty = make_link(plan)
        assert faulty.request_ns(2) == base.request_ns(2) + 777.0
        assert faulty.counters["spike"] == 1
        assert faulty.retries == 0  # spikes delay, they never retransmit


class TestDeterminism:
    def test_same_seed_same_faults(self):
        plan = FaultPlan(seed=9, drop_rate=0.2, spike_rate=0.3, corrupt_rate=0.1)

        def campaign():
            _, faulty = make_link(plan)
            out = []
            for i in range(300):
                try:
                    out.append(faulty.response_ns(1) if i % 2 else faulty.request_ns(2))
                except LinkDown as down:
                    out.append(("down", down.elapsed_ns))
            return out, dict(faulty.counters), faulty.retries

        assert campaign() == campaign()

    def test_different_seeds_diverge(self):
        plan_a = FaultPlan(seed=1, drop_rate=0.3)
        plan_b = FaultPlan(seed=2, drop_rate=0.3)
        _, fa = make_link(plan_a)
        _, fb = make_link(plan_b)

        def sample(f):
            out = []
            for _ in range(100):
                try:
                    out.append(f.request_ns(1))
                except LinkDown as down:
                    out.append(("down", down.elapsed_ns))
            return out

        assert sample(fa) != sample(fb)
