"""ChaosValidationEngine: bit-identity, timeouts, exactly-once, resets."""

import pytest

from repro.faults import ChaosValidationEngine, FaultPlan, ValidationTimeout
from repro.hw import FpgaValidationEngine, ValidationRequest


def request(label, snapshot=0, reads=(1, 2), writes=(3,)):
    return ValidationRequest(
        label=label, read_addrs=tuple(reads), write_addrs=tuple(writes), snapshot=snapshot
    )


def stream(n, start=0):
    """n disjoint-writer requests with advancing snapshots."""
    return [
        request(start + i, snapshot=start + i, reads=(100 + i,), writes=(200 + i,))
        for i in range(n)
    ]


class TestNullPlanBitIdentity:
    def test_identical_responses_and_state(self):
        plain = FpgaValidationEngine()
        chaos = ChaosValidationEngine(FpgaValidationEngine(), FaultPlan())
        now = 0.0
        for req in stream(40):
            a = plain.submit(req, now)
            b = chaos.submit(req, now)
            assert a == b  # verdict AND every timestamp
            now = a.ready_ns + 30.0
        assert plain.manager.total_commits == chaos.manager.total_commits
        assert chaos.fault_counts == {}

    def test_delegates_unknown_attributes(self):
        inner = FpgaValidationEngine()
        chaos = ChaosValidationEngine(inner, FaultPlan())
        assert chaos.manager is inner.manager
        assert chaos.clock is inner.clock
        assert chaos.stats_requests == inner.stats_requests


class TestTimeouts:
    def test_lost_request_times_out_without_validation(self):
        plan = FaultPlan(drop_rate=1.0, retry_timeout_ns=1000.0, max_link_retries=1)
        chaos = ChaosValidationEngine(FpgaValidationEngine(), plan, timeout_ns=50_000.0)
        with pytest.raises(ValidationTimeout) as timeout:
            chaos.submit(request(1), 0.0)
        assert not timeout.value.applied  # the engine never saw it
        assert chaos.manager.total_commits == 0
        assert chaos.recall(1) is None
        assert timeout.value.at_ns <= 50_000.0

    def test_lost_response_times_out_applied(self):
        plan = FaultPlan(corrupt_rate=1.0, retry_timeout_ns=1000.0, max_link_retries=1)
        chaos = ChaosValidationEngine(FpgaValidationEngine(), plan, timeout_ns=50_000.0)
        with pytest.raises(ValidationTimeout) as timeout:
            chaos.submit(request(1), 0.0)
        assert timeout.value.applied  # decided on-engine, verdict lost
        assert chaos.manager.total_commits == 1
        assert chaos.recall(1) is not None and chaos.recall(1).committed

    def test_no_timeout_means_latency_not_exception(self):
        plan = FaultPlan(spike_rate=1.0, spike_ns=100_000.0)
        chaos = ChaosValidationEngine(FpgaValidationEngine(), plan, timeout_ns=None)
        response = chaos.submit(request(1), 0.0)
        assert response.verdict.committed
        assert response.ready_ns > 200_000.0  # both legs spiked


class TestExactlyOnce:
    def test_resubmission_never_revalidates(self):
        plan = FaultPlan(corrupt_rate=1.0, retry_timeout_ns=1000.0, max_link_retries=1)
        chaos = ChaosValidationEngine(FpgaValidationEngine(), plan, timeout_ns=50_000.0)
        with pytest.raises(ValidationTimeout):
            chaos.submit(request(1), 0.0)
        assert chaos.manager.total_commits == 1
        # Resubmits keep failing (every response corrupts) but the
        # manager is never touched again: exactly-once validation.
        for attempt in range(3):
            with pytest.raises(ValidationTimeout) as timeout:
                chaos.submit(request(1), 60_000.0 * (attempt + 1))
            assert timeout.value.applied
        assert chaos.manager.total_commits == 1

    def test_retransmit_serves_recorded_verdict(self):
        plan = FaultPlan(
            seed=0, corrupt_rate=1.0, retry_timeout_ns=500.0, max_link_retries=0
        )
        chaos = ChaosValidationEngine(FpgaValidationEngine(), plan, timeout_ns=50_000.0)
        with pytest.raises(ValidationTimeout):
            chaos.submit(request(1), 0.0)
        verdict = chaos.recall(1)
        assert verdict is not None
        # Heal the link for the retransmission (a non-null plan whose
        # faults can never fire): the response buffer survives, so the
        # verdict is replayed rather than re-validated.
        healed = FaultPlan(reset_at=(1e15,))
        chaos.plan = healed
        chaos.faulty_link.plan = healed
        response = chaos.submit(request(1), 60_000.0)
        assert response.verdict == verdict
        assert chaos.manager.total_commits == 1


class TestStall:
    def test_arrivals_queue_behind_the_window(self):
        plan = FaultPlan(stall_windows=((1_000.0, 50_000.0),))
        chaos = ChaosValidationEngine(FpgaValidationEngine(), plan, timeout_ns=None)
        response = chaos.submit(request(1), 2_000.0)
        assert response.ready_ns > 50_000.0
        assert chaos.fault_counts["stall"] == 1
        # After the window, service is prompt again.
        late = chaos.submit(request(2, snapshot=1), 60_000.0)
        assert late.ready_ns - 60_000.0 < 5_000.0


class TestReset:
    def test_reset_wipes_history_and_floors_snapshots(self):
        plan = FaultPlan(reset_at=(10_000.0,))
        chaos = ChaosValidationEngine(FpgaValidationEngine(), plan, timeout_ns=None)
        now = 0.0
        for req in stream(5):
            now = chaos.submit(req, now).ready_ns + 10.0
        assert chaos.manager.total_commits == 5
        # Crossing the reset instant fires the wipe exactly once.
        response = chaos.submit(request(100, snapshot=5, writes=(999,)), 20_000.0)
        assert chaos.manager.stats_resets == 1
        assert chaos.fault_counts["reset"] == 1
        assert chaos.manager.reset_floor == 5
        assert response.verdict.committed  # snapshot 5 == floor: sound
        # A pre-reset snapshot can no longer be validated: its forward
        # edges were wiped, so it aborts like a window overflow.
        stale = chaos.submit(request(101, snapshot=3, writes=(998,)), 21_000.0)
        assert not stale.verdict.committed
        assert stale.verdict.reason == "window-overflow"

    def test_reset_clears_the_response_buffer(self):
        plan = FaultPlan(
            corrupt_rate=1.0,
            retry_timeout_ns=500.0,
            max_link_retries=0,
            reset_at=(30_000.0,),
        )
        chaos = ChaosValidationEngine(FpgaValidationEngine(), plan, timeout_ns=20_000.0)
        with pytest.raises(ValidationTimeout):
            chaos.submit(request(1), 0.0)
        assert chaos.recall(1) is not None
        chaos.probe(40_000.0)  # crossing the reset instant
        assert chaos.recall(1) is None


class TestProbe:
    def test_probe_reports_stall(self):
        plan = FaultPlan(stall_windows=((1_000.0, 50_000.0),))
        chaos = ChaosValidationEngine(FpgaValidationEngine(), plan)
        assert not chaos.probe(2_000.0)
        assert chaos.probe(60_000.0)

    def test_probing_never_perturbs_the_data_path(self):
        plan = FaultPlan(seed=4, drop_rate=0.3, spike_rate=0.3)

        def campaign(probe_every):
            chaos = ChaosValidationEngine(
                FpgaValidationEngine(), plan, timeout_ns=None
            )
            out = []
            now = 0.0
            for i, req in enumerate(stream(30)):
                if probe_every and i % probe_every == 0:
                    chaos.probe(now)
                try:
                    response = chaos.submit(req, now)
                    out.append(response.ready_ns)
                    now = response.ready_ns + 20.0
                except ValidationTimeout as timeout:
                    out.append(("timeout", timeout.at_ns))
                    now = timeout.at_ns + 20.0
            return out

        assert campaign(probe_every=0) == campaign(probe_every=1)


class TestDeterminism:
    def test_same_plan_same_campaign(self):
        plan = FaultPlan(seed=11, drop_rate=0.1, spike_rate=0.2, corrupt_rate=0.1)

        def campaign():
            chaos = ChaosValidationEngine(FpgaValidationEngine(), plan, timeout_ns=40_000.0)
            out = []
            now = 0.0
            for req in stream(60):
                try:
                    response = chaos.submit(req, now)
                    out.append((response.verdict.committed, response.ready_ns))
                    now = response.ready_ns + 15.0
                except ValidationTimeout as timeout:
                    out.append(("timeout", timeout.applied, timeout.at_ns))
                    now = timeout.at_ns + 15.0
            return out, dict(chaos.fault_counts), chaos.link_retries

        assert campaign() == campaign()
