"""WorkerFaultPlan: determinism, parsing, rate partitioning."""

import pytest

from repro.faults import WORKER_FAULT_KINDS, WorkerFaultPlan


class TestEntries:
    def test_every_attempt_when_attempt_omitted(self):
        plan = WorkerFaultPlan.parse("crash@2")
        assert plan.fault_for(2, 0) == "crash"
        assert plan.fault_for(2, 7) == "crash"
        assert plan.fault_for(1, 0) is None

    def test_single_attempt_entry(self):
        plan = WorkerFaultPlan.parse("hang@3:1")
        assert plan.fault_for(3, 0) is None
        assert plan.fault_for(3, 1) == "hang"
        assert plan.fault_for(3, 2) is None

    def test_multiple_entries(self):
        plan = WorkerFaultPlan.parse("crash@0:0, garbage@1, partial-write@2:1")
        assert plan.fault_for(0, 0) == "crash"
        assert plan.fault_for(1, 5) == "garbage"
        assert plan.fault_for(2, 1) == "partial-write"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown worker fault kind"):
            WorkerFaultPlan.parse("meltdown@0")

    def test_bad_syntax_rejected(self):
        with pytest.raises(ValueError, match="expected kind@cell"):
            WorkerFaultPlan.parse("crash")
        with pytest.raises(ValueError, match="must be ints"):
            WorkerFaultPlan.parse("crash@one")

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            WorkerFaultPlan(entries=((-1, None, "crash"),))


class TestRates:
    def test_deterministic_across_instances(self):
        a = WorkerFaultPlan(seed=7, crash_rate=0.2, hang_rate=0.2)
        b = WorkerFaultPlan(seed=7, crash_rate=0.2, hang_rate=0.2)
        draws = [(i, k) for i in range(50) for k in range(3)]
        assert [a.fault_for(i, k) for i, k in draws] == [
            b.fault_for(i, k) for i, k in draws
        ]

    def test_seed_changes_the_schedule(self):
        a = WorkerFaultPlan(seed=1, crash_rate=0.5)
        b = WorkerFaultPlan(seed=2, crash_rate=0.5)
        draws = [(i, 0) for i in range(64)]
        assert [a.fault_for(*d) for d in draws] != [b.fault_for(*d) for d in draws]

    def test_rates_partition_kinds(self):
        plan = WorkerFaultPlan(
            seed=3,
            crash_rate=0.25,
            hang_rate=0.25,
            garbage_rate=0.25,
            partial_write_rate=0.25,
        )
        kinds = {plan.fault_for(i, 0) for i in range(200)}
        assert kinds == set(WORKER_FAULT_KINDS)

    def test_zero_rates_never_fault(self):
        plan = WorkerFaultPlan(seed=3)
        assert all(plan.fault_for(i, k) is None for i in range(20) for k in range(3))

    def test_entries_win_over_rates(self):
        plan = WorkerFaultPlan(entries=((0, None, "hang"),), seed=3, crash_rate=1.0)
        assert plan.fault_for(0, 0) == "hang"
        assert plan.fault_for(1, 0) == "crash"
