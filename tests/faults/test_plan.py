"""FaultPlan: validation, null detection, schedules."""

import dataclasses

import pytest

from repro.faults import BUILTIN_SCHEDULES, FaultPlan, all_plans, named_plan


class TestFaultPlan:
    def test_null_by_default(self):
        assert FaultPlan().is_null
        assert FaultPlan(seed=42).is_null  # seed alone injects nothing

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(drop_rate=0.1),
            dict(spike_rate=0.5),
            dict(corrupt_rate=0.01),
            dict(stall_windows=((10.0, 20.0),)),
            dict(reset_at=(100.0,)),
        ],
    )
    def test_any_fault_breaks_null(self, kwargs):
        assert not FaultPlan(**kwargs).is_null

    @pytest.mark.parametrize("field", ["drop_rate", "spike_rate", "corrupt_rate"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, bad):
        with pytest.raises(ValueError):
            FaultPlan(**{field: bad})

    def test_stall_windows_must_be_nonempty(self):
        with pytest.raises(ValueError):
            FaultPlan(stall_windows=((20.0, 10.0),))
        with pytest.raises(ValueError):
            FaultPlan(stall_windows=((10.0, 10.0),))

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(max_link_retries=-1)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FaultPlan().drop_rate = 0.5

    def test_stall_end(self):
        plan = FaultPlan(stall_windows=((100.0, 200.0), (300.0, 400.0)))
        assert plan.stall_end(50.0) == 50.0
        assert plan.stall_end(100.0) == 200.0  # start is inside
        assert plan.stall_end(150.0) == 200.0
        assert plan.stall_end(200.0) == 200.0  # end is outside
        assert plan.stall_end(350.0) == 400.0


class TestSchedules:
    def test_builtin_names(self):
        assert set(BUILTIN_SCHEDULES) == {
            "corrupt",
            "drop",
            "mixed",
            "reset",
            "spike",
            "stall",
        }
        assert list(BUILTIN_SCHEDULES) == sorted(BUILTIN_SCHEDULES)

    def test_named_plan_seeded(self):
        assert named_plan("drop", 7).seed == 7
        assert named_plan("drop", 7) == named_plan("drop", 7)

    def test_named_plan_unknown(self):
        with pytest.raises(ValueError, match="unknown fault schedule"):
            named_plan("meteor-strike")

    def test_all_plans_covers_every_schedule(self):
        plans = all_plans(3)
        assert set(plans) == set(BUILTIN_SCHEDULES)
        assert all(p.seed == 3 and not p.is_null for p in plans.values())

    def test_every_schedule_is_distinct(self):
        plans = all_plans(0)
        assert len({tuple(sorted(dataclasses.asdict(p).items())) for p in plans.values()}) == len(plans)
