"""Deterministic cross-shard two-phase validation (docs/CLUSTER.md).

One commit of a transaction spanning shards runs entirely inside a
single driver ``commit`` hook — one atomic simulated instant — so the
*state* side of the protocol needs no locks: the scheduler already
serializes commits in ``(clock, tid)`` order, and every shard's window
bookkeeping is updated in ascending shard order within that instant.
Only the *timing* is two-phase:

1. **Prepare** — the coordinator ships each involved shard its slice
   of the read/write sets (plus the slice's incremental bloom
   signatures, which the decide-phase window bookkeeping unions
   instead of re-hashing — see ``ValidationRequest.read_raw``);
   remote shards cost an inter-shard hop each way (the same CCI-class
   constants as the CPU–FPGA link,
   :func:`repro.hw.link.harp2_cci_link`).  Each shard's engine runs
   the *non-mutating* freshness certify
   (:meth:`repro.hw.manager.ValidationManager.certify`): zero forward
   edges means the slice orders after everything resident, so the
   transaction can serialize at the decide instant.
2. **Decide** — all votes in: commit iff every shard certified.  The
   decide instant is the latest vote arrival plus a constant decision
   cost; each writing shard then enters the commit as an external
   window commit and writes back its redo slice (readers block on the
   shard's update set until write-back completes, exactly as on a
   single node).

Because certify mutates nothing, a refused prepare needs no undo on
the shards that voted commit — the whole attempt simply aborts with a
``fpga-xshard-*`` cause and the driver retries it.
"""

from __future__ import annotations

from typing import List

from ..hw.link import InterconnectLink, harp2_cci_link
from ..runtime.api import TransactionAborted
from ..runtime.events import SimEvent

#: coordinator decision cost once all votes are in (ns, CPU-scaled):
#: compare W verdicts and enqueue the decide messages.
DECIDE_NS = 8.0

#: abort causes carry the ``fpga-`` prefix so they land in
#: ``RunStats.fpga_aborts`` with the other validation refusals.
ABORT_CAUSES = {
    "window-overflow": "fpga-xshard-overflow",
    "stale": "fpga-xshard-stale",
}


class Coordinator:
    """Runs prepare/decide over the involved shards of one commit."""

    def __init__(self, cluster, interlink: InterconnectLink = None):
        self.cluster = cluster
        #: inter-shard transport; defaults to the HARP2 CCI constants.
        self.interlink = interlink or harp2_cci_link()

    # ------------------------------------------------------------------
    def commit(self, tid: int, home: int, involved: List[int], now: float) -> float:
        """Two-phase validate/commit *tid* across *involved* (ascending
        shard ids); returns the decide time or raises
        :class:`TransactionAborted`."""
        cluster = self.cluster
        sent = now
        votes = []
        total_reads = 0
        total_writes = 0
        for sid in involved:
            shard = cluster.shards[sid]
            request = shard.prepare_request(tid)
            total_reads += len(request.read_addrs)
            total_writes += len(request.write_addrs)
            remote = sid != home
            at = sent
            if remote:
                lines = self.interlink.lines_for_addresses(
                    max(1, request.n_addresses)
                )
                at += self.interlink.request_ns(lines)
            response = shard.certify(request, at)
            vote_ready = response.ready_ns
            if remote:
                vote_ready += self.interlink.response_ns()
            votes.append((sid, request, response, vote_ready))

        decided = max(vote[3] for vote in votes) + cluster.scaled(DECIDE_NS)
        cluster.stats.validations += len(involved)
        cluster.stats.validation_ns += decided - sent

        refusal = None
        for sid, request, response, _ in votes:
            if not response.verdict.committed and refusal is None:
                refusal = (sid, response.verdict.reason or "stale")

        driver = cluster.driver
        if driver.wants("validate"):
            for sid, request, response, vote_ready in votes:
                self._publish_prepare(
                    driver, tid, sid, request, response, vote_ready
                )
        if driver.wants("xshard"):
            driver.emit(
                SimEvent(
                    "xshard",
                    tid,
                    decided,
                    start=sent,
                    data={
                        "involved": len(involved),
                        "remote": sum(1 for sid in involved if sid != home),
                        "committed": refusal is None,
                        "reason": None if refusal is None else refusal[1],
                        "n_read": total_reads,
                        "n_write": total_writes,
                        "sent_ns": sent,
                        "decided_ns": decided,
                    },
                )
            )

        if refusal is not None:
            cause = ABORT_CAUSES.get(refusal[1], "fpga-xshard-stale")
            raise TransactionAborted(cause, at_ns=decided)

        for sid, request, response, _ in votes:
            shard = cluster.shards[sid]
            end = decided
            if sid != home:
                end += self.interlink.request_ns(1)  # the decide message
            shard.apply_cross_shard_commit(tid, end)
        return decided

    # ------------------------------------------------------------------
    def _publish_prepare(
        self, driver, tid: int, sid: int, request, response, vote_ready: float
    ) -> None:
        """One ``validate`` event per prepare, in the same shape the
        single-node commit path publishes, so each prepare tiles the
        owning shard's hw lanes in the trace (mode ``xshard``)."""
        shard = self.cluster.shards[sid]
        occupancy = shard.engine.occupancy_cycles(request)
        detect_done = min(
            response.finished_ns,
            response.started_ns + shard.engine.clock.cycles_to_ns(occupancy),
        )
        driver.emit(
            SimEvent(
                "validate",
                tid,
                vote_ready,
                start=response.sent_ns,
                data={
                    "label": request.label,
                    "sent_ns": response.sent_ns,
                    "arrived_ns": response.arrived_ns,
                    "started_ns": response.started_ns,
                    "detect_done_ns": detect_done,
                    "finished_ns": response.finished_ns,
                    "ready_ns": vote_ready,
                    "n_read": len(request.read_addrs),
                    "n_write": len(request.write_addrs),
                    "occupancy_cycles": occupancy,
                    "committed": response.verdict.committed,
                    "reason": response.verdict.reason,
                    "window_resident": shard.engine.manager.detector.resident,
                    "mode": "xshard",
                    "shard": sid,
                },
            )
        )
