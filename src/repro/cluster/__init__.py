"""Sharded scale-out ROCoCoTM (docs/CLUSTER.md).

* :class:`ClusterTMBackend` — N full ROCoCoTM shards (each with its
  own FPGA validation engine, sliding window and link) behind one
  backend protocol; threads pin round robin to nodes.
* :class:`Partitioner` / :class:`HashPartitioner` /
  :class:`RangePartitioner` — cacheline-aligned heap placement.
* :class:`Router` — commit-time fast-path vs cross-shard
  classification.
* :class:`Coordinator` — deterministic cross-shard two-phase
  validation over an inter-shard latency model.
"""

from .backend import ClusterTMBackend
from .coordinator import Coordinator
from .partition import (
    PARTITIONERS,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)
from .router import Router

__all__ = [
    "ClusterTMBackend",
    "Coordinator",
    "HashPartitioner",
    "PARTITIONERS",
    "Partitioner",
    "RangePartitioner",
    "Router",
    "make_partitioner",
]
