"""Commit-time transaction routing: fast path vs two-phase.

The router looks at which shards a transaction actually touched and
classifies the commit:

* **single-shard** — every read and write landed on one shard: the
  commit is delegated verbatim to that shard's own ROCoCoTM commit
  protocol (local FPGA validation, no coordination, no extra hops).
  This is the scale-out fast path; its frequency per workload is the
  ``shard.single_commits`` / ``shard.cross_commits`` ratio in the
  metrics and the headline number in ``BENCH_cluster_baseline.json``.
* **cross-shard** — reads or writes span >= 2 shards: the
  :class:`repro.cluster.coordinator.Coordinator` runs deterministic
  two-phase validation over every involved shard.

Shards that were *opened* (paid a begin) but never touched are dropped
silently — an opened-but-idle shard holds no reads to certify and no
writes to apply, so pruning it is free and keeps the fast path honest.
"""

from __future__ import annotations

from typing import List, Tuple


class Router:
    """Classifies one transaction's commit from its touched-shard set."""

    def __init__(self, shards) -> None:
        #: the cluster's shard list (RococoTMBackend instances).
        self.shards = shards

    def classify(self, tid: int, opened: List[int]) -> Tuple[List[int], List[int]]:
        """Split *opened* shard ids into (involved, idle), both in
        ascending shard order — the deterministic iteration order every
        coordinator step uses."""
        involved = []
        idle = []
        for sid in sorted(opened):
            if self.shards[sid].txn_touched(tid):
                involved.append(sid)
            else:
                idle.append(sid)
        return involved, idle
