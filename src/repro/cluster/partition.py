"""Line-aligned heap partitioning for the sharded cluster.

A partitioner maps every heap address to its owning shard.  Placement
is *cacheline-aligned* — all eight cells of a line land on the same
shard — because the conflict detector works on cachelines
(:mod:`repro.hw.detector`): splitting a line across shards would let
two shards each see half of a line-granular conflict and certify what
neither alone can refute.

Both policies are pure arithmetic over the address (no ``hash()``, no
per-run salt), so placement is identical across processes, runs and
shard sweeps — a precondition for the cluster's bit-reproducibility
contract (docs/CLUSTER.md).
"""

from __future__ import annotations

import math

from ..runtime.memory import CELLS_PER_CACHELINE


class Partitioner:
    """Maps addresses to shards, cacheline-aligned."""

    policy = "abstract"

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards

    def bind(self, total_cells: int) -> None:
        """Pin placement to the heap observed at attach time (only the
        range policy needs the heap size)."""

    def line_of(self, addr: int) -> int:
        return addr // CELLS_PER_CACHELINE

    def shard_of(self, addr: int) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Multiplicative line hashing: spreads neighbouring lines across
    shards, so hot *regions* (a shared array) distribute evenly while
    hot *lines* still serialize on one shard."""

    policy = "hash"
    #: Knuth's multiplicative constant (2^32 / phi); the >> 8 keeps the
    #: well-mixed high bits before the modulo.
    MULTIPLIER = 2654435761

    def shard_of(self, addr: int) -> int:
        if self.shards == 1:
            return 0
        line = addr // CELLS_PER_CACHELINE
        return ((line * self.MULTIPLIER) >> 8) % self.shards


class RangePartitioner(Partitioner):
    """Contiguous line ranges: shard *s* owns lines
    ``[s * lines_per_shard, (s + 1) * lines_per_shard)``.  Keeps
    allocation locality (one data structure -> few shards) at the cost
    of skew when workloads hammer one region."""

    policy = "range"

    def __init__(self, shards: int):
        super().__init__(shards)
        self._lines_per_shard = 1

    def bind(self, total_cells: int) -> None:
        total_lines = max(1, math.ceil(total_cells / CELLS_PER_CACHELINE))
        self._lines_per_shard = max(1, math.ceil(total_lines / self.shards))

    def shard_of(self, addr: int) -> int:
        if self.shards == 1:
            return 0
        line = addr // CELLS_PER_CACHELINE
        # Addresses allocated after bind() clamp to the last shard.
        return min(self.shards - 1, line // self._lines_per_shard)


#: policy name -> class, the registry the CLI and spec layer share.
PARTITIONERS = {
    HashPartitioner.policy: HashPartitioner,
    RangePartitioner.policy: RangePartitioner,
}


def make_partitioner(policy: str, shards: int) -> Partitioner:
    try:
        cls = PARTITIONERS[policy]
    except KeyError:
        raise ValueError(
            f"unknown partition policy {policy!r} "
            f"(known: {', '.join(sorted(PARTITIONERS))})"
        ) from None
    return cls(shards)
