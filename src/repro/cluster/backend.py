"""ClusterTMBackend: N ROCoCoTM shards behind one backend protocol.

The flat heap is partitioned across N shards, cacheline-aligned
(:mod:`repro.cluster.partition`); each shard is a full single-node
ROCoCoTM — its own :class:`FpgaValidationEngine`, sliding window,
commit queue, update set and CPU–FPGA link.  Threads are pinned round
robin to *nodes* (thread ``tid`` lives on node ``tid % shards``), and
a node's CPU-side costs scale with only its own occupancy — the SMT
regime is per node, which is the whole point of scaling out.

The hook protocol maps onto the cluster as:

* ``begin``   — open the home shard (one snapshot per touched shard;
  remote shards open lazily at first touch, paying the hop there);
* ``read``    — route to the owning shard; remote reads pay an
  inter-shard round trip (the CCI-class constants of
  :func:`repro.hw.link.harp2_cci_link`); writes are redo-buffered on
  the owning shard with no hop (they travel with the commit);
* ``commit``  — the :class:`Router` classifies the transaction:
  single-shard commits delegate verbatim to that shard's own commit
  protocol (the fast path — local validation, no coordination), and
  cross-shard commits run the deterministic two-phase
  :class:`Coordinator`;
* ``rollback``— drop per-shard state everywhere, charge once.

With ``shards=1`` every hook delegates directly to the single shard:
by construction the run is bit-identical to a plain
:class:`RococoTMBackend` — the regression gate of docs/CLUSTER.md.

The irrevocable escape hatch (forced by validation-path outages, or by
``irrevocable_after``) is *cluster-wide* at N > 1: a global lock
fences all nodes, reads bypass the shards (direct loads behind each
shard's write-back barrier), and the commit enters each touched
shard's window as an external commit — mirroring the single-node
mechanics one level up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..hw.link import harp2_cci_link
from ..runtime.api import TransactionAborted
from ..runtime.backend import TMBackend
from ..runtime.coarse_lock import GlobalLock
from ..runtime.events import SimEvent
from ..runtime.rococotm import (
    BEGIN_NS,
    COMMIT_RO_NS,
    READ_BASE_NS,
    ROLLBACK_NS,
    WRITE_NS,
    WRITEBACK_PER_WORD_NS,
    RococoTMBackend,
)
from ..signatures import SignatureConfig
from .coordinator import Coordinator
from .partition import Partitioner, make_partitioner
from .router import Router


@dataclass
class _IrrevTxn:
    """Cluster-level irrevocable transaction: shards are bypassed, so
    the cluster itself keeps the redo log and per-shard write sets
    (reads are not recorded — mirroring the single-node irrevocable
    path, which also skips read bookkeeping under the global fence)."""

    writes: Dict[int, List[int]] = field(default_factory=dict)
    redo: Dict[int, Any] = field(default_factory=dict)


class ClusterTMBackend(TMBackend):
    """Sharded scale-out ROCoCoTM (docs/CLUSTER.md)."""

    name = "ClusterTM"
    #: same compact signature metadata as a single ROCoCoTM node.
    metadata_footprint = 0.55

    def __init__(
        self,
        shards: int = 1,
        window: int = 64,
        signature_config: Optional[SignatureConfig] = None,
        partition: str = "hash",
        faults: Optional[str] = None,
        fault_seed: int = 0,
        irrevocable_after: Optional[int] = None,
    ):
        """``faults`` wires every shard's engine through the chaos
        layer with a *per-shard* seed (``fault_seed + shard id``), so
        each node draws an independent deterministic fault schedule.
        ``irrevocable_after`` is handled by the single shard at
        ``shards=1`` (bit-identity with the plain backend) and by the
        cluster-wide escape hatch at N > 1."""
        super().__init__()
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards_n = shards
        self.partitioner: Partitioner = make_partitioner(partition, shards)
        self.irrevocable_after = irrevocable_after
        shard_irrevocable = irrevocable_after if shards == 1 else None
        self.shards: List[RococoTMBackend] = []
        for sid in range(shards):
            if faults is not None:
                from ..faults import build_chaos_backend

                shard = build_chaos_backend(
                    faults,
                    fault_seed + sid,
                    window=window,
                    irrevocable_after=shard_irrevocable,
                )
            else:
                shard = RococoTMBackend(
                    window=window,
                    signature_config=signature_config,
                    irrevocable_after=shard_irrevocable,
                )
            shard.shard_id = sid
            self.shards.append(shard)
        self.router = Router(self.shards)
        self.coordinator = Coordinator(self)
        self.interlink = self.coordinator.interlink
        #: tid -> shard ids opened this attempt, in open order.
        self._open: Dict[int, List[int]] = {}
        self._failures: Dict[int, int] = {}
        self._force_irrevocable: set = set()
        self._lock = GlobalLock()
        self._irrevocable: set = set()
        self._irrev: Dict[int, _IrrevTxn] = {}
        self._watchers: List[int] = []
        self.stats_irrevocable_commits = 0

    # ------------------------------------------------------------------
    def attach(self, driver) -> None:
        super().attach(driver)
        self.partitioner.bind(driver.memory.allocated)
        for shard in self.shards:
            shard.attach(driver)
        if self.shards_n > 1:
            # Per-node SMT regime: CPU-side costs scale with one
            # node's occupancy, not the cluster-wide thread count.
            # (At shards=1 the global regime is the node regime and
            # nothing is overridden — bit-identity.)
            node_threads = self._node_threads(0)  # node 0 is the fullest
            scale = driver.cost_model.compute_scale(
                node_threads, self.metadata_footprint
            )
            self._scale = scale
            for shard in self.shards:
                shard._scale = scale

    def _node_threads(self, node: int) -> int:
        """How many threads node *node* hosts under round-robin
        pinning."""
        n = self.driver.n_threads
        return (n - node + self.shards_n - 1) // self.shards_n

    def local_threads(self, tid: int) -> int:
        if self.shards_n == 1:
            return self.driver.n_threads
        return self._node_threads(tid % self.shards_n)

    def _home(self, tid: int) -> int:
        return tid % self.shards_n

    # ------------------------------------------------------------------
    def begin(self, tid: int, now: float) -> float:
        if self.shards_n == 1:
            return self.shards[0].begin(tid, now)
        if self._lock.held:
            self._watchers.append(tid)
            self.driver.park(tid)
        if tid in self._force_irrevocable or (
            self.irrevocable_after is not None
            and self._failures.get(tid, 0) >= self.irrevocable_after
        ):
            at = self._lock.acquire(tid, now, self.driver)
            self._irrevocable.add(tid)
            self._force_irrevocable.discard(tid)
            self._irrev[tid] = _IrrevTxn()
            return at + self.scaled(BEGIN_NS)
        home = self._home(tid)
        self._open[tid] = [home]
        return self.shards[home].begin(tid, now)

    # ------------------------------------------------------------------
    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        if self.shards_n == 1:
            return self.shards[0].read(tid, addr, now)
        if tid in self._irrevocable:
            return self._read_irrevocable(tid, addr, now)
        sid = self.partitioner.shard_of(addr)
        shard = self.shards[sid]
        remote = sid != self._home(tid)
        at = now
        if remote:
            at += self.interlink.request_ns(1)
        at = self._open_shard(tid, sid, at)
        value, at = shard.read(tid, addr, at)
        if remote:
            at += self.interlink.response_ns()
        return value, at

    def _open_shard(self, tid: int, sid: int, now: float) -> float:
        """Lazily open shard *sid* for *tid* at first touch: a fresh
        per-shard snapshot, charged one begin.  The open rides the
        first access's hop (no extra round trip)."""
        opened = self._open[tid]
        if sid in opened:
            return now
        opened.append(sid)
        at = self.shards[sid].begin(tid, now)
        driver = self.driver
        if driver.wants("shard_open"):
            driver.emit(
                SimEvent(
                    "shard_open",
                    tid,
                    at,
                    data={"shard": sid, "home": self._home(tid)},
                )
            )
        return at

    def _read_irrevocable(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        state = self._irrev[tid]
        if addr in state.redo:
            return state.redo[addr], now + self.scaled(READ_BASE_NS)
        sid = self.partitioner.shard_of(addr)
        remote = sid != self._home(tid)
        at = now
        if remote:
            at += self.interlink.request_ns(1)
        # The global fence stops new commits, but write-backs already
        # in flight on the owning shard must drain first.
        at = self.shards[sid].drain_writebacks(addr, at)
        value = self.memory.load(addr)
        at += self.scaled(READ_BASE_NS)
        if remote:
            at += self.interlink.response_ns()
        return value, at

    # ------------------------------------------------------------------
    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        if self.shards_n == 1:
            return self.shards[0].write(tid, addr, value, now)
        if tid in self._irrevocable:
            state = self._irrev[tid]
            sid = self.partitioner.shard_of(addr)
            if addr not in state.redo:
                state.writes.setdefault(sid, []).append(addr)
            state.redo[addr] = value
            return now + self.scaled(WRITE_NS)
        sid = self.partitioner.shard_of(addr)
        # Writes are redo-buffered on the owning shard's bookkeeping
        # with no hop: the data travels with the commit (prepare for
        # cross-shard, the validation request for single-shard).
        at = self._open_shard(tid, sid, now)
        return self.shards[sid].write(tid, addr, value, at)

    # ------------------------------------------------------------------
    def commit(self, tid: int, now: float) -> float:
        if self.shards_n == 1:
            return self.shards[0].commit(tid, now)
        if tid in self._irrevocable:
            return self._commit_irrevocable(tid, now)
        if self._lock.held:
            # Same fence as a single node: committing under a running
            # irrevocable transaction would invalidate its reads.
            raise TransactionAborted("cpu-irrevocable-fence")

        home = self._home(tid)
        involved, idle = self.router.classify(tid, self._open.get(tid, []))
        for sid in idle:
            self.shards[sid].drop_txn(tid)

        if not involved:
            # The body touched nothing at all: trivially read-only.
            self._open.pop(tid, None)
            self._failures[tid] = 0
            self.stats.read_only_commits += 1
            return now + self.scaled(COMMIT_RO_NS)

        if len(involved) == 1:
            at = self._commit_single(tid, involved[0], home, now)
        else:
            at = self._commit_cross(tid, involved, home, now)
        self._open.pop(tid, None)
        self._failures[tid] = 0
        return at

    def _commit_single(self, tid: int, sid: int, home: int, now: float) -> float:
        """The fast path: the whole transaction lives on one shard, so
        its own commit protocol applies verbatim — read-only CPU
        commit, local FPGA validation, update-set publication.  Only a
        routing hop is added when that shard is not the home node."""
        shard = self.shards[sid]
        n_write = shard.txn_writes(tid)
        remote = sid != home
        at = now
        if remote and n_write:
            lines = self.interlink.lines_for_addresses(
                max(1, shard.txn_reads(tid) + n_write)
            )
            at += self.interlink.request_ns(lines)
        try:
            at = shard.commit(tid, at)
        except TransactionAborted:
            if shard.take_forced_irrevocable(tid):
                # The shard's validation ladder bottomed out; escalate
                # to the cluster-wide irrevocable escape hatch.
                self._force_irrevocable.add(tid)
            raise
        if remote and n_write:
            at += self.interlink.response_ns()
        driver = self.driver
        if driver.wants("route"):
            driver.emit(
                SimEvent(
                    "route",
                    tid,
                    at,
                    data={"shard": sid, "cross": False, "n_write": n_write},
                )
            )
        return at

    def _commit_cross(
        self, tid: int, involved: List[int], home: int, now: float
    ) -> float:
        total_writes = sum(self.shards[sid].txn_writes(tid) for sid in involved)
        at = self.coordinator.commit(tid, home, involved, now)
        if total_writes == 0:
            self.stats.read_only_commits += 1
        driver = self.driver
        if driver.wants("route"):
            driver.emit(
                SimEvent(
                    "route",
                    tid,
                    at,
                    data={"shard": home, "cross": True, "n_write": total_writes},
                )
            )
        return at

    def _commit_irrevocable(self, tid: int, now: float) -> float:
        state = self._irrev.pop(tid)
        total_writes = sum(len(addrs) for addrs in state.writes.values())
        writeback_end = now + self.scaled(WRITEBACK_PER_WORD_NS * total_writes)
        for sid in sorted(state.writes):
            addrs = state.writes[sid]
            self.shards[sid].external_irrevocable_commit(
                (),
                tuple(addrs),
                [(addr, state.redo[addr]) for addr in addrs],
                writeback_end,
            )
        self._irrevocable.discard(tid)
        self._failures[tid] = 0
        self.stats_irrevocable_commits += 1
        ready = self._lock.release(tid, writeback_end, self.driver)
        for watcher in self._watchers:
            self.driver.wake_at(watcher, ready)
        self._watchers.clear()
        return ready

    # ------------------------------------------------------------------
    def rollback(self, tid: int, now: float, cause: str) -> float:
        if self.shards_n == 1:
            return self.shards[0].rollback(tid, now, cause)
        for sid in sorted(self._open.pop(tid, [])):
            self.shards[sid].drop_txn(tid)
        self._irrev.pop(tid, None)
        self._irrevocable.discard(tid)
        self._failures[tid] = self._failures.get(tid, 0) + 1
        return now + self.scaled(ROLLBACK_NS)

    # ------------------------------------------------------------------
    def abort_backoff_scale(self, cause: str) -> float:
        return self.shards[0].abort_backoff_scale(cause)

    def run_finished(self) -> None:
        for shard in self.shards:
            shard.run_finished()
