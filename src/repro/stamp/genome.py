"""genome — gene sequencing by segment deduplication and overlap linking.

Transaction shape (as in STAMP): phase 1 inserts DNA segments into a
shared hash set (dedup — short insert transactions, many of which find
the segment already present and commit with an *empty write set*, the
CPU-side fast path §6.3 credits for genome); phase 2 links unique
segments into chains by matching suffix against prefix through a
shared match table (lookup-heavy transactions, again many read-only
when the probed overlap does not exist).

Input: a synthetic genome string over a 4-letter alphabet, cut into
overlapping fixed-length segments with duplicates, exactly like the
original's generator.  Segments are int-encoded (2 bits/base).
"""

from __future__ import annotations

from typing import Generator, List

from ..runtime import AwaitBarrier, SimBarrier, Transaction, Work
from ..txlib import THashMap, THashSet
from .common import StampWorkload

GENOME_LENGTH = 512
SEGMENT_LENGTH = 8
DUPLICATION = 3          # each position sampled ~3x -> ~67% dup inserts
COMPUTE_NS = 300.0


def _encode(bases: List[int]) -> int:
    """2-bit pack a base list into an int segment id."""
    value = 0
    for base in bases:
        value = value << 2 | base
    return value


class GenomeWorkload(StampWorkload):
    name = "genome"
    profile = "dedup inserts (many empty-write commits) + lookup-heavy linking"

    def setup(self) -> None:
        length = self.scaled(GENOME_LENGTH, minimum=SEGMENT_LENGTH * 4)
        self.genome = [self.rng.randrange(4) for _ in range(length)]
        n_positions = length - SEGMENT_LENGTH + 1
        # Overlapping segments, duplicated and shuffled (sequencer reads).
        positions = [
            self.rng.randrange(n_positions) for _ in range(n_positions * DUPLICATION)
        ]
        self.segments = [
            _encode(self.genome[p : p + SEGMENT_LENGTH]) for p in positions
        ]
        self.rng.shuffle(self.segments)

        self.unique = THashSet(self.memory, n_buckets=256)
        #: suffix(SEGMENT_LENGTH-1 bases) -> encoded segment
        self.by_prefix = THashMap(self.memory, n_buckets=256)
        self.links = THashMap(self.memory, n_buckets=256)
        self.barrier = SimBarrier(self.n_threads)

    # ------------------------------------------------------------------
    def _dedup_body(self, segment: int):
        def body():
            added = yield from self.unique.add(segment)
            if added:
                prefix = segment >> 2  # drop last base
                yield from self.by_prefix.put(prefix, segment)
            return added

        return body

    def _link_body(self, segment: int):
        def body():
            suffix = segment & ((1 << (2 * (SEGMENT_LENGTH - 1))) - 1)
            successor = yield from self.by_prefix.get(suffix)
            if successor is None or successor == segment:
                return False  # read-only probe, no overlap
            existing = yield from self.links.get(segment)
            if existing is not None:
                return False  # read-only: already linked
            yield from self.links.put(segment, successor)
            return True

        return body

    def program(self, tid: int) -> Generator:
        for segment in self.partition(self.segments, tid):
            yield Work(COMPUTE_NS)
            yield Transaction(self._dedup_body(segment), label="dedup")
        yield AwaitBarrier(self.barrier)
        unique_sorted = sorted(set(self.segments))
        for segment in self.partition(unique_sorted, tid):
            yield Work(COMPUTE_NS)
            yield Transaction(self._link_body(segment), label="link")

    # ------------------------------------------------------------------
    def verify(self) -> None:
        stored = set(self.unique.elements_direct())
        assert stored == set(self.segments), "dedup set lost or invented segments"
        # Every link is a real overlap in the input.
        for segment, successor in self.links.items_direct():
            suffix = segment & ((1 << (2 * (SEGMENT_LENGTH - 1))) - 1)
            assert successor >> 2 == suffix, "linked pair does not overlap"
            assert successor in stored
