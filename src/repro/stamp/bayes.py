"""bayes — Bayesian network structure learning (hill climbing).

The paper *excludes* bayes from Fig. 10 "due to its high variability"
(§6.3), and so do our benchmark harnesses; the port is provided to
complete the STAMP suite for users of the library.

Transaction shape (as in STAMP): workers pull candidate edge
insertions from a shared task queue, compute the score delta of the
candidate against the current network (a read-heavy walk of the
parent sets), and — if the edge improves the score and keeps the
network acyclic — install it and enqueue follow-up candidates.  Long,
read-dominated transactions whose footprint depends on the evolving
network: the source of the variability that got it benched.

Substitution (DESIGN.md): real bayes scores candidates against a data
set with a log-likelihood metric; we use a deterministic synthetic
scorer (hash-derived edge affinities) that preserves the decide-
install-enqueue transaction structure and the acyclicity constraint.
"""

from __future__ import annotations

from typing import Generator

from ..runtime import Transaction, Work
from ..txlib import THashMap, TQueue, TVar, mix
from .common import StampWorkload

VARIABLES = 24
INITIAL_CANDIDATES = 48
MAX_PARENTS = 4
SCORE_NS_PER_PARENT = 250.0
AFFINITY_THRESHOLD = 40  # of 100; higher -> fewer edges adopted


def _affinity(src: int, dst: int) -> int:
    """Deterministic pseudo-score in [0, 100)."""
    return mix((src, dst)) % 100


class BayesWorkload(StampWorkload):
    name = "bayes"
    profile = (
        "long read-heavy txns over an evolving graph; high variability "
        "(excluded from Fig. 10, as in the paper)"
    )

    def setup(self) -> None:
        n_vars = self.scaled(VARIABLES, minimum=8)
        self.n_vars = n_vars
        #: variable -> tuple of parent ids.
        self.parents = THashMap(self.memory, n_buckets=64)
        from .common import drive_direct

        for var in range(n_vars):
            drive_direct(self.memory, self.parents.put(var, ()))
        self.tasks = TQueue(self.memory)
        candidates = [
            (self.rng.randrange(n_vars), self.rng.randrange(n_vars))
            for _ in range(self.scaled(INITIAL_CANDIDATES, minimum=8))
        ]
        self.tasks.seed_direct([c for c in candidates if c[0] != c[1]])
        self.adopted = TVar(self.memory, 0)

    # ------------------------------------------------------------------
    def _learn_body(self):
        n_vars = self.n_vars

        def body():
            task = yield from self.tasks.pop()
            if task is None:
                return None
            src, dst = task
            dst_parents = yield from self.parents.get(dst)
            if dst_parents is None or src in dst_parents or len(dst_parents) >= MAX_PARENTS:
                return -1

            # Score the candidate: walk the ancestor sets (read-heavy),
            # also detecting cycles (src must not be reachable FROM dst).
            frontier = [src]
            seen = set()
            reaches_dst = False
            while frontier:
                node = frontier.pop()
                if node in seen:
                    continue
                seen.add(node)
                if node == dst:
                    reaches_dst = True
                node_parents = yield from self.parents.get(node)
                frontier.extend(node_parents or ())
            yield Work(SCORE_NS_PER_PARENT * max(1, len(seen)))

            if reaches_dst:
                return -1  # would close a cycle in the network
            if _affinity(src, dst) < AFFINITY_THRESHOLD:
                return -1  # score delta not good enough

            yield from self.parents.put(dst, tuple(dst_parents) + (src,))
            yield from self.adopted.add(1)
            # Adopting an edge suggests strengthening dst's children.
            follow = (dst, (src + dst) % n_vars)
            if follow[0] != follow[1]:
                yield from self.tasks.push(follow)
            return 1

        return body

    def program(self, tid: int) -> Generator:
        while True:
            outcome = yield Transaction(self._learn_body(), label="learn")
            if outcome is None:
                break
            yield Work(120.0)

    # ------------------------------------------------------------------
    def verify(self) -> None:
        assert self.tasks.drain_direct() == [], "task queue not drained"
        # The learned network must be a DAG with bounded in-degree.
        parent_map = dict(self.parents.items_direct())
        assert len(parent_map) == self.n_vars
        for var, parents in parent_map.items():
            assert len(parents) <= MAX_PARENTS, f"variable {var} over-parented"
            assert var not in parents, f"self-loop on {var}"
        # Cycle check over the final network.
        state = {}

        def dfs(node):
            state[node] = 1
            for parent in parent_map.get(node, ()):
                mark = state.get(parent, 0)
                if mark == 1:
                    raise AssertionError(f"cycle through {node} -> {parent}")
                if mark == 0:
                    dfs(parent)
            state[node] = 2

        for var in range(self.n_vars):
            if state.get(var, 0) == 0:
                dfs(var)
        adopted = self.adopted.peek()
        total_edges = sum(len(p) for p in parent_map.values())
        assert adopted == total_edges, "adopted counter out of sync"
