"""intruder — signature-based network intrusion detection.

Transaction shape (as in STAMP): the capture phase pops one packet
fragment from a single shared queue (every concurrent pop collides on
the head pointer — the "dynamic buffer" contention §6.3 says other
constructs could avoid); the reassembly phase inserts the fragment
into a per-flow map and, when the flow completes, atomically claims
it.  Detection on the reassembled flow is thread-local compute.

Flows have 2-6 fragments delivered in random global order.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from ..runtime import Transaction, Work
from ..txlib import THashMap, TQueue, TVar
from .common import StampWorkload

FLOWS = 96
MAX_FRAGMENTS = 6
DETECT_NS = 700.0
CAPTURE_NS = 150.0

_ATTACK_EVERY = 8  # one in eight flows carries the "attack" payload


class IntruderWorkload(StampWorkload):
    name = "intruder"
    profile = "queue-pop txns (hot head pointer) + per-flow map updates"

    def setup(self) -> None:
        n_flows = self.scaled(FLOWS, minimum=8)
        self.n_flows = n_flows
        packets: List[Tuple[int, int, int]] = []  # (flow, index, total)
        self.attack_flows = set()
        for flow in range(n_flows):
            total = 2 + self.rng.randrange(MAX_FRAGMENTS - 1)
            if flow % _ATTACK_EVERY == 0:
                self.attack_flows.add(flow)
            for index in range(total):
                packets.append((flow, index, total))
        self.rng.shuffle(packets)
        self.n_packets = len(packets)

        self.queue = TQueue(self.memory)
        self.queue.seed_direct(packets)
        #: flow -> fragments received so far
        self.assembly = THashMap(self.memory, n_buckets=128)
        self.completed = THashMap(self.memory, n_buckets=128)
        self.detected = TVar(self.memory, 0)

    # ------------------------------------------------------------------
    def _capture_body(self):
        def body():
            packet = yield from self.queue.pop()
            if packet is None:
                return None
            flow, index, total = packet
            received = yield from self.assembly.get(flow)
            received = (received or 0) + 1
            if received == total:
                yield from self.assembly.remove(flow)
                yield from self.completed.put(flow, total)
                return flow  # fully reassembled: detect outside? no — claimed here
            yield from self.assembly.put(flow, received)
            return -1

        return body

    def _report_body(self):
        def body():
            yield from self.detected.add(1)

        return body

    def program(self, tid: int) -> Generator:
        # Each thread keeps draining until the queue is empty.
        while True:
            yield Work(CAPTURE_NS)
            flow = yield Transaction(self._capture_body(), label="capture")
            if flow is None:
                break
            if flow >= 0:
                yield Work(DETECT_NS)  # run the detector on the flow
                if flow in self.attack_flows:
                    yield Transaction(self._report_body(), label="report")

    # ------------------------------------------------------------------
    def verify(self) -> None:
        assert self.queue.drain_direct() == [], "packets left in the queue"
        completed = dict(self.completed.items_direct())
        assert len(completed) == self.n_flows, (
            f"only {len(completed)}/{self.n_flows} flows reassembled"
        )
        assert self.assembly.items_direct() == [], "dangling partial flows"
        assert self.detected.peek() == len(self.attack_flows)
