"""yada — "yet another Delaunay application" (mesh refinement).

Transaction shape (as in STAMP): workers pull a *bad* element from a
shared priority queue, gather its **cavity** — the element plus a
neighborhood ring read from the shared mesh — retriangulate the
cavity (compute), replace the cavity's elements with fresh ones, and
push any new bad elements back.  Long read-mostly transactions whose
conflicts happen exactly when two workers' cavities overlap —
pointer-chasing contention that "can only resort to transactions"
(§6.3 groups yada with labyrinth).

Substitution (documented in DESIGN.md): full Delaunay geometry is
replaced by a random planar-degree mesh graph with a per-element
badness bit; cavity = the element and its neighbors; retriangulation
replaces the cavity with the same number of fresh elements wired to
the old ring, each new element bad with a decaying probability.  This
preserves footprint sizes, queue pressure, and overlap-driven
conflicts, which is what the evaluation exercises.
"""

from __future__ import annotations

from typing import Generator

from ..runtime import Transaction, Work
from ..txlib import THashMap, THeap, TVar
from .common import StampWorkload, drive_direct

ELEMENTS = 128
NEIGHBORS = 4
INITIAL_BAD_FRACTION = 0.35
RESEED_PROBABILITY = 0.3     # chance a replacement element is bad
RETRIANGULATE_NS = 900.0
MAX_TOTAL_WORK = 4000        # safety valve on the scaled work amount


class YadaWorkload(StampWorkload):
    name = "yada"
    profile = "cavity txns: ~{} element reads, full-cavity rewrite".format(NEIGHBORS + 1)

    def setup(self) -> None:
        n_elements = self.scaled(ELEMENTS, minimum=16)
        #: element id -> (bad, neighbor tuple); ids grow monotonically.
        self.mesh = THashMap(self.memory, n_buckets=256)
        self.work = THeap(self.memory, capacity=MAX_TOTAL_WORK)
        self.processed = TVar(self.memory, 0)
        self.next_id = TVar(self.memory, n_elements)

        initial_bad = []
        for element in range(n_elements):
            neighbors = tuple(
                (element + delta) % n_elements
                for delta in self.rng.sample(range(1, max(2, n_elements)), NEIGHBORS)
            )
            bad = 1 if self.rng.random() < INITIAL_BAD_FRACTION else 0
            drive_direct(self.memory, self.mesh.put(element, (bad, neighbors)))
            if bad:
                initial_bad.append(element)
        self.work.seed_direct(initial_bad)
        self.initial_bad = len(initial_bad)

    # ------------------------------------------------------------------
    def _refine_body(self):
        def body():
            element = yield from self.work.pop_min()
            if element is None:
                return None
            entry = yield from self.mesh.get(element)
            if entry is None or entry[0] == 0:
                return -1  # stale work item: already refined away
            _, neighbors = entry

            # Gather the cavity: the element plus its live neighbors.
            cavity = [(element, neighbors)]
            for n in neighbors:
                n_entry = yield from self.mesh.get(n)
                if n_entry is not None:
                    cavity.append((n, n_entry[1]))

            yield Work(RETRIANGULATE_NS)

            # Replace the cavity with fresh elements.
            new_bad = []
            ring = tuple(nid for nid, _ in cavity)
            for old_id, old_neighbors in cavity:
                yield from self.mesh.remove(old_id)
            guard = yield from self.processed.add(1)
            for i, (old_id, old_neighbors) in enumerate(cavity):
                fresh = yield from self.next_id.add(1)
                # Deterministic pseudo-randomness from the fresh id.
                bad = 1 if (fresh * 2654435761 >> 8) % 100 < RESEED_PROBABILITY * 100 else 0
                wired = tuple(n for n in old_neighbors if n not in ring) or (fresh,)
                yield from self.mesh.put(fresh, (bad, wired))
                if bad and guard < MAX_TOTAL_WORK // (NEIGHBORS + 2):
                    new_bad.append(fresh)
            for fresh in new_bad:
                yield from self.work.push(fresh)
            return element

        return body

    def program(self, tid: int) -> Generator:
        while True:
            result = yield Transaction(self._refine_body(), label="refine")
            if result is None:
                break
            yield Work(100.0)

    # ------------------------------------------------------------------
    def verify(self) -> None:
        assert self.work.snapshot_direct() == [], "work queue not drained"
        # Some refinement must have happened (stale pops — elements
        # refined away as part of an earlier cavity — are legitimate,
        # so the count can be below the initial bad population).
        processed = self.processed.peek()
        if self.initial_bad:
            assert processed >= 1, "no cavity was ever refined"
        # Mesh integrity: every entry parses as (bad, neighbors).
        for element, (bad, neighbors) in self.mesh.items_direct():
            assert bad in (0, 1)
            assert isinstance(neighbors, tuple) and neighbors
