"""ssca2 — graph kernel 1: parallel adjacency construction.

Transaction shape (as in STAMP): an enormous number of *tiny*
transactions — append one directed edge to a node's adjacency array:
read the node's degree counter, bump it, store the edge endpoint.
Two reads + two writes over a ~2^20-node graph means almost no real
contention; scalability is limited purely by per-transaction overhead.
That makes ssca2 the adversarial case for ROCoCoTM (§6.3): the
out-of-core validation latency cannot be amortized against any saved
conflict work, so ROCoCoTM is *expected to lose here* — a shape the
benchmark asserts rather than hides.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from ..runtime import Transaction, Work
from ..txlib import TArray
from .common import StampWorkload

NODES = 256
EDGES_PER_NODE = 4
MAX_DEGREE = 4 * EDGES_PER_NODE
COMPUTE_NS = 150.0  # edge-list parsing per edge


class Ssca2Workload(StampWorkload):
    name = "ssca2"
    profile = "huge count of 2R/2W txns over a large graph; negligible contention"

    def setup(self) -> None:
        n_nodes = self.scaled(NODES, minimum=16)
        n_edges = n_nodes * EDGES_PER_NODE
        self.n_nodes = n_nodes
        self.edges: List[Tuple[int, int]] = [
            (self.rng.randrange(n_nodes), self.rng.randrange(n_nodes))
            for _ in range(n_edges)
        ]
        self.degree = TArray(self.memory, n_nodes)
        self.adjacency = TArray(self.memory, n_nodes * MAX_DEGREE)

    def _insert_body(self, src: int, dst: int):
        def body():
            slot = yield from self.degree.get(src)
            if slot < MAX_DEGREE:
                yield from self.adjacency.set(src * MAX_DEGREE + slot, dst + 1)
                yield from self.degree.set(src, slot + 1)

        return body

    def program(self, tid: int) -> Generator:
        for src, dst in self.partition(self.edges, tid):
            yield Work(COMPUTE_NS)
            yield Transaction(self._insert_body(src, dst), label="add-edge")

    def verify(self) -> None:
        degrees = self.degree.snapshot()
        adjacency = self.adjacency.snapshot()
        # Every recorded degree slot is filled, nothing beyond it is.
        stored = 0
        for node in range(self.n_nodes):
            d = degrees[node]
            assert 0 <= d <= MAX_DEGREE
            row = adjacency[node * MAX_DEGREE : node * MAX_DEGREE + MAX_DEGREE]
            assert all(v != 0 for v in row[:d]), f"hole in adjacency of node {node}"
            stored += d
        # No edge lost except intentional MAX_DEGREE drops.
        dropped_possible = sum(
            max(0, sum(1 for s, _ in self.edges if s == node) - MAX_DEGREE)
            for node in range(self.n_nodes)
        )
        assert stored >= len(self.edges) - dropped_possible
