"""kmeans — iterative clustering (STAMP's high-contention variant).

Transaction shape (as in STAMP): the distance computation runs on a
*stale* snapshot of the centroids outside the critical section; the
transaction is only the accumulator update — ``sums[cluster] += point,
counts[cluster] += 1`` — a short transaction of ``dim + 1``
read-modify-writes on one of K cluster accumulators.  With K small and
many threads, transactions collide constantly: the paper's example of
contention "induced by sharing atomic counters" that other constructs
could resolve (§6.3).

Phases are separated by barriers; thread 0 folds the accumulators into
new centroids between iterations (direct access under the barrier, as
the original does its sequential reduction).
"""

from __future__ import annotations

from typing import Generator, List

from ..runtime import AwaitBarrier, SimBarrier, Transaction, Work
from ..txlib import TArray
from .common import StampWorkload

DIM = 16
CLUSTERS = 8
ITERATIONS = 3
POINTS = 360
COMPUTE_NS_PER_POINT = 600.0  # distance evaluation against K centroids


class KmeansWorkload(StampWorkload):
    name = "kmeans"
    profile = (
        "many short txns ({} RMW cells each) on {} shared accumulators; "
        "high contention, no read-only txns".format(DIM + 1, CLUSTERS)
    )
    #: class-level knob so contention variants can override it.
    clusters = CLUSTERS

    def setup(self) -> None:
        n_points = self.scaled(POINTS, minimum=self.clusters * 2)
        self.points: List[List[int]] = [
            [self.rng.randrange(1000) for _ in range(DIM)] for _ in range(n_points)
        ]
        # Per-cluster accumulators: DIM sums + a count, cacheline-spread.
        self.sums = [TArray(self.memory, DIM) for _ in range(self.clusters)]
        self.counts = TArray(self.memory, self.clusters)
        self.centroids = [
            self.points[i % n_points][:] for i in range(self.clusters)
        ]
        self.barrier = SimBarrier(self.n_threads)
        self._committed_points = 0

    # ------------------------------------------------------------------
    def _nearest(self, point: List[int]) -> int:
        best, best_dist = 0, None
        for c, centroid in enumerate(self.centroids):
            dist = sum((a - b) ** 2 for a, b in zip(point, centroid))
            if best_dist is None or dist < best_dist:
                best, best_dist = c, dist
        return best

    def _accumulate_body(self, cluster: int, point: List[int]):
        def body():
            for d in range(DIM):
                yield from self.sums[cluster].add(d, point[d])
            yield from self.counts.add(cluster, 1)

        return body

    def program(self, tid: int) -> Generator:
        mine = self.partition(self.points, tid)
        for _ in range(ITERATIONS):
            for point in mine:
                yield Work(COMPUTE_NS_PER_POINT)
                cluster = self._nearest(point)
                yield Transaction(self._accumulate_body(cluster, point), label="accumulate")
            yield AwaitBarrier(self.barrier)
            if tid == 0:
                self._reduce()
            yield AwaitBarrier(self.barrier)

    def _reduce(self) -> None:
        """Fold accumulators into centroids and reset them (thread 0,
        between barriers — sequential as in the original)."""
        counts = self.counts.snapshot()
        for c in range(self.clusters):
            if counts[c]:
                sums = self.sums[c].snapshot()
                self.centroids[c] = [s // counts[c] for s in sums]
            self.sums[c].fill([0] * DIM)
        self._committed_points += sum(counts)
        self.counts.fill([0] * self.clusters)

    # ------------------------------------------------------------------
    def verify(self) -> None:
        expected = len(self.points) * ITERATIONS
        assert self._committed_points == expected, (
            f"lost updates: accumulated {self._committed_points} point-assignments, "
            f"expected {expected}"
        )
