"""Shared infrastructure for the STAMP application ports.

Each application is a :class:`StampWorkload`: construction builds the
shared data structures and input data (the non-transactional setup
phase of the original C program), ``program(tid, n_threads)`` yields
one thread's work, and ``verify()`` asserts application-level
invariants against final memory — the oracle that catches any
atomicity violation a backend might commit.

Substitution note (see DESIGN.md): inputs are synthetic and scaled by
``scale`` so a simulated run takes seconds, preserving each
application's transaction *shape* — length, read/write-set sizes,
read-only fraction, contention pattern — which is what the paper's
analysis of Fig. 10 relies on.
"""

from __future__ import annotations

import random
from typing import Callable, Generator, List, Optional, Type

from ..runtime import CostModel, Memory, RunStats, Simulator, TMBackend


def drive_direct(memory, gen) -> object:
    """Run a txlib generator directly against memory (setup phase).

    Returns the generator's return value.  Only Read/Write/Alloc ops
    are meaningful outside a transaction.
    """
    from ..runtime.api import Alloc, Read, Write

    try:
        op = next(gen)
        while True:
            if isinstance(op, Read):
                op = gen.send(memory.load(op.addr))
            elif isinstance(op, Write):
                memory.store(op.addr, op.value)
                op = gen.send(None)
            elif isinstance(op, Alloc):
                op = gen.send(memory.alloc(op.cells))
            else:  # pragma: no cover
                raise TypeError(f"unexpected op in direct drive: {op!r}")
    except StopIteration as stop:
        return stop.value


class StampWorkload:
    """Base class; subclasses define name, setup, program, verify."""

    name = "abstract"
    #: descriptive transaction profile, used in docs and reports.
    profile = ""

    def __init__(self, memory: Memory, n_threads: int, scale: float = 1.0, seed: int = 0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.memory = memory
        self.n_threads = n_threads
        self.scale = scale
        self.seed = seed
        # Deterministic across processes: Python's str hash is salted,
        # which would make workload inputs differ run-to-run.
        name_tag = sum(ord(ch) * 131 ** i for i, ch in enumerate(self.name))
        self.rng = random.Random((seed << 8) ^ (name_tag % 997))
        self.setup()

    # -- subclass interface --------------------------------------------
    def setup(self) -> None:
        raise NotImplementedError

    def program(self, tid: int) -> Generator:
        raise NotImplementedError

    def verify(self) -> None:
        """Assert final-state invariants (raises AssertionError)."""
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------
    def scaled(self, n: int, minimum: int = 1) -> int:
        return max(minimum, round(n * self.scale))

    def partition(self, items: List, tid: int) -> List:
        """Static round-robin partition of *items* for thread *tid*."""
        return items[tid :: self.n_threads]


def run_stamp(
    workload_cls: Type[StampWorkload],
    backend: TMBackend,
    n_threads: int,
    scale: float = 1.0,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    verify: bool = True,
    instrument: Optional[Callable[[Simulator], None]] = None,
) -> RunStats:
    """Build, run and verify one (application, backend, threads) cell.

    *instrument*, if given, is called with the built :class:`Simulator`
    before the run starts — the observability hook (:mod:`repro.obs`)
    for attaching tracers and metric collectors to ``simulator.bus``.
    """
    memory = Memory()
    workload = workload_cls(memory, n_threads, scale=scale, seed=seed)
    simulator = Simulator(
        backend,
        n_threads,
        memory=memory,
        cost_model=cost_model,
        seed=seed,
        workload_name=workload.name,
    )
    if instrument is not None:
        instrument(simulator)
    stats = simulator.run([workload.program] * n_threads)
    if verify:
        workload.verify()
    return stats
