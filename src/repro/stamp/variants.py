"""Contention variants of the STAMP applications.

The original suite ships "low" and "high" contention configurations
(e.g. ``vacation-low``/``vacation-high``, ``kmeans-low``/``kmeans-high``);
the paper evaluates one configuration per application, but the
variants are part of STAMP's surface and make useful stress knobs, so
they are provided here as parameter-override subclasses.

* ``vacation-high``: a quarter of the relations and twice the queries
  per session — many more sessions collide on the same rows.
* ``kmeans-low``: 3x the clusters — accumulator collisions become
  rare and the workload turns embarrassingly parallel.
"""

from __future__ import annotations

from .kmeans import CLUSTERS, KmeansWorkload
from .vacation import QUERIES_PER_SESSION, RELATIONS, VacationWorkload


class VacationHighWorkload(VacationWorkload):
    """STAMP's vacation-high: denser queries over fewer rows."""

    name = "vacation-high"
    profile = "vacation with 4x row density and 2x query footprint"
    relations = max(8, RELATIONS // 4)
    queries_per_session = QUERIES_PER_SESSION * 2


class KmeansLowWorkload(KmeansWorkload):
    """STAMP's kmeans-low: more clusters, fewer collisions."""

    name = "kmeans-low"
    profile = "kmeans with 3x clusters; accumulator collisions rare"
    clusters = CLUSTERS * 3
