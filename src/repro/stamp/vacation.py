"""vacation — an in-memory travel reservation database.

Transaction shape (as in STAMP): a client session queries several
random relations (cars / flights / rooms availability), reserves the
best-priced item for a customer, occasionally deletes a customer
(releasing reservations) or updates the tables.  Mid-size transactions
with a large read part and a small write part; contention is moderate
and grows with the query footprint.

The mix follows STAMP's "low contention" default: 90% reservations,
5% deletions, 5% table updates; ~80% of each transaction's accesses
are reads.
"""

from __future__ import annotations

from typing import Generator

from ..runtime import Transaction, Work
from ..txlib import THashMap
from .common import StampWorkload, drive_direct

RELATIONS = 48          # items per resource table (scaled)
SESSIONS = 420          # total client sessions (scaled), fixed so the
                        # work is identical at every thread count
QUERIES_PER_SESSION = 4
CUSTOMERS = 64
COMPUTE_NS = 500.0

KIND_CAR, KIND_FLIGHT, KIND_ROOM = 0, 1, 2
KINDS = (KIND_CAR, KIND_FLIGHT, KIND_ROOM)


class VacationWorkload(StampWorkload):
    name = "vacation"
    profile = "mid-size txns, ~80% reads (queries) + small reservation writes"
    #: class-level knobs so contention variants can override them.
    relations = RELATIONS
    queries_per_session = QUERIES_PER_SESSION

    def setup(self) -> None:
        n_items = self.scaled(self.relations, minimum=8)
        self.n_items = n_items
        self.tables = {kind: THashMap(self.memory, n_buckets=64) for kind in KINDS}
        self.reservations = THashMap(self.memory, n_buckets=128)
        self._seed_tables()
        self.sessions = [self._make_session() for _ in range(self.scaled(SESSIONS))]
        self._released = 0

    def _seed_tables(self) -> None:
        # Direct seeding: (available, price) per item id.
        for kind in KINDS:
            table = self.tables[kind]
            for item in range(self.n_items):
                price = 100 + self.rng.randrange(400)
                self._direct_put(table, item, (10, price))

    @staticmethod
    def _direct_put(table: THashMap, key, value) -> None:
        drive_direct(table.memory, table.put(key, value))

    def _make_session(self):
        roll = self.rng.random()
        customer = self.rng.randrange(CUSTOMERS)
        if roll < 0.90:
            queries = [
                (self.rng.choice(KINDS), self.rng.randrange(self.n_items))
                for _ in range(self.queries_per_session)
            ]
            return ("reserve", customer, queries)
        if roll < 0.95:
            return ("delete", customer, None)
        return (
            "update",
            None,
            [
                (self.rng.choice(KINDS), self.rng.randrange(self.n_items),
                 100 + self.rng.randrange(400))
                for _ in range(2)
            ],
        )

    # ------------------------------------------------------------------
    def _reserve_body(self, customer: int, queries):
        def body():
            best = None
            for kind, item in queries:
                entry = yield from self.tables[kind].get(item)
                if entry is None:
                    continue
                available, price = entry
                if available > 0 and (best is None or price < best[2]):
                    best = (kind, item, price, available)
            if best is None:
                return 0
            kind, item, price, available = best
            yield from self.tables[kind].put(item, (available - 1, price))
            key = (customer, kind, item)
            count = yield from self.reservations.get(key)
            yield from self.reservations.put(key, (count or 0) + 1)
            return 1

        return body

    def _delete_body(self, customer: int):
        def body():
            released = 0
            # Check this customer's possible reservations (bounded scan
            # of known keys, as the original walks the customer's list).
            for kind in KINDS:
                for item in range(0, self.n_items, max(1, self.n_items // 4)):
                    key = (customer, kind, item)
                    count = yield from self.reservations.get(key)
                    if count:
                        yield from self.reservations.remove(key)
                        entry = yield from self.tables[kind].get(item)
                        if entry is not None:
                            available, price = entry
                            yield from self.tables[kind].put(
                                item, (available + count, price)
                            )
                        released += count
            return released

        return body

    def _update_body(self, updates):
        def body():
            for kind, item, new_price in updates:
                entry = yield from self.tables[kind].get(item)
                if entry is not None:
                    available, _ = entry
                    yield from self.tables[kind].put(item, (available, new_price))

        return body

    def program(self, tid: int) -> Generator:
        for action, customer, payload in self.partition(self.sessions, tid):
            yield Work(COMPUTE_NS)
            if action == "reserve":
                yield Transaction(self._reserve_body(customer, payload), label="reserve")
            elif action == "delete":
                yield Transaction(self._delete_body(customer), label="delete")
            else:
                yield Transaction(self._update_body(payload), label="update")

    # ------------------------------------------------------------------
    def verify(self) -> None:
        # Conservation: for every item, initial stock == available +
        # outstanding reservations of that item.
        outstanding = {}
        for (customer, kind, item), count in self.reservations.items_direct():
            outstanding[(kind, item)] = outstanding.get((kind, item), 0) + count
        for kind in KINDS:
            for item, (available, _price) in self.tables[kind].items_direct():
                reserved = outstanding.get((kind, item), 0)
                assert available + reserved == 10, (
                    f"stock leak on {kind}/{item}: available={available} "
                    f"reserved={reserved}"
                )
                assert available >= 0, f"oversold {kind}/{item}"
