"""labyrinth — parallel maze routing (Lee's algorithm).

Transaction shape (as in STAMP): each transaction routes one
(start, goal) pair.  As in the original code, the grid snapshot is
copied with *plain loads* (an application-level early-release
optimization — the copy may be inconsistent), the route is computed
over the private copy, and then every cell of the chosen path is
transactionally re-read and claimed — so the transactional read set is
the path, by far the largest read set of the suite (the "huge read
set" Fig. 11 blames for TinySTM's validation overhead), and conflicts
are real path overlaps that "can only resort to transactions" (§6.3).
A claim that finds a cell already taken restarts routing from a fresh
snapshot (STAMP's TM_RESTART loop), bounded by RETRIES.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, List, Optional, Tuple

from ..runtime import Read, Transaction, Work, Write
from ..txlib import TArray
from .common import StampWorkload

GRID = 32               # grid side (scaled area)
PATHS = 20
BFS_NS_PER_CELL = 6.0   # expansion cost of Lee's algorithm
COPY_NS_PER_CELL = 0.8  # plain-load memcpy of the grid
RETRIES = 12            # re-route attempts after claim failures
EMPTY = 0


class LabyrinthWorkload(StampWorkload):
    name = "labyrinth"
    profile = "few long txns: whole-grid read snapshot + path writes"

    def setup(self) -> None:
        side = max(8, round(GRID * self.scale**0.5))
        self.side = side
        self.grid = TArray(self.memory, side * side)
        n_paths = self.scaled(PATHS, minimum=4)
        self.jobs: List[Tuple[int, int]] = []
        self._routed = set()
        cells = side * side
        taken = set()
        for path_id in range(n_paths):
            while True:
                start = self.rng.randrange(cells)
                goal = self.rng.randrange(cells)
                if start != goal and start not in taken and goal not in taken:
                    taken.add(start)
                    taken.add(goal)
                    break
            self.jobs.append((start, goal))
            # Endpoints are pre-claimed pins (as the original marks
            # routing terminals), so no other path routes over them.
            self.grid.fill_at(start, path_id + 1)
            self.grid.fill_at(goal, path_id + 1)

    # ------------------------------------------------------------------
    def _neighbors(self, cell: int):
        side = self.side
        x, y = cell % side, cell // side
        if x > 0:
            yield cell - 1
        if x < side - 1:
            yield cell + 1
        if y > 0:
            yield cell - side
        if y < side - 1:
            yield cell + side

    def _route(
        self, snapshot: List[int], start: int, goal: int, marker: int
    ) -> Optional[List[int]]:
        """BFS over the private snapshot; returns the path or None.

        Passable cells are empty or carry this path's own marker (its
        pre-claimed endpoints).
        """
        parent = {start: start}
        frontier = deque([start])
        while frontier:
            cell = frontier.popleft()
            if cell == goal:
                path = [cell]
                while cell != start:
                    cell = parent[cell]
                    path.append(cell)
                return path
            for nxt in self._neighbors(cell):
                if nxt not in parent and snapshot[nxt] in (EMPTY, marker):
                    parent[nxt] = cell
                    frontier.append(nxt)
        return None

    def _route_body(self, path_id: int, start: int, goal: int):
        side = self.side
        marker = path_id + 1

        def body():
            # Plain-load snapshot (early release): not part of the
            # transactional read set, may be stale.
            snapshot = self.grid.snapshot()
            yield Work(COPY_NS_PER_CELL * side * side)
            yield Work(BFS_NS_PER_CELL * side * side)
            path = self._route(snapshot, start, goal, marker)
            if path is None:
                return "unroutable"
            # Transactionally re-read and claim every path cell; the
            # path is the (large) read+write set the TM must protect.
            for cell in path:
                value = yield Read(self.grid.base + cell)
                if value not in (EMPTY, marker):
                    return "blocked"  # stale snapshot: restart routing
            for cell in path:
                yield Write(self.grid.base + cell, marker)
            return "routed"

        return body

    def program(self, tid: int) -> Generator:
        for path_id, (start, goal) in enumerate(self.jobs):
            if path_id % self.n_threads != tid:
                continue
            for _ in range(RETRIES):
                outcome = yield Transaction(
                    self._route_body(path_id, start, goal), label="route"
                )
                if outcome == "routed":
                    self._routed.add(path_id)
                if outcome != "blocked":
                    break

    # ------------------------------------------------------------------
    def verify(self) -> None:
        grid = self.grid.snapshot()
        # Each routed path must be a connected start->goal corridor of
        # its own id; distinct paths never share a cell (that is the
        # atomicity the TM must provide).
        for path_id, (start, goal) in enumerate(self.jobs):
            marker = path_id + 1
            cells = {c for c, v in enumerate(grid) if v == marker}
            assert start in cells and goal in cells, f"path {marker} lost its pins"
            if path_id not in self._routed:
                continue  # unroutable jobs legitimately fail; pins remain
            # Connectivity within the marker set.
            seen = {start}
            frontier = deque([start])
            while frontier:
                cell = frontier.popleft()
                for nxt in self._neighbors(cell):
                    if nxt in cells and nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            assert goal in seen, f"path {marker} disconnected"
