"""Python ports of the STAMP applications (§6.2-6.3).

The seven evaluated applications are in :data:`ALL_WORKLOADS`; bayes
(:data:`EXTRA_WORKLOADS`) completes the suite but stays out of the
Fig. 10 harness, as in the paper.  Each module
documents its transaction shape and how the port preserves it; inputs
are synthetic and scaled (see DESIGN.md's substitution table).

Use :func:`run_stamp` to execute one (application, backend, threads)
cell with verification, or iterate :data:`ALL_WORKLOADS`.
"""

from .bayes import BayesWorkload
from .common import StampWorkload, drive_direct, run_stamp
from .genome import GenomeWorkload
from .intruder import IntruderWorkload
from .kmeans import KmeansWorkload
from .labyrinth import LabyrinthWorkload
from .ssca2 import Ssca2Workload
from .vacation import VacationWorkload
from .variants import KmeansLowWorkload, VacationHighWorkload
from .yada import YadaWorkload

#: The seven configurations the paper evaluates (Fig. 10).
ALL_WORKLOADS = (
    GenomeWorkload,
    IntruderWorkload,
    KmeansWorkload,
    LabyrinthWorkload,
    Ssca2Workload,
    VacationWorkload,
    YadaWorkload,
)

#: STAMP's alternative contention configurations (not in Fig. 10).
CONTENTION_VARIANTS = (KmeansLowWorkload, VacationHighWorkload)

#: bayes completes the suite but is excluded from the Fig. 10 harness,
#: exactly as the paper excludes it "due to its high variability".
EXTRA_WORKLOADS = (BayesWorkload,)

__all__ = [
    "ALL_WORKLOADS",
    "BayesWorkload",
    "CONTENTION_VARIANTS",
    "EXTRA_WORKLOADS",
    "GenomeWorkload",
    "IntruderWorkload",
    "KmeansLowWorkload",
    "KmeansWorkload",
    "LabyrinthWorkload",
    "Ssca2Workload",
    "StampWorkload",
    "VacationHighWorkload",
    "VacationWorkload",
    "YadaWorkload",
    "drive_direct",
    "run_stamp",
]
