"""ROCoCoTM — a complete functional reproduction of
"FPGA-Accelerated Optimistic Concurrency Control for Transactional
Memory" (Li et al., MICRO-52, 2019).

Subpackages, bottom-up:

* :mod:`repro.semantics` — axiom-based transactional semantics (§3):
  relations, histories, serializability / strict serializability /
  snapshot isolation / linearizability checkers, phantom orderings.
* :mod:`repro.core` — the ROCoCo algorithm (§4): bit-parallel
  incremental transitive closure, O(1) cycle detection, the W-slot
  sliding-window validator.
* :mod:`repro.cc` — trace-level CC algorithms (2PL, BOCC, FOCC, TOCC
  variants, ROCoCo) for the §6.1 micro-benchmark.
* :mod:`repro.signatures` — parallel bloom-filter signatures and their
  false-positivity model (§5.2, Fig. 7).
* :mod:`repro.hw` — the FPGA offload engine, functionally simulated:
  detector, manager, pipeline timing, CCI link, resources (§4.2, §6.5).
* :mod:`repro.faults` — deterministic fault injection (link drops /
  spikes / CRC corruption, engine stalls / resets) and the validation
  degradation ladder (timeout -> resubmit -> software failover ->
  irrevocable); see docs/FAULTS.md.
* :mod:`repro.runtime` — discrete-event multicore simulator and the
  TM systems: ROCoCoTM (§5), TinySTM/LSA, TSX-style HTM, global lock,
  sequential.
* :mod:`repro.txlib` — transactional data structures.
* :mod:`repro.stamp` — the seven evaluated STAMP applications.
* :mod:`repro.bench` — harnesses regenerating every figure and table.

Quickstart::

    from repro.runtime import RococoTMBackend
    from repro.stamp import run_stamp, VacationWorkload

    stats = run_stamp(VacationWorkload, RococoTMBackend(), n_threads=8)
    print(stats.summary())
"""

__version__ = "1.0.0"

from . import (
    bench,
    cc,
    core,
    faults,
    hw,
    obs,
    runtime,
    semantics,
    signatures,
    stamp,
    txlib,
)

__all__ = [
    "__version__",
    "bench",
    "cc",
    "core",
    "faults",
    "hw",
    "obs",
    "runtime",
    "semantics",
    "signatures",
    "stamp",
    "txlib",
]
