"""Findings, inline suppressions, and the checked-in baseline.

A :class:`Finding` is one rule violation at one source location.  Two
mechanisms silence a finding without fixing it:

* **inline suppression** — a comment on the offending line.
  ``# tm: ignore[TM101]`` suppresses the named rule(s) (comma
  separated); ``# tm: ignore`` suppresses every rule on the line; the
  legacy spelling ``# tm-lint: ignore`` is honored as suppress-all.
  Every suppression is expected to carry a justification in the
  surrounding code (docs/ANALYSIS.md).
* **baseline** — a checked-in JSON file of known findings that are
  tolerated until paid down.  Entries match on ``(path, rule,
  stripped source line)`` rather than line numbers, so unrelated edits
  above a baselined finding don't resurrect it.

The repo's own baseline (``analysis-baseline.json``) is empty: every
true violation the analyzer surfaced was fixed or inline-suppressed
with a rationale.  The machinery exists for downstream growth — a new
rule can land gated, with its existing debt baselined, without
blocking CI.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

BASELINE_VERSION = 1
#: the default checked-in baseline filename, looked up in the CWD.
DEFAULT_BASELINE = "analysis-baseline.json"

_SUPPRESS_ALL_MARKS = ("# tm: ignore", "# tm-lint: ignore")
_SUPPRESS_RULES_RE = re.compile(r"#\s*tm:\s*ignore\[([A-Za-z0-9,\s-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


def suppressed_rules(line_text: str) -> Optional[Set[str]]:
    """The rules an inline comment on *line_text* suppresses.

    Returns None (nothing suppressed), a set of rule ids, or the
    sentinel :data:`ALL_RULES` (empty set means *all*: a bare
    ``# tm: ignore``/``# tm-lint: ignore`` suppresses every rule).
    """
    match = _SUPPRESS_RULES_RE.search(line_text)
    if match is not None:
        return {rule.strip().upper() for rule in match.group(1).split(",") if rule.strip()}
    for mark in _SUPPRESS_ALL_MARKS:
        if mark in line_text:
            return set()  # empty set = suppress all rules on the line
    return None


def is_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    """True if *finding*'s source line carries a matching suppression."""
    if not 0 < finding.line <= len(lines):
        return False
    rules = suppressed_rules(lines[finding.line - 1])
    if rules is None:
        return False
    return not rules or finding.rule in rules


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _context_of(finding: Finding, lines: Sequence[str]) -> str:
    if 0 < finding.line <= len(lines):
        return lines[finding.line - 1].strip()
    return ""


class Baseline:
    """A multiset of tolerated findings keyed by content, not line.

    ``filter`` consumes one baseline entry per matching finding, so a
    *second* identical violation on a new line still fails the build.
    """

    def __init__(self, entries: Optional[Sequence[dict]] = None) -> None:
        self._entries: Dict[Tuple[str, str, str], int] = {}
        for entry in entries or ():
            self.add_entry(entry["path"], entry["rule"], entry["context"])

    def __len__(self) -> int:
        return sum(self._entries.values())

    def add_entry(self, path: str, rule: str, context: str) -> None:
        key = (path, rule, context)
        self._entries[key] = self._entries.get(key, 0) + 1

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path) -> "Baseline":
        with open(path) as source:
            payload = json.load(source)
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r}"
            )
        return cls(payload.get("entries", ()))

    def dump(self, path) -> None:
        entries = []
        for (file_path, rule, context), count in sorted(self._entries.items()):
            entries.extend(
                {"path": file_path, "rule": rule, "context": context}
                for _ in range(count)
            )
        payload = {"version": BASELINE_VERSION, "entries": entries}
        with open(path, "w") as sink:
            json.dump(payload, sink, indent=1, sort_keys=True)
            sink.write("\n")

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], sources: Dict[str, Sequence[str]]
    ) -> "Baseline":
        baseline = cls()
        for finding in findings:
            baseline.add_entry(
                finding.path,
                finding.rule,
                _context_of(finding, sources.get(finding.path, ())),
            )
        return baseline

    # ------------------------------------------------------------------
    def filter(
        self, findings: Sequence[Finding], sources: Dict[str, Sequence[str]]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split *findings* into (new, baselined)."""
        budget = dict(self._entries)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = (
                finding.path,
                finding.rule,
                _context_of(finding, sources.get(finding.path, ())),
            )
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined


def load_baseline(path=None) -> Optional[Baseline]:
    """The baseline at *path* (or the default, if present), else None."""
    if path is None:
        candidate = Path(DEFAULT_BASELINE)
        if not candidate.is_file():
            return None
        path = candidate
    return Baseline.load(path)
