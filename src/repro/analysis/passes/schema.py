"""TM103/TM104: event and metric names checked against the registry.

The bus and the metrics registry are stringly typed by design — the
hot path cannot afford enum objects — which means a typo'd kind or
metric name fails *silently*: ``wants("valdiate")`` is permanently
False, ``reg.count("txn.comits")`` mints an orphan counter.  These
passes close that hole statically, against the same
:mod:`repro.analysis.registry` tables the runtime asserts on under
``__debug__`` (:meth:`repro.runtime.events.EventBus.emit`).

``TM103`` **event schema** — checks, wherever a constant appears:

* ``SimEvent("<kind>", ...)`` constructions: the kind must be
  declared; a literal ``data={...}`` payload must carry exactly the
  declared fields for that kind, and kinds without a declared payload
  must not pass one;
* ``bus.subscribe(fn, kinds=...)`` and ``bus.wants("<kind>")``;
* ``KINDS``-suffixed tuple constants (``KINDS``, ``_KINDS``,
  ``BASE_KINDS``...) — the idiom subscribers use for their kind sets;
* ``event.data["<field>"]`` / ``data = event.data; data["<field>"]``
  consumer reads: the field must be declared in *some* event payload.

``TM104`` **metric schema** — recognizes registry calls by receiver
naming convention (``reg``/``registry``/``metrics``, or any
``*.registry`` attribute — the idiom every call site in the repo
already follows) and checks ``count``/``gauge``/``observe``/
``histogram`` names: constant names must be declared with the same
instrument; f-string names must extend a declared dynamic family
(``f"txn.aborts.{cause}"`` -> family ``txn.aborts.``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from .. import registry
from ..findings import Finding
from .common import const_str, fstring_prefix, string_elements, walk_body

#: receiver spellings that mark a MetricsRegistry call site.
_METRIC_RECEIVERS = {"reg", "registry", "metrics", "_registry", "_metrics"}
_METRIC_METHODS = {
    "count": registry.COUNTER,
    "gauge": registry.GAUGE,
    "observe": registry.HISTOGRAM,
    "histogram": registry.HISTOGRAM,
}
#: names that hold an event in subscriber/handler code.
_EVENT_VARS = {"event", "ev", "evt"}


# ----------------------------------------------------------------------
# TM103 — event kinds and payload fields
# ----------------------------------------------------------------------
def check_event_schema(tree: ast.Module, path: str, ctx) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield from _check_simevent_call(node, path)
            yield from _check_bus_call(node, path)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            yield from _check_kinds_constant(node, path)
    yield from _check_payload_reads(tree, path)


def _check_simevent_call(node: ast.Call, path: str) -> Iterable[Finding]:
    func = node.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
    if name != "SimEvent":
        return
    kind = None
    if node.args:
        kind = const_str(node.args[0])
    for kw in node.keywords:
        if kw.arg == "kind":
            kind = const_str(kw.value)
    if kind is None:
        return  # dynamic kind: the runtime assert still covers it
    schema = registry.EVENT_SCHEMAS.get(kind)
    if schema is None:
        yield Finding(
            path, node.lineno, node.col_offset, "TM103",
            f"undeclared event kind {kind!r}; declare it in "
            "repro.analysis.registry.EVENT_SCHEMAS",
        )
        return
    for kw in node.keywords:
        if kw.arg != "data" or not isinstance(kw.value, ast.Dict):
            continue
        keys: Set[str] = set()
        literal = True
        for key in kw.value.keys:
            value = const_str(key) if key is not None else None
            if value is None:
                literal = False  # **spread or computed key: runtime's job
            else:
                keys.add(value)
        if not literal:
            continue
        problem = registry.check_event(kind, keys)
        if problem is not None:
            yield Finding(
                path, kw.value.lineno, kw.value.col_offset, "TM103", problem
            )


def _check_bus_call(node: ast.Call, path: str) -> Iterable[Finding]:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    if func.attr == "wants" and node.args:
        kind = const_str(node.args[0])
        if kind is not None and kind not in registry.EVENT_SCHEMAS:
            yield Finding(
                path, node.lineno, node.col_offset, "TM103",
                f"wants({kind!r}): undeclared event kind — this guard is "
                "always False",
            )
    elif func.attr == "subscribe":
        for kw in node.keywords:
            if kw.arg != "kinds":
                continue
            for kind in string_elements(kw.value):
                if kind not in registry.EVENT_SCHEMAS:
                    yield Finding(
                        path, kw.value.lineno, kw.value.col_offset, "TM103",
                        f"subscribe(kinds=...): undeclared event kind "
                        f"{kind!r} — the subscriber would never fire",
                    )


def _check_kinds_constant(node, path: str) -> Iterable[Finding]:
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    named_kinds = any(
        isinstance(t, ast.Name) and t.id.upper().endswith("KINDS")
        for t in targets
    )
    if not named_kinds or node.value is None:
        return
    elements = string_elements(node.value)
    # A *KINDS constant that shares no vocabulary with the event
    # registry is a different domain (e.g. the sanitizer's
    # VIOLATION_KINDS) — only mixed lists can hide a typo'd bus kind.
    if not any(kind in registry.EVENT_SCHEMAS for kind in elements):
        return
    for kind in elements:
        if kind not in registry.EVENT_SCHEMAS:
            yield Finding(
                path, node.value.lineno, node.value.col_offset, "TM103",
                f"undeclared event kind {kind!r} in a KINDS constant",
            )


def _check_payload_reads(tree: ast.Module, path: str) -> Iterable[Finding]:
    """``event.data["x"]`` / ``data = event.data; data["x"]``/
    ``data.get("x")`` — the field must exist in some declared payload."""
    for scope in ast.walk(tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        #: local aliases of an event's data payload.
        aliases: Set[str] = set()
        for node in walk_body(scope):
            if isinstance(node, ast.Assign) and _is_event_data(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        for node in walk_body(scope):
            field = None
            location = None
            if isinstance(node, ast.Subscript) and _is_payload_ref(
                node.value, aliases
            ):
                field = const_str(node.slice)
                location = node
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and _is_payload_ref(node.func.value, aliases)
                and node.args
            ):
                field = const_str(node.args[0])
                location = node
            if field is not None and field not in registry.PAYLOAD_FIELDS:
                yield Finding(
                    path, location.lineno, location.col_offset, "TM103",
                    f"event payload field {field!r} is not declared for any "
                    "event kind (typo'd reads raise KeyError only when the "
                    "kind actually fires)",
                )


def _is_event_data(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "data"
        and isinstance(node.value, ast.Name)
        and node.value.id in _EVENT_VARS
    )


def _is_payload_ref(node: ast.AST, aliases: Set[str]) -> bool:
    if _is_event_data(node):
        return True
    return isinstance(node, ast.Name) and node.id in aliases


# ----------------------------------------------------------------------
# TM104 — metric names
# ----------------------------------------------------------------------
def check_metric_schema(tree: ast.Module, path: str, ctx) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        instrument = _METRIC_METHODS.get(func.attr)
        if instrument is None or not node.args:
            continue
        if not _is_metric_receiver(func.value):
            continue
        name_node = node.args[0]
        name = const_str(name_node)
        if name is not None:
            problem = registry.check_metric(name, instrument)
            if problem is not None:
                yield Finding(
                    path, node.lineno, node.col_offset, "TM104", problem
                )
            continue
        if isinstance(name_node, ast.JoinedStr):
            prefix = fstring_prefix(name_node)
            if prefix is None:
                yield Finding(
                    path, node.lineno, node.col_offset, "TM104",
                    "dynamic metric name without a constant family prefix; "
                    "spell it f\"<declared-family>{suffix}\" so the name "
                    "is statically attributable",
                )
                continue
            family = _family_of(prefix)
            if family is None:
                yield Finding(
                    path, node.lineno, node.col_offset, "TM104",
                    f"metric prefix {prefix!r} does not extend any declared "
                    "dynamic family; declare one (name ending '.') in "
                    "repro.analysis.registry.METRICS",
                )
            elif family.instrument != instrument:
                yield Finding(
                    path, node.lineno, node.col_offset, "TM104",
                    f"metric family {family.name!r} is declared as a "
                    f"{family.instrument}, not a {instrument}",
                )


def _family_of(prefix: str):
    """The declared dynamic family a constant f-string *prefix*
    extends: exact family, or a longer prefix inside one."""
    family = registry.lookup_metric_family(prefix)
    if family is not None:
        return family
    # "txn.aborts.fpga-" extends the "txn.aborts." family.
    best = None
    for spec in registry.METRICS:
        if spec.dynamic and prefix.startswith(spec.name):
            if best is None or len(spec.name) > len(best.name):
                best = spec
    return best


def _is_metric_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _METRIC_RECEIVERS
    if isinstance(node, ast.Attribute):
        return node.attr in _METRIC_RECEIVERS | {"registry"}
    return False


PASSES = (
    ("TM103", check_event_schema),
    ("TM104", check_metric_schema),
)
