"""TM001-TM004: the original sanitizer lint rules, on the pass framework.

These four rules began life in :mod:`repro.sanitizer.lint` (PR 1) and
moved here verbatim in semantics — same scoping, same messages — so
the deprecated ``repro lint`` alias reports byte-compatible findings.
See that module's docstring history for the rationale of each rule:

``TM001`` **determinism (scoped)** — no ambient entropy or wall-clock
    reads inside ``core/``, ``hw/``, ``cc/``, ``faults/``.
``TM002`` **mutable-default** — no mutable default arguments, anywhere.
``TM003`` **lock-discipline** — backend mutations of shared state on
    the read/write path must be declared in ``_sanitizer_locked``.
``TM004`` **frozen-dataclass** — record dataclasses (``*View``,
    ``*Read``, ``*Write``, ``*Event``, ``*Op``, ``*Trace``) in the
    record directories must be ``frozen=True``.

The repo-wide determinism extension lives in TM101
(:mod:`repro.analysis.passes.determinism`), which deliberately skips
TM001's directories to avoid double-reporting.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..findings import Finding
from .common import attr_root, path_parts, string_elements

#: directories whose files the scoped determinism rule governs.
DETERMINISM_SCOPE = {"core", "hw", "cc", "faults"}
#: directories whose record types must be frozen.
FROZEN_SCOPE = {"cc", "semantics", "runtime", "sanitizer"}
#: dataclass-name suffixes that mark a record (trace/view/event) type.
FROZEN_SUFFIXES = ("View", "Read", "Write", "Event", "Op", "Trace")

BANNED_MODULES = ("time", "datetime")
MUTATOR_METHODS = {
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "setdefault",
    "update",
}
MUTABLE_DEFAULT_CALLS = {
    "list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter",
}


def is_backend_class(cls: ast.ClassDef) -> bool:
    if cls.name.endswith("Backend"):
        return True
    for base in cls.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if name == "TMBackend" or name.endswith("Backend"):
            return True
    return False


# ----------------------------------------------------------------------
# TM001 — determinism (scoped to the validator directories)
# ----------------------------------------------------------------------
def check_determinism(tree: ast.Module, path: str, ctx) -> Iterable[Finding]:
    if not (path_parts(path) & DETERMINISM_SCOPE):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in BANNED_MODULES:
                    yield Finding(
                        path, node.lineno, node.col_offset, "TM001",
                        f"module '{alias.name}' is banned here: validators "
                        "must be deterministic (no wall-clock reads)",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in BANNED_MODULES:
                yield Finding(
                    path, node.lineno, node.col_offset, "TM001",
                    f"import from '{node.module}' is banned here "
                    "(determinism)",
                )
            elif root == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield Finding(
                            path, node.lineno, node.col_offset, "TM001",
                            f"'from random import {alias.name}' uses ambient "
                            "entropy; inject a random.Random(seed) instead",
                        )
        elif isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "random"
                and node.attr != "Random"
            ):
                yield Finding(
                    path, node.lineno, node.col_offset, "TM001",
                    f"module-level 'random.{node.attr}' breaks replay "
                    "determinism; use an injected random.Random(seed)",
                )
            elif isinstance(node.value, ast.Name) and node.value.id in BANNED_MODULES:
                yield Finding(
                    path, node.lineno, node.col_offset, "TM001",
                    f"'{node.value.id}.{node.attr}' is banned here "
                    "(determinism)",
                )


# ----------------------------------------------------------------------
# TM002 — mutable defaults
# ----------------------------------------------------------------------
def check_mutable_defaults(tree: ast.Module, path: str, ctx) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in MUTABLE_DEFAULT_CALLS
            )
            if bad:
                yield Finding(
                    path, default.lineno, default.col_offset, "TM002",
                    f"mutable default argument in '{node.name}' aliases "
                    "state across calls; default to None and construct "
                    "inside the body",
                )


# ----------------------------------------------------------------------
# TM003 — backend lock discipline
# ----------------------------------------------------------------------
def check_lock_discipline(tree: ast.Module, path: str, ctx) -> Iterable[Finding]:
    for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
        if not is_backend_class(cls):
            continue
        methods = {
            m.name: m for m in cls.body if isinstance(m, ast.FunctionDef)
        }
        declared: Set[str] = set()
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "_sanitizer_locked":
                        declared.update(string_elements(stmt.value))

        shared: Set[str] = set()
        for init_name in ("__init__", "attach"):
            init = methods.get(init_name)
            if init is None:
                continue
            for node in ast.walk(init):
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                for target in targets:
                    root = attr_root(target)
                    if root:
                        shared.add(root)

        for name in sorted(reachable_methods(methods, ("read", "write"))):
            for node in ast.walk(methods[name]):
                target = None
                if isinstance(node, ast.Assign):
                    target = node.targets[0]
                elif isinstance(node, ast.AugAssign):
                    target = node.target
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS
                ):
                    target = node.func.value
                if target is None:
                    continue
                root = attr_root(target)
                if root and root in shared and root not in declared:
                    yield Finding(
                        path, node.lineno, node.col_offset, "TM003",
                        f"{cls.name}.{name} mutates shared backend state "
                        f"'self.{root}' on the read/write path without "
                        "declaring it in _sanitizer_locked — assert the "
                        "lock/commit discipline or move the mutation",
                    )


def reachable_methods(methods, roots) -> Set[str]:
    """Method names reachable from *roots* through ``self.x()`` calls.

    Shared by TM003 (lock discipline from read/write) and TM106 (store
    effects from read) — the same syntactic call graph, different
    effect predicate.
    """
    reachable: Set[str] = set()
    frontier = [name for name in roots if name in methods]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for node in ast.walk(methods[name]):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in methods
            ):
                frontier.append(node.func.attr)
    return reachable


# ----------------------------------------------------------------------
# TM004 — frozen record dataclasses
# ----------------------------------------------------------------------
def _dataclass_decorator(cls: ast.ClassDef) -> Optional[ast.AST]:
    for deco in cls.decorator_list:
        name = None
        if isinstance(deco, ast.Name):
            name = deco.id
        elif isinstance(deco, ast.Attribute):
            name = deco.attr
        elif isinstance(deco, ast.Call):
            func = deco.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name == "dataclass":
            return deco
    return None


def _is_frozen(deco: ast.AST) -> bool:
    if not isinstance(deco, ast.Call):
        return False
    for kw in deco.keywords:
        if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def check_frozen_records(tree: ast.Module, path: str, ctx) -> Iterable[Finding]:
    if not (path_parts(path) & FROZEN_SCOPE):
        return
    for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
        if not cls.name.endswith(FROZEN_SUFFIXES):
            continue
        deco = _dataclass_decorator(cls)
        if deco is not None and not _is_frozen(deco):
            yield Finding(
                path, cls.lineno, cls.col_offset, "TM004",
                f"record dataclass '{cls.name}' must be frozen=True: the "
                "semantics oracles assume recorded footprints are immutable",
            )


PASSES = (
    ("TM001", check_determinism),
    ("TM002", check_mutable_defaults),
    ("TM003", check_lock_discipline),
    ("TM004", check_frozen_records),
)
