"""TM105/TM106: memory effect discipline across the backends.

The simulator's correctness oracles (the sanitizer's opacity checker,
SI-MVCC's version chains) reconstruct memory history from *observed*
stores: :meth:`repro.runtime.memory.Memory.store` notifies every
subscribed observer.  Two static contracts keep that reconstruction
sound:

``TM105`` **observer bypass** — nothing outside ``runtime/memory.py``
    may touch ``Memory``'s internals (``_cells``, ``_brk``,
    ``_observers``).  A direct ``mem._cells[addr] = v`` is a store no
    observer sees; a direct ``_brk`` poke corrupts the bump allocator;
    reaching into ``_observers`` subverts subscription semantics.

``TM106`` **read-path purity** — in a backend class, no method
    reachable from ``read`` through ``self.x()`` calls may call
    ``memory.store``/``store_many``.  A store on the read path makes
    reads *observable effects*: replaying a recorded execution would
    double-apply them, and the opacity checker would attribute
    phantom writes to read-only transactions.  (Write-through designs
    like TinySTM's encounter-time locking store from ``write`` — the
    write path is free to store; only the read path must be pure.)

Both rules use syntactic receiver conventions — ``memory``/``mem``
names for the heap — which is exactly how every call site in the repo
spells it; an adversarial alias defeats the checker, but the goal is
catching mistakes, not malice.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..findings import Finding
from .common import receiver_name
from .legacy import is_backend_class, reachable_methods

#: Memory's private internals; only runtime/memory.py may name them.
MEMORY_INTERNALS = {"_cells", "_brk", "_observers"}
#: names the repo uses for the simulated heap.
_MEMORY_NAMES = {"memory", "mem", "_memory", "_mem", "heap"}
_STORE_METHODS = {"store", "store_many"}


def _is_memory_module(path: str) -> bool:
    return path.replace("\\", "/").endswith("runtime/memory.py")


# ----------------------------------------------------------------------
# TM105 — Memory internals are private to runtime/memory.py
# ----------------------------------------------------------------------
def check_memory_internals(tree: ast.Module, path: str, ctx) -> Iterable[Finding]:
    if _is_memory_module(path):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr in MEMORY_INTERNALS:
            yield Finding(
                path, node.lineno, node.col_offset, "TM105",
                f"access to Memory internal '{node.attr}' outside "
                "runtime/memory.py bypasses the store-observer protocol; "
                "go through load()/store()/alloc()",
            )


# ----------------------------------------------------------------------
# TM106 — no stores reachable from a backend's read path
# ----------------------------------------------------------------------
def check_read_path_stores(tree: ast.Module, path: str, ctx) -> Iterable[Finding]:
    for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
        if not is_backend_class(cls):
            continue
        methods = {
            m.name: m for m in cls.body if isinstance(m, ast.FunctionDef)
        }
        for name in sorted(reachable_methods(methods, ("read",))):
            for node in ast.walk(methods[name]):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _STORE_METHODS
                    and _memory_receiver(node)
                ):
                    yield Finding(
                        path, node.lineno, node.col_offset, "TM106",
                        f"{cls.name}.{name} is reachable from read() and "
                        f"calls memory.{func.attr}: the read path must not "
                        "mutate main memory (replay would double-apply the "
                        "store and opacity checking would see phantom "
                        "writes); buffer the value and install it at commit",
                    )


def _memory_receiver(node: ast.Call) -> bool:
    name = receiver_name(node)
    return name is not None and name in _MEMORY_NAMES


PASSES = (
    ("TM105", check_memory_internals),
    ("TM106", check_read_path_stores),
)
