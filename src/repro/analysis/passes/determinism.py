"""TM101/TM102: repo-wide determinism checking.

The whole reproduction rests on bit-identical replay: the parallel
runners compare shard output against serial runs byte-for-byte, the
sanitizer replays recorded executions, and the result cache keys on
content hashes (DESIGN.md, docs/EXECUTION.md).  Two pass families
guard that property statically:

``TM101`` **ambient entropy / wall clock (repo-wide)** — extends
    TM001 beyond the validator directories: module-level ``random``
    use, ``time``/``datetime`` reads, ``os.urandom``, ``secrets``,
    clock/entropy-based ``uuid`` constructors, and ``id()``-based
    ordering (``sorted(key=id)``) anywhere under ``src/repro``.
    Files TM001 already governs are skipped for the module checks so
    a violation is reported exactly once.  Wall-clock reads that are
    deliberate (CLI wall-time reporting, stamp provenance timestamps)
    carry documented inline suppressions.

``TM102`` **unordered-collection order leak** — iterating a ``set``/
    ``frozenset`` yields a hash-randomized order (PYTHONHASHSEED),
    which is *not* stable across processes.  That is harmless when
    the consumption is order-insensitive (building another set,
    ``sum``/``min``/``max``/``len``, relation insertion) and a replay
    bug when the order reaches an ordered protocol surface: a
    published event stream, a metrics registry, a ``Memory.store``
    sequence, a list/join used in a cache key.  The pass infers
    set-valued bindings per scope (literals, ``set()``/``frozenset()``
    constructors, set operators, set-typed ``self`` attributes) and
    flags: ``for`` loops over them whose body hits an ordered sink,
    list comprehensions over them, direct ``list()``/``tuple()``
    materialization, and ``str.join`` over them — unless the iterable
    is wrapped in ``sorted(...)``.  Worklist appends (a list that the
    same scope also ``pop()``s) are exempt: a drained stack imposes no
    order on anything that outlives the loop.
"""

from __future__ import annotations

import ast
import symtable
from typing import Dict, Iterable, List, Optional, Set

from ..findings import Finding
from .common import path_parts, walk_body
from .legacy import DETERMINISM_SCOPE

#: modules whose very import is an entropy/wall-clock smell.
_BANNED_WALL = ("time", "datetime")
_BANNED_ENTROPY = ("secrets",)
#: uuid constructors that read the clock (uuid1) or urandom (uuid4);
#: uuid3/uuid5 are content-hashes and deterministic.
_NONDET_UUID = {"uuid1", "uuid4"}

_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
#: calls whose consumption of an unordered iterable is order-free.
_ORDER_FREE_CALLS = {
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
    "Counter",
}
#: method calls inside a loop body that serialize iteration order
#: into the observation protocol (events, metrics, memory, caches).
_ORDERED_SINK_METHODS = {
    "emit", "publish", "count", "observe", "gauge", "store", "store_many",
    "append", "appendleft", "write",
}
_ORDERED_SINK_CALLS = {"content_hash", "print"}


def _module_imports(source: str, path: str) -> Set[str]:
    """Module-level names bound by imports, via ``symtable`` — so a
    local variable that merely *shadows* ``time`` never trips TM101."""
    try:
        table = symtable.symtable(source, path, "exec")
    except SyntaxError:  # framework reports TM000 separately
        return set()
    return {
        symbol.get_name()
        for symbol in table.get_symbols()
        if symbol.is_imported()
    }


def _local_shadows(tree: ast.Module, names: Set[str]) -> Dict[str, Set[int]]:
    """For each watched name, the set of function nodes (by id) that
    rebind it locally — uses within those scopes are not module reads."""
    shadows: Dict[str, Set[int]] = {name: set() for name in names}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        args = node.args
        bound = {
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        }
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        if not isinstance(node, ast.Lambda):
            for child in ast.walk(node):
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            bound.add(target.id)
        for name in bound & names:
            for child in ast.walk(node):
                shadows[name].add(id(child))
    return shadows


# ----------------------------------------------------------------------
# TM101 — ambient entropy / wall clock, repo-wide
# ----------------------------------------------------------------------
def check_ambient_entropy(tree: ast.Module, path: str, ctx) -> Iterable[Finding]:
    in_tm001_scope = bool(path_parts(path) & DETERMINISM_SCOPE)
    imported = _module_imports(ctx.source, path)
    watched = (set(_BANNED_WALL) | {"random", "os", "uuid"}) & imported
    shadows = _local_shadows(tree, watched)

    def is_module_read(node: ast.Attribute) -> Optional[str]:
        value = node.value
        if not isinstance(value, ast.Name):
            return None
        name = value.id
        if name not in imported or id(node) in shadows.get(name, ()):
            return None
        return name

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BANNED_ENTROPY:
                    yield Finding(
                        path, node.lineno, node.col_offset, "TM101",
                        f"module '{alias.name}' is cryptographic entropy; "
                        "replay can never reproduce it — inject a "
                        "random.Random(seed)",
                    )
                elif root in _BANNED_WALL and not in_tm001_scope:
                    yield Finding(
                        path, node.lineno, node.col_offset, "TM101",
                        f"module '{alias.name}' reads the wall clock; "
                        "simulated time is the only clock replay can "
                        "reproduce (suppress only for run provenance)",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _BANNED_ENTROPY:
                yield Finding(
                    path, node.lineno, node.col_offset, "TM101",
                    f"import from '{node.module}' is cryptographic entropy "
                    "(determinism)",
                )
            elif root in _BANNED_WALL and not in_tm001_scope:
                yield Finding(
                    path, node.lineno, node.col_offset, "TM101",
                    f"import from '{node.module}' reads the wall clock "
                    "(determinism; suppress only for run provenance)",
                )
            elif root == "random" and not in_tm001_scope:
                for alias in node.names:
                    if alias.name != "Random":
                        yield Finding(
                            path, node.lineno, node.col_offset, "TM101",
                            f"'from random import {alias.name}' uses the "
                            "ambient global RNG; inject a "
                            "random.Random(seed) instead",
                        )
        elif isinstance(node, ast.Attribute):
            module = is_module_read(node)
            if module is None:
                continue
            if module == "os" and node.attr == "urandom":
                yield Finding(
                    path, node.lineno, node.col_offset, "TM101",
                    "'os.urandom' is kernel entropy; replay can never "
                    "reproduce it — inject a random.Random(seed)",
                )
            elif module == "uuid" and node.attr in _NONDET_UUID:
                yield Finding(
                    path, node.lineno, node.col_offset, "TM101",
                    f"'uuid.{node.attr}' draws from the clock/urandom; "
                    "mint deterministic ids from run state instead",
                )
            elif in_tm001_scope:
                continue  # TM001 owns the module checks below here
            elif module == "random" and node.attr != "Random":
                yield Finding(
                    path, node.lineno, node.col_offset, "TM101",
                    f"module-level 'random.{node.attr}' breaks replay "
                    "determinism; use an injected random.Random(seed)",
                )
            elif module in _BANNED_WALL:
                yield Finding(
                    path, node.lineno, node.col_offset, "TM101",
                    f"'{module}.{node.attr}' reads the wall clock; results "
                    "must be functions of (spec, seed) only (suppress only "
                    "for run provenance)",
                )
        elif isinstance(node, ast.Call):
            yield from _check_id_ordering(node, path)


def _check_id_ordering(call: ast.Call, path: str) -> Iterable[Finding]:
    """``sorted(xs, key=id)`` and friends: CPython addresses vary run
    to run, so id-keyed order is pure nondeterminism."""
    for kw in call.keywords:
        if kw.arg != "key":
            continue
        key = kw.value
        id_keyed = isinstance(key, ast.Name) and key.id == "id"
        if not id_keyed and isinstance(key, ast.Lambda):
            id_keyed = any(
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id == "id"
                for inner in ast.walk(key.body)
            )
        if id_keyed:
            yield Finding(
                path, call.lineno, call.col_offset, "TM101",
                "ordering by id() depends on allocation addresses, which "
                "differ between runs; key on a stable field instead",
            )


# ----------------------------------------------------------------------
# TM102 — unordered-collection iteration leaking into ordered sinks
# ----------------------------------------------------------------------
class _SetScope:
    """Set-valued binding inference for one function (or module) scope."""

    def __init__(self, names: Set[str], self_attrs: Set[str]):
        self.names = names
        self.self_attrs = self_attrs

    def is_set_valued(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.self_attrs
            )
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set_valued(node.left) or self.is_set_valued(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set_valued(func.value)
            ):
                return True
        return False


def _class_set_attrs(tree: ast.Module) -> Dict[int, Set[str]]:
    """Per-class (by node id): ``self`` attributes ever bound to a
    set-valued expression anywhere in the class body."""
    empty = _SetScope(set(), set())
    attrs: Dict[int, Set[str]] = {}
    for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
        found: Set[str] = set()
        for node in ast.walk(cls):
            value = None
            targets = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None or not empty.is_set_valued(value):
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    found.add(target.attr)
        attrs[id(cls)] = found
    return attrs


def _scope_names(scope_node: ast.AST) -> Set[str]:
    """Names bound to set-valued expressions within one scope (no
    descent into nested defs; a rebinding to non-set is not tracked —
    the pass prefers false positives surfaced and judged over silent
    misses, and rebindings of set-typed locals don't occur here)."""
    names: Set[str] = set()
    probe = _SetScope(names, set())
    # iterate to a fixpoint so `a = set(); b = a | other` resolves.
    changed = True
    while changed:
        changed = False
        for node in walk_body(scope_node):
            value = None
            targets = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, _SET_OPS):
                value, targets = node.value, [node.target]
            if value is None or not probe.is_set_valued(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id not in names:
                    names.add(target.id)
                    changed = True
    return names


def _enclosing_class_attrs(
    tree: ast.Module, class_attrs: Dict[int, Set[str]]
) -> Dict[int, Set[str]]:
    """Map each function node (by id) to its class's set-valued attrs."""
    owner: Dict[int, Set[str]] = {}
    for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                owner[id(item)] = class_attrs[id(cls)]
    return owner


def check_unordered_iteration(tree: ast.Module, path: str, ctx) -> Iterable[Finding]:
    class_attrs = _class_set_attrs(tree)
    method_attrs = _enclosing_class_attrs(tree, class_attrs)

    scopes: List[ast.AST] = [tree]
    scopes.extend(
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    for scope_node in scopes:
        scope = _SetScope(
            _scope_names(scope_node), method_attrs.get(id(scope_node), set())
        )
        # Comprehension/materialization args of order-free callables
        # (sorted(...), sum(...)) are blessed: their order never
        # escapes.
        blessed: Set[int] = set()
        for node in walk_body(scope_node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_FREE_CALLS
            ):
                for arg in node.args:
                    blessed.add(id(arg))

        # A list that the same scope pop()s is a worklist: appends to
        # it drain within the algorithm and impose no external order.
        worklists = {
            recv
            for node in walk_body(scope_node)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("pop", "popleft")
            and isinstance(node.func.value, ast.Name)
            for recv in (node.func.value.id,)
        }

        for node in walk_body(scope_node):
            if isinstance(node, ast.For):
                yield from _check_for_loop(node, scope, worklists, path)
            elif isinstance(node, ast.ListComp):
                if id(node) in blessed:
                    continue
                if scope.is_set_valued(node.generators[0].iter):
                    yield Finding(
                        path, node.lineno, node.col_offset, "TM102",
                        "list comprehension over a set freezes a "
                        "hash-randomized order into an ordered structure; "
                        "iterate sorted(...) instead",
                    )
            elif isinstance(node, ast.Call):
                yield from _check_materialize(node, scope, path)


def _check_for_loop(
    node: ast.For, scope: _SetScope, worklists: Set[str], path: str
) -> Iterable[Finding]:
    if not scope.is_set_valued(node.iter):
        return
    sink = _ordered_sink(node, worklists)
    if sink is None:
        return
    yield Finding(
        path, node.iter.lineno, node.iter.col_offset, "TM102",
        "iterating a set in hash order, but the loop body reaches the "
        f"ordered sink '{sink}' (events/metrics/stores are replay-"
        "compared in order); iterate sorted(...) instead",
    )


def _ordered_sink(loop: ast.For, worklists: Set[str]) -> Optional[str]:
    for node in walk_body(loop):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return "yield"
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _ORDERED_SINK_METHODS:
            if (
                func.attr in ("append", "appendleft")
                and isinstance(func.value, ast.Name)
                and func.value.id in worklists
            ):
                continue
            return func.attr
        if isinstance(func, ast.Name) and func.id in _ORDERED_SINK_CALLS:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in _ORDERED_SINK_CALLS:
            return func.attr
    return None


def _check_materialize(
    node: ast.Call, scope: _SetScope, path: str
) -> Iterable[Finding]:
    func = node.func
    if isinstance(func, ast.Name) and func.id in ("list", "tuple") and node.args:
        arg = node.args[0]
        if scope.is_set_valued(arg) or (
            isinstance(arg, ast.GeneratorExp)
            and scope.is_set_valued(arg.generators[0].iter)
        ):
            yield Finding(
                path, node.lineno, node.col_offset, "TM102",
                f"{func.id}() over a set freezes a hash-randomized order; "
                "use sorted(...) to fix the sequence",
            )
    elif isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
        arg = node.args[0]
        if scope.is_set_valued(arg) or (
            isinstance(arg, ast.GeneratorExp)
            and scope.is_set_valued(arg.generators[0].iter)
        ):
            yield Finding(
                path, node.lineno, node.col_offset, "TM102",
                "joining a set concatenates in hash order — unstable "
                "across processes (cache keys, reports); sort first",
            )


PASSES = (
    ("TM101", check_ambient_entropy),
    ("TM102", check_unordered_iteration),
)
