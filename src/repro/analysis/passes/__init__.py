"""The analysis passes, in rule-id order.

Each pass module exports ``PASSES``: a tuple of ``(rule_id, check)``
pairs where ``check(tree, path, ctx)`` yields
:class:`repro.analysis.findings.Finding` objects.  The framework runs
them in this order and sorts findings by location afterwards, so
inter-pass ordering only affects tie-breaks.
"""

from __future__ import annotations

from . import determinism, effects, legacy, schema

ALL_PASSES = (
    legacy.PASSES + determinism.PASSES + schema.PASSES + effects.PASSES
)

__all__ = ["ALL_PASSES", "determinism", "effects", "legacy", "schema"]
