"""Shared AST utilities for the analysis passes."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set


def path_parts(path: str) -> Set[str]:
    """The path's components, for directory-scoped rules."""
    return set(Path(path).parts)


def const_str(node: ast.AST) -> Optional[str]:
    """The value of a string-constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def string_elements(node: ast.AST) -> List[str]:
    """Constant string elements of a tuple/list/set literal."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return [
            e.value
            for e in node.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        ]
    return []


def call_name(node: ast.Call) -> Optional[str]:
    """The called name: ``f(...)`` -> ``f``, ``a.b.f(...)`` -> ``f``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def receiver_name(node: ast.Call) -> Optional[str]:
    """The terminal receiver name of a method call: ``a.b.f()`` -> ``b``,
    ``reg.count()`` -> ``reg``, ``f()`` -> None."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def attr_root(node: ast.AST) -> Optional[str]:
    """The attribute name X for any target rooted at ``self.X``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        inner = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(inner, ast.Name)
            and inner.id == "self"
        ):
            return node.attr
        node = inner
    return None


def fstring_prefix(node: ast.JoinedStr) -> Optional[str]:
    """The leading constant prefix of an f-string, if it ends right
    before the first interpolation: ``f"txn.aborts.{c}"`` ->
    ``"txn.aborts."``; a fully constant or leading-interpolation
    f-string returns None."""
    if not node.values:
        return None
    head = node.values[0]
    prefix = const_str(head)
    if prefix is None:
        return None
    if len(node.values) < 2 or not isinstance(node.values[1], ast.FormattedValue):
        return None
    return prefix


def functions_of(tree: ast.AST) -> Iterator[ast.AST]:
    """Every function/method definition in *tree* (incl. nested)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_body(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a statement's body without descending into nested
    function/class definitions (their scope is analyzed separately)."""
    todo = list(ast.iter_child_nodes(node))
    while todo:
        child = todo.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            todo.extend(ast.iter_child_nodes(child))
