"""Static contract analysis for the repro runtime.

One analyzer, one CLI (``repro analyze``), one report format.  The
package has three layers:

* :mod:`repro.analysis.registry` — the declared contracts: every legal
  event kind with its payload schema, every legal metric name with its
  instrument.  Dependency-free on purpose: the *runtime* imports it
  (``EventBus.emit`` asserts against it under ``__debug__``) and the
  *analyzer* checks call sites against it, so both enforcement layers
  share a single source of truth.
* :mod:`repro.analysis.passes` — the rules.  TM001-TM004 are the
  original sanitizer lint (PR 1), migrated; TM101+ are the contract
  passes (determinism, event/metric schema, memory effects).
* :mod:`repro.analysis.framework` — the driver: per-file analysis with
  inline suppressions, baseline filtering, and a result cache keyed on
  the repo source fingerprint.

This ``__init__`` resolves its exports lazily (module ``__getattr__``)
because ``repro.runtime.events`` imports ``repro.analysis.registry``
at interpreter startup: an eager ``from .framework import ...`` here
would drag in ``repro.exec`` -> runner -> runtime while ``events`` is
still half-initialized.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    # findings layer
    "Finding": ("repro.analysis.findings", "Finding"),
    "Baseline": ("repro.analysis.findings", "Baseline"),
    "load_baseline": ("repro.analysis.findings", "load_baseline"),
    "DEFAULT_BASELINE": ("repro.analysis.findings", "DEFAULT_BASELINE"),
    "suppressed_rules": ("repro.analysis.findings", "suppressed_rules"),
    "is_suppressed": ("repro.analysis.findings", "is_suppressed"),
    # framework layer
    "RULE_IDS": ("repro.analysis.framework", "RULE_IDS"),
    "parse_rules": ("repro.analysis.framework", "parse_rules"),
    "analyze_source": ("repro.analysis.framework", "analyze_source"),
    "analyze_paths": ("repro.analysis.framework", "analyze_paths"),
    "analyze_paths_cached": ("repro.analysis.framework", "analyze_paths_cached"),
    "apply_baseline": ("repro.analysis.framework", "apply_baseline"),
    "baseline_from": ("repro.analysis.framework", "baseline_from"),
    "iter_python_files": ("repro.analysis.framework", "iter_python_files"),
    # the registry module itself
    "registry": ("repro.analysis.registry", None),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
