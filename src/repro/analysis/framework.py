"""The analyzer driver: pass registry, rule selection, caching.

``analyze_source`` runs the selected passes over one file (syntax
errors become ``TM000`` findings rather than exceptions, so one broken
file cannot hide findings in the rest of the tree).  Inline
suppressions (:func:`repro.analysis.findings.is_suppressed`) are
applied here, before findings ever leave the framework; the baseline
(:func:`apply_baseline`) is applied by the caller because it is a
repo-level artifact, not a per-file one.

``analyze_paths_cached`` memoizes a whole run keyed on the repo source
fingerprint (:func:`repro.exec.cache.code_fingerprint` — the same
sha-256 the experiment cache uses), the analyzed path set, and the
rule selection.  A warm CI run therefore skips the AST+symtable walk
entirely.  The cache is only consulted when every analyzed path lies
inside the ``repro`` package, because the fingerprint covers exactly
that tree; analyzing anything else silently bypasses the cache rather
than risking staleness.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Baseline, Finding, is_suppressed
from .passes import ALL_PASSES

#: every rule the analyzer can report, in catalogue order.
RULE_IDS = ("TM000",) + tuple(rule for rule, _ in ALL_PASSES)

CACHE_VERSION = 1

_RULE_RE = re.compile(r"^TM(\d+)$")

#: the repro package root — the tree code_fingerprint() covers.
_PACKAGE_ROOT = Path(__file__).resolve().parents[1]


@dataclass(frozen=True)
class PassContext:
    """Per-file context handed to every pass."""

    source: str
    lines: Sequence[str]


def parse_rules(spec: Optional[str]) -> Optional[Set[str]]:
    """A rule selection from CLI syntax: ``TM101``, ``TM001-TM004``,
    comma-combinations thereof, or ``all``/None for everything."""
    if spec is None or spec.strip() in ("", "all"):
        return None
    numbers = {rule: int(_RULE_RE.match(rule).group(1)) for rule in RULE_IDS}
    selected: Set[str] = set()
    for part in spec.split(","):
        part = part.strip().upper()
        if not part:
            continue
        if "-" in part:
            lo_text, hi_text = part.split("-", 1)
            lo = _RULE_RE.match(lo_text.strip())
            hi = _RULE_RE.match(hi_text.strip())
            if lo is None or hi is None:
                raise ValueError(f"bad rule range {part!r} (want TMnnn-TMnnn)")
            lo_n, hi_n = int(lo.group(1)), int(hi.group(1))
            matched = {r for r, n in numbers.items() if lo_n <= n <= hi_n}
            if not matched:
                raise ValueError(f"rule range {part!r} matches no known rule")
            selected.update(matched)
        elif part in numbers:
            selected.add(part)
        else:
            raise ValueError(
                f"unknown rule {part!r} (known: {', '.join(RULE_IDS)})"
            )
    return selected


# ----------------------------------------------------------------------
# Core drivers
# ----------------------------------------------------------------------
def analyze_source(
    source: str, path: str, rules: Optional[Set[str]] = None
) -> List[Finding]:
    """Run the selected passes over one file's source text.

    *path* drives directory-scoped rules (it need not exist on disk).
    Inline suppressions are already applied; the result is sorted by
    location.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            Finding(path, err.lineno or 0, err.offset or 0, "TM000",
                    f"syntax error: {err.msg}")
        ]
    lines = source.splitlines()
    ctx = PassContext(source=source, lines=lines)
    findings: List[Finding] = []
    for rule, check in ALL_PASSES:
        if rules is not None and rule not in rules:
            continue
        for finding in check(tree, path, ctx):
            if not is_suppressed(finding, lines):
                findings.append(finding)
    return sorted(findings, key=lambda f: f.sort_key)


def iter_python_files(paths: Sequence) -> Iterable[Path]:
    """The ``*.py`` files named by *paths* (files and/or directory
    trees), in sorted order per entry."""
    for entry in paths:
        entry = Path(entry)
        if not entry.exists():
            raise FileNotFoundError(
                f"analyze: no such file or directory: {entry}"
            )
        if entry.is_dir():
            yield from sorted(entry.rglob("*.py"))
        else:
            yield entry


def analyze_paths(
    paths: Sequence, rules: Optional[Set[str]] = None
) -> Tuple[List[Finding], int]:
    """Analyze files/trees; returns (findings, files analyzed)."""
    findings: List[Finding] = []
    count = 0
    for file in iter_python_files(paths):
        findings.extend(analyze_source(file.read_text(), str(file), rules))
        count += 1
    return findings, count


def apply_baseline(
    findings: Sequence[Finding], baseline: Optional[Baseline]
) -> Tuple[List[Finding], List[Finding]]:
    """Split *findings* into (new, baselined) against *baseline*.

    Re-reads just the files that have findings to recover the source
    context lines the baseline matches on.
    """
    if baseline is None:
        return list(findings), []
    sources: Dict[str, Sequence[str]] = {}
    for path in {f.path for f in findings}:
        try:
            sources[path] = Path(path).read_text().splitlines()
        except OSError:
            sources[path] = ()
    return baseline.filter(list(findings), sources)


def baseline_from(
    findings: Sequence[Finding]
) -> Baseline:
    """A baseline tolerating exactly *findings* (for --update-baseline)."""
    sources: Dict[str, Sequence[str]] = {}
    for path in {f.path for f in findings}:
        try:
            sources[path] = Path(path).read_text().splitlines()
        except OSError:
            sources[path] = ()
    return Baseline.from_findings(list(findings), sources)


# ----------------------------------------------------------------------
# Fingerprint-keyed result cache
# ----------------------------------------------------------------------
def _within(path: Path, root: Path) -> bool:
    try:
        path.relative_to(root)
    except ValueError:
        return False
    return True


def _cache_key(paths: Sequence, rules: Optional[Set[str]]) -> Optional[str]:
    """The cache key for this run, or None when caching is unsound
    (some analyzed path is outside the fingerprinted package tree)."""
    resolved = []
    for entry in paths:
        entry = Path(entry).resolve()
        if not _within(entry, _PACKAGE_ROOT):
            # An ancestor of the package root (e.g. ``src``) is still
            # sound iff it contributes no .py files outside the
            # fingerprinted tree.
            if not _within(_PACKAGE_ROOT, entry) or any(
                not _within(f, _PACKAGE_ROOT) for f in entry.rglob("*.py")
            ):
                return None
        resolved.append(str(entry))
    # Imported lazily: exec -> runner -> runtime -> events imports the
    # (dependency-free) registry from this package; a module-level
    # import here would close that cycle during interpreter startup.
    from repro.exec.cache import code_fingerprint

    material = json.dumps(
        {
            "version": CACHE_VERSION,
            "fingerprint": code_fingerprint(refresh=True),
            "paths": sorted(resolved),
            "rules": sorted(rules) if rules is not None else "all",
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()


def analyze_paths_cached(
    paths: Sequence,
    rules: Optional[Set[str]] = None,
    cache_path=None,
) -> Tuple[List[Finding], int, bool]:
    """Like :func:`analyze_paths`, memoized at *cache_path*.

    Returns (findings, files, cache_hit).  Without *cache_path* — or
    when the path set extends beyond the repro package — this is just
    ``analyze_paths``.
    """
    key = _cache_key(paths, rules) if cache_path is not None else None
    if key is not None:
        cached = _load_cache(Path(cache_path), key)
        if cached is not None:
            return cached[0], cached[1], True
    findings, count = analyze_paths(paths, rules)
    if key is not None:
        _store_cache(Path(cache_path), key, findings, count)
    return findings, count, False


def _load_cache(path: Path, key: str):
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if payload.get("version") != CACHE_VERSION or payload.get("key") != key:
        return None
    findings = [Finding(**entry) for entry in payload.get("findings", ())]
    return findings, int(payload.get("files", 0))


def _store_cache(path: Path, key: str, findings: Sequence[Finding], files: int) -> None:
    payload = {
        "version": CACHE_VERSION,
        "key": key,
        "files": files,
        "findings": [f.to_dict() for f in findings],
    }
    try:
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    except OSError:
        pass  # a cold cache next run, not an analysis failure
