"""The protocol-contract registry: one source of truth, two enforcers.

PRs 2-4 multiplied the stringly-typed surfaces a run's observation
protocol flows through: event kinds on the bus, ``data`` payload
fields on the validation-path events, and ``txn.*``/``hw.*``/
``fault.*``/``ladder.*`` metric names in the metrics registry.  A typo
in any of them fails *silently* — ``wants("valdiate")`` is just always
False, ``reg.count("txn.comits")`` mints a fresh counter nobody reads.

This module declares every legal name once.  Two consumers share it:

* **dynamically**, :class:`repro.runtime.events.EventBus` derives its
  ``EVENT_KINDS`` vocabulary from :data:`EVENT_SCHEMAS` and — under
  ``__debug__`` — asserts that every emitted event carries a declared
  kind with exactly the declared payload fields;
* **statically**, the TM103/TM104 analysis passes
  (:mod:`repro.analysis.passes.schema`) verify every ``emit``/
  ``subscribe``/``wants``/metrics call site in the source tree against
  the same tables, before anything runs.

Deliberately dependency-free (stdlib ``dataclasses`` only): it is
imported by the runtime hot path and by the analyzer, and must never
drag either into the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

# ----------------------------------------------------------------------
# Event kinds and payload schemas
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EventSchema:
    """One declared event kind.

    ``payload`` is the exact set of keys a ``SimEvent.data`` dict must
    carry for this kind; empty means the kind never carries a ``data``
    payload (its information lives in the typed ``SimEvent`` fields).
    """

    kind: str
    #: who emits it (documentation, and the analyzer's error messages).
    emitter: str
    payload: FrozenSet[str] = frozenset()

    @property
    def has_payload(self) -> bool:
        return bool(self.payload)


def _schema(kind: str, emitter: str, *payload: str) -> EventSchema:
    return EventSchema(kind, emitter, frozenset(payload))


#: every kind the simulator (or the validation path) can publish, in
#: the bus's canonical order.  Trace replays reuse a subset.
EVENT_SCHEMAS: Dict[str, EventSchema] = {
    schema.kind: schema
    for schema in (
        _schema("step", "driver"),
        _schema("begin", "driver"),
        _schema("read", "driver"),
        _schema("write", "driver"),
        _schema("commit", "driver"),
        _schema("abort", "driver"),
        _schema("park", "driver"),
        _schema("wake", "driver"),
        _schema("backoff", "driver"),
        _schema(
            "validate",
            "hybrid backend",
            "label",
            "sent_ns",
            "arrived_ns",
            "started_ns",
            "detect_done_ns",
            "finished_ns",
            "ready_ns",
            "n_read",
            "n_write",
            "occupancy_cycles",
            "committed",
            "reason",
            "window_resident",
            "mode",
            "shard",
        ),
        # Cluster layer (repro.cluster): commit-time routing decision,
        # the cross-shard two-phase outcome, and lazy remote-shard
        # opens.  Emitted only by ClusterTMBackend, so plain
        # single-node runs never carry them.
        _schema("route", "cluster backend", "shard", "cross", "n_write"),
        _schema(
            "xshard",
            "cluster coordinator",
            "involved",
            "remote",
            "committed",
            "reason",
            "n_read",
            "n_write",
            "sent_ns",
            "decided_ns",
        ),
        _schema("shard_open", "cluster backend", "shard", "home"),
        # End-of-run address→query-mask cache effectiveness, one event
        # per ROCoCoTM instance (so one per shard under ClusterTM).
        # Like "sched", it never enters RunStats: observable only over
        # the bus, so enabling it cannot move a benchmark byte.
        _schema("mask_cache", "hybrid backend", "hits", "misses", "entries", "shard"),
        _schema("fault", "chaos engine", "kind", "count"),
        _schema("failover", "degradation ladder", "mode", "timeouts"),
        _schema("failback", "degradation ladder", "mode", "timeouts"),
        # End-of-run scheduler-kernel counters; the payload mirrors
        # SchedulerKernel.snapshot() field for field.  Never enters
        # RunStats — observable only over the bus, so enabling the
        # kernel cannot move a benchmark byte.
        _schema(
            "sched",
            "driver",
            "picks",
            "pushes",
            "stale_pops",
            "lazy_invalidation_ratio",
            "wakes",
            "wakes_coalesced",
            "heap_high_water",
        ),
    )
}

#: the bus's kind vocabulary (insertion order of the schema table).
EVENT_KINDS: Tuple[str, ...] = tuple(EVENT_SCHEMAS)

#: union of every declared payload field — what a ``event.data[...]``
#: consumer may legally index.
PAYLOAD_FIELDS: FrozenSet[str] = frozenset(
    field for schema in EVENT_SCHEMAS.values() for field in schema.payload
)


def check_event(kind: str, data) -> Optional[str]:
    """None if (*kind*, *data*) satisfies the declared contract, else
    a human-readable description of the violation.

    Shared by the dynamic assert in :meth:`EventBus.emit` and by the
    analyzer's fixtures, so both enforcement layers agree by
    construction.
    """
    schema = EVENT_SCHEMAS.get(kind)
    if schema is None:
        return (
            f"undeclared event kind {kind!r} (declared kinds: "
            + ", ".join(EVENT_KINDS)
            + "; add it to repro.analysis.registry first)"
        )
    if data is None:
        if schema.has_payload:
            return (
                f"event kind {kind!r} requires a data payload with fields "
                + "{" + ", ".join(sorted(schema.payload)) + "}"
            )
        return None
    if not schema.has_payload:
        return f"event kind {kind!r} does not carry a data payload"
    keys = frozenset(data)
    if keys != schema.payload:
        missing = sorted(schema.payload - keys)
        extra = sorted(keys - schema.payload)
        parts = []
        if missing:
            parts.append("missing " + ", ".join(missing))
        if extra:
            parts.append("undeclared " + ", ".join(extra))
        return f"event kind {kind!r} payload mismatch: " + "; ".join(parts)
    return None


# ----------------------------------------------------------------------
# Metric names
# ----------------------------------------------------------------------

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric, or a declared dynamic family.

    A *family* has ``dynamic=True`` and a ``name`` ending in ``.``;
    the suffix is data-dependent (an abort cause, a fault kind) and
    legal call sites spell it as an f-string with the family as its
    constant prefix: ``reg.count(f"txn.aborts.{cause}")``.
    """

    name: str
    instrument: str
    dynamic: bool = False
    help: str = ""


def _counter(name: str, help: str = "", dynamic: bool = False) -> MetricSpec:
    return MetricSpec(name, COUNTER, dynamic, help)


def _gauge(name: str, help: str = "") -> MetricSpec:
    return MetricSpec(name, GAUGE, False, help)


def _histogram(name: str, help: str = "", dynamic: bool = False) -> MetricSpec:
    return MetricSpec(name, HISTOGRAM, dynamic, help)


METRICS: Tuple[MetricSpec, ...] = (
    # txn.* — driver-level transaction lifecycle.
    _counter("txn.begins", "attempts opened"),
    _counter("txn.commits", "attempts committed"),
    _counter("txn.retried_commits", "commits needing >1 attempt"),
    _counter("txn.aborts", "attempts aborted"),
    _counter("txn.aborts.", "aborts by cause", dynamic=True),
    _counter("txn.parks", "threads parked"),
    _counter("txn.backoffs", "backoff pauses charged"),
    _histogram("txn.commit_latency_ns", "begin->commit, simulated ns"),
    _histogram("txn.attempts", "attempts per committed txn"),
    _histogram("txn.wasted_ns", "work discarded per abort"),
    _histogram("txn.parked_ns", "park->wake, simulated ns"),
    _histogram("txn.backoff_ns", "backoff pause lengths"),
    # hw.* — the validation pipeline.
    _counter("hw.validations", "validation round trips"),
    _counter("hw.validation_aborts", "validations answering abort"),
    _counter("hw.mode.", "validations by ladder mode", dynamic=True),
    _histogram("hw.validation_ns", "sent->ready round trip"),
    _histogram("hw.queue_ns", "arrival->service wait"),
    _histogram("hw.window_occupancy", "sliding-window residency"),
    _histogram("hw.occupancy_cycles", "detector occupancy per request"),
    _gauge("hw.window_resident", "peak window residency"),
    _counter("hw.mask_cache.hits", "query-mask lookups served from the cache"),
    _counter("hw.mask_cache.misses", "first-touch addresses interned"),
    _gauge("hw.mask_cache.entries", "peak interned mask-store size"),
    # shard.* — the cluster layer (repro.cluster).
    _counter("shard.single_commits", "single-shard fast-path commits"),
    _counter("shard.cross_commits", "cross-shard 2PC commits"),
    _counter("shard.cross_aborts", "cross-shard certify refusals"),
    _counter("shard.remote_opens", "lazy remote-shard opens"),
    _counter("shard.commits.", "commits by home shard", dynamic=True),
    _histogram("shard.involved", "shards involved per cross-shard commit"),
    _histogram("shard.prepare_ns", "cross-shard sent->decided time"),
    # fault.* / ladder.* — chaos and degradation.
    _counter("fault.", "injected faults by kind", dynamic=True),
    _counter("ladder.failovers", "fpga->software transitions"),
    _counter("ladder.failbacks", "software->fpga transitions"),
    # sched.* — the scheduling kernel (repro.runtime.sched).
    _counter("sched.picks", "valid heap pops (scheduler decisions)"),
    _counter("sched.pushes", "heap entries pushed"),
    _counter("sched.stale_pops", "lazily-invalidated entries discarded"),
    _counter("sched.wakes", "parked threads unblocked"),
    _counter("sched.wakes_coalesced", "wakes merged into the thread's own timeline"),
    _gauge("sched.heap_high_water", "peak heap size"),
    _gauge("sched.lazy_invalidation_ratio", "stale pops per total pop"),
    # runner.* — the supervised execution layer (repro.exec.supervise).
    _counter("runner.cells", "cells completed under supervision"),
    _counter("runner.journal_hits", "cells served from the sweep journal"),
    _counter("runner.journal_corrupt", "corrupt journal lines tolerated"),
    _counter("runner.retries", "cell attempts retried"),
    _counter("runner.timeouts", "cells killed at the wall-clock deadline"),
    _counter("runner.quarantined", "cells quarantined after repeated failure"),
    _counter("runner.failures.", "cell failures by kind", dynamic=True),
    _histogram("runner.attempts", "attempts per completed cell"),
)

_EXACT_METRICS: Dict[str, MetricSpec] = {
    spec.name: spec for spec in METRICS if not spec.dynamic
}
_DYNAMIC_METRICS: Dict[str, MetricSpec] = {
    spec.name: spec for spec in METRICS if spec.dynamic
}


def lookup_metric(name: str) -> Optional[MetricSpec]:
    """The spec a concrete metric *name* resolves to, or None.

    Exact names win; otherwise the longest declared dynamic family
    whose prefix matches (``txn.aborts.fpga-cycle`` -> ``txn.aborts.``).
    """
    spec = _EXACT_METRICS.get(name)
    if spec is not None:
        return spec
    best = None
    for prefix, family in _DYNAMIC_METRICS.items():
        if name.startswith(prefix) and len(name) > len(prefix):
            if best is None or len(prefix) > len(best.name):
                best = family
    return best


def lookup_metric_family(prefix: str) -> Optional[MetricSpec]:
    """The dynamic family declared for *prefix* exactly, or None.

    This is what the static pass resolves an f-string's constant
    prefix against: ``f"txn.aborts.{cause}"`` has prefix
    ``txn.aborts.`` which must be a declared family — a *longer*
    constant prefix (``txn.aborts.fpga-``) is also legal as long as it
    extends a declared family.
    """
    family = _DYNAMIC_METRICS.get(prefix)
    if family is not None:
        return family
    spec = lookup_metric(prefix)
    return spec if spec is not None and spec.dynamic else None


def check_metric(name: str, instrument: str) -> Optional[str]:
    """None if *name* is declared for *instrument*, else the violation."""
    spec = lookup_metric(name)
    if spec is None:
        return (
            f"undeclared metric {name!r}; declare it in "
            "repro.analysis.registry.METRICS"
        )
    if spec.instrument != instrument:
        return (
            f"metric {name!r} is declared as a {spec.instrument}, "
            f"not a {instrument}"
        )
    return None
