"""A catalog of canonical concurrency anomalies.

The paper motivates precise semantics with the observation that the
classic definitions are "vague" (§2.1, citing Kleppmann's Hermitage
work): which interleavings count as race conditions depends entirely
on the semantics enforced.  This module provides canonical histories
for the textbook anomalies and classifies each against the checkers
of this package.  The matrix the tests pin down:

================  ==============  ====================
anomaly           snapshot iso    (conflict) serializability
================  ==============  ====================
dirty write        rejected        admitted (collapses to WAW)
lost update        rejected        rejected
read skew          rejected        rejected
write skew         **admitted**    rejected
================  ==============  ====================

Two modelling notes, both consequences of footprint-level histories
with atomic commits:

* **Dirty write** classically means *interleaved* writes tearing a
  multi-object update; with atomic commits the writes collapse into a
  clean WAW chain, which is conflict-serializable.  SI still rejects
  the history (first-committer-wins), so the case remains a
  separation — in the opposite direction from write skew.
* **Non-repeatable read** needs two reads of one object inside one
  transaction; footprints retain only the first read (later reads hit
  the snapshot), so its observable form here is the cross-object
  variant, **read skew**.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple

from .history import History
from .serializability import history_is_serializable
from .snapshot import satisfies_snapshot_isolation


def dirty_write() -> History:
    """Two overlapping committed writers of the same object."""
    h = History()
    h.begin(1)
    h.begin(2)
    h.write(1, 0)
    h.write(2, 0)
    h.commit(1)
    h.commit(2)
    return h


def lost_update() -> History:
    """Both read v0 of a counter, both write: one increment vanishes."""
    h = History()
    h.begin(1)
    h.begin(2)
    h.read(1, 0)
    h.read(2, 0)
    h.write(1, 0)
    h.write(2, 0)
    h.commit(1)
    h.commit(2)
    return h


def read_skew() -> History:
    """Reader sees x before and y after another txn's atomic update."""
    h = History()
    h.begin(1)
    h.read(1, 0)     # x at the initial version
    h.begin(2)
    h.write(2, 0)
    h.write(2, 1)
    h.commit(2)
    h.read(1, 1)     # y at t2's version: a torn view of t2's update
    h.commit(1)
    return h


def write_skew() -> History:
    """Fig. 1: disjoint writes guarded by overlapping reads."""
    from .snapshot import write_skew_example

    return write_skew_example()


class AnomalyCase(NamedTuple):
    name: str
    build: Callable[[], History]
    admitted_by_si: bool
    admitted_by_serializability: bool


CATALOG: List[AnomalyCase] = [
    AnomalyCase("dirty-write", dirty_write, False, True),
    AnomalyCase("lost-update", lost_update, False, False),
    AnomalyCase("read-skew", read_skew, False, False),
    AnomalyCase("write-skew", write_skew, True, False),
]


def classify(history: History) -> Dict[str, bool]:
    """Which semantics admit this history?"""
    return {
        "snapshot-isolation": satisfies_snapshot_isolation(history),
        "serializability": history_is_serializable(history),
    }
