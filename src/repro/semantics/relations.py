"""Finite binary relations and order-theoretic axioms.

This module is the foundation of the paper's axiom-based transactional
semantics (section 3.2).  A semantics is defined by the axioms that the
read/write-dependency relation of a transaction set must satisfy; this
module provides the relation data type and the axiom checks
(irreflexivity, asymmetry, transitivity, totality, acyclicity) together
with the constructions used in proofs (transitive closure, linear
extension, restriction).

Elements may be any hashable values; transactions in the rest of the
code base are identified by integers.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Element = Hashable
Pair = Tuple[Element, Element]


class Relation:
    """A binary relation over an explicit finite carrier set.

    The carrier is explicit (rather than implied by the pairs) because
    order-theoretic properties such as totality and the existence of
    linear extensions depend on which unrelated elements exist.
    """

    def __init__(self, elements: Iterable[Element] = (), pairs: Iterable[Pair] = ()):
        self._elements: Set[Element] = set(elements)
        self._successors: Dict[Element, Set[Element]] = {}
        for a, b in pairs:
            self.add(a, b)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_element(self, element: Element) -> None:
        """Add *element* to the carrier set (idempotent)."""
        self._elements.add(element)

    def add(self, a: Element, b: Element) -> None:
        """Relate ``a -> b``, adding both elements to the carrier."""
        self._elements.add(a)
        self._elements.add(b)
        self._successors.setdefault(a, set()).add(b)

    def discard(self, a: Element, b: Element) -> None:
        """Remove the pair ``a -> b`` if present."""
        succ = self._successors.get(a)
        if succ is not None:
            succ.discard(b)
            if not succ:
                del self._successors[a]

    def copy(self) -> "Relation":
        other = Relation(self._elements)
        for a, succ in self._successors.items():
            other._successors[a] = set(succ)
        return other

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def elements(self) -> FrozenSet[Element]:
        return frozenset(self._elements)

    def related(self, a: Element, b: Element) -> bool:
        """True iff ``a -> b`` is in the relation."""
        return b in self._successors.get(a, ())

    def concurrent(self, a: Element, b: Element) -> bool:
        """True iff *a* and *b* are unrelated in both directions.

        This is the paper's ``t1 ~ t2`` notation for concurrency
        (section 3.2, nomenclature).
        """
        return not self.related(a, b) and not self.related(b, a)

    def successors(self, a: Element) -> FrozenSet[Element]:
        return frozenset(self._successors.get(a, ()))

    def predecessors(self, a: Element) -> FrozenSet[Element]:
        return frozenset(x for x, succ in self._successors.items() if a in succ)

    def pairs(self) -> Iterator[Pair]:
        for a, succ in self._successors.items():
            for b in succ:
                yield (a, b)

    def __len__(self) -> int:
        return sum(len(s) for s in self._successors.values())

    def __contains__(self, pair: Pair) -> bool:
        a, b = pair
        return self.related(a, b)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._elements == other._elements and set(self.pairs()) == set(other.pairs())

    def __hash__(self):  # pragma: no cover - relations are mutable
        raise TypeError("Relation is unhashable (mutable)")

    def __repr__(self) -> str:
        pairs = sorted(self.pairs(), key=repr)
        return f"Relation(elements={sorted(self._elements, key=repr)!r}, pairs={pairs!r})"

    # ------------------------------------------------------------------
    # Axioms (section 3.2)
    # ------------------------------------------------------------------
    def is_irreflexive(self) -> bool:
        """No element is related to itself."""
        return all(a not in succ for a, succ in self._successors.items())

    def is_asymmetric(self) -> bool:
        """``a -> b`` forbids ``b -> a`` (implies irreflexivity)."""
        for a, b in self.pairs():
            if self.related(b, a):
                return False
        return True

    def is_transitive(self) -> bool:
        """``a -> b`` and ``b -> c`` imply ``a -> c``."""
        for a, succ in self._successors.items():
            for b in succ:
                for c in self._successors.get(b, ()):
                    if not self.related(a, c):
                        return False
        return True

    def is_total(self) -> bool:
        """Every pair of distinct elements is related one way or another."""
        # All-pairs scan: the boolean is a conjunction over unordered
        # pairs, so the materialized order cannot leak into the result.
        elems = list(self._elements)  # tm: ignore[TM102]
        for i, a in enumerate(elems):
            for b in elems[i + 1:]:
                if self.concurrent(a, b):
                    return False
        return True

    def is_strict_partial_order(self) -> bool:
        """Irreflexive, asymmetric and transitive (section 3.2)."""
        return self.is_irreflexive() and self.is_asymmetric() and self.is_transitive()

    def is_strict_total_order(self) -> bool:
        """A strict partial order that is also total (a linear order)."""
        return self.is_strict_partial_order() and self.is_total()

    def is_acyclic(self) -> bool:
        """True iff the relation, viewed as a digraph, has no cycle.

        Acyclicity is the paper's if-and-only-if axiom for
        serializability (section 3.2).  Self-loops count as cycles.
        """
        state: Dict[Element, int] = {}
        for root in self._elements:
            if state.get(root, 0):
                continue
            stack: List[Tuple[Element, Iterator[Element]]] = [
                (root, iter(self._successors.get(root, ())))
            ]
            state[root] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    mark = state.get(nxt, 0)
                    if mark == 1:
                        return False
                    if mark == 0:
                        state[nxt] = 1
                        stack.append((nxt, iter(self._successors.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    state[node] = 2
                    stack.pop()
        return True

    # ------------------------------------------------------------------
    # Constructions
    # ------------------------------------------------------------------
    def transitive_closure(self) -> "Relation":
        """The smallest transitive relation containing this one.

        Matches the paper's iterative definition of the reachability
        relation (section 4.1): BFS from every element.
        """
        closure = Relation(self._elements)
        for source in self._elements:
            seen: Set[Element] = set()
            frontier = deque(self._successors.get(source, ()))
            while frontier:
                node = frontier.popleft()
                if node in seen:
                    continue
                seen.add(node)
                frontier.extend(self._successors.get(node, ()))
            for target in seen:
                closure.add(source, target)
        return closure

    def extends(self, other: "Relation") -> bool:
        """True iff this relation contains every pair of *other*.

        The paper writes this as ``(T, ->) subseteq (T, ->_s)``: the
        stronger relation preserves every ordering of the weaker one.
        """
        if not other._elements <= self._elements:
            return False
        return all(self.related(a, b) for a, b in other.pairs())

    def topological_order(self) -> Optional[List[Element]]:
        """A linear extension witness, or None if the relation is cyclic.

        This is the constructive half of the paper's proof that
        acyclicity implies serializability: iteratively remove a minimal
        element (Kahn's algorithm).  Ties are broken deterministically
        by ``repr`` so results are reproducible.
        """
        indegree: Dict[Element, int] = {e: 0 for e in self._elements}
        for _, b in self.pairs():
            indegree[b] += 1
        ready = sorted((e for e, d in indegree.items() if d == 0), key=repr)
        order: List[Element] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            inserted = False
            for nxt in sorted(self._successors.get(node, ()), key=repr):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
                    inserted = True
            if inserted:
                ready.sort(key=repr)
        if len(order) != len(self._elements):
            return None
        return order

    def linear_extension(self) -> Optional["Relation"]:
        """A strict total order extending this relation, if one exists.

        By the order-extension principle a linear extension exists iff
        the relation is acyclic (for finite carriers).  Returns None for
        cyclic relations.
        """
        order = self.topological_order()
        if order is None:
            return None
        total = Relation(self._elements)
        for i, a in enumerate(order):
            for b in order[i + 1:]:
                total.add(a, b)
        return total

    def restrict(self, keep: Iterable[Element]) -> "Relation":
        """The relation restricted to the carrier subset *keep*.

        Used to express an OCC validator's output: the committed subset
        ``T_c`` with its induced dependencies.
        """
        keep_set = set(keep)
        sub = Relation(keep_set & self._elements)
        for a, b in self.pairs():
            if a in keep_set and b in keep_set:
                sub.add(a, b)
        return sub

    @classmethod
    def from_order(cls, sequence: Iterable[Element]) -> "Relation":
        """The strict total order induced by a sequence (first = least)."""
        seq = list(sequence)
        rel = cls(seq)
        for i, a in enumerate(seq):
            for b in seq[i + 1:]:
                rel.add(a, b)
        return rel
