"""Transaction histories and the R/W-dependency relation.

A *history* is an interleaved sequence of events (begin, read, write,
commit, abort) produced by concurrent transactions.  The paper's
concurrency-control analysis (section 3.1) reduces a history to the
happen-before relation ``->_rw`` over committed transactions, built
from the three classic dependency rules:

* **Read-after-write** (RAW): if ``t1`` reads an object version
  written by ``t2``, then ``t2 ->_rw t1``.
* **Write-after-read** (WAR): if ``t1`` overwrites a version that
  ``t2`` read, then ``t2 ->_rw t1``.
* **Write-after-write** (WAW): if ``t1`` overwrites a version that
  ``t2`` wrote, then ``t2 ->_rw t1``.

Histories here use multi-version bookkeeping: each write creates a new
version of its object, and each read names the version (writer) it
observed.  This makes the dependency extraction exact rather than
approximated from event order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .relations import Relation

TxnId = int
ObjectId = int

#: The writer id used for an object's initial (pre-history) version.
INITIAL_VERSION: TxnId = -1


class EventKind(enum.Enum):
    BEGIN = "begin"
    READ = "read"
    WRITE = "write"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class Event:
    """One step of a history.

    ``version`` is meaningful only for READ events: the id of the
    transaction whose write produced the value read (or
    :data:`INITIAL_VERSION`).
    """

    kind: EventKind
    txn: TxnId
    obj: Optional[ObjectId] = None
    version: Optional[TxnId] = None


@dataclass
class TxnRecord:
    """Aggregated footprint of one transaction inside a history."""

    txn: TxnId
    begin_index: Optional[int] = None
    end_index: Optional[int] = None
    committed: Optional[bool] = None
    #: object -> version (writer txn) observed by the first read.
    reads: Dict[ObjectId, TxnId] = field(default_factory=dict)
    writes: Set[ObjectId] = field(default_factory=set)

    @property
    def read_set(self) -> Set[ObjectId]:
        return set(self.reads)

    @property
    def write_set(self) -> Set[ObjectId]:
        return set(self.writes)

    @property
    def is_read_only(self) -> bool:
        return not self.writes


class History:
    """An append-only multi-version transaction history."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._records: Dict[TxnId, TxnRecord] = {}
        #: committed versions of each object, oldest first; implicitly
        #: preceded by INITIAL_VERSION.
        self._versions: Dict[ObjectId, List[TxnId]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, txn: TxnId) -> TxnRecord:
        rec = self._records.get(txn)
        if rec is None:
            rec = self._records[txn] = TxnRecord(txn)
        return rec

    def begin(self, txn: TxnId) -> None:
        rec = self._record(txn)
        if rec.begin_index is not None:
            raise ValueError(f"transaction {txn} already began")
        rec.begin_index = len(self.events)
        self.events.append(Event(EventKind.BEGIN, txn))

    def read(self, txn: TxnId, obj: ObjectId, version: Optional[TxnId] = None) -> TxnId:
        """Record a read; defaults to the latest committed version.

        Returns the version observed.  Only the first read of each
        object per transaction is retained in the footprint (later
        reads hit the transaction's own snapshot/write buffer).
        """
        self._ensure_active(txn)
        if version is None:
            committed = self._versions.get(obj)
            version = committed[-1] if committed else INITIAL_VERSION
        rec = self._record(txn)
        rec.reads.setdefault(obj, version)
        self.events.append(Event(EventKind.READ, txn, obj, version))
        return version

    def write(self, txn: TxnId, obj: ObjectId) -> None:
        self._ensure_active(txn)
        self._record(txn).writes.add(obj)
        self.events.append(Event(EventKind.WRITE, txn, obj))

    def commit(self, txn: TxnId) -> None:
        rec = self._finish(txn, committed=True)
        for obj in sorted(rec.writes):
            self._versions.setdefault(obj, []).append(txn)

    def abort(self, txn: TxnId) -> None:
        self._finish(txn, committed=False)

    def _ensure_active(self, txn: TxnId) -> None:
        rec = self._records.get(txn)
        if rec is None or rec.begin_index is None:
            raise ValueError(f"transaction {txn} has not begun")
        if rec.committed is not None:
            raise ValueError(f"transaction {txn} already finished")

    def _finish(self, txn: TxnId, committed: bool) -> TxnRecord:
        self._ensure_active(txn)
        rec = self._records[txn]
        rec.committed = committed
        rec.end_index = len(self.events)
        kind = EventKind.COMMIT if committed else EventKind.ABORT
        self.events.append(Event(kind, txn))
        return rec

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def record(self, txn: TxnId) -> TxnRecord:
        return self._records[txn]

    @property
    def transactions(self) -> List[TxnId]:
        return sorted(self._records)

    @property
    def committed(self) -> List[TxnId]:
        return sorted(t for t, r in self._records.items() if r.committed)

    def latest_version(self, obj: ObjectId) -> TxnId:
        committed = self._versions.get(obj)
        return committed[-1] if committed else INITIAL_VERSION

    def version_order(self, obj: ObjectId) -> List[TxnId]:
        """Committed versions of *obj*, oldest first, incl. the initial one."""
        return [INITIAL_VERSION] + list(self._versions.get(obj, []))

    # ------------------------------------------------------------------
    # Dependency extraction (section 3.1)
    # ------------------------------------------------------------------
    def rw_dependencies(self, txns: Optional[Iterable[TxnId]] = None) -> Relation:
        """The ``->_rw`` relation over *txns* (default: committed txns).

        The relation is built exactly from the RAW/WAR/WAW rules, using
        the per-object version order for WAW and WAR edges.
        """
        if txns is None:
            chosen = set(self.committed)
        else:
            chosen = set(txns)
        rel = Relation(chosen)

        # RAW: reader depends on the writer of the version it observed.
        for txn in chosen:
            for obj, version in self._records[txn].reads.items():
                if version in chosen and version != txn:
                    rel.add(version, txn)

        # WAW: per-object version order.
        for obj in self._versions:
            order = [t for t in self._versions[obj] if t in chosen]
            for earlier, later in zip(order, order[1:]):
                if earlier != later:
                    rel.add(earlier, later)

        # WAR: a reader of version v precedes the writer of the next
        # version of the same object.
        for txn in chosen:
            for obj, version in self._records[txn].reads.items():
                order = self.version_order(obj)
                try:
                    idx = order.index(version)
                except ValueError:
                    continue
                for successor in order[idx + 1:]:
                    if successor in chosen and successor != txn:
                        rel.add(txn, successor)
                        break
        return rel

    def real_time_order(self, txns: Optional[Iterable[TxnId]] = None) -> Relation:
        """The ``->_rt`` relation: t1 -> t2 iff t1 ended before t2 began."""
        chosen = set(self.committed if txns is None else txns)
        rel = Relation(chosen)
        for a in chosen:
            ra = self._records[a]
            if ra.end_index is None:
                continue
            for b in chosen:
                if a == b:
                    continue
                rb = self._records[b]
                if rb.begin_index is not None and ra.end_index < rb.begin_index:
                    rel.add(a, b)
        return rel


def history_from_steps(steps: Iterable[Tuple]) -> History:
    """Build a history from compact tuples, for tests and examples.

    Each step is one of::

        ("begin", txn)
        ("read", txn, obj)            # reads latest committed version
        ("read", txn, obj, version)   # reads an explicit version
        ("write", txn, obj)
        ("commit", txn)
        ("abort", txn)
    """
    history = History()
    dispatch = {
        "begin": history.begin,
        "read": history.read,
        "write": history.write,
        "commit": history.commit,
        "abort": history.abort,
    }
    for step in steps:
        name, *args = step
        dispatch[name](*args)
    return history
