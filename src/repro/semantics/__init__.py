"""Axiom-based transactional semantics (paper section 3).

The public surface of this subpackage:

* :class:`Relation` — finite binary relations with the order-theoretic
  axiom checks (irreflexive/asymmetric/transitive/total/acyclic) and
  constructions (transitive closure, linear extension).
* :class:`History` — multi-version transaction histories with exact
  RAW/WAR/WAW dependency extraction.
* Serializability — ``is_serializable`` (acyclicity), witness
  construction, cycle explanation, serial replay oracle.
* Strict serializability & interval orders — real-time order, the 2+2
  obstruction, phantom-ordering enumeration.
* Snapshot isolation — SI checker, write-skew detection,
  per-object compositionality probes.
* Linearizability — single-object strict serializability.
"""

from .anomalies import CATALOG, AnomalyCase, classify
from .history import INITIAL_VERSION, Event, EventKind, History, TxnRecord, history_from_steps
from .interval_order import (
    Interval,
    admissible_timestamp_orders,
    find_two_plus_two,
    history_real_time_intervals,
    interval_precedence,
    is_interval_order,
    is_strict_serializable,
    phantom_orderings,
    serializable_but_not_strictly,
)
from .linearizability import (
    interval_order_implies_acyclic_for_single_objects,
    is_linearizable,
    is_single_object_history,
    linearization_points,
)
from .relations import Relation
from .serializability import (
    assert_serializable,
    explain_cycle,
    history_is_serializable,
    is_serializable,
    replay_serially,
    serialization_witness,
)
from .snapshot import (
    find_write_skew,
    per_object_serializable,
    satisfies_snapshot_isolation,
    si_but_not_serializable,
    write_skew_example,
)

__all__ = [
    "AnomalyCase",
    "CATALOG",
    "INITIAL_VERSION",
    "Event",
    "EventKind",
    "History",
    "Interval",
    "Relation",
    "TxnRecord",
    "admissible_timestamp_orders",
    "assert_serializable",
    "classify",
    "explain_cycle",
    "find_two_plus_two",
    "find_write_skew",
    "history_from_steps",
    "history_is_serializable",
    "history_real_time_intervals",
    "interval_order_implies_acyclic_for_single_objects",
    "interval_precedence",
    "is_interval_order",
    "is_linearizable",
    "is_serializable",
    "is_single_object_history",
    "is_strict_serializable",
    "linearization_points",
    "per_object_serializable",
    "phantom_orderings",
    "replay_serially",
    "satisfies_snapshot_isolation",
    "serializable_but_not_strictly",
    "serialization_witness",
    "si_but_not_serializable",
    "write_skew_example",
]
