"""Snapshot isolation, write skew, and compositionality.

Section 2.1 of the paper motivates the axiom-based formalization with
the *write-skew* anomaly (Fig. 1): under the common interpretation of
isolation — "state changes made by others after T begins are not
visible to T" — two transactions that read both objects and each write
one of them both commit, a result no serial execution can produce.

This module checks a history for the two SI conditions and detects
write skew, plus a compositionality probe used in tests to demonstrate
that SI composes per-object while serializability does not
(section 2.2).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from .history import INITIAL_VERSION, History, TxnId
from .relations import Relation
from .serializability import history_is_serializable


def satisfies_snapshot_isolation(history: History) -> bool:
    """True iff every committed txn behaves like SI prescribes.

    Two conditions are checked on the recorded footprints:

    1. **Snapshot reads** — every read observes the version committed
       by the latest transaction that ended before the reader began
       (or the reader's own earlier write, which footprints elide).
    2. **First-committer-wins** — no two committed transactions with
       overlapping lifetimes write the same object.
    """
    committed = history.committed
    records = {t: history.record(t) for t in committed}

    for txn in committed:
        rec = records[txn]
        for obj, seen in rec.reads.items():
            expected = _snapshot_version(history, txn, obj)
            if seen != expected:
                return False

    for i, a in enumerate(committed):
        for b in committed[i + 1:]:
            if _lifetimes_overlap(history, a, b) and (
                records[a].writes & records[b].writes
            ):
                return False
    return True


def _snapshot_version(history: History, reader: TxnId, obj: int) -> TxnId:
    """Latest version of *obj* committed before *reader* began."""
    begin = history.record(reader).begin_index
    best = INITIAL_VERSION
    best_end = -1
    for writer in history.version_order(obj)[1:]:
        rec = history.record(writer)
        if rec.end_index is not None and rec.end_index < begin and rec.end_index > best_end:
            best, best_end = writer, rec.end_index
    return best


def _lifetimes_overlap(history: History, a: TxnId, b: TxnId) -> bool:
    ra, rb = history.record(a), history.record(b)
    return not (ra.end_index < rb.begin_index or rb.end_index < ra.begin_index)


def find_write_skew(history: History) -> Optional[Tuple[TxnId, TxnId]]:
    """A pair of committed txns exhibiting write skew, or None.

    Write skew: two concurrent transactions with disjoint write sets
    where each reads an object the other writes — admissible under SI,
    forbidden under serializability (it creates a WAR/WAR cycle).
    """
    committed = history.committed
    for i, a in enumerate(committed):
        ra = history.record(a)
        for b in committed[i + 1:]:
            rb = history.record(b)
            if not _lifetimes_overlap(history, a, b):
                continue
            if ra.writes & rb.writes:
                continue
            if (ra.read_set & rb.writes) and (rb.read_set & ra.writes):
                return (a, b)
    return None


def si_but_not_serializable(history: History) -> bool:
    """The Fig. 1 situation: SI admits it, serializability does not."""
    return satisfies_snapshot_isolation(history) and not history_is_serializable(history)


def per_object_serializable(history: History, objects: Iterable[int]) -> bool:
    """Serializability of each object's projection, taken alone.

    Demonstrates non-compositionality (section 2.2 / Fig. 1): each
    single-object projection of the write-skew history is acyclic, yet
    the composed history is not.  A projection keeps only the reads and
    writes touching one object.
    """
    for obj in objects:
        rel = _object_projection(history, obj)
        if not rel.is_acyclic():
            return False
    return True


def _object_projection(history: History, obj: int) -> Relation:
    committed = set(history.committed)
    rel = Relation(
        t
        for t in committed
        if obj in history.record(t).reads or obj in history.record(t).writes
    )

    order = [t for t in history.version_order(obj) if t in committed]
    for earlier, later in zip(order, order[1:]):
        rel.add(earlier, later)

    full_order = history.version_order(obj)
    for txn in committed:
        rec = history.record(txn)
        if obj in rec.reads:
            seen = rec.reads[obj]
            if seen in committed and seen != txn:
                rel.add(seen, txn)
            try:
                idx = full_order.index(seen)
            except ValueError:
                continue
            for successor in full_order[idx + 1:]:
                if successor in committed and successor != txn:
                    rel.add(txn, successor)
                    break
    return rel


def write_skew_example() -> History:
    """The canonical Fig. 1 history, ready for demos and tests.

    Threads 1 and 2 each read both x and y (objects 0 and 1) from the
    initial snapshot, then thread 1 writes x and thread 2 writes y,
    and both commit.
    """
    history = History()
    x, y = 0, 1
    history.begin(1)
    history.begin(2)
    history.read(1, x)
    history.read(1, y)
    history.read(2, x)
    history.read(2, y)
    history.write(1, x)
    history.write(2, y)
    history.commit(1)
    history.commit(2)
    return history
