"""Linearizability as single-object strict serializability.

The paper (section 3.2, footnote 5) follows Herlihy & Wing:
linearizability "can be viewed as a special case of strict
serializability where transactions are restricted to consist of a
single operation applied to a single object".  Footnote 4 gives the
order-theoretic reason it is compositional: a relation over
single-object operations that is irreflexive and an interval order is
automatically transitive, hence a partial order, hence acyclic.

This module provides the single-op restriction check, a
linearizability checker over histories, and the footnote-4 lemma as an
executable statement used by the property tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .history import History, TxnId
from .interval_order import find_two_plus_two, is_strict_serializable
from .relations import Relation


def is_single_object_history(history: History, txns: Optional[Iterable[TxnId]] = None) -> bool:
    """True iff every transaction touches at most one object once."""
    chosen = history.committed if txns is None else list(txns)
    for txn in chosen:
        rec = history.record(txn)
        footprint = rec.read_set | rec.write_set
        if len(footprint) > 1:
            return False
        ops = len(rec.reads) + len(rec.writes)
        if ops > 1:
            return False
    return True


def is_linearizable(history: History) -> bool:
    """Single-object transactions + strict serializability."""
    if not is_single_object_history(history):
        raise ValueError("linearizability is defined for single-operation transactions")
    rw = history.rw_dependencies()
    rt = history.real_time_order()
    return is_strict_serializable(rw, rt)


def interval_order_implies_acyclic_for_single_objects(rel: Relation) -> bool:
    """Footnote 4 of the paper, as a checkable implication.

    If *rel* is irreflexive, asymmetric, and an interval order (no 2+2),
    then it must be transitive — hence a strict partial order, hence
    acyclic.  Returns True when the implication holds on *rel* (i.e.
    either the premise fails or the conclusion holds); property tests
    assert this never returns False.
    """
    premise = (
        rel.is_irreflexive()
        and rel.is_asymmetric()
        and find_two_plus_two(rel) is None
        and _no_broken_chain(rel)
    )
    if not premise:
        return True
    return rel.is_transitive() and rel.is_acyclic()


def _no_broken_chain(rel: Relation) -> bool:
    """The degenerate 2+2 with t2 == t3 (footnote 4's construction).

    An interval order additionally excludes ``a -> b -> c`` with
    ``a ~ c``?  No — interval orders permit that.  What footnote 4
    uses is the *2+2 with a shared middle element*: if ``a -> b`` and
    ``b -> c`` but not ``a -> c``, the pairs (a, b) and (b, c) form the
    forbidden pattern once intervals are laid on the real axis, because
    b's interval would have to end before itself.  We check exactly
    this: every 2-chain is closed.
    """
    for a, b in rel.pairs():
        for c in rel.successors(b):
            if c != a and not rel.related(a, c):
                return False
    return True


def linearization_points(history: History) -> Optional[List[TxnId]]:
    """A total order of single-op txns consistent with real time.

    Returns the witness order (the linearization) or None when the
    history is not linearizable.
    """
    if not is_linearizable(history):
        return None
    rw = history.rw_dependencies()
    union = rw.copy()
    for a, b in history.real_time_order().pairs():
        union.add(a, b)
    return union.topological_order()
