"""Interval orders, the 2+2 obstruction, and strict serializability.

Section 3.2 uses *interval orders* to show that timestamped OCC (TOCC)
is sufficient but **not necessary** for serializability:

* Each transaction occupies an interval on the real-time axis (begin
  to end).  The precedence of disjoint intervals is the real-time order
  ``->_rt``.
* By Fishburn's theorem, a strict partial order is an interval order
  iff it contains no "2+2": two disjoint two-element chains
  ``t1 -> t2`` and ``t3 -> t4`` with no cross relations (Fig. 3(b)).
* Consequently any serialization mechanism whose serial order must be
  an interval order (i.e. compatible with *some* choice of timestamps
  taken inside each transaction's lifetime) manufactures *phantom
  orderings*: for the two chains above, ``t1 -> t4`` (or ``t3 -> t2``)
  is forced even though the transactions are unrelated by ``->_rw``.

This module provides interval containers, the 2+2 detector, phantom
ordering enumeration, and the strict-serializability check
(serializable + witness compatible with real time).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from .history import History, TxnId
from .relations import Relation


@dataclass(frozen=True, order=True)
class Interval:
    """A transaction's lifetime on the real-time axis."""

    start: float
    end: float
    label: Hashable = None

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    def precedes(self, other: "Interval") -> bool:
        """Strict left-to-right precedence (no overlap)."""
        return self.end < other.start

    def overlaps(self, other: "Interval") -> bool:
        return not self.precedes(other) and not other.precedes(self)


def interval_precedence(intervals: Iterable[Interval]) -> Relation:
    """The real-time order induced by a set of intervals."""
    items = list(intervals)
    rel = Relation(iv.label for iv in items)
    for a in items:
        for b in items:
            if a is not b and a.precedes(b):
                rel.add(a.label, b.label)
    return rel


def find_two_plus_two(rel: Relation) -> Optional[Tuple]:
    """Find a 2+2 sub-order: the obstruction of Fig. 3(b).

    Returns ``(t1, t2, t3, t4)`` with ``t1 -> t2``, ``t3 -> t4`` and
    all four cross-pairs unrelated, or None.  By Fishburn's theorem a
    strict partial order is an interval order iff this returns None.
    """
    pairs = list(rel.pairs())
    for i, (a, b) in enumerate(pairs):
        for c, d in pairs[i + 1:]:
            if len({a, b, c, d}) != 4:
                continue
            if (
                rel.concurrent(a, d)
                and rel.concurrent(c, b)
                and rel.concurrent(a, c)
                and rel.concurrent(b, d)
            ):
                return (a, b, c, d)
    return None


def is_interval_order(rel: Relation) -> bool:
    """True iff *rel* is a strict partial order with no 2+2 sub-order."""
    return rel.is_strict_partial_order() and find_two_plus_two(rel) is None


def phantom_orderings(rw: Relation, rt: Relation) -> Set[Tuple]:
    """Orderings forced by real time but absent from ``->_rw``.

    These are exactly the pairs a TOCC-style validator must respect
    even though no data dependency requires them — the restriction the
    ROCoCo algorithm removes (section 3.1).
    """
    return {(a, b) for a, b in rt.pairs() if not rw.transitive_closure().related(a, b)}


def is_strict_serializable(rw: Relation, rt: Relation) -> bool:
    """Serializable with a witness compatible with real time.

    ``(T, ->)`` is strict serializable iff the union of the dependency
    relation and the real-time order is still acyclic (Herlihy & Wing):
    some serial order then extends both.
    """
    union = rw.copy()
    for a, b in rt.pairs():
        union.add(a, b)
    return union.is_acyclic()


def serializable_but_not_strictly(rw: Relation, rt: Relation) -> bool:
    """The gap TOCC cannot exploit: serializable yet not strict.

    Fig. 2(b) of the paper is exactly such a case; any algorithm in
    this gap must reorder transactions against real time, which
    timestamps forbid.
    """
    return rw.is_acyclic() and not is_strict_serializable(rw, rt)


def history_real_time_intervals(history: History) -> List[Interval]:
    """Intervals (by event index) of a history's committed txns."""
    intervals = []
    for txn in history.committed:
        rec = history.record(txn)
        intervals.append(Interval(rec.begin_index, rec.end_index, label=txn))
    return intervals


def admissible_timestamp_orders(
    rw: Relation, intervals: Sequence[Interval]
) -> List[Tuple[TxnId, ...]]:
    """All serial orders achievable by *any* timestamping scheme.

    A timestamp scheme picks one point inside each transaction's
    interval; the serial order is the order of points.  An order of the
    labels is achievable iff consecutive elements never require a point
    of a later-ending interval to precede a point of an earlier-starting
    disjoint interval, i.e. iff the order linearizes the interval
    precedence relation.  Among those we keep the ones compatible with
    ``->_rw`` — what TOCC could conceivably commit.

    Exponential in len(intervals); intended for the small counter-example
    traces of section 3 and the test-suite.
    """
    labels = [iv.label for iv in intervals]
    by_label: Dict[Hashable, Interval] = {iv.label: iv for iv in intervals}
    rt = interval_precedence(intervals)
    admissible = []
    closure = rw.transitive_closure()
    for perm in permutations(labels):
        ok = True
        for i, a in enumerate(perm):
            for b in perm[i + 1:]:
                # b follows a: forbidden if b really precedes a.
                if rt.related(b, a) or closure.related(b, a):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            admissible.append(perm)
    return admissible
