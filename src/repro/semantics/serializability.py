"""Serializability: acyclicity as the if-and-only-if axiom.

Section 3.2 of the paper proves that a committed transaction set
``(T_c, ->_rw)`` is (conflict-)serializable *iff* ``->_rw`` is acyclic:

* acyclicity => serializability: construct the serial order by
  topological sorting (iteratively removing minimal elements);
* serializability => acyclicity: a cycle survives into the transitive
  closure, and any linear order containing ``->_rw`` contains the
  closure, contradicting asymmetry.

This module exposes both directions constructively: a checker, a
witness builder, and a verifier that replays a candidate serial order
against the history to confirm every read still observes the same
value — the strongest oracle we can offer, and the one the test-suite
uses to validate every TM backend in this repository.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .history import INITIAL_VERSION, History, TxnId
from .relations import Relation


def is_serializable(rw: Relation) -> bool:
    """True iff the dependency relation admits a serial equivalent."""
    return rw.is_acyclic()


def serialization_witness(rw: Relation) -> Optional[List[TxnId]]:
    """A serial order compatible with ``->_rw``, or None if cyclic."""
    return rw.topological_order()


def history_is_serializable(history: History, txns: Optional[Iterable[TxnId]] = None) -> bool:
    """Conflict-serializability of (a subset of) a history's commits."""
    return is_serializable(history.rw_dependencies(txns))


def explain_cycle(rw: Relation) -> Optional[List[TxnId]]:
    """A witness cycle ``[t0, t1, ..., t0]`` if one exists, else None.

    Useful in error messages from the TM oracles: it names the
    transactions whose dependencies cannot be linearized.
    """
    color: Dict = {}
    parent: Dict = {}

    for root in rw.elements:
        if color.get(root):
            continue
        stack = [(root, iter(sorted(rw.successors(root), key=repr)))]
        color[root] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color.get(nxt, 0) == 1:
                    # Found a back edge: rebuild the cycle through parents.
                    cycle = [nxt, node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
                if color.get(nxt, 0) == 0:
                    color[nxt] = 1
                    parent[nxt] = node
                    stack.append((nxt, iter(sorted(rw.successors(nxt), key=repr))))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                stack.pop()
    return None


def replay_serially(history: History, order: List[TxnId]) -> bool:
    """Replay committed transactions in *order* and check observations.

    For each transaction in the candidate serial order, every read must
    observe exactly the version it observed in the concurrent history.
    This is view-equivalence restricted to the recorded footprints and
    serves as the ground-truth oracle for witness orders.
    """
    latest: Dict[int, TxnId] = {}
    for txn in order:
        rec = history.record(txn)
        for obj, version in rec.reads.items():
            current = latest.get(obj, INITIAL_VERSION)
            if current != version:
                return False
        for obj in rec.writes:
            latest[obj] = txn
    return True


def assert_serializable(history: History, txns: Optional[Iterable[TxnId]] = None) -> List[TxnId]:
    """Checker + witness + replay in one call; raises on violation.

    Returns the verified serial order.  Raises AssertionError with a
    cycle witness when the history is not serializable, or when the
    topological witness fails replay (which would indicate a bug in the
    dependency extraction itself).
    """
    rw = history.rw_dependencies(txns)
    order = serialization_witness(rw)
    if order is None:
        cycle = explain_cycle(rw)
        raise AssertionError(f"history is not serializable; dependency cycle: {cycle}")
    if not replay_serially(history, order):
        raise AssertionError(
            "topological witness failed serial replay; dependency extraction is inconsistent"
        )
    return order
