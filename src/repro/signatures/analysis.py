"""Probabilistic false-positivity model for signatures (Fig. 7).

The paper sizes its signatures with the established model of Jeffrey &
Steffan ("Understanding bloom filter intersection for lazy address-set
disambiguation", SPAA 2011).  For a partitioned filter with ``k``
partitions of ``m/k`` bits holding ``n`` random elements:

* per-bit occupancy of one partition:
  ``p(n) = 1 - (1 - k/m)^n``;
* **query false positive** (an absent element appears present):
  ``P_query = p(n)^k`` — all k partition bits happen to be set;
* **intersection false set-overlap** (two *disjoint* sets' signatures
  pass the overlap test): a real shared element marks one bit per
  partition in both signatures, so the test requires a common bit in
  *every* partition.  Within one partition each of the ``m/k`` bits is
  set in both signatures with probability ``p(n_a) * p(n_b)``
  (independent filters), hence

  ``P_intersect = (1 - (1 - p(n_a) p(n_b))^(m/k))^k``.

The headline of Fig. 7(b): intersection false positives rise *much*
faster with n than query false positives, which is why ROCoCoTM only
intersects signatures of at most 8 addresses (one cacheline's worth)
and sub-divides larger read sets (§5.3).

The Monte-Carlo counterparts here validate the closed forms against
the actual :class:`BloomSignature` implementation.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Tuple

from .bloom import BloomSignature, SignatureConfig


def bit_occupancy(n: int, bits: int, partitions: int) -> float:
    """Probability a given bit of one partition is set after n inserts."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return 1.0 - (1.0 - partitions / bits) ** n


def query_false_positive(n: int, bits: int, partitions: int) -> float:
    """P(query says present | element absent) after n inserts."""
    return bit_occupancy(n, bits, partitions) ** partitions


def intersection_false_positive(
    n_a: int, n_b: int, bits: int, partitions: int
) -> float:
    """P(two disjoint sets' signatures pass the overlap test)."""
    p_a = bit_occupancy(n_a, bits, partitions)
    p_b = bit_occupancy(n_b, bits, partitions)
    per_bit_both = p_a * p_b
    per_partition = 1.0 - (1.0 - per_bit_both) ** (bits // partitions)
    return per_partition ** partitions


def measure_query_false_positive(
    n: int,
    config: SignatureConfig,
    trials: int = 2000,
    seed: int = 0,
    universe: int = 1 << 48,
) -> float:
    """Monte-Carlo query FP rate of the real implementation."""
    rng = random.Random(seed)
    hits = 0
    for _ in range(trials):
        members = [rng.randrange(universe) for _ in range(n)]
        sig = config.of(members)
        probe = rng.randrange(universe)
        while probe in members:
            probe = rng.randrange(universe)
        if sig.query(probe):
            hits += 1
    return hits / trials


def measure_intersection_false_positive(
    n_a: int,
    n_b: int,
    config: SignatureConfig,
    trials: int = 2000,
    seed: int = 0,
    universe: int = 1 << 48,
) -> float:
    """Monte-Carlo false set-overlap rate of the real implementation."""
    rng = random.Random(seed)
    hits = 0
    for _ in range(trials):
        set_a = {rng.randrange(universe) for _ in range(n_a)}
        set_b = set()
        while len(set_b) < n_b:
            candidate = rng.randrange(universe)
            if candidate not in set_a:
                set_b.add(candidate)
        if config.of(set_a).intersects(config.of(set_b)):
            hits += 1
    return hits / trials


def figure7_rows(
    configurations: Iterable[Tuple[int, int]] = ((256, 4), (512, 4), (512, 8), (1024, 8)),
    max_elements: int = 32,
) -> List[dict]:
    """The analytic series behind Fig. 7: one row per (m, k, n)."""
    rows = []
    for bits, partitions in configurations:
        for n in range(1, max_elements + 1):
            rows.append(
                {
                    "m": bits,
                    "k": partitions,
                    "n": n,
                    "query_fp": query_false_positive(n, bits, partitions),
                    "intersect_fp": intersection_false_positive(n, n, bits, partitions),
                }
            )
    return rows
