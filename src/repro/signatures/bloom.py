"""Parallel (partitioned) bloom-filter signatures (§5.2, Fig. 7(a)).

A signature summarizes an unbounded address set in ``m`` bits split
into ``k`` partitions of ``m/k`` bits; each partition has its own hash
lane and receives exactly one bit per inserted element.  Supported
operations — insertion, membership query, set union, set intersection
— are all bit-wise, which is what makes them single-cycle on the FPGA
and a handful of AVX2 instructions on the CPU.

ROCoCoTM's configuration is ``m = 512``: one CPU cacheline, so a
signature ships to the FPGA in a single CCI transfer, and
"coincidentally" also exactly eight 64-bit addresses.
"""

from __future__ import annotations

from typing import Iterable, List

from .hashing import hash_family

DEFAULT_BITS = 512
DEFAULT_PARTITIONS = 4


class SignatureConfig:
    """Shared (m, k, hash family) configuration for compatible signatures."""

    __slots__ = ("bits", "partitions", "partition_bits", "hashes")

    def __init__(
        self,
        bits: int = DEFAULT_BITS,
        partitions: int = DEFAULT_PARTITIONS,
        seed: int = 0x5EED,
    ):
        if bits < 1 or partitions < 1:
            raise ValueError("bits and partitions must be positive")
        if bits % partitions:
            raise ValueError("partitions must evenly divide bits")
        partition_bits = bits // partitions
        if partition_bits & (partition_bits - 1):
            raise ValueError("partition size must be a power of two (hash range)")
        self.bits = bits
        self.partitions = partitions
        self.partition_bits = partition_bits
        self.hashes = hash_family(partitions, partition_bits.bit_length() - 1, seed)

    def bit_positions(self, element: int) -> List[int]:
        """The k global bit positions of *element* (one per partition)."""
        width = self.partition_bits
        return [i * width + h(element) for i, h in enumerate(self.hashes)]

    def new(self) -> "BloomSignature":
        return BloomSignature(self)

    def of(self, elements: Iterable[int]) -> "BloomSignature":
        sig = self.new()
        for element in elements:
            sig.insert(element)
        return sig


class BloomSignature:
    """One m-bit signature; bits held in a single Python int."""

    __slots__ = ("config", "raw")

    def __init__(self, config: SignatureConfig, raw: int = 0):
        self.config = config
        self.raw = raw

    # ------------------------------------------------------------------
    def insert(self, element: int) -> None:
        for pos in self.config.bit_positions(element):
            self.raw |= 1 << pos

    def query(self, element: int) -> bool:
        """Membership test: no false negatives, tunable false positives."""
        raw = self.raw
        return all(raw >> pos & 1 for pos in self.config.bit_positions(element))

    def is_empty(self) -> bool:
        return self.raw == 0

    def clear(self) -> None:
        self.raw = 0

    # ------------------------------------------------------------------
    def union(self, other: "BloomSignature") -> "BloomSignature":
        self._compatible(other)
        return BloomSignature(self.config, self.raw | other.raw)

    def unite(self, other: "BloomSignature") -> None:
        """In-place union (the paper's ``TempSet.unite``)."""
        self._compatible(other)
        self.raw |= other.raw

    def intersect(self, other: "BloomSignature") -> "BloomSignature":
        self._compatible(other)
        return BloomSignature(self.config, self.raw & other.raw)

    def intersects(self, other: "BloomSignature") -> bool:
        """Set-overlap test — the operation whose false positivity
        Fig. 7(b) analyses.

        A shared element sets one bit per partition in *both*
        signatures, so the AND of the signatures must be non-zero in
        **every** partition; requiring all k partitions (rather than a
        bare non-zero AND) is what makes partitioned filters usable for
        intersection at all.  Sound: returns True for any real overlap;
        may return True spuriously.
        """
        self._compatible(other)
        both = self.raw & other.raw
        if both == 0:
            return False
        width = self.config.partition_bits
        mask = (1 << width) - 1
        for _ in range(self.config.partitions):
            if both & mask == 0:
                return False
            both >>= width
        return True

    def copy(self) -> "BloomSignature":
        return BloomSignature(self.config, self.raw)

    def _compatible(self, other: "BloomSignature") -> None:
        if self.config is not other.config:
            raise ValueError("signatures from different configurations")

    # ------------------------------------------------------------------
    def popcount(self) -> int:
        return self.raw.bit_count()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomSignature):
            return NotImplemented
        return self.config is other.config and self.raw == other.raw

    def __hash__(self) -> int:
        return hash((id(self.config), self.raw))

    def __repr__(self) -> str:
        return (
            f"BloomSignature(m={self.config.bits}, k={self.config.partitions},"
            f" popcount={self.popcount()})"
        )
