"""Parallel (partitioned) bloom-filter signatures (§5.2, Fig. 7(a)).

A signature summarizes an unbounded address set in ``m`` bits split
into ``k`` partitions of ``m/k`` bits; each partition has its own hash
lane and receives exactly one bit per inserted element.  Supported
operations — insertion, membership query, set union, set intersection
— are all bit-wise, which is what makes them single-cycle on the FPGA
and a handful of AVX2 instructions on the CPU.

ROCoCoTM's configuration is ``m = 512``: one CPU cacheline, so a
signature ships to the FPGA in a single CCI transfer, and
"coincidentally" also exactly eight 64-bit addresses.

**The interned mask cache.**  Every operation on an element reduces to
the same k-bit *query mask* (one set bit per partition), and workloads
touch the same addresses over and over — every read re-inserts, every
commit re-hashes, every detector compare re-derives the very same
bits.  :class:`SignatureConfig` therefore interns each address once:
the k bit positions, the packed ``m``-bit mask (a Python int), and the
same mask as a ``(words,)`` uint64 row in a shared matrix that the
conflict detector gathers into its batched ``(A, words)`` compares.
The cache is exact (no eviction: an address's mask never changes), so
insert/query/detector all agree bit-for-bit with the uncached
computation — the property test in ``tests/signatures`` pins it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from .hashing import hash_family, hash_rows

DEFAULT_BITS = 512
DEFAULT_PARTITIONS = 4

_WORD = 64
_INITIAL_ROWS = 256


class SignatureConfig:
    """Shared (m, k, hash family) configuration for compatible signatures.

    Also the home of the interned address→query-mask cache shared by
    signature insert/query and the hardware model's conflict detector.
    """

    __slots__ = (
        "bits",
        "partitions",
        "partition_bits",
        "hashes",
        "words",
        "_index",
        "_masks",
        "_position_rows",
        "_mask_rows",
        "mask_cache_hits",
        "mask_cache_misses",
    )

    def __init__(
        self,
        bits: int = DEFAULT_BITS,
        partitions: int = DEFAULT_PARTITIONS,
        seed: int = 0x5EED,
    ):
        if bits < 1 or partitions < 1:
            raise ValueError("bits and partitions must be positive")
        if bits % partitions:
            raise ValueError("partitions must evenly divide bits")
        partition_bits = bits // partitions
        if partition_bits & (partition_bits - 1):
            raise ValueError("partition size must be a power of two (hash range)")
        self.bits = bits
        self.partitions = partitions
        self.partition_bits = partition_bits
        self.hashes = hash_family(partitions, partition_bits.bit_length() - 1, seed)
        #: 64-bit words per signature (the detector's row width).
        self.words = (bits + _WORD - 1) // _WORD
        # addr -> row index into the interned-mask store.
        self._index: Dict[int, int] = {}
        self._masks: List[int] = []
        self._position_rows: np.ndarray = np.zeros(
            (_INITIAL_ROWS, partitions), dtype=np.uint64
        )
        self._mask_rows: np.ndarray = np.zeros(
            (_INITIAL_ROWS, self.words), dtype=np.uint64
        )
        self.mask_cache_hits = 0
        self.mask_cache_misses = 0

    # ------------------------------------------------------------------
    # The interned mask cache
    # ------------------------------------------------------------------
    @property
    def mask_cache_entries(self) -> int:
        return len(self._masks)

    def _grow(self, need: int) -> None:
        capacity = len(self._mask_rows)
        while capacity < need:
            capacity *= 2
        position_rows = np.zeros((capacity, self.partitions), dtype=np.uint64)
        position_rows[: len(self._masks)] = self._position_rows[: len(self._masks)]
        self._position_rows = position_rows
        mask_rows = np.zeros((capacity, self.words), dtype=np.uint64)
        mask_rows[: len(self._masks)] = self._mask_rows[: len(self._masks)]
        self._mask_rows = mask_rows

    def _intern_batch(self, fresh: Sequence[int]) -> None:
        """Hash and pack a batch of never-seen addresses: one
        vectorized multiply/shift per lane, then one scatter-OR into
        the shared mask matrix."""
        base = len(self._masks)
        count = len(fresh)
        if base + count > len(self._mask_rows):
            self._grow(base + count)
        width = np.uint64(self.partition_bits)
        lane_base = np.arange(self.partitions, dtype=np.uint64) * width
        positions = hash_rows(self.hashes, fresh) + lane_base[None, :]
        self._position_rows[base : base + count] = positions
        rows = np.repeat(np.arange(base, base + count), self.partitions)
        np.bitwise_or.at(
            self._mask_rows,
            (rows, (positions // _WORD).ravel().astype(np.intp)),
            np.uint64(1) << (positions % _WORD).ravel(),
        )
        for offset, element in enumerate(fresh):
            row = base + offset
            mask = 0
            for pos in positions[offset]:
                mask |= 1 << int(pos)
            self._masks.append(mask)
            self._index[element] = row
        self.mask_cache_misses += count

    def _intern(self, element: int) -> int:
        row = self._index.get(element)
        if row is not None:
            self.mask_cache_hits += 1
            return row
        # Scalar first-touch path: k multiply-shifts in plain Python
        # beat a one-row numpy batch (same bits either way — the lanes
        # agree with ``hash_rows`` bit-for-bit).
        row = len(self._masks)
        if row + 1 > len(self._mask_rows):
            self._grow(row + 1)
        width = self.partition_bits
        mask = 0
        positions = []
        for lane, lane_hash in enumerate(self.hashes):
            pos = lane * width + lane_hash(element)
            positions.append(pos)
            mask |= 1 << pos
        self._position_rows[row] = positions
        self._mask_rows[row] = np.frombuffer(
            mask.to_bytes(self.words * 8, "little"), dtype="<u8"
        )
        self._masks.append(mask)
        self._index[element] = row
        self.mask_cache_misses += 1
        return row

    def intern_rows(self, elements: Sequence[int]) -> List[int]:
        """Row indices into :meth:`mask_matrix` for *elements*,
        interning any first-touch addresses as one vectorized batch."""
        index = self._index
        try:
            rows = [index[e] for e in elements]
        except KeyError:
            fresh = [e for e in elements if e not in index]
            if len(fresh) > 1:
                fresh = list(dict.fromkeys(fresh))
            self._intern_batch(fresh)
            self.mask_cache_hits += len(elements) - len(fresh)
            return [index[e] for e in elements]
        self.mask_cache_hits += len(elements)
        return rows

    def mask_matrix(self) -> np.ndarray:
        """The interned ``(entries, words)`` uint64 mask store (live
        view; rows are append-only and never mutated once written)."""
        return self._mask_rows

    def query_mask(self, element: int) -> int:
        """The packed m-bit query mask of *element* (all k bits set)."""
        return self._masks[self._intern(element)]

    def query_words(self, elements: Sequence[int]) -> np.ndarray:
        """The ``(A, words)`` uint64 mask matrix for a batch of
        addresses — the detector's per-request compare operand."""
        # Intern first: it may grow (and reassign) the row store.
        rows = self.intern_rows(elements)
        return self._mask_rows[rows]

    # ------------------------------------------------------------------
    def bit_positions(self, element: int) -> List[int]:
        """The k global bit positions of *element* (one per partition)."""
        return [int(p) for p in self._position_rows[self._intern(element)]]

    def new(self) -> "BloomSignature":
        return BloomSignature(self)

    def of(self, elements: Iterable[int]) -> "BloomSignature":
        sig = self.new()
        for element in elements:
            sig.insert(element)
        return sig

    def raw_of(self, elements: Sequence[int]) -> int:
        """The packed signature of an address batch, via the cache:
        a union of interned masks instead of per-element hashing."""
        raw = 0
        masks = self._masks
        for row in self.intern_rows(elements):
            raw |= masks[row]
        return raw


class BloomSignature:
    """One m-bit signature; bits held in a single Python int."""

    __slots__ = ("config", "raw")

    def __init__(self, config: SignatureConfig, raw: int = 0):
        self.config = config
        self.raw = raw

    # ------------------------------------------------------------------
    def insert(self, element: int) -> None:
        self.raw |= self.config.query_mask(element)

    def query(self, element: int) -> bool:
        """Membership test: no false negatives, tunable false positives.

        One cached-mask AND-compare — the common miss costs a single
        big-int AND instead of k per-bit probes.
        """
        mask = self.config.query_mask(element)
        return self.raw & mask == mask

    def is_empty(self) -> bool:
        return self.raw == 0

    def clear(self) -> None:
        self.raw = 0

    # ------------------------------------------------------------------
    def union(self, other: "BloomSignature") -> "BloomSignature":
        self._compatible(other)
        return BloomSignature(self.config, self.raw | other.raw)

    def unite(self, other: "BloomSignature") -> None:
        """In-place union (the paper's ``TempSet.unite``)."""
        self._compatible(other)
        self.raw |= other.raw

    def intersect(self, other: "BloomSignature") -> "BloomSignature":
        self._compatible(other)
        return BloomSignature(self.config, self.raw & other.raw)

    def intersects(self, other: "BloomSignature") -> bool:
        """Set-overlap test — the operation whose false positivity
        Fig. 7(b) analyses.

        A shared element sets one bit per partition in *both*
        signatures, so the AND of the signatures must be non-zero in
        **every** partition; requiring all k partitions (rather than a
        bare non-zero AND) is what makes partitioned filters usable for
        intersection at all.  Sound: returns True for any real overlap;
        may return True spuriously.
        """
        self._compatible(other)
        both = self.raw & other.raw
        if both == 0:
            return False
        width = self.config.partition_bits
        mask = (1 << width) - 1
        for _ in range(self.config.partitions):
            if both & mask == 0:
                return False
            both >>= width
        return True

    def copy(self) -> "BloomSignature":
        return BloomSignature(self.config, self.raw)

    def _compatible(self, other: "BloomSignature") -> None:
        if self.config is not other.config:
            raise ValueError("signatures from different configurations")

    # ------------------------------------------------------------------
    def popcount(self) -> int:
        return self.raw.bit_count()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomSignature):
            return NotImplemented
        return self.config is other.config and self.raw == other.raw

    def __hash__(self) -> int:
        return hash((id(self.config), self.raw))

    def __repr__(self) -> str:
        return (
            f"BloomSignature(m={self.config.bits}, k={self.config.partitions},"
            f" popcount={self.popcount()})"
        )
