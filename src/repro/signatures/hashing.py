"""Approximately-universal multiply-shift hashing (§5.2).

ROCoCoTM computes bloom-filter signatures on both the FPGA (hardwired
multipliers in DSP blocks) and the CPU (a few AVX2 instructions), so
it uses the multiply-shift scheme of Dietzfelbinger et al.: for a
word size ``w`` and output size ``d`` bits,

    h_a(x) = ((a * x) mod 2^w) >> (w - d)

with ``a`` a random odd ``w``-bit constant.  The family is
2-approximately universal; one multiplier + one shift per lane, which
is exactly one DSP and no memory on the FPGA, and a vectorized
multiply on the CPU.
"""

from __future__ import annotations

import random
from typing import List, Sequence

import numpy as np

WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


class MultiplyShiftHash:
    """One hash lane: 64-bit multiply-shift to ``out_bits`` bits."""

    __slots__ = ("multiplier", "out_bits", "_shift")

    def __init__(self, multiplier: int, out_bits: int):
        if out_bits < 1 or out_bits > WORD_BITS:
            raise ValueError(f"out_bits must be in [1, {WORD_BITS}]")
        if multiplier % 2 == 0:
            raise ValueError("multiplier must be odd")
        self.multiplier = multiplier & _WORD_MASK
        self.out_bits = out_bits
        self._shift = WORD_BITS - out_bits

    def __call__(self, x: int) -> int:
        return ((self.multiplier * x) & _WORD_MASK) >> self._shift

    def __repr__(self) -> str:
        return f"MultiplyShiftHash(0x{self.multiplier:x}, {self.out_bits})"


def hash_family(lanes: int, out_bits: int, seed: int = 0x5EED) -> List[MultiplyShiftHash]:
    """``lanes`` independent multiply-shift hashes (one per partition).

    Deterministic in *seed* so signatures are reproducible across the
    CPU- and FPGA-side models (they must agree bit-for-bit, like the
    AVX2 and hardwired implementations do).
    """
    rng = random.Random(seed)
    hashes = []
    for _ in range(lanes):
        multiplier = rng.getrandbits(WORD_BITS) | 1
        hashes.append(MultiplyShiftHash(multiplier, out_bits))
    return hashes


def hash_rows(
    hashes: Sequence[MultiplyShiftHash], elements: Sequence[int]
) -> np.ndarray:
    """All lane outputs for a batch of elements: an ``(A, lanes)``
    uint64 matrix with ``out[j][i] == hashes[i](elements[j])``.

    This is the CPU-side analogue of the FPGA's per-lane DSP columns:
    one vectorized multiply + shift per lane over the whole batch.
    numpy's uint64 arithmetic wraps mod ``2^w`` exactly like the
    scalar path's ``& _WORD_MASK``, so the two agree bit-for-bit (the
    mask-cache property test in ``tests/signatures`` pins this).
    """
    lanes = np.fromiter(
        (h.multiplier for h in hashes), dtype=np.uint64, count=len(hashes)
    )
    vals = np.fromiter(
        (e & _WORD_MASK for e in elements), dtype=np.uint64, count=len(elements)
    )
    shift = np.uint64(WORD_BITS - hashes[0].out_bits)
    return (vals[:, None] * lanes[None, :]) >> shift
