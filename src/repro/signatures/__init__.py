"""Parallel bloom-filter signatures and their probabilistic model (§5.2).

* :class:`SignatureConfig` / :class:`BloomSignature` — partitioned
  bloom filters over multiply-shift hashing; insert/query/union/
  intersection, all bit-wise.
* :mod:`analysis <repro.signatures.analysis>` — the Jeffrey & Steffan
  closed forms for query and intersection false positivity (Fig. 7),
  plus Monte-Carlo measurement of the real implementation.
"""

from .analysis import (
    bit_occupancy,
    figure7_rows,
    intersection_false_positive,
    measure_intersection_false_positive,
    measure_query_false_positive,
    query_false_positive,
)
from .bloom import DEFAULT_BITS, DEFAULT_PARTITIONS, BloomSignature, SignatureConfig
from .hashing import WORD_BITS, MultiplyShiftHash, hash_family

__all__ = [
    "DEFAULT_BITS",
    "DEFAULT_PARTITIONS",
    "BloomSignature",
    "MultiplyShiftHash",
    "SignatureConfig",
    "WORD_BITS",
    "bit_occupancy",
    "figure7_rows",
    "hash_family",
    "intersection_false_positive",
    "measure_intersection_false_positive",
    "measure_query_false_positive",
    "query_false_positive",
]
