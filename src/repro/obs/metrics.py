"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints (docs/OBSERVABILITY.md):

* **Cheap when recording.** A histogram observation is one bisect
  plus four scalar updates; a counter bump is one dict update.  No
  labels, no locks — the simulator is single-threaded, and each
  experiment cell owns its own registry.
* **Deterministic snapshots.** ``snapshot()`` sorts every key and
  serializes histograms as plain lists, so two runs of the same spec
  produce byte-identical JSON, and snapshots computed in worker
  processes compare equal to serial ones.
* **Mergeable.** Fixed bucket bounds (never adaptive) are what make
  cross-shard merging exact: counters add, histogram buckets add
  element-wise, gauges combine by ``max`` (order-independent, so the
  merged result cannot depend on which shard finished first).

All recorded values are *simulated* nanoseconds or pure counts —
never wall-clock readings (the determinism contract, DESIGN.md).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Optional, Sequence

#: default latency buckets (simulated ns): 100 ns .. ~0.4 ms, doubling.
LATENCY_BOUNDS_NS = (
    100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0,
    12800.0, 25600.0, 51200.0, 102400.0, 204800.0, 409600.0,
)
#: attempt-count buckets (1 = first-try commit).
RETRY_BOUNDS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)
#: sliding-window / queue occupancy buckets.
OCCUPANCY_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0, 128.0)


class Histogram:
    """Fixed-bucket histogram: bucket *i* counts values in
    ``(bounds[i-1], bounds[i]]``; one overflow bucket past the end."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float]):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        for name in ("min", "max"):
            theirs = getattr(other, name)
            if theirs is None:
                continue
            ours = getattr(self, name)
            pick = min if name == "min" else max
            setattr(self, name, theirs if ours is None else pick(ours, theirs))

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        hist = cls(payload["bounds"])
        counts = list(payload["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError("bucket count mismatch")
        hist.counts = counts
        hist.count = payload["count"]
        hist.total = payload["sum"]
        hist.min = payload["min"]
        hist.max = payload["max"]
        return hist


class MetricsRegistry:
    """Named counters, gauges and histograms for one run."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS_NS
    ) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds)
        return hist

    def observe(
        self, name: str, value: float, bounds: Sequence[float] = LATENCY_BOUNDS_NS
    ) -> None:
        self.histogram(name, bounds).observe(value)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready dict with deterministic key order."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
        }

    to_dict = snapshot


def merge_metric_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge per-cell snapshots into one aggregate snapshot.

    Counters and histogram buckets add; gauges combine by ``max``.
    Because runners return results in spec order, merging a pool
    sweep's snapshots is bit-identical to merging a serial sweep's.
    """
    merged = MetricsRegistry()
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            merged.count(name, value)
        for name, value in snap.get("gauges", {}).items():
            current = merged.gauges.get(name)
            merged.gauges[name] = value if current is None else max(current, value)
        for name, payload in snap.get("histograms", {}).items():
            hist = Histogram.from_dict(payload)
            if name in merged.histograms:
                merged.histograms[name].merge(hist)
            else:
                merged.histograms[name] = hist
    return merged.snapshot()


class MetricsCollector:
    """Bus subscriber populating a :class:`MetricsRegistry`.

    Subscribes only to the kinds it consumes — never ``read``/
    ``write``/``step`` — so enabling metrics does not switch the
    simulator's per-operation emissions on (``wants()`` stays False
    for the hot-path kinds).
    """

    KINDS = (
        "begin",
        "commit",
        "abort",
        "park",
        "wake",
        "backoff",
        "validate",
        "mask_cache",
        "route",
        "xshard",
        "shard_open",
        "fault",
        "failover",
        "failback",
        "sched",
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._attempt_start: Dict[int, float] = {}
        self._attempt_index: Dict[int, int] = {}
        self._park_start: Dict[int, float] = {}
        self._bus = None

    # ------------------------------------------------------------------
    def install(self, bus) -> None:
        bus.subscribe(self._on_event, kinds=self.KINDS)
        self._bus = bus

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def instrument(self, simulator) -> None:
        """The :func:`repro.stamp.run_stamp` ``instrument`` hook."""
        self.install(simulator.bus)

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    # ------------------------------------------------------------------
    def _on_event(self, event) -> None:
        reg = self.registry
        kind = event.kind
        if kind == "begin":
            self._attempt_start[event.tid] = (
                event.start if event.start is not None else event.time
            )
            self._attempt_index[event.tid] = event.attempt_index
            reg.count("txn.begins")
        elif kind == "commit":
            started = self._attempt_start.pop(event.tid, event.time)
            reg.count("txn.commits")
            reg.observe("txn.commit_latency_ns", event.time - started)
            attempts = self._attempt_index.pop(event.tid, 1)
            reg.observe("txn.attempts", attempts, RETRY_BOUNDS)
            if attempts > 1:
                reg.count("txn.retried_commits")
        elif kind == "abort":
            self._attempt_start.pop(event.tid, None)
            reg.count("txn.aborts")
            reg.count(f"txn.aborts.{event.cause}")
            reg.observe("txn.wasted_ns", event.wasted)
        elif kind == "park":
            self._park_start[event.tid] = event.time
            reg.count("txn.parks")
        elif kind == "wake":
            started = self._park_start.pop(event.tid, None)
            if started is not None:
                reg.observe("txn.parked_ns", event.time - started)
        elif kind == "backoff":
            reg.count("txn.backoffs")
            reg.observe("txn.backoff_ns", event.ns)
        elif kind == "validate":
            data = event.data
            reg.count("hw.validations")
            reg.count(f"hw.mode.{data['mode']}")
            if not data["committed"]:
                reg.count("hw.validation_aborts")
            reg.observe("hw.validation_ns", data["ready_ns"] - data["sent_ns"])
            reg.observe("hw.queue_ns", data["started_ns"] - data["arrived_ns"])
            reg.observe(
                "hw.window_occupancy", data["window_resident"], OCCUPANCY_BOUNDS
            )
            reg.observe(
                "hw.occupancy_cycles", data["occupancy_cycles"], OCCUPANCY_BOUNDS
            )
            reg.gauge("hw.window_resident", data["window_resident"])
        elif kind == "mask_cache":
            # One per backend instance at end of run; counters add
            # across shards, the store-size gauge combines by max.
            data = event.data
            reg.count("hw.mask_cache.hits", data["hits"])
            reg.count("hw.mask_cache.misses", data["misses"])
            reg.gauge("hw.mask_cache.entries", data["entries"])
        elif kind == "route":
            # Emitted only on *successful* cluster commits, keyed by
            # the owning (single-shard) or home (cross-shard) shard.
            data = event.data
            if data["cross"]:
                reg.count("shard.cross_commits")
            else:
                reg.count("shard.single_commits")
            reg.count(f"shard.commits.{data['shard']}")
        elif kind == "xshard":
            data = event.data
            if not data["committed"]:
                reg.count("shard.cross_aborts")
            reg.observe("shard.involved", data["involved"], OCCUPANCY_BOUNDS)
            reg.observe("shard.prepare_ns", data["decided_ns"] - data["sent_ns"])
        elif kind == "shard_open":
            if event.data["shard"] != event.data["home"]:
                reg.count("shard.remote_opens")
        elif kind == "fault":
            reg.count(f"fault.{event.data['kind']}", event.data["count"])
        elif kind == "failover":
            reg.count("ladder.failovers")
        elif kind == "failback":
            reg.count("ladder.failbacks")
        elif kind == "sched":
            data = event.data
            reg.count("sched.picks", data["picks"])
            reg.count("sched.pushes", data["pushes"])
            reg.count("sched.stale_pops", data["stale_pops"])
            reg.count("sched.wakes", data["wakes"])
            reg.count("sched.wakes_coalesced", data["wakes_coalesced"])
            reg.gauge("sched.heap_high_water", data["heap_high_water"])
            reg.gauge(
                "sched.lazy_invalidation_ratio", data["lazy_invalidation_ratio"]
            )
