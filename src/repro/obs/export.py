"""Chrome trace-event / Perfetto JSON export for span traces.

Emits the `Trace Event Format`_ JSON that ``chrome://tracing`` and
``ui.perfetto.dev`` open directly:

* process 1 (``cpu``) has one lane per simulated thread;
* process 2 (``hw``) has one lane per pipeline stage (``link-req``,
  ``queue``, ``detector``, ``manager``, ``link-resp``) plus marker
  lanes for injected faults and ladder transitions;
* spans are ``"X"`` (complete) events with ``ts``/``dur`` in
  microseconds (simulated ns / 1000); markers are ``"i"`` (instant)
  events; lane names are ``"M"`` (metadata) events.

The payload is a pure function of the tracer's spans — no wall-clock
timestamps, hostnames or pids ever enter it, so the exported file is
byte-identical across runs of the same spec (the determinism
contract, DESIGN.md).

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import List

from .spans import HW_MARKER_LANES, HW_STAGES, SpanTracer

#: Chrome trace pids for the two lane groups.
CPU_PID = 1
HW_PID = 2

#: hw lane name -> tid within the hw process, in display order.
HW_LANE_TIDS = {
    name: index for index, name in enumerate(HW_STAGES + HW_MARKER_LANES)
}


def _lane_tid(pid: str, lane) -> int:
    if pid == "hw":
        # Cluster runs add per-shard lane sets named ``s<N>:<stage>``
        # (shard 0 keeps the unprefixed names): block N occupies tids
        # [N*len(base), (N+1)*len(base)) so shards group in order.
        lane = str(lane)
        if lane.startswith("s") and ":" in lane:
            prefix, _, stage = lane.partition(":")
            if stage in HW_LANE_TIDS and prefix[1:].isdigit():
                return int(prefix[1:]) * len(HW_LANE_TIDS) + HW_LANE_TIDS[stage]
        return HW_LANE_TIDS[lane]
    return int(lane)


def _lane_pid(pid: str) -> int:
    return HW_PID if pid == "hw" else CPU_PID


def chrome_trace_payload(tracer: SpanTracer, **meta) -> dict:
    """Build the trace-event payload dict for *tracer*.

    Keyword arguments land in ``otherData`` (workload, backend, seed,
    ...); values must be JSON-serializable and deterministic.
    """
    tracer.finish()
    events: List[dict] = []

    lanes = set()
    for span in tracer.spans:
        lanes.add((span.pid, span.lane))
    for marker in tracer.markers:
        lanes.add((marker.pid, marker.lane))

    # Metadata rows: stable names so lanes line up across exports.
    events.append(_meta(CPU_PID, 0, "process_name", {"name": "cpu (simulated threads)"}))
    events.append(_meta(HW_PID, 0, "process_name", {"name": "hw (validation pipeline)"}))
    for pid, lane in sorted(lanes, key=lambda item: (_lane_pid(item[0]), _lane_tid(*item))):
        name = f"thread {lane}" if pid == "cpu" else str(lane)
        events.append(
            _meta(_lane_pid(pid), _lane_tid(pid, lane), "thread_name", {"name": name})
        )

    rows: List[tuple] = []
    for span in tracer.spans:
        pid = _lane_pid(span.pid)
        tid = _lane_tid(span.pid, span.lane)
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        rows.append(
            (
                pid,
                tid,
                span.start_ns,
                -(span.end_ns - span.start_ns),
                span.span_id,
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": span.start_ns / 1000.0,
                    "dur": (span.end_ns - span.start_ns) / 1000.0,
                    "args": args,
                },
            )
        )
    for index, marker in enumerate(tracer.markers):
        pid = _lane_pid(marker.pid)
        tid = _lane_tid(marker.pid, marker.lane)
        rows.append(
            (
                pid,
                tid,
                marker.ts_ns,
                0.0,
                # Markers sort after any span opening at the same ts.
                tracer._next_id + index,
                {
                    "name": marker.name,
                    "cat": marker.cat,
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": marker.ts_ns / 1000.0,
                    "args": dict(marker.args),
                },
            )
        )
    # Per-lane time order; longer spans first at equal start so
    # children follow their enclosing parents.
    rows.sort(key=lambda row: row[:5])
    events.extend(row[5] for row in rows)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": dict(meta),
    }


def _meta(pid: int, tid: int, name: str, args: dict) -> dict:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid, "args": args}


def write_chrome_trace(path, tracer: SpanTracer, **meta) -> dict:
    """Serialize :func:`chrome_trace_payload` to *path*; returns it."""
    payload = chrome_trace_payload(tracer, **meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return payload
