"""Observability: span tracing, metrics, Perfetto export.

Everything here rides the :class:`repro.runtime.events.EventBus` —
the subsystem is a pure subscriber and adds **zero** work to a run
that does not attach it (the bus's ``wants()`` guard).  All recorded
times are simulated nanoseconds; nothing in this package reads a wall
clock (see docs/OBSERVABILITY.md and the DESIGN.md determinism note).
"""

from .export import chrome_trace_payload, write_chrome_trace
from .metrics import (
    LATENCY_BOUNDS_NS,
    OCCUPANCY_BOUNDS,
    RETRY_BOUNDS,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    merge_metric_snapshots,
)
from .run import observe_stamp
from .spans import HW_STAGES, Marker, Span, SpanTracer

__all__ = [
    "Histogram",
    "HW_STAGES",
    "LATENCY_BOUNDS_NS",
    "Marker",
    "MetricsCollector",
    "MetricsRegistry",
    "OCCUPANCY_BOUNDS",
    "RETRY_BOUNDS",
    "Span",
    "SpanTracer",
    "chrome_trace_payload",
    "merge_metric_snapshots",
    "observe_stamp",
    "write_chrome_trace",
]
