"""Convenience entry point: run one cell with observability attached.

Wraps :func:`repro.stamp.run_stamp` with a :class:`SpanTracer` and/or
:class:`MetricsCollector` installed on the simulator's bus via the
``instrument`` hook, and stashes the metric snapshot on the returned
stats so it rides the exec layer's serialization unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..runtime import CostModel, RunStats, TMBackend
from ..stamp import run_stamp
from .metrics import MetricsCollector, MetricsRegistry
from .spans import SpanTracer


def observe_stamp(
    workload_cls,
    backend: TMBackend,
    n_threads: int,
    scale: float = 1.0,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    verify: bool = True,
    trace: bool = True,
    metrics: bool = True,
    detail: bool = True,
) -> Tuple[RunStats, Optional[SpanTracer], Optional[MetricsRegistry]]:
    """Run one cell with tracing/metrics; returns (stats, tracer, registry).

    ``detail=False`` drops per-operation read/write markers from the
    trace (and keeps those bus kinds unobserved, so the per-operation
    fast path stays emission-free).
    """
    tracer = SpanTracer(detail=detail) if trace else None
    collector = MetricsCollector() if metrics else None

    def instrument(simulator) -> None:
        if tracer is not None:
            tracer.install(simulator.bus)
        if collector is not None:
            collector.install(simulator.bus)

    stats = run_stamp(
        workload_cls,
        backend,
        n_threads,
        scale=scale,
        seed=seed,
        cost_model=cost_model,
        verify=verify,
        instrument=instrument,
    )
    if tracer is not None:
        tracer.finish()
    registry = None
    if collector is not None:
        registry = collector.registry
        stats.metrics = registry.snapshot()
    return stats, tracer, registry
