"""The span tracer: per-transaction lifecycle spans over the bus.

:class:`SpanTracer` subscribes to the :class:`~repro.runtime.events.
EventBus` and assembles the flat event stream into nested spans:

* **CPU lanes** (one per simulated thread): a ``txn:<label>`` span per
  transaction *attempt*, opened at the attempt's true start (the
  ``begin`` event's ``start`` field, before the backend's begin cost)
  and closed by the matching ``commit``/``abort``.  Inside it nest a
  ``begin`` child (the backend's begin cost), ``parked:<cause>``
  children (park→wake), and — for the hybrid backend — a
  ``validate:<label>`` child covering the CPU-visible round trip.
  ``backoff`` spans sit between attempts at top level.
* **HW lanes** (one per pipeline stage): each ``validate`` event's
  timing breakdown is exploded into ``link-req`` (sent→arrived),
  ``queue`` (arrived→started), ``detector`` (started→detect_done),
  ``manager`` (detect_done→finished) and ``link-resp``
  (finished→ready) spans, so Perfetto shows the Detector/Manager
  pipeline exactly as Fig. 5 draws it.  ``fault``/``failover``/
  ``failback`` become instant markers on dedicated hw lanes.

Span ids are sequential integers minted in event-delivery order —
the stream is totally ordered (single-threaded discrete-event core),
so ids are deterministic across runs and processes.  All timestamps
are simulated nanoseconds; the tracer never reads a wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: hw pseudo-thread lanes, in display order.
HW_STAGES = ("link-req", "queue", "detector", "manager", "link-resp")
HW_MARKER_LANES = ("faults", "ladder")


@dataclass
class Span:
    """One closed (or force-closed) span; times in simulated ns."""

    span_id: int
    name: str
    cat: str
    pid: str  # "cpu" or "hw"
    lane: object  # thread id (cpu) or stage name (hw)
    start_ns: float
    end_ns: float
    parent_id: Optional[int] = None
    args: dict = field(default_factory=dict)

    @property
    def dur_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class Marker:
    """An instant event on a lane."""

    name: str
    cat: str
    pid: str
    lane: object
    ts_ns: float
    args: dict = field(default_factory=dict)


@dataclass
class _OpenSpan:
    span_id: int
    name: str
    cat: str
    pid: str
    lane: object
    start_ns: float
    parent_id: Optional[int]
    args: dict


class SpanTracer:
    """Assembles bus events into :class:`Span`/:class:`Marker` lists.

    ``detail=False`` skips the per-operation ``read``/``write``
    markers — and, crucially, does not *subscribe* to those kinds, so
    the simulator's ``wants()`` guard keeps the per-operation fast
    path emission-free.
    """

    BASE_KINDS = (
        "begin",
        "commit",
        "abort",
        "park",
        "wake",
        "backoff",
        "validate",
        "xshard",
        "fault",
        "failover",
        "failback",
    )
    DETAIL_KINDS = ("read", "write")

    def __init__(self, detail: bool = True) -> None:
        self.detail = detail
        self.spans: List[Span] = []
        self.markers: List[Marker] = []
        self._next_id = 1
        #: open txn span per thread: (span_id, start_ns, label).
        self._open_txn: Dict[int, Tuple[int, float, Optional[str]]] = {}
        #: open parked child per thread: (span_id, start_ns, cause, parent).
        self._open_park: Dict[int, Tuple[int, float, str, Optional[int]]] = {}
        #: cpu-lane validate children awaiting their txn's close (the
        #: child is clamped to its parent: a failed validation's
        #: round trip outlives the abort, because the model does not
        #: charge the thread for a verdict it acts on immediately).
        self._pending_validate: Dict[int, List[_OpenSpan]] = {}
        self._max_ns = 0.0
        self._bus = None

    # ------------------------------------------------------------------
    def install(self, bus) -> None:
        kinds = self.BASE_KINDS + (self.DETAIL_KINDS if self.detail else ())
        bus.subscribe(self._on_event, kinds=kinds)
        self._bus = bus

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def instrument(self, simulator) -> None:
        """The :func:`repro.stamp.run_stamp` ``instrument`` hook."""
        self.install(simulator.bus)

    def finish(self) -> None:
        """Force-close dangling spans (run ended mid-transaction)."""
        for tid, (span_id, start, cause, parent) in sorted(self._open_park.items()):
            self._close(
                span_id, f"parked:{cause}", "sched", "cpu", tid, start,
                self._max_ns, parent, {"truncated": True},
            )
        self._open_park.clear()
        for tid, (span_id, start, label) in sorted(self._open_txn.items()):
            self._flush_validates(tid, self._max_ns)
            self._close(
                span_id, _txn_name(label), "txn", "cpu", tid, start,
                self._max_ns, None, {"outcome": "truncated"},
            )
        self._open_txn.clear()

    # ------------------------------------------------------------------
    def _mint(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _close(self, span_id, name, cat, pid, lane, start, end, parent, args):
        self.spans.append(
            Span(span_id, name, cat, pid, lane, start, end, parent, args)
        )

    def _span(self, name, cat, pid, lane, start, end, parent=None, args=None) -> int:
        span_id = self._mint()
        self._close(span_id, name, cat, pid, lane, start, end, parent, args or {})
        return span_id

    # ------------------------------------------------------------------
    def _on_event(self, event) -> None:
        self._max_ns = max(self._max_ns, event.time)
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event)

    def _on_begin(self, event) -> None:
        tid = event.tid
        start = event.start if event.start is not None else event.time
        span_id = self._mint()
        self._open_txn[tid] = (span_id, start, event.label)
        self._span(
            "begin", "txn", "cpu", tid, start, event.time,
            parent=span_id, args={"attempt": event.attempt_index},
        )

    def _on_commit(self, event) -> None:
        self._close_txn(event.tid, event.time, {"outcome": "commit"})

    def _on_abort(self, event) -> None:
        args = {"outcome": "abort", "cause": event.cause}
        if event.wasted:
            args["wasted_ns"] = event.wasted
        if not event.began:
            # A begin-time abort never opened an attempt; mark the
            # instant instead of closing a span that does not exist.
            self.markers.append(
                Marker("abort:begin", "txn", "cpu", event.tid, event.time, args)
            )
            return
        self._close_txn(event.tid, event.time, args)

    def _close_txn(self, tid: int, end_ns: float, args: dict) -> None:
        open_txn = self._open_txn.pop(tid, None)
        if open_txn is None:
            return
        span_id, start, label = open_txn
        # A transaction cannot end while parked; close any leak first.
        park = self._open_park.pop(tid, None)
        if park is not None:
            park_id, park_start, cause, parent = park
            self._close(
                park_id, f"parked:{cause}", "sched", "cpu", tid, park_start,
                end_ns, parent, {},
            )
        self._flush_validates(tid, end_ns)
        self._close(span_id, _txn_name(label), "txn", "cpu", tid, start, end_ns, None, args)

    def _flush_validates(self, tid: int, end_ns: float) -> None:
        for pending in self._pending_validate.pop(tid, ()):
            self._close(
                pending.span_id, pending.name, pending.cat, pending.pid,
                pending.lane, pending.start_ns,
                max(pending.start_ns, min(pending.args["ready_ns"], end_ns)),
                pending.parent_id, pending.args,
            )

    def _on_park(self, event) -> None:
        tid = event.tid
        parent = self._open_txn.get(tid)
        span_id = self._mint()
        self._open_park[tid] = (
            span_id, event.time, event.cause or "parked",
            parent[0] if parent else None,
        )

    def _on_wake(self, event) -> None:
        park = self._open_park.pop(event.tid, None)
        if park is None:
            return
        span_id, start, cause, parent = park
        self._close(
            span_id, f"parked:{cause}", "sched", "cpu", event.tid, start,
            event.time, parent, {},
        )

    def _on_backoff(self, event) -> None:
        self._span(
            "backoff", "sched", "cpu", event.tid,
            event.time - event.ns, event.time, args={"ns": event.ns},
        )

    def _on_read(self, event) -> None:
        self.markers.append(
            Marker("read", "mem", "cpu", event.tid, event.time,
                   {"addr": event.addr}),
        )

    def _on_write(self, event) -> None:
        self.markers.append(
            Marker("write", "mem", "cpu", event.tid, event.time,
                   {"addr": event.addr}),
        )

    def _on_validate(self, event) -> None:
        data = event.data
        tid = event.tid
        parent = self._open_txn.get(tid)
        label = data.get("label")
        shard = data.get("shard", 0)
        args = {
            "n_read": data["n_read"],
            "n_write": data["n_write"],
            "committed": data["committed"],
            "reason": data["reason"],
            "mode": data["mode"],
            "shard": shard,
            "window_resident": data["window_resident"],
            # The unclamped round trip (the hw lanes show it in full).
            "sent_ns": data["sent_ns"],
            "ready_ns": data["ready_ns"],
        }
        if parent is not None:
            self._pending_validate.setdefault(tid, []).append(
                _OpenSpan(
                    self._mint(), _name("validate", label), "validate",
                    "cpu", tid, data["sent_ns"], parent[0], args,
                )
            )
        else:
            self._span(
                _name("validate", label), "validate", "cpu", tid,
                data["sent_ns"], data["ready_ns"], args=args,
            )
        # The hw pipeline lanes: consecutive stage spans per request.
        # At shard > 0 (cluster runs) each shard's engine gets its own
        # lane set, prefixed ``s<N>:``; shard 0 keeps the unprefixed
        # names so single-node traces are unchanged.
        stage_args = {"tid": tid, "label": label}
        edges = (
            ("link-req", data["sent_ns"], data["arrived_ns"]),
            ("queue", data["arrived_ns"], data["started_ns"]),
            ("detector", data["started_ns"], data["detect_done_ns"]),
            ("manager", data["detect_done_ns"], data["finished_ns"]),
            ("link-resp", data["finished_ns"], data["ready_ns"]),
        )
        for stage, start, end in edges:
            lane = stage if not shard else f"s{shard}:{stage}"
            self._span(
                _name(stage, label), "hw", "hw", lane, start, end,
                args=stage_args,
            )
        self._max_ns = max(self._max_ns, data["ready_ns"])

    def _on_xshard(self, event) -> None:
        """One ``2pc`` child span on the coordinator thread's cpu lane,
        covering prepare-sent to decided (the per-shard prepares tile
        the hw lanes via their own ``validate`` events)."""
        data = event.data
        parent = self._open_txn.get(event.tid)
        self._span(
            "2pc", "validate", "cpu", event.tid,
            data["sent_ns"], data["decided_ns"],
            parent=parent[0] if parent else None,
            args={
                "involved": data["involved"],
                "remote": data["remote"],
                "committed": data["committed"],
                "reason": data["reason"],
                "n_read": data["n_read"],
                "n_write": data["n_write"],
            },
        )

    def _on_fault(self, event) -> None:
        self.markers.append(
            Marker(
                f"fault:{event.data['kind']}", "fault", "hw", "faults",
                event.time, {"count": event.data["count"]},
            )
        )

    def _on_failover(self, event) -> None:
        self._ladder_marker("failover", event)

    def _on_failback(self, event) -> None:
        self._ladder_marker("failback", event)

    def _ladder_marker(self, name: str, event) -> None:
        self.markers.append(
            Marker(name, "ladder", "hw", "ladder", event.time, dict(event.data or {}))
        )


def _txn_name(label: Optional[str]) -> str:
    return _name("txn", label)


def _name(prefix: str, label: Optional[str]) -> str:
    return f"{prefix}:{label}" if label else prefix
