"""Transactional FIFO queue (linked, head/tail pointers).

The contended front-end of intruder: producers append at the tail,
workers pop at the head; both touch one pointer cell, so every
pop/push pair of concurrent transactions conflicts — by design, as in
STAMP's queue.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..runtime.api import Alloc, Read, Write
from ..runtime.memory import Memory
from .base import NULL, Structure

_VALUE, _NEXT = 0, 1
_NODE_CELLS = 2


class TQueue(Structure):
    def __init__(self, memory: Memory):
        super().__init__(memory)
        self.head = memory.alloc(2, align_line=True)
        self.tail = self.head + 1
        memory.store(self.head, NULL)
        memory.store(self.tail, NULL)

    # ------------------------------------------------------------------
    def push(self, value: Any):
        node = yield Alloc(_NODE_CELLS)
        yield Write(node + _VALUE, value)
        yield Write(node + _NEXT, NULL)
        tail = yield Read(self.tail)
        if tail == NULL:
            yield Write(self.head, node)
        else:
            yield Write(tail + _NEXT, node)
        yield Write(self.tail, node)

    def pop(self):
        """The oldest value, or None when empty."""
        node = yield Read(self.head)
        if node == NULL:
            return None
        value = yield Read(node + _VALUE)
        successor = yield Read(node + _NEXT)
        yield Write(self.head, successor)
        if successor == NULL:
            yield Write(self.tail, NULL)
        return value

    def is_empty(self):
        return (yield Read(self.head)) == NULL

    # ------------------------------------------------------------------
    def seed_direct(self, values: Iterable[Any]) -> None:
        """Non-transactional bulk fill during setup."""
        for value in values:
            node = self.memory.alloc(_NODE_CELLS)
            self.memory.store(node + _VALUE, value)
            self.memory.store(node + _NEXT, NULL)
            tail = self.memory.load(self.tail)
            if tail == NULL:
                self.memory.store(self.head, node)
            else:
                self.memory.store(tail + _NEXT, node)
            self.memory.store(self.tail, node)

    def drain_direct(self) -> list:
        """Non-transactional drain for verification."""
        out = []
        node = self.memory.load(self.head)
        while node != NULL:
            out.append(self.memory.load(node + _VALUE))
            node = self.memory.load(node + _NEXT)
        return out
