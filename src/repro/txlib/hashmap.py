"""Chained transactional hash map (and a set on top).

Layout: a bucket array of head pointers plus [key, value, next]
nodes.  Buckets are cacheline-aligned; nodes are allocated inside
transactions (leaked on abort, like malloc in STAMP).  Keys are ints
or int tuples hashed with the deterministic mixer.

An optional size counter is off by default: a shared counter turns
every insert into a conflict on one cell, which is exactly the
"conflicts resolvable by other programming constructs" pathology the
paper cites for kmeans/intruder — workloads opt in where STAMP does.
"""

from __future__ import annotations

from typing import Any, Optional

from ..runtime.api import Alloc, Read, Write
from ..runtime.memory import Memory
from .base import NULL, IntKey, Structure, mix

_KEY, _VALUE, _NEXT = 0, 1, 2
_NODE_CELLS = 3


class THashMap(Structure):
    def __init__(self, memory: Memory, n_buckets: int = 256, track_size: bool = False):
        super().__init__(memory)
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        self.n_buckets = n_buckets
        self.buckets = memory.alloc(n_buckets, align_line=True)
        for i in range(n_buckets):
            memory.store(self.buckets + i, NULL)
        self._size_addr: Optional[int] = None
        if track_size:
            self._size_addr = memory.alloc(1)
            memory.store(self._size_addr, 0)

    def _bucket(self, key: IntKey) -> int:
        return self.buckets + mix(key) % self.n_buckets

    # ------------------------------------------------------------------
    def get(self, key: IntKey):
        """Value for *key*, or None."""
        ptr = yield Read(self._bucket(key))
        while ptr != NULL:
            if (yield Read(ptr + _KEY)) == key:
                return (yield Read(ptr + _VALUE))
            ptr = yield Read(ptr + _NEXT)
        return None

    def contains(self, key: IntKey):
        return (yield from self.get(key)) is not None

    def put(self, key: IntKey, value: Any):
        """Insert or update; returns the previous value or None."""
        bucket = self._bucket(key)
        head = yield Read(bucket)
        ptr = head
        while ptr != NULL:
            if (yield Read(ptr + _KEY)) == key:
                old = yield Read(ptr + _VALUE)
                yield Write(ptr + _VALUE, value)
                return old
            ptr = yield Read(ptr + _NEXT)
        node = yield Alloc(_NODE_CELLS)
        yield Write(node + _KEY, key)
        yield Write(node + _VALUE, value)
        yield Write(node + _NEXT, head)
        yield Write(bucket, node)
        if self._size_addr is not None:
            count = yield Read(self._size_addr)
            yield Write(self._size_addr, count + 1)
        return None

    def put_if_absent(self, key: IntKey, value: Any):
        """Insert only if missing; returns True when inserted."""
        existing = yield from self.get(key)
        if existing is not None:
            return False
        yield from self.put(key, value)
        return True

    def remove(self, key: IntKey):
        """Unlink *key*; returns the removed value or None."""
        bucket = self._bucket(key)
        prev = NULL
        ptr = yield Read(bucket)
        while ptr != NULL:
            if (yield Read(ptr + _KEY)) == key:
                old = yield Read(ptr + _VALUE)
                successor = yield Read(ptr + _NEXT)
                if prev == NULL:
                    yield Write(bucket, successor)
                else:
                    yield Write(prev + _NEXT, successor)
                if self._size_addr is not None:
                    count = yield Read(self._size_addr)
                    yield Write(self._size_addr, count - 1)
                return old
            prev, ptr = ptr, (yield Read(ptr + _NEXT))
        return None

    def size(self):
        if self._size_addr is None:
            raise RuntimeError("size tracking disabled for this map")
        return (yield Read(self._size_addr))

    # ------------------------------------------------------------------
    def items_direct(self) -> list:
        """Non-transactional scan for verification after a run."""
        out = []
        for i in range(self.n_buckets):
            ptr = self.memory.load(self.buckets + i)
            while ptr != NULL:
                out.append(
                    (self.memory.load(ptr + _KEY), self.memory.load(ptr + _VALUE))
                )
                ptr = self.memory.load(ptr + _NEXT)
        return out


class THashSet(Structure):
    """A set of int(-tuple) elements over THashMap."""

    def __init__(self, memory: Memory, n_buckets: int = 256, track_size: bool = False):
        super().__init__(memory)
        self._map = THashMap(memory, n_buckets, track_size)

    def add(self, element: IntKey):
        """Returns True if newly added."""
        return (yield from self._map.put_if_absent(element, 1))

    def contains(self, element: IntKey):
        return (yield from self._map.contains(element))

    def remove(self, element: IntKey):
        return (yield from self._map.remove(element)) is not None

    def size(self):
        return (yield from self._map.size())

    def elements_direct(self) -> list:
        return [key for key, _ in self._map.items_direct()]
