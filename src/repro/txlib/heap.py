"""Transactional binary min-heap (array-backed, bounded capacity).

Yada's work queue of bad triangles and intruder's fragment ordering
use priority queues; a heap's root cell is a global hot spot, which is
part of what makes those workloads contended.
Elements are ints or int tuples compared lexicographically.
"""

from __future__ import annotations

from typing import Any

from ..runtime.api import Read, Write
from ..runtime.memory import Memory
from .base import Structure


class THeap(Structure):
    def __init__(self, memory: Memory, capacity: int):
        super().__init__(memory)
        if capacity < 1:
            raise ValueError("heap capacity must be positive")
        self.capacity = capacity
        self.size_addr = memory.alloc(1)
        memory.store(self.size_addr, 0)
        self.base = memory.alloc(capacity, align_line=True)

    # ------------------------------------------------------------------
    def push(self, element: Any):
        size = yield Read(self.size_addr)
        if size >= self.capacity:
            raise OverflowError("heap full")
        index = size
        yield Write(self.size_addr, size + 1)
        # Sift up.
        while index > 0:
            parent = (index - 1) // 2
            parent_value = yield Read(self.base + parent)
            if parent_value <= element:
                break
            yield Write(self.base + index, parent_value)
            index = parent
        yield Write(self.base + index, element)

    def pop_min(self):
        """Smallest element, or None when empty."""
        size = yield Read(self.size_addr)
        if size == 0:
            return None
        top = yield Read(self.base)
        size -= 1
        yield Write(self.size_addr, size)
        if size == 0:
            return top
        mover = yield Read(self.base + size)
        # Sift down.
        index = 0
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            child_value = yield Read(self.base + child)
            if child + 1 < size:
                right = yield Read(self.base + child + 1)
                if right < child_value:
                    child += 1
                    child_value = right
            if mover <= child_value:
                break
            yield Write(self.base + index, child_value)
            index = child
        yield Write(self.base + index, mover)
        return top

    def size(self):
        return (yield Read(self.size_addr))

    # ------------------------------------------------------------------
    def seed_direct(self, elements) -> None:
        """Non-transactional heapify during setup."""
        import heapq

        items = list(elements)
        if len(items) > self.capacity:
            raise OverflowError("heap full")
        heapq.heapify(items)
        self.memory.store(self.size_addr, len(items))
        self.memory.store_many(self.base, items)

    def snapshot_direct(self) -> list:
        size = self.memory.load(self.size_addr)
        return self.memory.load_many(self.base, size)
