"""Transactional data structures over the simulated flat heap.

Every method that touches shared state is a generator used with
``yield from`` inside transaction bodies; construction and the
``*_direct`` methods are non-transactional (setup / verification).

* :class:`TVar`, :class:`TArray` — cells and arrays.
* :class:`THashMap`, :class:`THashSet` — chained hash tables.
* :class:`TQueue` — linked FIFO.
* :class:`TSortedList` — sorted linked list.
* :class:`THeap` — bounded binary min-heap.
"""

from .array import TArray, TVar
from .base import NULL, mix
from .hashmap import THashMap, THashSet
from .heap import THeap
from .list import TSortedList
from .queue import TQueue

__all__ = [
    "NULL",
    "TArray",
    "THashMap",
    "THashSet",
    "THeap",
    "TQueue",
    "TSortedList",
    "TVar",
    "mix",
]
