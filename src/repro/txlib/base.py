"""Conventions shared by the transactional data structures.

Structures are laid out in simulated memory at construction time
(direct stores — the single-threaded setup phase of a STAMP program)
and accessed transactionally afterwards through generator methods that
bodies compose with ``yield from``::

    def body():
        old = yield from table.put(key, value)
        ...

``NULL`` is the null pointer; unlinked pointer cells must be
explicitly initialized to it because unwritten cells read 0, which is
a valid address.

Hashing is deliberately *not* Python's ``hash`` (randomized for some
types): :func:`mix` is a deterministic 64-bit mixer so simulated runs
are reproducible.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..runtime.memory import Memory

NULL = -1

_MASK = (1 << 64) - 1

IntKey = Union[int, Tuple[int, ...]]


def mix(key: IntKey) -> int:
    """Deterministic 64-bit hash for ints and int tuples."""
    if isinstance(key, tuple):
        acc = 0x9E3779B97F4A7C15
        for part in key:
            acc = (acc ^ mix(part)) * 0xBF58476D1CE4E5B9 & _MASK
        return acc
    x = key & _MASK
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK
    return x ^ (x >> 31)


class Structure:
    """Base: remembers the memory used for direct setup access."""

    def __init__(self, memory: Memory):
        self.memory = memory
