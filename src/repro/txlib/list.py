"""Sorted transactional linked list (int keys).

The pointer-chasing structure behind genome's segment chains and
vacation's per-customer reservation lists: long read paths with a
small write at the insertion point — the transaction shape the paper
calls "transaction-friendly".
"""

from __future__ import annotations

from typing import Any

from ..runtime.api import Alloc, Read, Write
from ..runtime.memory import Memory
from .base import NULL, Structure

_KEY, _VALUE, _NEXT = 0, 1, 2
_NODE_CELLS = 3


class TSortedList(Structure):
    def __init__(self, memory: Memory):
        super().__init__(memory)
        self.head = memory.alloc(1)
        memory.store(self.head, NULL)

    # ------------------------------------------------------------------
    def insert(self, key: int, value: Any = 1):
        """Insert keeping ascending key order; duplicates rejected.

        Returns True when inserted, False when the key existed.
        """
        prev = NULL
        ptr = yield Read(self.head)
        while ptr != NULL:
            current = yield Read(ptr + _KEY)
            if current == key:
                return False
            if current > key:
                break
            prev, ptr = ptr, (yield Read(ptr + _NEXT))
        node = yield Alloc(_NODE_CELLS)
        yield Write(node + _KEY, key)
        yield Write(node + _VALUE, value)
        yield Write(node + _NEXT, ptr)
        if prev == NULL:
            yield Write(self.head, node)
        else:
            yield Write(prev + _NEXT, node)
        return True

    def find(self, key: int):
        """Value stored at *key*, or None."""
        ptr = yield Read(self.head)
        while ptr != NULL:
            current = yield Read(ptr + _KEY)
            if current == key:
                return (yield Read(ptr + _VALUE))
            if current > key:
                return None
            ptr = yield Read(ptr + _NEXT)
        return None

    def remove(self, key: int):
        """Returns True when a node was unlinked."""
        prev = NULL
        ptr = yield Read(self.head)
        while ptr != NULL:
            current = yield Read(ptr + _KEY)
            if current == key:
                successor = yield Read(ptr + _NEXT)
                if prev == NULL:
                    yield Write(self.head, successor)
                else:
                    yield Write(prev + _NEXT, successor)
                return True
            if current > key:
                return False
            prev, ptr = ptr, (yield Read(ptr + _NEXT))
        return False

    def minimum(self):
        """Smallest (key, value), or None when empty."""
        ptr = yield Read(self.head)
        if ptr == NULL:
            return None
        return ((yield Read(ptr + _KEY)), (yield Read(ptr + _VALUE)))

    # ------------------------------------------------------------------
    def keys_direct(self) -> list:
        out = []
        ptr = self.memory.load(self.head)
        while ptr != NULL:
            out.append(self.memory.load(ptr + _KEY))
            ptr = self.memory.load(ptr + _NEXT)
        return out
