"""Flat transactional cells and arrays."""

from __future__ import annotations

from typing import Any, Iterable

from ..runtime.api import Read, Write
from ..runtime.memory import Memory
from .base import Structure


class TVar(Structure):
    """A single shared cell."""

    def __init__(self, memory: Memory, initial: Any = 0):
        super().__init__(memory)
        self.addr = memory.alloc(1)
        memory.store(self.addr, initial)

    def get(self):
        return (yield Read(self.addr))

    def set(self, value):
        yield Write(self.addr, value)

    def add(self, delta):
        """Read-modify-write; returns the new value."""
        value = (yield Read(self.addr)) + delta
        yield Write(self.addr, value)
        return value

    def peek(self) -> Any:
        """Direct (non-transactional) load for setup/verification."""
        return self.memory.load(self.addr)


class TArray(Structure):
    """A fixed-length array of cells."""

    def __init__(self, memory: Memory, length: int, initial: Any = 0):
        super().__init__(memory)
        if length < 1:
            raise ValueError("array length must be positive")
        self.length = length
        self.base = memory.alloc(length, align_line=True)
        if initial != 0:
            for i in range(length):
                memory.store(self.base + i, initial)

    def _addr(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range [0, {self.length})")
        return self.base + index

    def get(self, index: int):
        return (yield Read(self._addr(index)))

    def set(self, index: int, value):
        yield Write(self._addr(index), value)

    def add(self, index: int, delta):
        addr = self._addr(index)
        value = (yield Read(addr)) + delta
        yield Write(addr, value)
        return value

    # Direct access for setup and post-run verification.
    def fill_at(self, index: int, value: Any) -> None:
        self.memory.store(self._addr(index), value)

    def fill(self, values: Iterable[Any]) -> None:
        for i, value in enumerate(values):
            self.memory.store(self._addr(i), value)

    def snapshot(self) -> list:
        return self.memory.load_many(self.base, self.length)
