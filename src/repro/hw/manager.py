"""The validation Manager (right half of Fig. 5).

The manager owns the W x W reachability matrix (2D registers) and the
decision logic: window-overflow check, the O(1) cycle test over the
detector's forward/backward vectors, and the single-cycle matrix
update + bookkeeping shift on commit.  It composes
:class:`ConflictDetector` (signatures) with
:class:`repro.core.window.WindowMatrix` (reachability), keeping the
two shift registers in lock-step exactly as the commit broadcast in
Fig. 5 does.

The manager sits *below* the Driver boundary (see
:mod:`repro.runtime.driver`): it is purely functional over its own
state and never touches the simulator, the event bus, or simulated
time — timing and emission live in the engine above it
(:mod:`repro.hw.engine`), which holds the Emitter surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..core.window import WindowMatrix
from ..signatures import SignatureConfig
from .detector import ConflictDetector


@dataclass(frozen=True)
class ValidationRequest:
    """What the CPU ships for one transaction (§5.3): the read and
    write sets *as addresses*, plus the snapshot (ValidTS).

    ``read_raw``/``write_raw`` are the transaction's *incremental*
    bloom signatures — ROCoCoTM accumulates both while the transaction
    executes (Algorithm 1), so shipping them costs nothing and lets
    the detector's commit bookkeeping union two ints instead of
    re-hashing every address.  They are strictly an optimization: a
    request without them produces bit-identical verdicts (the detector
    re-derives the same raws through the mask cache)."""

    label: Hashable
    read_addrs: Tuple[int, ...]
    write_addrs: Tuple[int, ...]
    snapshot: int
    read_raw: Optional[int] = None
    write_raw: Optional[int] = None

    @property
    def n_addresses(self) -> int:
        return len(self.read_addrs) + len(self.write_addrs)


@dataclass(frozen=True)
class Verdict:
    committed: bool
    reason: Optional[str] = None
    commit_index: int = -1
    forward: int = 0
    backward: int = 0


class ValidationManager:
    """Decision logic over detector + matrix (order = arrival order)."""

    def __init__(self, config: Optional[SignatureConfig] = None, window: int = 64):
        self.config = config or SignatureConfig()
        self.window = window
        self.detector = ConflictDetector(self.config, window)
        self.matrix = WindowMatrix(window)
        self.total_commits = 0
        #: commit index below which history has been *wiped* (engine
        #: reset): snapshots older than this must abort like any other
        #: window overflow, because their forward edges are gone.
        self.reset_floor = 0
        self.stats_commits = 0
        self.stats_cycle_aborts = 0
        self.stats_overflow_aborts = 0
        self.stats_taint_aborts = 0
        self.stats_resets = 0
        self.stats_external_commits = 0
        self.stats_certifies = 0
        self.stats_certify_refusals = 0

    @property
    def stats_aborts(self) -> int:
        return (
            self.stats_cycle_aborts
            + self.stats_overflow_aborts
            + self.stats_taint_aborts
        )

    def validate(self, request: ValidationRequest) -> Verdict:
        """Decide one transaction; commits update matrix + bookkeeping."""
        if not request.write_addrs:
            # Read-only transactions never reach the FPGA in ROCoCoTM
            # (§5.3), but accept them gracefully if they do.
            return Verdict(committed=True)

        horizon = max(self.reset_floor, self.detector.oldest_commit_index)
        if request.snapshot < horizon:
            self.stats_overflow_aborts += 1
            return Verdict(False, "window-overflow")

        forward, backward = self.detector.edges(
            request.read_addrs, request.write_addrs, request.snapshot
        )
        ok, proceeding, succeeding = self.matrix.probe(forward, backward)
        if not ok:
            if proceeding & succeeding:
                self.stats_cycle_aborts += 1
            else:
                self.stats_taint_aborts += 1
            return Verdict(False, "cycle", forward=forward, backward=backward)

        self.matrix.commit(proceeding, succeeding)
        self.detector.record_commit(
            request.label,
            self.total_commits,
            request.read_addrs,
            request.write_addrs,
            read_raw=request.read_raw,
            write_raw=request.write_raw,
        )
        self.total_commits += 1
        self.stats_commits += 1
        return Verdict(
            True,
            commit_index=self.total_commits - 1,
            forward=forward,
            backward=backward,
        )

    # ------------------------------------------------------------------
    def certify(self, request: ValidationRequest) -> Verdict:
        """Freshness check for cross-shard two-phase validation.

        Unlike :meth:`validate`, this *never mutates* the window: no
        matrix update, no signature recording, no commit-index bump.
        A certified transaction will be serialized at its coordinator's
        decide instant — after every transaction resident in this
        window — so the only local hazard is a stale read: a forward
        edge (a read overlapping a commit the snapshot missed).  With
        zero forward edges the transaction orders after the entire
        resident history and the probe cannot fail; the decide step
        enters it via :meth:`record_external_commit`.  Because nothing
        is recorded here, a coordinator holding one committed vote
        needs no undo when a later shard refuses.
        """
        self.stats_certifies += 1
        horizon = max(self.reset_floor, self.detector.oldest_commit_index)
        if request.snapshot < horizon:
            self.stats_certify_refusals += 1
            return Verdict(False, "window-overflow")
        forward, backward = self.detector.edges(
            request.read_addrs, request.write_addrs, request.snapshot
        )
        if forward:
            self.stats_certify_refusals += 1
            return Verdict(False, "stale", forward=forward, backward=backward)
        return Verdict(True, forward=forward, backward=backward)

    # ------------------------------------------------------------------
    def record_external_commit(
        self,
        label: Hashable,
        read_addrs: Tuple[int, ...],
        write_addrs: Tuple[int, ...],
        read_raw: Optional[int] = None,
        write_raw: Optional[int] = None,
    ) -> None:
        """Enter a commit decided *off-engine* into the bookkeeping.

        The irrevocable global-lock path commits without validation,
        but its commit still bumps the runtime's GlobalTS; recording it
        here keeps the manager's commit indices aligned with snapshot
        numbering and makes later conflicts against it visible.  An
        irrevocable transaction runs under a global fence, so it
        serializes after every resident transaction: all its edges are
        backward, the probe cannot fail, and the entry slots in like
        any other commit.
        """
        forward, backward = self.detector.edges(
            read_addrs, write_addrs, self.total_commits
        )
        _, proceeding, succeeding = self.matrix.probe(forward, backward)
        self.matrix.commit(proceeding, succeeding)
        self.detector.record_commit(
            label,
            self.total_commits,
            read_addrs,
            write_addrs,
            read_raw=read_raw,
            write_raw=write_raw,
        )
        self.total_commits += 1
        self.stats_external_commits += 1

    def reset(self) -> None:
        """Model an engine reset: signature history + matrix wiped.

        Correctness is preserved conservatively: ``reset_floor`` pins
        the overflow horizon at the wipe point, so any transaction
        whose snapshot predates the reset aborts (its forward edges
        can no longer be tracked), while transactions that observed
        everything up to the reset validate soundly against the
        post-reset window alone — exactly the window-overflow argument
        of §4.2, applied to the whole history at once.
        """
        self.reset_floor = self.total_commits
        self.detector = ConflictDetector(self.config, self.window)
        self.matrix = WindowMatrix(self.window)
        self.stats_resets += 1
