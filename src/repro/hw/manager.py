"""The validation Manager (right half of Fig. 5).

The manager owns the W x W reachability matrix (2D registers) and the
decision logic: window-overflow check, the O(1) cycle test over the
detector's forward/backward vectors, and the single-cycle matrix
update + bookkeeping shift on commit.  It composes
:class:`ConflictDetector` (signatures) with
:class:`repro.core.window.WindowMatrix` (reachability), keeping the
two shift registers in lock-step exactly as the commit broadcast in
Fig. 5 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..core.window import WindowMatrix
from ..signatures import SignatureConfig
from .detector import ConflictDetector


@dataclass(frozen=True)
class ValidationRequest:
    """What the CPU ships for one transaction (§5.3): the read and
    write sets *as addresses*, plus the snapshot (ValidTS)."""

    label: Hashable
    read_addrs: Tuple[int, ...]
    write_addrs: Tuple[int, ...]
    snapshot: int

    @property
    def n_addresses(self) -> int:
        return len(self.read_addrs) + len(self.write_addrs)


@dataclass(frozen=True)
class Verdict:
    committed: bool
    reason: Optional[str] = None
    commit_index: int = -1
    forward: int = 0
    backward: int = 0


class ValidationManager:
    """Decision logic over detector + matrix (order = arrival order)."""

    def __init__(self, config: Optional[SignatureConfig] = None, window: int = 64):
        self.config = config or SignatureConfig()
        self.window = window
        self.detector = ConflictDetector(self.config, window)
        self.matrix = WindowMatrix(window)
        self.total_commits = 0
        self.stats_commits = 0
        self.stats_cycle_aborts = 0
        self.stats_overflow_aborts = 0
        self.stats_taint_aborts = 0

    @property
    def stats_aborts(self) -> int:
        return (
            self.stats_cycle_aborts
            + self.stats_overflow_aborts
            + self.stats_taint_aborts
        )

    def validate(self, request: ValidationRequest) -> Verdict:
        """Decide one transaction; commits update matrix + bookkeeping."""
        if not request.write_addrs:
            # Read-only transactions never reach the FPGA in ROCoCoTM
            # (§5.3), but accept them gracefully if they do.
            return Verdict(committed=True)

        if request.snapshot < self.detector.oldest_commit_index:
            self.stats_overflow_aborts += 1
            return Verdict(False, "window-overflow")

        forward, backward = self.detector.edges(
            request.read_addrs, request.write_addrs, request.snapshot
        )
        ok, proceeding, succeeding = self.matrix.probe(forward, backward)
        if not ok:
            if proceeding & succeeding:
                self.stats_cycle_aborts += 1
            else:
                self.stats_taint_aborts += 1
            return Verdict(False, "cycle", forward=forward, backward=backward)

        self.matrix.commit(proceeding, succeeding)
        self.detector.record_commit(
            request.label, self.total_commits, request.read_addrs, request.write_addrs
        )
        self.total_commits += 1
        self.stats_commits += 1
        return Verdict(
            True,
            commit_index=self.total_commits - 1,
            forward=forward,
            backward=backward,
        )
