"""Clock domain arithmetic for the FPGA model.

The ROCoCoTM bitstream closes timing at 200 MHz on the Arria 10, with
the 512-bit bloom filter as the critical path (§6.5).  Everything in
:mod:`repro.hw` accounts time in integer nanoseconds and converts
through a :class:`ClockDomain`, so a frequency change (e.g. the
Stratix 10 retarget the paper anticipates, or the slower 1024-bit
filter variant) is a one-parameter experiment.
"""

from __future__ import annotations

import math

DEFAULT_FREQUENCY_HZ = 200_000_000


class ClockDomain:
    """Integer-nanosecond accounting for a fixed-frequency clock."""

    def __init__(self, frequency_hz: int = DEFAULT_FREQUENCY_HZ):
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        self.frequency_hz = frequency_hz

    @property
    def period_ns(self) -> float:
        return 1e9 / self.frequency_hz

    def cycles_to_ns(self, cycles: int) -> float:
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        return cycles * self.period_ns

    def ns_to_cycles(self, ns: float) -> int:
        """Whole cycles needed to cover *ns* (ceiling).

        An exact multiple of the period must map to exactly that many
        cycles even when ``ns / period_ns`` lands an ulp above the
        integer (e.g. ``cycles_to_ns(k)`` for non-power-of-two
        periods).  The guard epsilon is *relative* to the quotient: a
        fixed absolute epsilon is swamped once the quotient grows past
        ~2**12, because float error scales with magnitude.
        """
        if ns < 0:
            raise ValueError("time must be non-negative")
        quotient = ns / self.period_ns
        return math.ceil(quotient - 1e-12 * max(1.0, quotient))

    def align_up(self, ns: float) -> float:
        """The first clock edge at or after *ns*."""
        return self.ns_to_cycles(ns) * self.period_ns

    def __repr__(self) -> str:
        return f"ClockDomain({self.frequency_hz / 1e6:.0f} MHz)"
