"""The assembled offload engine with pipeline timing (Fig. 5 / Fig. 6).

This is the component ROCoCoTM's runtime talks to: it wraps
:class:`ValidationManager` (the functional decision) with the timing
model of the fully-pipelined FPGA datapath and the CCI link:

1. the request (read+write addresses, one cacheline per 8 addresses)
   crosses the link (~200 ns + streaming beats);
2. the detector consumes one cacheline of addresses per cycle against
   all W signatures in parallel, so a transaction occupies the
   pipeline for ``ceil(n_addresses / 8)`` cycles — the initiation
   interval between back-to-back validations;
3. the manager adds two cycles (cycle test, matrix/bookkeeping
   update+broadcast);
4. the verdict crosses back (~400 ns).

Because the pipeline never back-pressures the pull queue (§5.1),
requests queue *inside* the engine when they arrive faster than the
initiation interval; the paper's claim quantified in Fig. 6(d)/Fig. 11
is that even then the amortized per-transaction validation time stays
well under a microsecond — which this model lets the benchmarks check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..signatures import SignatureConfig
from .clock import ClockDomain
from .link import ADDRESSES_PER_CACHELINE, InterconnectLink, harp2_cci_link
from .manager import ValidationManager, ValidationRequest, Verdict

MANAGER_CYCLES = 2  # cycle test + matrix/bookkeeping update


@dataclass(frozen=True)
class ValidationResponse:
    """A verdict plus its complete timing breakdown (all ns)."""

    verdict: Verdict
    sent_ns: float
    arrived_ns: float
    started_ns: float
    finished_ns: float
    ready_ns: float

    @property
    def round_trip_ns(self) -> float:
        return self.ready_ns - self.sent_ns

    @property
    def queueing_ns(self) -> float:
        return self.started_ns - self.arrived_ns


class FpgaValidationEngine:
    """Transaction-level model of the pipelined ROCoCo validator."""

    def __init__(
        self,
        window: int = 64,
        config: Optional[SignatureConfig] = None,
        clock: Optional[ClockDomain] = None,
        link: Optional[InterconnectLink] = None,
    ):
        self.manager = ValidationManager(config, window)
        self.clock = clock or ClockDomain()
        self.link = link or harp2_cci_link()
        #: the owning backend's emission surface, wired by
        #: ``RococoTMBackend.attach`` — anything satisfying
        #: :class:`repro.runtime.driver.Emitter` (an EventBus, a full
        #: Driver), or None when driven standalone.  The base engine
        #: publishes nothing itself; subclasses (the chaos engine) use
        #: it for their wants()-gated fault streams.
        self.bus = None
        self._pipeline_free_ns = 0.0
        self.stats_busy_cycles = 0
        self.stats_requests = 0
        self.total_round_trip_ns = 0.0
        self.total_queueing_ns = 0.0

    # ------------------------------------------------------------------
    def occupancy_cycles(self, request: ValidationRequest) -> int:
        """Initiation interval: detector cachelines for this request."""
        return max(1, math.ceil(request.n_addresses / ADDRESSES_PER_CACHELINE))

    def submit(self, request: ValidationRequest, now_ns: float) -> ValidationResponse:
        """Validate *request* sent from the CPU at *now_ns*.

        Requests must be submitted in non-decreasing time order (the
        pull queue is FIFO); the engine models queueing internally.
        """
        lines = self.link.lines_for_addresses(max(1, request.n_addresses))
        arrived = now_ns + self.link.request_ns(lines)
        started = max(self.clock.align_up(arrived), self._pipeline_free_ns)

        occupancy = self.occupancy_cycles(request)
        self._pipeline_free_ns = started + self.clock.cycles_to_ns(occupancy)
        finished = started + self.clock.cycles_to_ns(occupancy + MANAGER_CYCLES)
        ready = finished + self.link.response_ns()

        verdict = self.manager.validate(request)
        self.stats_busy_cycles += occupancy + MANAGER_CYCLES
        self.stats_requests += 1
        self.total_round_trip_ns += ready - now_ns
        self.total_queueing_ns += started - arrived

        return ValidationResponse(
            verdict=verdict,
            sent_ns=now_ns,
            arrived_ns=arrived,
            started_ns=started,
            finished_ns=finished,
            ready_ns=ready,
        )

    def certify(self, request: ValidationRequest, now_ns: float) -> ValidationResponse:
        """Cross-shard prepare: same datapath timing as :meth:`submit`
        — link crossing, pipeline queueing, detector occupancy, manager
        cycles, verdict return — but the decision is the *non-mutating*
        :meth:`ValidationManager.certify` freshness check.  A prepare
        occupies the pipeline like any validation (the detector still
        streams the request's cachelines), so local single-shard
        traffic queues behind it exactly as Fig. 5 would."""
        lines = self.link.lines_for_addresses(max(1, request.n_addresses))
        arrived = now_ns + self.link.request_ns(lines)
        started = max(self.clock.align_up(arrived), self._pipeline_free_ns)

        occupancy = self.occupancy_cycles(request)
        self._pipeline_free_ns = started + self.clock.cycles_to_ns(occupancy)
        finished = started + self.clock.cycles_to_ns(occupancy + MANAGER_CYCLES)
        ready = finished + self.link.response_ns()

        verdict = self.manager.certify(request)
        self.stats_busy_cycles += occupancy + MANAGER_CYCLES
        self.stats_requests += 1
        self.total_round_trip_ns += ready - now_ns
        self.total_queueing_ns += started - arrived

        return ValidationResponse(
            verdict=verdict,
            sent_ns=now_ns,
            arrived_ns=arrived,
            started_ns=started,
            finished_ns=finished,
            ready_ns=ready,
        )

    # ------------------------------------------------------------------
    @property
    def mask_cache_stats(self) -> dict:
        """Hit/miss/entry counters of the shared address→query-mask
        cache (see :class:`repro.signatures.SignatureConfig`) — the
        knob that turned the detector's per-address Python loops into
        one gathered ``(A, words)`` compare per request."""
        config = self.manager.config
        return {
            "hits": config.mask_cache_hits,
            "misses": config.mask_cache_misses,
            "entries": config.mask_cache_entries,
        }

    @property
    def mean_round_trip_ns(self) -> float:
        return self.total_round_trip_ns / self.stats_requests if self.stats_requests else 0.0

    @property
    def mean_queueing_ns(self) -> float:
        return self.total_queueing_ns / self.stats_requests if self.stats_requests else 0.0

    @property
    def throughput_limit_per_us(self) -> float:
        """Upper bound on validations per microsecond for 8-address
        transactions — the pipelining headroom of Fig. 6(d)."""
        cycles = max(1, math.ceil(8 / ADDRESSES_PER_CACHELINE))
        return 1000.0 / self.clock.cycles_to_ns(cycles)
