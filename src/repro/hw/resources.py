"""Parametric FPGA resource & Fmax model (§6.5).

The paper reports one synthesis point on the Arria 10 10AX115
(W = 64, m = 512, 200 MHz):

    113485 registers (62.9%), 249442 ALMs (58.39%),
    223 DSPs (14.7%), 2055802 BRAM bits (3.7%)

and two qualitative trends: the 512-bit bloom filter is the critical
path, and widening it to 1024 bits still fits "under current resource
consumption" but lowers the clock frequency.

Synthesis cannot run here, so this module provides a documented
linear decomposition — shell + detector + manager + hashing — whose
coefficients are calibrated so the anchor point reproduces the
reported numbers *exactly*, and whose scaling terms follow the
architecture (matrix ~ W^2, signature datapath ~ W*m and m, hashing
DSPs ~ k lanes x 8 addresses/cycle).  Treat extrapolations as the
paper treats them: resource-feasibility arguments, not synthesis
results.
"""

from __future__ import annotations

from dataclasses import dataclass

# Device capacities implied by the paper's utilization percentages.
DEVICE_ALMS = 427_200            # Arria 10 GX 1150
DEVICE_REGISTERS = 180_422       # implied by 113485 = 62.9%
DEVICE_DSPS = 1_518              # 223 = 14.7%
DEVICE_BRAM_BITS = 55_562_216    # 2055802 = 3.7%

# Anchor point: W = 64, m = 512, k = 4 at 200 MHz.
_ANCHOR_W, _ANCHOR_M, _ANCHOR_K = 64, 512, 4
_ANCHOR = {
    "registers": 113_485,
    "alms": 249_442,
    "dsps": 223,
    "bram_bits": 2_055_802,
    "fmax_mhz": 200.0,
}

# Scaling coefficients (per-unit costs of the architecture's parts).
ALM_PER_MATRIX_CELL = 1.5        # validate+update network per R[i][j]
ALM_PER_DETECT_BIT = 6.0         # W-way compare tree per signature bit
REG_PER_MATRIX_CELL = 1.0        # the 2D registers themselves
REG_PER_PIPE_BIT = 4.0           # pipeline registers per signature bit
DSP_PER_HASH_LANE = 6.0          # multiply-shift units: k lanes x 8 addrs
BRAM_BITS_PER_SIG_BIT = 2 * 64   # two signatures per slot, W slots

# Critical-path model: t = t_logic + t_bloom(m); calibrated to 5 ns at
# m = 512 with the bloom popcount/merge tree depth growing as log2(m).
_T_LOGIC_NS = 2.3
_T_BLOOM_PER_LEVEL_NS = 0.3


def _variable_terms(window: int, bits: int, partitions: int) -> dict:
    return {
        "registers": REG_PER_MATRIX_CELL * window**2 + REG_PER_PIPE_BIT * bits,
        "alms": ALM_PER_MATRIX_CELL * window**2 + ALM_PER_DETECT_BIT * bits,
        "dsps": DSP_PER_HASH_LANE * partitions * 8,
        "bram_bits": 2 * window * bits + BRAM_BITS_PER_SIG_BIT * bits,
    }


_BASE = {
    key: _ANCHOR[key] - _variable_terms(_ANCHOR_W, _ANCHOR_M, _ANCHOR_K)[key]
    for key in ("registers", "alms", "dsps", "bram_bits")
}


@dataclass(frozen=True)
class ResourceEstimate:
    """One synthesis-point estimate with device utilizations."""

    window: int
    signature_bits: int
    partitions: int
    registers: int
    alms: int
    dsps: int
    bram_bits: int
    fmax_mhz: float

    @property
    def register_pct(self) -> float:
        return 100.0 * self.registers / DEVICE_REGISTERS

    @property
    def alm_pct(self) -> float:
        return 100.0 * self.alms / DEVICE_ALMS

    @property
    def dsp_pct(self) -> float:
        return 100.0 * self.dsps / DEVICE_DSPS

    @property
    def bram_pct(self) -> float:
        return 100.0 * self.bram_bits / DEVICE_BRAM_BITS

    @property
    def fits(self) -> bool:
        return (
            self.registers <= DEVICE_REGISTERS
            and self.alms <= DEVICE_ALMS
            and self.dsps <= DEVICE_DSPS
            and self.bram_bits <= DEVICE_BRAM_BITS
        )


def estimate(window: int = 64, signature_bits: int = 512, partitions: int = 4) -> ResourceEstimate:
    """Resource & Fmax estimate for a (W, m, k) configuration."""
    if window < 1 or signature_bits < 1 or partitions < 1:
        raise ValueError("window, signature_bits and partitions must be positive")
    terms = _variable_terms(window, signature_bits, partitions)
    critical_path_ns = _T_LOGIC_NS + _T_BLOOM_PER_LEVEL_NS * (signature_bits.bit_length() - 1)
    return ResourceEstimate(
        window=window,
        signature_bits=signature_bits,
        partitions=partitions,
        registers=round(_BASE["registers"] + terms["registers"]),
        alms=round(_BASE["alms"] + terms["alms"]),
        dsps=round(_BASE["dsps"] + terms["dsps"]),
        bram_bits=round(_BASE["bram_bits"] + terms["bram_bits"]),
        fmax_mhz=1000.0 / critical_path_ns,
    )


def paper_table() -> ResourceEstimate:
    """The §6.5 synthesis point (reproduces the paper's numbers)."""
    return estimate(window=64, signature_bits=512, partitions=4)
