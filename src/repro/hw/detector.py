"""The conflict Detector (left half of Fig. 5).

The detector holds the bloom-filter bookkeeping ``h_0 .. h_{W-1}`` of
the W most recent committed writing transactions — one read-set and
one write-set signature each, "so that an upper bound of required
resources can be determined a priori" (§5.3) — and compares an
incoming transaction's read/write *addresses* against all W entries
in parallel.  Addresses (not signatures) travel from the CPU so the
detector can use the *query* operation, whose false positivity is
orders of magnitude below set-intersection's (Fig. 7).

Slot numbering matches :class:`repro.core.window.WindowMatrix`:
oldest first, so the produced forward/backward masks feed the matrix
directly.

The W-way, 8-address-per-cycle parallel compare of the hardware is
modelled at array granularity, one vectorized pass per request:

* every address's k-bit query mask is interned once in the shared
  :class:`SignatureConfig` cache and gathered into an ``(A, words)``
  matrix — no per-address re-hashing;
* a single broadcasted AND+compare covers all W signatures × all A
  addresses at once — the same dataflow as the RTL's W-way compare
  tree;
* the W slots live in a **ring buffer** (head index + modular slot
  math), so evicting ``h_{W-1}`` on commit is O(1) instead of
  shifting two ``(W, words)`` arrays.  Logical (oldest-first) slot
  *i* lives at physical row ``(head + i) % W``; the whole request is
  processed in physical order — hit vectors, the snapshot-observed
  compare (a vectorized test against a per-slot commit-index array,
  vacant slots pinned to a never-observed sentinel), and the boolean
  packing — and only the final packed *integer* mask is rotated by
  ``head`` (two shifts and an OR) into logical numbering.  Vacant
  rows are all-zero and can never match a non-empty query mask, so
  they contribute no bits.

Commit-time bookkeeping takes the transaction's *incremental*
signatures when the request carries them (the CPU built both during
execution — Algorithm 1), falling back to hashing the address sets
through the mask cache otherwise.  Either way the recorded raws are
bit-identical, so verdicts cannot depend on which path ran.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..signatures import SignatureConfig

_WORD = 64


def _signature_words(config: SignatureConfig) -> int:
    return (config.bits + _WORD - 1) // _WORD


#: per-slot commit index of a vacant slot: never observed by any
#: snapshot, so vacant slots cannot contribute backward-RAW bits.
_NEVER = np.iinfo(np.int64).max


def _raw_to_words(raw: int, words: int) -> np.ndarray:
    """Pack an m-bit Python int into a ``(words,)`` uint64 row."""
    return np.frombuffer(raw.to_bytes(words * 8, "little"), dtype="<u8")


def _bools_to_mask(bools: np.ndarray) -> int:
    """Pack a boolean slot vector into an int bitmask (bit i = slot i).

    One little-endian ``np.packbits`` pass, any window width; the
    dot-against-powers-of-two formulation it replaced survives as the
    reference oracle in ``tests/hw`` alongside the original per-bit
    loop.
    """
    return int.from_bytes(
        np.packbits(bools, bitorder="little").tobytes(), "little"
    )


@dataclass(frozen=True)
class Bookkeeping:
    """One ``h_i`` entry: a committed transaction's two signatures."""

    label: Hashable
    commit_index: int
    read_raw: int
    write_raw: int


class ConflictDetector:
    """Parallel signature store with W-way conflict detection."""

    def __init__(self, config: SignatureConfig, window: int):
        if window < 1:
            raise ValueError("window must hold at least one entry")
        self.config = config
        self.window = window
        self._words = _signature_words(config)
        #: one combined store: physical rows ``[0, W)`` hold the
        #: write-set signatures, rows ``[W, 2W)`` the read-set ones,
        #: so one broadcasted compare covers both halves per request.
        self._sigs = np.zeros((2 * window, self._words), dtype=np.uint64)
        #: resident entries, oldest first (logical slot order).
        self._entries: Deque[Bookkeeping] = deque()
        #: physical row of logical slot 0.  Stays 0 until the first
        #: eviction (the window fills in place), then advances mod W.
        self._head = 0
        #: per-physical-slot commit index (vacant slots: ``_NEVER``),
        #: so the snapshot-observed test is one vectorized compare.
        self._commit_idx = np.full(window, _NEVER, dtype=np.int64)
        #: sticky: have the recorded commit indices been consecutive?
        #: The manager numbers commits 0, 1, 2, ... so the resident
        #: indices are always a contiguous run and the snapshot-
        #: observed set is a logical-order *prefix* — deriving
        #: forward/backward from the packed hit masks with integer ops
        #: alone.  Any out-of-sequence record (only reachable through
        #: direct detector use) clears the flag and the vectorized
        #: per-slot compare takes over; both paths are bit-identical.
        self._consecutive = True
        self._full_mask = (1 << window) - 1

    # ------------------------------------------------------------------
    @property
    def resident(self) -> int:
        return len(self._entries)

    @property
    def oldest_commit_index(self) -> int:
        return self._entries[0].commit_index if self._entries else 0

    def entries(self) -> List[Bookkeeping]:
        return list(self._entries)

    # ------------------------------------------------------------------
    def _rotate(self, mask: int) -> int:
        """Rotate a *physical*-order slot bitmask into logical
        (oldest-first) numbering — logical slot i lives at physical
        row ``(head + i) % W``."""
        head = self._head
        if head:
            mask = (
                (mask >> head) | (mask << (self.window - head))
            ) & self._full_mask
        return mask

    def _pack(self, bools: np.ndarray) -> int:
        """Pack a physical-order slot vector into a *logical*-order
        bitmask: one boolean pack plus the integer head rotation."""
        return self._rotate(_bools_to_mask(bools))

    def edges(
        self,
        read_addrs: Sequence[int],
        write_addrs: Sequence[int],
        snapshot: int,
    ) -> Tuple[int, int]:
        """(forward, backward) slot bitmasks for a candidate.

        A read conflict against a slot the candidate *observed*
        (``commit_index < snapshot``) is a RAW backward edge; against
        an unobserved slot it is the stale-read forward edge.  Write
        conflicts (vs the slot's writes or reads) are always backward.

        One ``(2W, A, words)`` broadcasted AND+compare covers every
        address against both signature halves at once — the same
        dataflow as the RTL's W-way compare tree.  Vacant rows are
        all-zero and can never contain a non-empty mask, so they
        always come out False.  The resulting boolean matrix is packed
        in a single ``np.packbits`` pass into one per-address bitmask
        integer each; the OR-across-addresses, the read/write-half
        split, and the head rotation are then plain integer ops.
        """
        if not self._entries:
            return 0, 0
        n_read = len(read_addrs)
        n_write = len(write_addrs)
        if not n_read and not n_write:
            return 0, 0
        masks = self.config.query_words((*read_addrs, *write_addrs))
        window = self.window
        hits = (
            ((self._sigs[:, None, :] & masks[None, :, :]) == masks[None, :, :])
            .all(axis=2)
        )
        # One per-address field of ceil(2W/8)*8 bits, low W bits = the
        # write-sig half, next W bits = the read-sig half.
        packed = int.from_bytes(
            np.packbits(hits.T, axis=1, bitorder="little").tobytes(), "little"
        )
        field_bits = ((2 * window + 7) // 8) * 8
        half = self._full_mask

        read_hits = 0
        for a in range(n_read):
            read_hits |= packed >> (a * field_bits)
        read_hits &= half
        write_hits = 0
        for a in range(n_read, n_read + n_write):
            field = packed >> (a * field_bits)
            write_hits |= field | (field >> window)
        write_hits &= half

        forward = 0
        backward = 0
        if n_read:
            read_mask = self._rotate(read_hits)
            observed_mask = self._observed_prefix(snapshot)
            if observed_mask is None:
                # Non-consecutive history: per-slot vectorized compare
                # (physical order, rotated during the pack).
                observed_mask = self._pack(self._commit_idx < snapshot)
            forward = read_mask & ~observed_mask
            backward = read_mask & observed_mask
        if n_write:
            backward |= self._rotate(write_hits)
        return forward, backward

    def _observed_prefix(self, snapshot: int) -> Optional[int]:
        """Logical-order bitmask of resident slots with
        ``commit_index < snapshot`` — ``(1 << t) - 1`` when the
        resident indices are one consecutive run, else None."""
        if not self._consecutive:
            return None
        t = snapshot - self._entries[0].commit_index
        n = len(self._entries)
        if t <= 0:
            return 0
        if t >= n:
            return (1 << n) - 1
        return (1 << t) - 1

    # ------------------------------------------------------------------
    def record_commit(
        self,
        label: Hashable,
        commit_index: int,
        read_addrs: Iterable[int],
        write_addrs: Iterable[int],
        read_raw: Optional[int] = None,
        write_raw: Optional[int] = None,
    ) -> bool:
        """Append bookkeeping ``h_{-1}``; evicts ``h_{W-1}`` when full.

        ``read_raw``/``write_raw`` are the transaction's incremental
        signatures when the CPU shipped them; omitted, the address
        sets are folded through the mask cache (bit-identical result).
        Returns True when an eviction happened (the caller's matrix
        must shift in lock-step).
        """
        config = self.config
        if read_raw is None:
            read_raw = config.raw_of(tuple(read_addrs))
        if write_raw is None:
            write_raw = config.raw_of(tuple(write_addrs))
        entry = Bookkeeping(label, commit_index, read_raw, write_raw)

        if self._entries and commit_index != self._entries[-1].commit_index + 1:
            self._consecutive = False
        evicted = len(self._entries) == self.window
        if evicted:
            self._entries.popleft()
            slot = self._head
            self._head = (self._head + 1) % self.window
        else:
            slot = len(self._entries)
        self._entries.append(entry)
        # One conversion for both halves: write words then read words.
        both = _raw_to_words(
            write_raw | (read_raw << (self._words * _WORD)), 2 * self._words
        )
        self._sigs[slot] = both[: self._words]
        self._sigs[self.window + slot] = both[self._words :]
        self._commit_idx[slot] = commit_index
        return evicted
