"""The conflict Detector (left half of Fig. 5).

The detector holds the bloom-filter bookkeeping ``h_0 .. h_{W-1}`` of
the W most recent committed writing transactions — one read-set and
one write-set signature each, "so that an upper bound of required
resources can be determined a priori" (§5.3) — and compares an
incoming transaction's read/write *addresses* against all W entries
in parallel.  Addresses (not signatures) travel from the CPU so the
detector can use the *query* operation, whose false positivity is
orders of magnitude below set-intersection's (Fig. 7).

Slot numbering matches :class:`repro.core.window.WindowMatrix`:
oldest first, so the produced forward/backward masks feed the matrix
directly.

The W-way, 8-address-per-cycle parallel compare of the hardware is
modelled with numpy word arrays: each address expands to its k-bit
query mask once, then a single vectorized AND+compare covers all W
signatures — the same dataflow as the RTL, at array granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List, Sequence, Tuple

import numpy as np

from ..signatures import SignatureConfig

_WORD = 64


def _signature_words(config: SignatureConfig) -> int:
    return (config.bits + _WORD - 1) // _WORD


def _raw_to_words(raw: int, words: int) -> np.ndarray:
    out = np.zeros(words, dtype=np.uint64)
    for i in range(words):
        out[i] = (raw >> (i * _WORD)) & 0xFFFFFFFFFFFFFFFF
    return out


@dataclass(frozen=True)
class Bookkeeping:
    """One ``h_i`` entry: a committed transaction's two signatures."""

    label: Hashable
    commit_index: int
    read_raw: int
    write_raw: int


class ConflictDetector:
    """Parallel signature store with W-way conflict detection."""

    def __init__(self, config: SignatureConfig, window: int):
        if window < 1:
            raise ValueError("window must hold at least one entry")
        self.config = config
        self.window = window
        self._words = _signature_words(config)
        self._read_sigs = np.zeros((window, self._words), dtype=np.uint64)
        self._write_sigs = np.zeros((window, self._words), dtype=np.uint64)
        self._entries: List[Bookkeeping] = []

    # ------------------------------------------------------------------
    @property
    def resident(self) -> int:
        return len(self._entries)

    @property
    def oldest_commit_index(self) -> int:
        return self._entries[0].commit_index if self._entries else 0

    def entries(self) -> List[Bookkeeping]:
        return list(self._entries)

    # ------------------------------------------------------------------
    def _query_mask(self, addresses: Sequence[int], sigs: np.ndarray) -> np.ndarray:
        """Boolean per-slot vector: does any address query positive?"""
        n = len(self._entries)
        hit = np.zeros(n, dtype=bool)
        if n == 0:
            return hit
        live = sigs[:n]
        for addr in addresses:
            mask_words = np.zeros(self._words, dtype=np.uint64)
            for pos in self.config.bit_positions(addr):
                mask_words[pos // _WORD] |= np.uint64(1 << (pos % _WORD))
            hit |= ((live & mask_words) == mask_words).all(axis=1)
        return hit

    def edges(
        self,
        read_addrs: Sequence[int],
        write_addrs: Sequence[int],
        snapshot: int,
    ) -> Tuple[int, int]:
        """(forward, backward) slot bitmasks for a candidate.

        A read conflict against a slot the candidate *observed*
        (``commit_index < snapshot``) is a RAW backward edge; against
        an unobserved slot it is the stale-read forward edge.  Write
        conflicts (vs the slot's writes or reads) are always backward.
        """
        n = len(self._entries)
        if n == 0:
            return 0, 0
        read_hits = self._query_mask(read_addrs, self._write_sigs)
        write_hits = self._query_mask(write_addrs, self._write_sigs)
        write_hits |= self._query_mask(write_addrs, self._read_sigs)

        observed = np.fromiter(
            (e.commit_index < snapshot for e in self._entries), dtype=bool, count=n
        )
        forward = _bools_to_mask(read_hits & ~observed)
        backward = _bools_to_mask((read_hits & observed) | write_hits)
        return forward, backward

    # ------------------------------------------------------------------
    def record_commit(
        self,
        label: Hashable,
        commit_index: int,
        read_addrs: Iterable[int],
        write_addrs: Iterable[int],
    ) -> bool:
        """Append bookkeeping ``h_{-1}``; evicts ``h_{W-1}`` when full.

        Returns True when an eviction happened (the caller's matrix
        must shift in lock-step).
        """
        read_sig = self.config.of(read_addrs)
        write_sig = self.config.of(write_addrs)
        entry = Bookkeeping(label, commit_index, read_sig.raw, write_sig.raw)

        evicted = len(self._entries) == self.window
        if evicted:
            del self._entries[0]
            self._read_sigs[:-1] = self._read_sigs[1:]
            self._write_sigs[:-1] = self._write_sigs[1:]
        slot = len(self._entries)
        self._entries.append(entry)
        self._read_sigs[slot] = _raw_to_words(entry.read_raw, self._words)
        self._write_sigs[slot] = _raw_to_words(entry.write_raw, self._words)
        return evicted


def _bools_to_mask(bools: np.ndarray) -> int:
    mask = 0
    for i in np.nonzero(bools)[0]:
        mask |= 1 << int(i)
    return mask
