"""The CPU-FPGA interconnect model (HARP2 CCI, §6.2 footnote 8).

The paper measures on HARP2's in-package QPI/CCI channel:

* ~200 ns for an FPGA read that hits the shared LLC (CPU -> FPGA
  direction of a request);
* <400 ns for an FPGA write back to the LLC (FPGA -> CPU direction of
  a response);
* <600 ns cacheline round trip overall — "several orders of magnitude
  smaller than the latency of FPGA as discrete PCIe accelerating card".

Back-to-back cachelines stream at the channel's pipelined rate, so a
multi-line message costs the one-way latency once plus a per-line
beat.  A :class:`PcieLink` preset (the >1 us round-trip alternative
the footnote contrasts) is provided for the interconnect ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

CACHELINE_BYTES = 64
ADDRESSES_PER_CACHELINE = 8  # eight 64-bit addresses (§5.2)


@dataclass(frozen=True)
class InterconnectLink:
    """One-way latencies plus a streaming beat for extra cachelines."""

    to_device_ns: float
    from_device_ns: float
    beat_ns: float

    def __post_init__(self):
        if min(self.to_device_ns, self.from_device_ns, self.beat_ns) < 0:
            raise ValueError("latencies must be non-negative")

    @property
    def round_trip_ns(self) -> float:
        return self.to_device_ns + self.from_device_ns

    def request_ns(self, cachelines: int) -> float:
        """Time for a request of *cachelines* lines to reach the FPGA."""
        return self._transfer(self.to_device_ns, cachelines)

    def response_ns(self, cachelines: int = 1) -> float:
        """Time for a response of *cachelines* lines to reach the CPU."""
        return self._transfer(self.from_device_ns, cachelines)

    def _transfer(self, latency_ns: float, cachelines: int) -> float:
        if cachelines < 1:
            raise ValueError("a transfer moves at least one cacheline")
        return latency_ns + (cachelines - 1) * self.beat_ns

    @staticmethod
    def lines_for_addresses(n_addresses: int) -> int:
        """Cachelines needed to ship *n_addresses* 64-bit addresses."""
        return max(1, math.ceil(n_addresses / ADDRESSES_PER_CACHELINE))


def harp2_cci_link() -> InterconnectLink:
    """The measured HARP2 numbers from the paper."""
    return InterconnectLink(to_device_ns=200.0, from_device_ns=400.0, beat_ns=5.0)


def pcie_link() -> InterconnectLink:
    """The discrete-card alternative (round trip > 1 us)."""
    return InterconnectLink(to_device_ns=500.0, from_device_ns=600.0, beat_ns=8.0)
