"""Asynchronous CPU<->FPGA message queues (Fig. 6's pull/push queues).

ROCoCoTM cascades Executor -> (pull queue) -> Detector -> Manager ->
(push queue) -> Committer into a meta-pipeline; the queues decouple
the two clock/latency domains so communication latency is amortized
over overlapped transactions.  Entries become *visible* to the
consumer only after the link latency has elapsed.
"""

from __future__ import annotations

import heapq
from typing import Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class LatencyQueue(Generic[T]):
    """FIFO whose entries appear to the consumer after a delay."""

    def __init__(self, latency_ns: float = 0.0):
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        self.latency_ns = latency_ns
        self._heap: List[Tuple[float, int, T]] = []
        self._sequence = 0
        self.max_depth = 0

    def push(self, payload: T, now_ns: float) -> float:
        """Enqueue; returns the time the entry becomes visible."""
        visible = now_ns + self.latency_ns
        heapq.heappush(self._heap, (visible, self._sequence, payload))
        self._sequence += 1
        self.max_depth = max(self.max_depth, len(self._heap))
        return visible

    def pop(self, now_ns: float) -> Optional[Tuple[float, T]]:
        """The oldest visible entry as (visible_time, payload), or None."""
        if self._heap and self._heap[0][0] <= now_ns:
            visible, _, payload = heapq.heappop(self._heap)
            return visible, payload
        return None

    def peek_time(self) -> Optional[float]:
        """Visibility time of the head entry (for event scheduling)."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
