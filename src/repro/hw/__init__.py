"""The FPGA offload engine, functionally simulated (§4.2, §5, §6.5).

Substitution note (see DESIGN.md): the paper's Arria 10 bitstream is
replaced by a transaction-level model that is *decision-identical* to
the RTL description (same signatures, same matrix, same window
semantics) and time-modelled from the paper's own constants (200 MHz,
CCI latencies from §6.2 footnote 8).

* :class:`ClockDomain`, :class:`InterconnectLink`, :class:`LatencyQueue`
  — timing substrate.
* :class:`ConflictDetector` — W-way parallel signature compare.
* :class:`ValidationManager` — overflow/cycle decision + matrix update.
* :class:`FpgaValidationEngine` — the pipelined whole, with queueing.
* :func:`estimate` — the §6.5 resource/Fmax model.
"""

from .clock import DEFAULT_FREQUENCY_HZ, ClockDomain
from .detector import Bookkeeping, ConflictDetector
from .engine import MANAGER_CYCLES, FpgaValidationEngine, ValidationResponse
from .link import (
    ADDRESSES_PER_CACHELINE,
    CACHELINE_BYTES,
    InterconnectLink,
    harp2_cci_link,
    pcie_link,
)
from .manager import ValidationManager, ValidationRequest, Verdict
from .queues import LatencyQueue
from .software_engine import SoftwareValidationEngine
from .resources import (
    DEVICE_ALMS,
    DEVICE_BRAM_BITS,
    DEVICE_DSPS,
    DEVICE_REGISTERS,
    ResourceEstimate,
    estimate,
    paper_table,
)

__all__ = [
    "ADDRESSES_PER_CACHELINE",
    "Bookkeeping",
    "CACHELINE_BYTES",
    "ClockDomain",
    "ConflictDetector",
    "DEFAULT_FREQUENCY_HZ",
    "DEVICE_ALMS",
    "DEVICE_BRAM_BITS",
    "DEVICE_DSPS",
    "DEVICE_REGISTERS",
    "FpgaValidationEngine",
    "InterconnectLink",
    "LatencyQueue",
    "MANAGER_CYCLES",
    "ResourceEstimate",
    "SoftwareValidationEngine",
    "ValidationManager",
    "ValidationRequest",
    "ValidationResponse",
    "Verdict",
    "estimate",
    "harp2_cci_link",
    "paper_table",
    "pcie_link",
]
