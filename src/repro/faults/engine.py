"""The chaos engine: a fault-injecting wrapper over the FPGA engine.

:class:`ChaosValidationEngine` presents the exact ``submit(request,
now_ns) -> ValidationResponse`` surface of
:class:`repro.hw.FpgaValidationEngine` (unknown attributes delegate to
the wrapped engine), so no call site changes.  Around each submission
it injects the plan's faults:

* link legs go through :class:`FaultyLink` (drops, spikes, CRC-failing
  verdicts, each with bounded retransmission + exponential backoff);
* during a **stall** window the pipeline accepts but does not service
  — arrivals queue behind the window's end;
* a **reset** instant wipes the manager's signature history and
  reachability matrix via :meth:`ValidationManager.reset`, whose
  conservative floor keeps every later verdict sound.

**Timeouts.** When ``timeout_ns`` is set and a response cannot reach
the CPU by ``now + timeout_ns`` (or the link gave up), ``submit``
raises :class:`ValidationTimeout` instead of blocking forever — the
hook the :class:`~repro.faults.degradation.DegradationManager` ladder
is built on.  The exception says whether the verdict was *applied*
(the engine decided; only the response was lost) so resubmission stays
exactly-once: decided labels are remembered and a resubmitted request
is served from the modeled response buffer, never re-validated.

**Determinism contract.** All draws come from ``random.Random``
streams seeded by the plan and consumed in submission order; health
probes draw from an independent stream so probing never perturbs the
data path.  With a null plan, ``submit`` is a direct pass-through —
bit-identical verdicts *and* timings.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, Hashable, Optional

from ..hw.engine import FpgaValidationEngine, ValidationResponse
from ..hw.manager import ValidationRequest, Verdict
from .link import FaultyLink, LinkDown
from .plan import FaultPlan

#: cycles to look a decided label up in the modeled response buffer.
REPLAY_CYCLES = 1
#: stream separator for the probe RNG (golden-ratio constant).
_PROBE_STREAM = 0x9E3779B9


class ValidationTimeout(Exception):
    """No verdict reached the CPU in time for one submission attempt.

    ``at_ns`` is when the CPU gives up waiting; ``applied`` tells the
    caller whether the engine decided the request (resubmitting will
    replay the recorded verdict rather than re-validate).
    """

    def __init__(self, at_ns: float, applied: bool, label: Hashable):
        super().__init__(f"validation timeout at {at_ns:.0f} ns (applied={applied})")
        self.at_ns = at_ns
        self.applied = applied
        self.label = label


class ChaosValidationEngine:
    """Fault-injecting drop-in for :class:`FpgaValidationEngine`."""

    def __init__(
        self,
        inner: Optional[FpgaValidationEngine] = None,
        plan: Optional[FaultPlan] = None,
        timeout_ns: Optional[float] = None,
    ):
        self.inner = inner if inner is not None else FpgaValidationEngine()
        self.plan = plan if plan is not None else FaultPlan()
        #: emission surface for ``fault`` events — anything satisfying
        #: :class:`repro.runtime.driver.Emitter` (set by the owning
        #: backend's ``attach``; None outside a simulation).  Injections
        #: are published as per-kind count deltas around each submission.
        self.bus = None
        #: per-request CPU-side patience; None blocks forever (faults
        #: then only stretch latency, they never raise).
        self.timeout_ns = timeout_ns
        #: injected-fault tally by kind (drop/spike/corrupt/stall/reset).
        self.fault_counts: Counter = Counter()
        self.stats_timeouts = 0
        self._rng = random.Random(self.plan.seed)
        self._probe_rng = random.Random(self.plan.seed ^ _PROBE_STREAM)
        self.faulty_link = FaultyLink(
            self.inner.link, self.plan, self._rng, self.fault_counts
        )
        #: decided verdicts by label — the modeled response buffer that
        #: makes resubmission idempotent (exactly-once validation).
        self._decided: Dict[Hashable, Verdict] = {}
        self._resets_fired = 0

    # ------------------------------------------------------------------
    @property
    def link_retries(self) -> int:
        return self.faulty_link.retries

    def recall(self, label: Hashable) -> Optional[Verdict]:
        """The decided verdict for *label*, if the engine has one."""
        return self._decided.get(label)

    # ------------------------------------------------------------------
    def submit(self, request: ValidationRequest, now_ns: float) -> ValidationResponse:
        if self.plan.is_null:
            return self.inner.submit(request, now_ns)
        bus = self.bus
        if bus is None or not bus.wants("fault"):
            return self._submit(request, now_ns)
        before = dict(self.fault_counts)
        try:
            return self._submit(request, now_ns)
        finally:
            self._publish_faults(bus, before, now_ns)

    def _submit(self, request: ValidationRequest, now_ns: float) -> ValidationResponse:
        self._fire_resets(now_ns)
        deadline = now_ns + self.timeout_ns if self.timeout_ns is not None else math.inf

        if request.label in self._decided:
            return self._retransmit(request, now_ns, deadline)

        lines = self.inner.link.lines_for_addresses(max(1, request.n_addresses))
        try:
            request_leg = self.faulty_link.request_ns(lines)
        except LinkDown as down:
            self.stats_timeouts += 1
            raise ValidationTimeout(
                min(deadline, now_ns + down.elapsed_ns), applied=False, label=request.label
            ) from None

        # Feed the inner engine a send time late by exactly the injected
        # request-leg overhead: its own (pristine) link then lands the
        # arrival at now + request_leg, and its queueing model applies
        # unchanged.
        extra_request = request_leg - self.inner.link.request_ns(lines)
        arrival = now_ns + request_leg
        stall_end = self.plan.stall_end(arrival)
        if stall_end > arrival:
            self.fault_counts["stall"] += 1
            self.inner._pipeline_free_ns = max(self.inner._pipeline_free_ns, stall_end)

        response = self.inner.submit(request, now_ns + extra_request)
        self._decided[request.label] = response.verdict

        try:
            response_extra = self.faulty_link.response_ns(1) - self.inner.link.response_ns(1)
        except LinkDown:
            self.stats_timeouts += 1
            raise ValidationTimeout(deadline, applied=True, label=request.label) from None

        ready = response.ready_ns + response_extra
        if ready > deadline:
            self.stats_timeouts += 1
            raise ValidationTimeout(deadline, applied=True, label=request.label)
        if response_extra == 0.0 and extra_request == 0.0 and response.sent_ns == now_ns:
            return response
        return ValidationResponse(
            verdict=response.verdict,
            sent_ns=now_ns,
            arrived_ns=response.arrived_ns,
            started_ns=response.started_ns,
            finished_ns=response.finished_ns,
            ready_ns=ready,
        )

    # ------------------------------------------------------------------
    def _retransmit(
        self, request: ValidationRequest, now_ns: float, deadline: float
    ) -> ValidationResponse:
        """Serve a resubmitted label from the modeled response buffer.

        The retransmission still crosses the (faulty) link both ways
        and a stalled engine cannot answer it — only re-*validation*
        is skipped, keeping the manager exactly-once.
        """
        verdict = self._decided[request.label]
        try:
            arrival = now_ns + self.faulty_link.request_ns(1)
            arrival = self.plan.stall_end(arrival)
            served = self.inner.clock.align_up(arrival) + self.inner.clock.cycles_to_ns(
                REPLAY_CYCLES
            )
            ready = served + self.faulty_link.response_ns(1)
        except LinkDown as down:
            self.stats_timeouts += 1
            raise ValidationTimeout(
                min(deadline, now_ns + down.elapsed_ns), applied=True, label=request.label
            ) from None
        if ready > deadline:
            self.stats_timeouts += 1
            raise ValidationTimeout(deadline, applied=True, label=request.label)
        return ValidationResponse(
            verdict=verdict,
            sent_ns=now_ns,
            arrived_ns=arrival,
            started_ns=served,
            finished_ns=served,
            ready_ns=ready,
        )

    def _publish_faults(self, bus, before: Dict[str, int], now_ns: float) -> None:
        """Emit one ``fault`` event per kind injected since *before*.

        Lazily imported to keep the faults<->runtime import cycle
        one-directional; only runs when a subscriber wants faults.
        """
        from ..runtime.events import SimEvent

        for kind in sorted(self.fault_counts):
            delta = self.fault_counts[kind] - before.get(kind, 0)
            if delta:
                bus.emit(
                    SimEvent(
                        "fault", -1, now_ns, data={"kind": kind, "count": delta}
                    )
                )

    # ------------------------------------------------------------------
    def probe(self, now_ns: float) -> bool:
        """Would a 1-line health ping answer promptly at *now_ns*?

        Draws from an independent RNG stream so probing frequency never
        changes the data path's fault schedule.
        """
        bus = self.bus
        if bus is not None and bus.wants("fault"):
            before = dict(self.fault_counts)
            try:
                return self._probe(now_ns)
            finally:
                self._publish_faults(bus, before, now_ns)
        return self._probe(now_ns)

    def _probe(self, now_ns: float) -> bool:
        self._fire_resets(now_ns)
        arrival = now_ns + self.inner.link.request_ns(1)
        if self.plan.stall_end(arrival) > arrival:
            return False
        if self.plan.drop_rate and self._probe_rng.random() < self.plan.drop_rate:
            return False
        return True

    def _fire_resets(self, now_ns: float) -> None:
        schedule = self.plan.reset_at
        while self._resets_fired < len(schedule) and schedule[self._resets_fired] <= now_ns:
            self.inner.manager.reset()
            self._decided.clear()  # the response buffer reboots too
            self.fault_counts["reset"] += 1
            self._resets_fired += 1

    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        # Everything not overridden (manager, clock, stats_requests,
        # mean_round_trip_ns, ...) belongs to the wrapped engine.
        return getattr(self.inner, name)
