"""Deterministic fault plans for the hybrid runtime.

A :class:`FaultPlan` is a declarative, *seeded* description of how the
"hardware" misbehaves during a run.  Five composable fault models,
mirroring the failure surface of a real CPU-FPGA deployment (the CCI
channel and the accelerator itself):

* **drop** — a link message (request or verdict) is lost; the sender's
  ack timer expires and it retransmits with exponential backoff.
* **spike** — a link message is delayed by a congestion spike.
* **corrupt** — a verdict arrives with a failing (modeled) CRC; the
  receiver NACKs and the engine retransmits, again with backoff.
* **stall** — the validation pipeline stops servicing requests for a
  wall-clock window (clock-domain loss, reconfiguration, thermal
  throttle); queued work resumes when the window ends.
* **reset** — the engine reboots at a given instant, wiping its
  signature history and reachability matrix (see
  :meth:`repro.hw.manager.ValidationManager.reset` for why this is
  *correct* but costs conservative window-overflow aborts).

Everything is driven by ``random.Random(seed)`` streams consumed in
submission order, so a fault campaign is exactly reproducible — the
property the sanitizer's chaos mode (and TM001) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: ack-timeout before a lost message is retransmitted (ns); doubles
#: per attempt (exponential backoff).
DEFAULT_RETRY_TIMEOUT_NS = 2_500.0
#: bounded link-level retries before the link declares itself down.
DEFAULT_MAX_LINK_RETRIES = 4


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative fault schedule (all rates per message)."""

    seed: int = 0
    #: P(message lost) per link crossing.
    drop_rate: float = 0.0
    #: P(congestion spike) per link crossing, and its magnitude.
    spike_rate: float = 0.0
    spike_ns: float = 20_000.0
    #: P(verdict CRC failure) per response crossing.
    corrupt_rate: float = 0.0
    #: half-open [start, end) windows during which the engine stalls.
    stall_windows: Tuple[Tuple[float, float], ...] = ()
    #: instants at which the engine resets (history/window wipe).
    reset_at: Tuple[float, ...] = ()
    #: link retransmission protocol parameters.
    retry_timeout_ns: float = DEFAULT_RETRY_TIMEOUT_NS
    max_link_retries: int = DEFAULT_MAX_LINK_RETRIES

    def __post_init__(self):
        for rate in (self.drop_rate, self.spike_rate, self.corrupt_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("fault rates must be probabilities")
        for start, end in self.stall_windows:
            if end <= start:
                raise ValueError("stall windows must be non-empty [start, end)")
        if self.max_link_retries < 0:
            raise ValueError("max_link_retries must be non-negative")

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing — the wrapper must then
        be a bit-identical pass-through (acceptance criterion)."""
        return (
            self.drop_rate == 0.0
            and self.spike_rate == 0.0
            and self.corrupt_rate == 0.0
            and not self.stall_windows
            and not self.reset_at
        )

    def stall_end(self, at_ns: float) -> float:
        """End of the stall window covering *at_ns*, or *at_ns* itself."""
        for start, end in self.stall_windows:
            if start <= at_ns < end:
                return end
        return at_ns


# ----------------------------------------------------------------------
# Built-in schedules — the fault matrix CI and the chaos benchmark run.
# Stall/reset instants are tuned to land *inside* the makespan of the
# small (scale ~0.25, 4-thread) STAMP smoke configurations — roughly
# 100-400 us of simulated time — so every fault model demonstrably
# fires in CI.  The stall window outlasts the full timeout+resubmit
# budget (3 x 50 us), forcing the ladder through software failover and
# back.
# ----------------------------------------------------------------------
def _drop(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, drop_rate=0.05)


def _spike(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, spike_rate=0.25, spike_ns=20_000.0)


def _corrupt(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, corrupt_rate=0.10)


def _stall(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, stall_windows=((30_000.0, 230_000.0),))


def _reset(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, reset_at=(40_000.0, 90_000.0))


def _mixed(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        drop_rate=0.02,
        spike_rate=0.10,
        spike_ns=10_000.0,
        corrupt_rate=0.05,
        stall_windows=((60_000.0, 120_000.0),),
        reset_at=(150_000.0,),
    )


_BUILDERS = {
    "drop": _drop,
    "spike": _spike,
    "corrupt": _corrupt,
    "stall": _stall,
    "reset": _reset,
    "mixed": _mixed,
}

#: the names every chaos matrix (CI, tests, `repro chaos --schedule all`)
#: iterates, in a stable order.
BUILTIN_SCHEDULES: Tuple[str, ...] = tuple(sorted(_BUILDERS))


def named_plan(name: str, seed: int = 0) -> FaultPlan:
    """One of the built-in fault schedules, parameterized by seed."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault schedule {name!r}; choose from {BUILTIN_SCHEDULES}"
        ) from None
    return builder(seed)


def all_plans(seed: int = 0) -> Dict[str, FaultPlan]:
    """Every built-in schedule, name -> plan."""
    return {name: named_plan(name, seed) for name in BUILTIN_SCHEDULES}
