"""Deterministic worker-fault models: chaos-testing the supervisor.

The fault models in :mod:`repro.faults.plan` perturb the *simulated*
hardware (link drops, engine stalls); the models here perturb the
*host* execution layer — the worker processes that
:class:`~repro.exec.supervise.SupervisedRunner` spawns per sweep cell.
Same philosophy as PR 2: every fault is scheduled deterministically
(explicit ``kind@cell[:attempt]`` entries or seeded rates), so a
supervision chaos campaign replays exactly and its assertions are
stable in CI.

Fault kinds (``WORKER_FAULT_KINDS``):

* ``crash`` — the worker SIGKILLs itself before reporting (models an
  OOM kill, a segfault, an operator ``kill -9``).
* ``hang`` — the worker sleeps forever without ever heartbeating
  (models a deadlock or livelock; caught by heartbeat staleness or
  the per-cell deadline).
* ``garbage`` — the worker reports a payload that is not a
  :class:`~repro.runtime.RunStats` dict (models a corrupted IPC
  message; caught by the supervisor's decode validation).
* ``partial-write`` — the cell completes but its journal record is
  torn mid-write (models a crash inside ``write(2)``; caught by the
  journal's per-record checksum on the next load).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

WORKER_FAULT_KINDS = ("crash", "hang", "garbage", "partial-write")


@dataclass(frozen=True)
class WorkerFaultPlan:
    """A deterministic schedule of worker faults for one sweep.

    Two composable sources, explicit entries winning over rates:

    * ``entries`` — exact ``(cell_index, attempt, kind)`` triples; an
      attempt of ``None`` fires on *every* attempt of that cell
      (the way to manufacture a poison cell).
    * seeded per-attempt rates — each ``(cell, attempt)`` pair draws
      one seeded RNG sample; the rates partition [0, 1) in a fixed
      order so a given seed yields the same faults forever.
    """

    entries: Tuple[Tuple[int, Optional[int], str], ...] = ()
    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    garbage_rate: float = 0.0
    partial_write_rate: float = 0.0

    def __post_init__(self):
        for entry in self.entries:
            index, attempt, kind = entry
            if kind not in WORKER_FAULT_KINDS:
                raise ValueError(
                    f"unknown worker fault kind {kind!r}; "
                    f"expected one of {WORKER_FAULT_KINDS}"
                )
            if index < 0 or (attempt is not None and attempt < 0):
                raise ValueError(f"negative cell/attempt in entry {entry!r}")

    def fault_for(self, index: int, attempt: int) -> Optional[str]:
        """The fault (if any) for attempt *attempt* of cell *index*."""
        for cell, when, kind in self.entries:
            if cell == index and (when is None or when == attempt):
                return kind
        total = (
            self.crash_rate
            + self.hang_rate
            + self.garbage_rate
            + self.partial_write_rate
        )
        if total <= 0.0:
            return None
        draw = random.Random(f"worker:{self.seed}:{index}:{attempt}").random()
        edge = 0.0
        for kind, rate in (
            ("crash", self.crash_rate),
            ("hang", self.hang_rate),
            ("garbage", self.garbage_rate),
            ("partial-write", self.partial_write_rate),
        ):
            edge += rate
            if draw < edge:
                return kind
        return None

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "WorkerFaultPlan":
        """Build a plan from CLI syntax: ``kind@cell[:attempt],...``.

        ``crash@2`` crashes every attempt of cell 2 (a poison cell);
        ``hang@3:0`` hangs only cell 3's first attempt (recovered by
        retry).  Whitespace around entries is ignored.
        """
        entries = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "@" not in chunk:
                raise ValueError(
                    f"bad worker-fault entry {chunk!r}: expected kind@cell[:attempt]"
                )
            kind, _, where = chunk.partition("@")
            kind = kind.strip()
            cell_text, sep, attempt_text = where.partition(":")
            try:
                index = int(cell_text)
                attempt = int(attempt_text) if sep else None
            except ValueError:
                raise ValueError(
                    f"bad worker-fault entry {chunk!r}: cell/attempt must be ints"
                ) from None
            entries.append((index, attempt, kind))
        return cls(entries=tuple(entries), seed=seed)
