"""Fault injection + graceful degradation for the hybrid runtime.

The paper's runtime trusts the FPGA engine and the CCI link
unconditionally; production hardware does not deserve that trust.
This package supplies both halves of the robustness story:

* :class:`FaultPlan` / :func:`named_plan` — seeded, deterministic,
  composable fault models (message drop, latency spike, CRC-detected
  verdict corruption, engine stall, engine reset).
* :class:`FaultyLink` — an :class:`~repro.hw.InterconnectLink` facade
  injecting per-message faults with bounded retransmission.
* :class:`ChaosValidationEngine` — an
  :class:`~repro.hw.FpgaValidationEngine` wrapper: same ``submit``
  surface, fault-perturbed timing, exactly-once validation under
  resubmission, :class:`ValidationTimeout` when patience runs out.
* :class:`DegradationManager` — the ladder inside ``RococoTMBackend``:
  timeout -> bounded resubmit -> software-validation failover (shared
  ValidationManager, decision-identical) -> irrevocable global-lock
  mode; health-probe-driven fail-back.
* :func:`chaos_sanitize` — the fault matrix replayed through the
  sanitizer's serializability/opacity oracles (see docs/FAULTS.md).
* :class:`WorkerFaultPlan` — deterministic *host*-side faults (worker
  crash / hang / garbage-output / partial-write) chaos-testing the
  supervised execution layer in :mod:`repro.exec.supervise`.
"""

from .chaos import build_chaos_backend, chaos_sanitize
from .degradation import (
    MODE_FPGA,
    MODE_SOFTWARE,
    DegradationManager,
    DegradationPolicy,
    ValidationUnavailable,
)
from .engine import ChaosValidationEngine, ValidationTimeout
from .link import FaultyLink, LinkDown
from .plan import BUILTIN_SCHEDULES, FaultPlan, all_plans, named_plan
from .worker import WORKER_FAULT_KINDS, WorkerFaultPlan

__all__ = [
    "BUILTIN_SCHEDULES",
    "WORKER_FAULT_KINDS",
    "WorkerFaultPlan",
    "ChaosValidationEngine",
    "DegradationManager",
    "DegradationPolicy",
    "FaultPlan",
    "FaultyLink",
    "LinkDown",
    "MODE_FPGA",
    "MODE_SOFTWARE",
    "ValidationTimeout",
    "ValidationUnavailable",
    "all_plans",
    "build_chaos_backend",
    "chaos_sanitize",
    "named_plan",
]
