"""A fault-injecting facade over :class:`repro.hw.InterconnectLink`.

:class:`FaultyLink` presents the exact interface the engines consume
(``request_ns`` / ``response_ns`` / ``lines_for_addresses`` /
``round_trip_ns``) but each crossing consults the :class:`FaultPlan`:

* a *spike* adds ``spike_ns`` of congestion delay;
* a *drop* loses the message — the sender's ack timer
  (``retry_timeout_ns``, doubling per attempt) expires and it
  retransmits;
* a *corrupt* response arrives with a failing CRC — the receiver
  NACKs, and the retransmission again backs off exponentially.

Retries are bounded by ``max_link_retries``; exhausting them raises
:class:`LinkDown` carrying the time already burned, which the engine
wrapper converts into a validation timeout for the degradation ladder.

With a null plan every method returns exactly the base link's number —
the wrapper adds no latency and consumes no randomness.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Optional

from ..hw.link import InterconnectLink
from .plan import FaultPlan


class LinkDown(Exception):
    """Bounded link-level retries exhausted; carries the wasted time."""

    def __init__(self, elapsed_ns: float, cause: str):
        super().__init__(f"link down after retries ({cause}, {elapsed_ns:.0f} ns wasted)")
        self.elapsed_ns = elapsed_ns
        self.cause = cause


class FaultyLink:
    """Drop-in ``InterconnectLink`` facade with injected message faults."""

    def __init__(
        self,
        base: InterconnectLink,
        plan: FaultPlan,
        rng: Optional[random.Random] = None,
        counters: Optional[Counter] = None,
    ):
        self.base = base
        self.plan = plan
        self.rng = rng if rng is not None else random.Random(plan.seed)
        #: injected-fault tally, shared with the owning engine wrapper.
        self.counters = counters if counters is not None else Counter()
        #: total link-level retransmissions (drop + CRC).
        self.retries = 0

    # ------------------------------------------------------------------
    # InterconnectLink interface
    # ------------------------------------------------------------------
    @property
    def to_device_ns(self) -> float:
        return self.base.to_device_ns

    @property
    def from_device_ns(self) -> float:
        return self.base.from_device_ns

    @property
    def beat_ns(self) -> float:
        return self.base.beat_ns

    @property
    def round_trip_ns(self) -> float:
        return self.base.round_trip_ns

    @staticmethod
    def lines_for_addresses(n_addresses: int) -> int:
        return InterconnectLink.lines_for_addresses(n_addresses)

    def request_ns(self, cachelines: int) -> float:
        """To-device crossing; drops/spikes apply, CRC does not (the
        modeled CRC protects the verdict path, §5.2's response word)."""
        return self._leg(self.base.request_ns(cachelines), crc=False)

    def response_ns(self, cachelines: int = 1) -> float:
        """From-device crossing; the verdict carries the modeled CRC."""
        return self._leg(self.base.response_ns(cachelines), crc=True)

    # ------------------------------------------------------------------
    def _leg(self, base_ns: float, crc: bool) -> float:
        plan = self.plan
        if plan.is_null:
            return base_ns
        delay = 0.0
        attempt = 0
        while True:
            if plan.spike_rate and self.rng.random() < plan.spike_rate:
                self.counters["spike"] += 1
                delay += plan.spike_ns
            lost = bool(plan.drop_rate) and self.rng.random() < plan.drop_rate
            corrupted = (
                not lost
                and crc
                and bool(plan.corrupt_rate)
                and self.rng.random() < plan.corrupt_rate
            )
            if not lost and not corrupted:
                return delay + base_ns
            backoff = plan.retry_timeout_ns * (2.0 ** attempt)
            if lost:
                # Nothing arrived: the sender burns a full ack timeout.
                self.counters["drop"] += 1
                delay += backoff
            else:
                # The message crossed but failed its CRC: the wasted
                # crossing is paid before the NACK'd retransmission.
                self.counters["corrupt"] += 1
                delay += base_ns + backoff
            self.retries += 1
            attempt += 1
            if attempt > plan.max_link_retries:
                raise LinkDown(delay, "drop" if lost else "corrupt")
