"""The degradation ladder for the hybrid runtime's validation path.

``RococoTMBackend.commit`` used to block on ``engine.submit()``
unconditionally — one lost verdict wedged the whole system.  The
:class:`DegradationManager` turns that single call into a ladder:

1. **FPGA path** (normal): submit to the primary engine.  A
   :class:`~repro.faults.engine.ValidationTimeout` charges the wait
   and triggers a bounded **resubmission** (the engine's response
   buffer makes resubmission exactly-once).
2. **Software failover**: after ``max_resubmits`` fruitless attempts
   the validation path fails over to a
   :class:`~repro.hw.SoftwareValidationEngine` *sharing the primary's
   ValidationManager*, so decisions continue from the same signature
   window and matrix — decision-identical to §5.1's dedicated-thread
   baseline, just slower.  Health probes (an independent RNG stream on
   the chaos engine) run every ``probe_interval_ns``; after
   ``probe_successes`` consecutive green probes the path fails back to
   the FPGA.
3. **Irrevocable global-lock mode** (last rung): with software
   failover disabled (or absent), :class:`ValidationUnavailable`
   propagates to the backend, which aborts the transaction and re-runs
   it irrevocably under the global lock — the §4.2 escape hatch, which
   needs no validation at all.

A fault-free primary never raises, so with a pristine engine the
ladder is a zero-cost pass-through (bit-identical behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hw.engine import ValidationResponse
from .engine import ValidationTimeout

MODE_FPGA = "fpga"
MODE_SOFTWARE = "software"


class ValidationUnavailable(Exception):
    """Every rung short of the global lock failed; ``at_ns`` is when
    the CPU gave up (timeout waits already charged)."""

    def __init__(self, at_ns: float):
        super().__init__(f"validation unavailable at {at_ns:.0f} ns")
        self.at_ns = at_ns


@dataclass(frozen=True)
class DegradationPolicy:
    """Knobs of the ladder (times in simulated ns)."""

    #: CPU-side patience per submission attempt.
    timeout_ns: float = 50_000.0
    #: resubmissions to the primary before failing over.
    max_resubmits: int = 2
    #: rung 2 enabled?  False jumps straight to the global-lock rung.
    software_failover: bool = True
    #: health-probe cadence while failed over, and how many consecutive
    #: green probes earn the fail-back.
    probe_interval_ns: float = 30_000.0
    probe_successes: int = 2
    #: extra driver backoff multiplier after fault-caused aborts.
    fault_backoff_scale: float = 8.0


class DegradationManager:
    """Routes validation submissions down the degradation ladder."""

    def __init__(
        self,
        primary,
        software=None,
        policy: Optional[DegradationPolicy] = None,
    ):
        self.primary = primary
        self.software = software
        self.policy = policy or DegradationPolicy()
        #: emission surface for failover/failback transitions — anything
        #: satisfying :class:`repro.runtime.driver.Emitter` (set by the
        #: owning backend's ``attach``; None outside a simulation).
        self.bus = None
        self.mode = MODE_FPGA
        self.timeouts = 0
        self.resubmits = 0
        self.failovers = 0
        self.failbacks = 0
        self.software_validations = 0
        self.probes = 0
        #: instants of each transition, for failover-latency reporting.
        self.failover_at: List[float] = []
        self.failback_at: List[float] = []
        self._next_probe_ns = 0.0
        self._probe_ok = 0

    # ------------------------------------------------------------------
    def submit(self, request, now_ns: float, stats=None) -> ValidationResponse:
        """Validate *request*, degrading as needed; may raise
        :class:`ValidationUnavailable` (the caller's global-lock rung).
        """
        if self.mode == MODE_SOFTWARE:
            self._maybe_probe(now_ns, stats)
        if self.mode == MODE_SOFTWARE:
            return self._submit_software(request, now_ns, stats)

        at = now_ns
        resubmits = 0
        while True:
            try:
                return self.primary.submit(request, at)
            except ValidationTimeout as timeout:
                self.timeouts += 1
                if stats is not None:
                    stats.validation_timeouts += 1
                at = max(at, timeout.at_ns)
                if resubmits >= self.policy.max_resubmits:
                    break
                resubmits += 1
                self.resubmits += 1
                if stats is not None:
                    stats.validation_resubmits += 1

        if self.software is None or not self.policy.software_failover:
            raise ValidationUnavailable(at)
        self._failover(at, stats)

        # The primary may have decided the request before its response
        # was lost; honour that verdict rather than re-validating.
        recall = getattr(self.primary, "recall", None)
        verdict = recall(request.label) if recall is not None else None
        if verdict is not None:
            return ValidationResponse(
                verdict=verdict,
                sent_ns=now_ns,
                arrived_ns=at,
                started_ns=at,
                finished_ns=at,
                ready_ns=at,
            )
        return self._submit_software(request, at, stats)

    # ------------------------------------------------------------------
    def _submit_software(self, request, now_ns: float, stats) -> ValidationResponse:
        self.software_validations += 1
        if stats is not None:
            stats.software_validations += 1
        return self.software.submit(request, now_ns)

    def _failover(self, at_ns: float, stats) -> None:
        self.mode = MODE_SOFTWARE
        self.failovers += 1
        self.failover_at.append(at_ns)
        if stats is not None:
            stats.failovers += 1
        self._next_probe_ns = at_ns + self.policy.probe_interval_ns
        self._probe_ok = 0
        self._publish("failover", at_ns)

    def _publish(self, kind: str, at_ns: float) -> None:
        """Publish a ladder transition (wants()-gated; lazily imported
        to keep the faults<->runtime import cycle one-directional)."""
        if self.bus is None or not self.bus.wants(kind):
            return
        from ..runtime.events import SimEvent

        self.bus.emit(
            SimEvent(
                kind,
                -1,
                at_ns,
                data={"mode": self.mode, "timeouts": self.timeouts},
            )
        )

    def _maybe_probe(self, now_ns: float, stats) -> None:
        if now_ns < self._next_probe_ns:
            return
        self._next_probe_ns = now_ns + self.policy.probe_interval_ns
        self.probes += 1
        probe = getattr(self.primary, "probe", None)
        healthy = bool(probe(now_ns)) if probe is not None else True
        if not healthy:
            self._probe_ok = 0
            return
        self._probe_ok += 1
        if self._probe_ok >= self.policy.probe_successes:
            self.mode = MODE_FPGA
            self.failbacks += 1
            self.failback_at.append(now_ns)
            if stats is not None:
                stats.failbacks += 1
            self._publish("failback", now_ns)
