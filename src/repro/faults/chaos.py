"""Chaos drivers: build fault-injected backends, replay the fault
matrix through the sanitizer's oracles.

Runtime imports are deferred into the functions: ``repro.runtime``
imports this package for the degradation ladder, and these helpers
close the loop in the other direction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .degradation import DegradationPolicy
from .engine import ChaosValidationEngine
from .plan import BUILTIN_SCHEDULES, FaultPlan, named_plan


def build_chaos_backend(
    schedule: str = "mixed",
    fault_seed: int = 0,
    window: int = 64,
    plan: Optional[FaultPlan] = None,
    policy: Optional[DegradationPolicy] = None,
    irrevocable_after: Optional[int] = None,
):
    """A ``RococoTMBackend`` whose engine runs under a fault plan."""
    from ..hw import FpgaValidationEngine
    from ..runtime import RococoTMBackend

    plan = plan if plan is not None else named_plan(schedule, fault_seed)
    policy = policy or DegradationPolicy()
    engine = ChaosValidationEngine(
        FpgaValidationEngine(window=window), plan, timeout_ns=policy.timeout_ns
    )
    return RococoTMBackend(
        window=window,
        engine=engine,
        degradation=policy,
        irrevocable_after=irrevocable_after,
    )


def chaos_sanitize(
    workload_cls,
    schedules: Optional[Sequence[str]] = None,
    n_threads: int = 4,
    scale: float = 0.25,
    seed: int = 1,
    fault_seed: int = 0,
) -> List[Tuple[str, object, object]]:
    """Replay every fault schedule through the sanitizer's oracles.

    Runs *workload_cls* under a chaos-wrapped ROCoCoTM once per
    schedule, fully sanitized (serializability, opacity, doomed reads,
    lost updates, write-back races, workload invariants).  Returns
    ``[(schedule, report, backend), ...]`` — correctness must be
    invariant under every fault the framework can inject, so any
    non-ok report is a bug.
    """
    from ..sanitizer.dynamic import run_sanitized

    results: List[Tuple[str, object, object]] = []
    for name in schedules if schedules is not None else BUILTIN_SCHEDULES:
        backend = build_chaos_backend(name, fault_seed)
        report, _, _ = run_sanitized(
            workload_cls, backend, n_threads, scale=scale, seed=seed
        )
        results.append((name, report, backend))
    return results
