"""The simulated flat heap.

One address = one cell holding an arbitrary Python value (a 64-bit
word in the real system; pointer-typed cells hold other addresses).
A bump allocator hands out fresh ranges; there is no free — STAMP's
transactional phases are allocation-monotone and the simulator's runs
are short-lived.

Cachelines group 8 consecutive cells (64-byte lines of 64-bit words),
which the TSX model uses for conflict granularity — false sharing
included, as in the real hardware.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

CELLS_PER_CACHELINE = 8


class Memory:
    """Word-addressed heap with direct (non-transactional) access."""

    def __init__(self) -> None:
        self._cells: Dict[int, Any] = {}
        self._brk = 0
        #: store observers: ``fn(addr, value)`` after every store.
        #: Backends with value caches (SI-MVCC's version chains) and
        #: the sanitizer subscribe to see *direct* stores — workload
        #: phase code writing under a barrier — which would otherwise
        #: silently invalidate their bookkeeping.
        self._observers: List = []

    def alloc(self, cells: int, align_line: bool = False) -> int:
        """Reserve *cells* consecutive addresses; returns the base.

        ``align_line`` starts the block on a cacheline boundary, which
        data structures use to avoid gratuitous false sharing (as a
        cache-conscious C implementation would).
        """
        if cells < 1:
            raise ValueError("allocation must cover at least one cell")
        if align_line and self._brk % CELLS_PER_CACHELINE:
            self._brk += CELLS_PER_CACHELINE - self._brk % CELLS_PER_CACHELINE
        base = self._brk
        self._brk += cells
        return base

    def load(self, addr: int) -> Any:
        """Direct load; unwritten cells read as 0 (zeroed heap)."""
        self._check(addr)
        return self._cells.get(addr, 0)

    def subscribe(self, observer) -> None:
        """Register ``observer(addr, value)`` to run after each store."""
        if observer not in self._observers:
            self._observers.append(observer)

    def store(self, addr: int, value: Any) -> None:
        self._check(addr)
        self._cells[addr] = value
        for observer in self._observers:
            observer(addr, value)

    def store_many(self, base: int, values: Iterable[Any]) -> None:
        for offset, value in enumerate(values):
            self.store(base + offset, value)

    def load_many(self, base: int, count: int) -> List[Any]:
        return [self.load(base + i) for i in range(count)]

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self._brk:
            raise IndexError(f"address {addr} outside allocated heap [0, {self._brk})")

    @property
    def allocated(self) -> int:
        return self._brk

    @staticmethod
    def cacheline(addr: int) -> int:
        return addr // CELLS_PER_CACHELINE
