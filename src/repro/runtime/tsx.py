"""Best-effort HTM in the style of Intel TSX (§6.2's HTM baseline).

The paper implements its HTM baseline on real TSX; we model the
mechanisms §6.2-6.3 blames for its behaviour:

* **Eager conflict detection at cacheline granularity** through the
  coherence protocol, requester-wins: touching a line inside another
  active transaction's conflicting set aborts *the other* transaction
  immediately (its undo is applied on the spot), which is what makes
  "an aborted transaction cause more transactions to abort in a
  chain".
* **Eager version management**: writes go to memory in place with an
  undo log; aborts restore and retry.
* **Capacity limits**: the write set must fit the L1 (512 lines), the
  read set the L2-backed tracking structure (4096 lines); overflow is
  an unconditional abort that no retry can fix — after the retry
  budget such transactions serialize on the fallback lock.
* **Constant retry policy**: 5 hardware attempts (1 + 4 retries, the
  paper's best-performing constant), then a global fallback lock.
  Taking the fallback lock dooms every in-flight hardware transaction
  (the lock word sits in each one's read set), and new transactions
  wait for the lock to clear — the 83.3% abort-rate ceiling of
  footnote 10 (5 aborts per 6 attempts) emerges from exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from .api import TransactionAborted
from .backend import TMBackend
from .coarse_lock import GlobalLock
from .memory import Memory

XBEGIN_NS = 38.0
XEND_NS = 14.0
ACCESS_NS = 2.0          # cache-speed, uninstrumented
ABORT_BASE_NS = 120.0    # pipeline flush + state restore
UNDO_PER_LINE_NS = 3.0

#: Per-operation probability of a microarchitectural (spurious) abort:
#: interrupts, TLB activity, unlucky associativity evictions.  Small on
#: dedicated cores; an order of magnitude worse once hyper-threading
#: makes two transactions share one L1 — the "indeterministic
#: micro-architectural conditions" of §6.2 that cap TSX's scaling.
SPURIOUS_PER_OP = 0.003
SPURIOUS_PER_OP_SMT = 0.15

HARDWARE_ATTEMPTS = 5    # 1 initial + 4 retries (§6.2)
WRITE_CAPACITY_LINES = 512    # 32 KiB L1 / 64 B
#: Effective read-set capacity.  Architecturally reads are tracked
#: beyond the L1, but evictions of tracked lines abort in practice, so
#: the usable read footprint is far below the cache size — the
#: "spurious aborts introduced by architectural limitations" of §1.
#: 256 lines (16 KiB) reflects the eviction-prone regime that makes
#: big-read-set workloads (labyrinth) hopeless on real TSX.
READ_CAPACITY_LINES = 256


@dataclass
class _HwTxn:
    read_lines: Set[int] = field(default_factory=set)
    write_lines: Set[int] = field(default_factory=set)
    undo: Dict[int, Any] = field(default_factory=dict)
    doomed: Optional[str] = None


class TsxBackend(TMBackend):
    """Requester-wins best-effort HTM with a global-lock fallback."""

    name = "TSX"
    metadata_footprint = 0.35  # tracking lives in caches, not memory
    backoff_scale = 0.1        # constant retry policy (§6.2)
    #: ``_spurious_state`` is the deterministic LCG behind capacity/
    #: interrupt aborts — global by design, advanced atomically at one
    #: simulated instant per operation (TM003).
    _sanitizer_locked = ("_spurious_state",)

    def __init__(self, hardware_attempts: int = HARDWARE_ATTEMPTS) -> None:
        super().__init__()
        if hardware_attempts < 1:
            raise ValueError("need at least one hardware attempt")
        self.hardware_attempts = hardware_attempts
        self.fallback = GlobalLock()
        self._hw: Dict[int, _HwTxn] = {}
        self._fallback_mode: Set[int] = set()
        self._failures: Dict[int, int] = {}
        self._spurious_state = 0x9E3779B97F4A7C15

    # ------------------------------------------------------------------
    def begin(self, tid: int, now: float) -> float:
        if self._failures.get(tid, 0) >= self.hardware_attempts:
            # Fallback path: serialize under the global lock.
            at = self.fallback.acquire(tid, now, self.driver)
            self._fallback_mode.add(tid)
            self._doom_all_hardware("cpu-lock-subscription")
            return at
        if self.fallback.held:
            # The lock word is in every hardware txn's read set, so a
            # held lock aborts the attempt immediately.  Crucially the
            # failed attempt *counts toward the retry budget*: threads
            # spinning against a fallback holder exhaust their retries
            # and take the lock themselves — the "lemming effect" that
            # turns one fallback into a serial convoy and produces the
            # §6.3 abort avalanche.
            raise TransactionAborted("cpu-lock-subscription")
        self._hw[tid] = _HwTxn()
        return now + self.scaled(XBEGIN_NS)

    # ------------------------------------------------------------------
    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        if tid in self._fallback_mode:
            return self.memory.load(addr), now + self.scaled(ACCESS_NS)
        txn = self._checked(tid)
        self._spurious_check(tid)
        line = Memory.cacheline(addr)
        # Requester wins: evict conflicting *writers* elsewhere.
        self._kill_conflicting(tid, line, writers_only=True)
        txn.read_lines.add(line)
        if len(txn.read_lines) > READ_CAPACITY_LINES:
            raise self._abort(tid, "cpu-capacity-read")
        return self.memory.load(addr), now + self.scaled(ACCESS_NS)

    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        if tid in self._fallback_mode:
            self.memory.store(addr, value)
            return now + self.scaled(ACCESS_NS)
        txn = self._checked(tid)
        self._spurious_check(tid)
        line = Memory.cacheline(addr)
        self._kill_conflicting(tid, line, writers_only=False)
        txn.write_lines.add(line)
        if len(txn.write_lines) > WRITE_CAPACITY_LINES:
            raise self._abort(tid, "cpu-capacity-write")
        txn.undo.setdefault(addr, self.memory.load(addr))
        self.memory.store(addr, value)
        return now + self.scaled(ACCESS_NS)

    # ------------------------------------------------------------------
    def commit(self, tid: int, now: float) -> float:
        if tid in self._fallback_mode:
            self._fallback_mode.discard(tid)
            self._failures[tid] = 0
            return self.fallback.release(tid, now, self.driver)
        txn = self._checked(tid)
        if not txn.write_lines:
            self.stats.read_only_commits += 1
        del self._hw[tid]
        self._failures[tid] = 0
        return now + self.scaled(XEND_NS)

    def rollback(self, tid: int, now: float, cause: str) -> float:
        self._failures[tid] = self._failures.get(tid, 0) + 1
        txn = self._hw.pop(tid, None)
        cost = ABORT_BASE_NS
        if txn is not None:
            # Undo not yet applied (self-detected abort).
            self._apply_undo(txn)
            cost += UNDO_PER_LINE_NS * len(txn.write_lines)
        return now + self.scaled(cost)

    # ------------------------------------------------------------------
    def _spurious_check(self, tid: int) -> None:
        """Deterministic pseudo-random microarchitectural abort."""
        if self.driver.n_threads <= self.driver.cost_model.physical_cores:
            rate = SPURIOUS_PER_OP
        else:
            rate = SPURIOUS_PER_OP_SMT
        self._spurious_state = (
            self._spurious_state * 6364136223846793005 + 1442695040888963407
        ) & 0xFFFFFFFFFFFFFFFF
        if (self._spurious_state >> 11) / float(1 << 53) < rate:
            raise TransactionAborted("cpu-spurious")

    def _checked(self, tid: int) -> _HwTxn:
        txn = self._hw.get(tid)
        if txn is None:
            raise TransactionAborted("cpu-conflict")  # doomed remotely
        if txn.doomed:
            del self._hw[tid]
            raise TransactionAborted(txn.doomed)
        return txn

    def _abort(self, tid: int, cause: str) -> TransactionAborted:
        # Keep state for rollback() to undo.
        return TransactionAborted(cause)

    def _kill_conflicting(self, tid: int, line: int, writers_only: bool) -> None:
        """Coherence-driven remote aborts: requester wins."""
        for other_tid, other in list(self._hw.items()):
            if other_tid == tid or other.doomed:
                continue
            conflict = line in other.write_lines or (
                not writers_only and line in other.read_lines
            )
            if conflict:
                self._apply_undo(other)
                other.doomed = "cpu-conflict"

    def _doom_all_hardware(self, cause: str) -> None:
        for other in self._hw.values():
            if not other.doomed:
                self._apply_undo(other)
                other.doomed = cause

    def _apply_undo(self, txn: _HwTxn) -> None:
        # Reachable from read(): requester-wins coherence lets a *read*
        # evict a conflicting writer, whose speculative in-place stores
        # (eager version management) must be rolled back here.  The
        # store restores the pre-transaction value of the *evicted*
        # transaction — it is the modeled abort, not a read effect.
        for addr, old in txn.undo.items():
            self.memory.store(addr, old)  # tm: ignore[TM106]
        txn.undo.clear()
