"""The TM backend interface and shared machinery.

A backend implements the five operations the thread driver calls —
begin / read / write / commit / rollback — each returning the
simulated time at which the calling thread may proceed.  Conflicts
surface in two ways:

* raising :class:`TransactionAborted` — the driver rolls back,
  backs off and retries the body from scratch;
* raising :class:`ParkThread` — the thread blocks with no wake time
  of its own; the backend must later call ``driver.wake_at(tid, at)``
  (used for lock queues).  The parked operation is re-issued on wake.

Backends program against the narrow :class:`repro.runtime.driver.
Driver` protocol — ``attach`` receives the driver (the Simulator
implements it) and a backend may only use the protocol surface:
``n_threads`` / ``memory`` / ``stats`` / ``cost_model`` / ``bus``
plus ``step_cost`` / ``park`` / ``wake_at`` / ``wants`` / ``emit``.

``CostModel`` centralizes the machine parameters shared by all
backends; per-backend per-operation costs live in each backend, next
to the logic they price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from .api import TransactionAborted
from .memory import Memory
from .stats import RunStats


class ParkThread(Exception):
    """The operation cannot complete yet; re-issue when woken."""


@dataclass(frozen=True)
class CostModel:
    """Machine-level timing parameters (HARP2's Xeon, §6.2).

    ``smt_penalty`` models the hyper-threading cache-thrash regime the
    paper observes between 14 and 28 threads: once ``n_threads``
    exceeds ``physical_cores``, every thread's compute and TM-metadata
    operations slow down by ``1 + (smt_penalty - 1) * footprint``,
    where ``footprint`` is the backend's relative metadata pressure
    (ROCoCoTM's compact signatures < TinySTM's ownership table).
    """

    physical_cores: int = 14
    smt_penalty: float = 1.45
    #: backoff base after an abort (ns); exponential with attempts.
    backoff_base_ns: float = 60.0
    backoff_cap_ns: float = 4000.0

    def compute_scale(self, n_threads: int, footprint: float = 1.0) -> float:
        if n_threads <= self.physical_cores:
            return 1.0
        return 1.0 + (self.smt_penalty - 1.0) * footprint


class TMBackend:
    """Abstract backend; concrete systems override the five hooks.

    ``metadata_footprint`` scales the SMT penalty (see CostModel).
    """

    name = "abstract"
    metadata_footprint = 1.0
    #: multiplier on the driver's exponential backoff after aborts.
    #: STM backends keep 1.0; the TSX model uses a near-zero value
    #: because the paper's HTM retries on a constant policy — which is
    #: precisely what lets fallback convoys (the lemming effect) form.
    backoff_scale = 1.0

    def __init__(self) -> None:
        self.memory: Optional[Memory] = None
        self.stats: Optional[RunStats] = None
        self.driver = None
        self._scale = 1.0

    # -- deprecated alias (pre-Driver spelling) -------------------------
    @property
    def simulator(self):
        return self.driver

    # ------------------------------------------------------------------
    def attach(self, driver) -> None:
        """Wire the backend to a :class:`repro.runtime.driver.Driver`
        before a run (the Simulator implements the protocol)."""
        self.driver = driver
        self.memory = driver.memory
        self.stats = driver.stats
        if hasattr(driver, "step_cost"):
            self._scale = driver.step_cost(1.0, self.metadata_footprint)
        else:  # bare fakes exposing only the attribute surface
            self._scale = driver.cost_model.compute_scale(
                driver.n_threads, self.metadata_footprint
            )

    def scaled(self, ns: float) -> float:
        """A CPU-side cost under the current SMT regime."""
        return ns * self._scale

    # ------------------------------------------------------------------
    def local_threads(self, tid: int) -> int:
        """How many threads contend for the cores *tid* runs on.

        Single-node backends share one socket: every thread sees all
        ``n_threads`` and the CostModel's SMT regime is global (the
        pre-cluster behaviour).  A multi-node backend
        (:class:`repro.cluster.ClusterTMBackend`) pins each thread to
        its home node and reports only that node's occupancy, so SMT
        pressure is per node.  Called by the Simulator after
        ``attach`` (the driver is available)."""
        return self.driver.n_threads

    # ------------------------------------------------------------------
    # The five hooks.  All times are absolute simulated ns.
    # ------------------------------------------------------------------
    def begin(self, tid: int, now: float) -> float:
        """Start an attempt; returns the time execution may proceed."""
        raise NotImplementedError

    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        """Transactional load: (value, ready_time)."""
        raise NotImplementedError

    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        """Transactional store; returns ready time."""
        raise NotImplementedError

    def commit(self, tid: int, now: float) -> float:
        """Attempt to commit; returns ready time or raises."""
        raise NotImplementedError

    def rollback(self, tid: int, now: float, cause: str) -> float:
        """Clean up after an abort; returns ready time."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def abort_backoff_scale(self, cause: str) -> float:
        """Extra driver-backoff multiplier for aborts of *cause*.

        Backends override this to park threads harder after aborts
        that signal an environmental condition rather than contention
        — e.g. ROCoCoTM's validation-path outages, where hammering the
        dead engine only burns timeouts.
        """
        return 1.0

    # ------------------------------------------------------------------
    def run_finished(self) -> None:
        """Hook for end-of-run bookkeeping (optional)."""
