"""ROCoCoTM: the paper's hybrid TM (section 5).

The CPU side implements Algorithm 1 verbatim over thread-local
bloom-filter signatures — no per-location metadata, no atomics on the
fast path:

* ``GlobalTS`` counts committed writing transactions; the
  ``CommitQueue`` holds each one's write-set signature.
* Every read advances ``LocalTS`` over the commit queue, uniting the
  missed write signatures into a ``TempSet``.  While the read-set
  signature stays disjoint from the updates, the snapshot *extends*
  (``ValidTS = LocalTS``, Fig. 8(b)); once it overlaps, the snapshot
  freezes and the accumulated ``MissSet`` must never be read again
  (Fig. 8(c)/(d)), or the transaction aborts on the CPU — the fast
  fail path that never pays out-of-core latency.
* The read-set signature is summarized per 8-address sub-signature:
  a whole-set overlap triggers per-subset re-intersection, keeping
  conflict resolution O(1) typical / O(r/8) worst case (§5.3).
* The ``UpdateSet`` holds the signatures of transactions currently
  writing back — commit-time locking: a reader hitting it backs off
  until the write-back completes (or aborts if its snapshot already
  froze).

Writing transactions ship their read/write *addresses* and ``ValidTS``
to the FPGA engine (:mod:`repro.hw`) and wait for the verdict; the
engine's sliding-window ROCoCo decides.  Read-only transactions and
empty-write-set transactions commit directly on the CPU (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..faults.degradation import (
    DegradationManager,
    DegradationPolicy,
    ValidationUnavailable,
)
from ..hw import FpgaValidationEngine, SoftwareValidationEngine, ValidationRequest
from ..signatures import BloomSignature, SignatureConfig
from .api import TransactionAborted
from .backend import TMBackend
from .coarse_lock import GlobalLock
from .events import SimEvent

BEGIN_NS = 10.0
READ_BASE_NS = 6.0          # raw load + signature insert
WRITE_NS = 6.0              # redo-log append + signature insert
TEMPSET_PER_ENTRY_NS = 3.0  # one 512-bit OR from the commit queue
INTERSECT_NS = 4.0          # one signature intersection (AVX2)
SUBSET_SIZE = 8             # addresses per read-set sub-signature
COMMIT_RO_NS = 5.0
WRITEBACK_PER_WORD_NS = 7.0
ROLLBACK_NS = 14.0


@dataclass
class _TxnState:
    local_ts: int
    valid_ts: int
    frozen: bool = False                    # MissSet != empty
    read_addrs: List[int] = field(default_factory=list)
    read_sig: BloomSignature = None         # type: ignore[assignment]
    sub_sigs: List[BloomSignature] = field(default_factory=list)
    write_addrs: List[int] = field(default_factory=list)
    write_sig: BloomSignature = None        # type: ignore[assignment]
    redo: Dict[int, Any] = field(default_factory=dict)
    miss_sig: BloomSignature = None         # type: ignore[assignment]


@dataclass
class _UpdateEntry:
    """A committing transaction's write signature, live during write-back."""

    signature: BloomSignature
    end_ns: float


class RococoTMBackend(TMBackend):
    """The hybrid CPU+FPGA TM of section 5."""

    name = "ROCoCoTM"
    #: compact global metadata (signatures only) — the smallest
    #: footprint of the contenders (§6.3's 28-thread argument).
    metadata_footprint = 0.55
    #: ``_updates`` is the UpdateSet (§5.3): entries are appended only
    #: inside the commit protocol; the read path merely prunes entries
    #: whose write-back interval has elapsed, which is idempotent and
    #: happens at a single simulated instant (TM003).
    _sanitizer_locked = ("_updates",)

    def __init__(
        self,
        window: int = 64,
        signature_config: Optional[SignatureConfig] = None,
        engine: Optional[FpgaValidationEngine] = None,
        irrevocable_after: Optional[int] = None,
        degradation: Optional[DegradationPolicy] = None,
    ):
        """``irrevocable_after``: consecutive aborts after which a
        transaction re-executes *irrevocably* under a global lock —
        the forward-progress escape hatch §4.2 prescribes for long
        transactions starved by sliding-window overflow.  None (the
        paper's evaluated configuration) disables it.

        ``degradation``: the validation-path fault-tolerance ladder
        (see docs/FAULTS.md).  Commit submissions go through a
        :class:`DegradationManager`: timeout -> bounded resubmission ->
        failover to a :class:`SoftwareValidationEngine` sharing the
        primary's ValidationManager -> (everything exhausted) abort +
        irrevocable re-execution.  With a pristine engine the ladder
        never engages and behaviour is bit-identical to the direct
        ``engine.submit`` call.
        """
        super().__init__()
        if signature_config is not None:
            self.config = signature_config
        elif engine is not None:
            # Adopt the injected engine's configuration: the CPU-side
            # signatures ride to the engine as raw bits (ValidationRequest
            # read_raw/write_raw), so both sides must hash identically.
            self.config = engine.manager.config
        else:
            self.config = SignatureConfig()
        self.engine = engine or FpgaValidationEngine(window=window, config=self.config)
        policy = degradation or DegradationPolicy()
        if getattr(self.engine, "plan", None) is not None and getattr(
            self.engine, "timeout_ns", 1
        ) is None:
            # A chaos engine with no CPU-side patience configured
            # inherits the ladder's; otherwise faults could block a
            # commit forever and the ladder would never engage.
            self.engine.timeout_ns = policy.timeout_ns
        software = None
        if policy.software_failover:
            software = SoftwareValidationEngine(
                window=self.engine.manager.window,
                config=self.engine.manager.config,
            )
            # Decision-identical failover (§5.1): the software engine
            # drives the *same* ValidationManager, so the signature
            # window and reachability matrix carry over seamlessly.
            software.manager = self.engine.manager
        self.degradation = DegradationManager(self.engine, software, policy)
        self.global_ts = 0
        self.commit_queue: List[BloomSignature] = []
        self._updates: List[_UpdateEntry] = []
        self._txns: Dict[int, _TxnState] = {}
        self._label = 0
        self.irrevocable_after = irrevocable_after
        self._failures: Dict[int, int] = {}
        self._force_irrevocable: set = set()
        self._irrevocable_lock = GlobalLock()
        self._irrevocable: set = set()
        self._lock_watchers: List[int] = []
        self.stats_irrevocable_commits = 0
        #: which cluster shard this instance is (0 on a single node);
        #: set by ClusterTMBackend so validate events land on the
        #: right per-shard hw lanes in the trace.
        self.shard_id = 0

    # ------------------------------------------------------------------
    def attach(self, driver) -> None:
        super().attach(driver)
        # Observability wiring: the degradation ladder and (when
        # present) the chaos engine publish their transitions on the
        # run's bus.  Emissions are wants()-gated, so with no tracer
        # or metrics collector attached this costs nothing.
        bus = getattr(driver, "bus", None)  # tolerate bare fakes
        self.degradation.bus = bus
        self.engine.bus = bus

    # ------------------------------------------------------------------
    def begin(self, tid: int, now: float) -> float:
        if self._irrevocable_lock.held:
            # An irrevocable transaction runs exclusively: optimistic
            # readers could not keep a consistent snapshot against its
            # in-place writes, so everyone waits for it to finish.
            self._lock_watchers.append(tid)
            self.driver.park(tid)
        if tid in self._force_irrevocable or (
            self.irrevocable_after is not None
            and self._failures.get(tid, 0) >= self.irrevocable_after
        ):
            at = self._irrevocable_lock.acquire(tid, now, self.driver)
            self._irrevocable.add(tid)
            self._force_irrevocable.discard(tid)
        else:
            at = now
        ts = self.global_ts
        self._txns[tid] = _TxnState(
            local_ts=ts,
            valid_ts=ts,
            read_sig=self.config.new(),
            write_sig=self.config.new(),
            miss_sig=self.config.new(),
        )
        return at + self.scaled(BEGIN_NS)

    # ------------------------------------------------------------------
    # TM_READ — Algorithm 1 lines 1-20.
    # ------------------------------------------------------------------
    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        txn = self._txns[tid]
        cost = READ_BASE_NS

        if addr in txn.redo:  # lines 1-3
            return txn.redo[addr], now + self.scaled(cost)

        if tid in self._irrevocable:
            # Exclusive mode: no concurrent commits can happen (the
            # optimistic commit path fences on the lock), so direct
            # loads are consistent once lingering write-backs drain.
            now = self._update_set_barrier(txn, addr, now)
            return self.memory.load(addr), now + self.scaled(cost)

        # Lines 5-7: commit-time locking via the update set.
        now = self._update_set_barrier(txn, addr, now)

        value = self.memory.load(addr)  # line 8

        # Lines 9-13: fold missed commits into a TempSet.
        temp = self.config.new()
        entries = 0
        while txn.local_ts < self.global_ts:
            temp.unite(self.commit_queue[txn.local_ts])
            txn.local_ts += 1
            entries += 1
        cost += TEMPSET_PER_ENTRY_NS * entries

        # Lines 14-19 + the Fig. 8(b) extension.
        if entries or txn.frozen:
            overlap = False
            if not temp.is_empty():
                cost += INTERSECT_NS
                if txn.read_sig.intersects(temp):
                    # Whole-set hit: re-check per 8-address subset for
                    # accuracy (§5.3).
                    cost += INTERSECT_NS * max(1, len(txn.sub_sigs))
                    overlap = any(s.intersects(temp) for s in txn.sub_sigs)
            if txn.frozen or overlap:
                txn.miss_sig.unite(temp)
                txn.frozen = True
                if txn.miss_sig.query(addr):
                    raise TransactionAborted("cpu-miss")
            else:
                txn.valid_ts = txn.local_ts  # snapshot extension

        self._record_read(txn, addr)  # line 20
        return value, now + self.scaled(cost)

    def _update_set_barrier(self, txn: _TxnState, addr: int, now: float) -> float:
        """Lines 5-7: wait out (or abort on) in-flight write-backs."""
        while True:
            live = [u for u in self._updates if u.end_ns > now]
            self._updates = live
            blocking = [u for u in live if u.signature.query(addr)]
            if not blocking:
                return now
            if txn.frozen:
                raise TransactionAborted("cpu-update-conflict")
            now = max(u.end_ns for u in blocking)  # back_off()

    def _record_read(self, txn: _TxnState, addr: int) -> None:
        txn.read_sig.insert(addr)
        if len(txn.read_addrs) % SUBSET_SIZE == 0:
            txn.sub_sigs.append(self.config.new())
        txn.sub_sigs[-1].insert(addr)
        txn.read_addrs.append(addr)

    # ------------------------------------------------------------------
    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        txn = self._txns[tid]
        if addr not in txn.redo:
            txn.write_addrs.append(addr)
            txn.write_sig.insert(addr)
        txn.redo[addr] = value  # lines 21-22
        return now + self.scaled(WRITE_NS)

    # ------------------------------------------------------------------
    def commit(self, tid: int, now: float) -> float:
        txn = self._txns[tid]
        if tid in self._irrevocable:
            return self._commit_irrevocable(tid, txn, now)
        if not txn.write_addrs:
            # Read-only fast path: commits directly on the CPU (§5.3).
            self.stats.read_only_commits += 1
            self._failures[tid] = 0
            self._txns.pop(tid, None)
            return now + self.scaled(COMMIT_RO_NS)

        if self._irrevocable_lock.held:
            # An irrevocable transaction is executing against a frozen
            # world; committing under it would invalidate its reads.
            raise TransactionAborted("cpu-irrevocable-fence")

        # Ship addresses + ValidTS to the FPGA and wait for the verdict.
        # The signatures accumulated during execution ride along so the
        # engine's commit bookkeeping never re-hashes the address sets.
        self._label += 1
        request = ValidationRequest(
            label=self._label,
            read_addrs=tuple(txn.read_addrs),
            write_addrs=tuple(txn.write_addrs),
            snapshot=txn.valid_ts,
            read_raw=txn.read_sig.raw,
            write_raw=txn.write_sig.raw,
        )
        try:
            response = self.degradation.submit(request, now, self.stats)
        except ValidationUnavailable as outage:
            # Every validation rung failed: abort, and re-execute this
            # transaction irrevocably — the global-lock rung needs no
            # validation at all (docs/FAULTS.md).
            self._mirror_phantom_slots(txn)
            self._force_irrevocable.add(tid)
            self.stats.irrevocable_fallbacks += 1
            raise TransactionAborted("fpga-unavailable", at_ns=outage.at_ns) from None
        self.stats.validation_ns += response.ready_ns - now
        self.stats.validations += 1
        bus = getattr(self.driver, "bus", None)
        if bus is not None and bus.wants("validate"):
            self._publish_validation(bus, tid, request, response)
        if not response.verdict.committed:
            self._mirror_phantom_slots(txn)
            cause = "fpga-" + (response.verdict.reason or "cycle")
            raise TransactionAborted(cause)

        # Publish to the update set (commit-time locking), write back,
        # bump GlobalTS, append the write signature to the queue.  The
        # executing thread resumes at `ready`: the write-back is the
        # Committer stage of the meta-pipeline (§5.1) and overlaps the
        # thread's next work; readers of the written addresses stay
        # blocked on the update set until it completes.
        ready = response.ready_ns
        writeback_end = ready + self.scaled(
            WRITEBACK_PER_WORD_NS * len(txn.write_addrs)
        )
        self._updates.append(_UpdateEntry(txn.write_sig, writeback_end))
        for addr, value in txn.redo.items():
            self.memory.store(addr, value)
        self.commit_queue.append(txn.write_sig)
        self.global_ts += 1
        self._failures[tid] = 0
        self._txns.pop(tid, None)
        return ready

    def _publish_validation(self, bus, tid: int, request, response) -> None:
        """Publish one ``validate`` event with the full hw timing
        breakdown — the raw material for the Perfetto pipeline lanes
        and the validation-latency histograms (:mod:`repro.obs`).

        ``detect_done_ns`` splits detector occupancy from the manager
        cycles: it is derived from the pipeline's initiation interval
        and clamped to ``finished_ns`` so software-failover responses
        (whose service time is one serial block) stay well-formed.
        """
        occupancy = self.engine.occupancy_cycles(request)
        detect_done = min(
            response.finished_ns,
            response.started_ns + self.engine.clock.cycles_to_ns(occupancy),
        )
        bus.emit(
            SimEvent(
                "validate",
                tid,
                response.ready_ns,
                start=response.sent_ns,
                data={
                    "label": request.label,
                    "sent_ns": response.sent_ns,
                    "arrived_ns": response.arrived_ns,
                    "started_ns": response.started_ns,
                    "detect_done_ns": detect_done,
                    "finished_ns": response.finished_ns,
                    "ready_ns": response.ready_ns,
                    "n_read": len(request.read_addrs),
                    "n_write": len(request.write_addrs),
                    "occupancy_cycles": occupancy,
                    "committed": response.verdict.committed,
                    "reason": response.verdict.reason,
                    "window_resident": self.engine.manager.detector.resident,
                    "mode": self.degradation.mode,
                    "shard": self.shard_id,
                },
            )
        )

    def _mirror_phantom_slots(self, txn: _TxnState) -> None:
        """Realign GlobalTS with the engine after a failed validation.

        Under faults the engine may *apply* a commit whose verdict the
        CPU never receives (a timeout, or a reset wiping the decided
        verdict before a resubmission could fetch it).  That window
        slot is real: if the CPU aborts the transaction without
        accounting for it, every later snapshot trails the engine's
        head forever — the ghost conflicts with everything and nothing
        can commit (livelock), and after a reset the floor becomes
        unreachable.  Any excess of the engine's commit count over
        GlobalTS at an abort belongs to this transaction's submission
        ladder, so mirror it with this transaction's write signature.
        No memory write happens — the slot is conservative ordering
        metadata only.  With a pristine engine the counters are always
        equal and this is a no-op.
        """
        manager = self.engine.manager
        while self.global_ts < manager.total_commits:
            self.commit_queue.append(txn.write_sig)
            self.global_ts += 1
            self.stats.phantom_commits += 1

    def _commit_irrevocable(self, tid: int, txn: _TxnState, now: float) -> float:
        """Exclusive commit: no validation needed, but the write
        signature still enters the commit queue so optimistic peers
        track the snapshot correctly afterwards.  Read-only irrevocable
        transactions write back nothing and pay no write-back time."""
        writeback_end = now + self.scaled(
            WRITEBACK_PER_WORD_NS * len(txn.write_addrs)
        )
        for addr, value in txn.redo.items():
            self.memory.store(addr, value)
        if txn.write_addrs:
            self.commit_queue.append(txn.write_sig)
            self.global_ts += 1
            # Keep the engine-side commit indices aligned with GlobalTS:
            # the engine never saw this commit, but later optimistic
            # snapshots count it, so it must occupy a window slot.
            self._label += 1
            self.engine.manager.record_external_commit(
                self._label,
                tuple(txn.read_addrs),
                tuple(txn.write_addrs),
                read_raw=txn.read_sig.raw,
                write_raw=txn.write_sig.raw,
            )
        self._irrevocable.discard(tid)
        self._failures[tid] = 0
        self.stats_irrevocable_commits += 1
        self._txns.pop(tid, None)
        ready = self._irrevocable_lock.release(tid, writeback_end, self.driver)
        for watcher in self._lock_watchers:
            self.driver.wake_at(watcher, ready)
        self._lock_watchers.clear()
        return ready

    def rollback(self, tid: int, now: float, cause: str) -> float:
        self._failures[tid] = self._failures.get(tid, 0) + 1
        self._txns.pop(tid, None)
        return now + self.scaled(ROLLBACK_NS)

    # ------------------------------------------------------------------
    # The cluster surface (repro.cluster): one ROCoCoTM instance is one
    # shard's node, and ClusterTMBackend drives it through these
    # methods — never through the hook protocol's commit path — when a
    # transaction spans shards.  All of them execute at a single
    # simulated instant inside the coordinator's commit step.
    # ------------------------------------------------------------------
    def txn_touched(self, tid: int) -> bool:
        """Whether *tid* actually read or wrote on this shard (an
        opened-but-idle shard is dropped from the commit, free)."""
        txn = self._txns.get(tid)
        return txn is not None and bool(txn.read_addrs or txn.write_addrs)

    def txn_writes(self, tid: int) -> int:
        txn = self._txns.get(tid)
        return len(txn.write_addrs) if txn is not None else 0

    def txn_reads(self, tid: int) -> int:
        txn = self._txns.get(tid)
        return len(txn.read_addrs) if txn is not None else 0

    def take_forced_irrevocable(self, tid: int) -> bool:
        """Consume a pending forced-irrevocable flag (set when the
        validation ladder bottomed out); the cluster moves it up to
        its own cluster-wide escape hatch."""
        if tid in self._force_irrevocable:
            self._force_irrevocable.discard(tid)
            return True
        return False

    def drop_txn(self, tid: int) -> None:
        """Forget *tid*'s per-shard state without commit/abort
        bookkeeping (cluster rollback, and idle-shard pruning)."""
        self._txns.pop(tid, None)

    def clear_failures(self, tid: int) -> None:
        self._failures[tid] = 0

    def prepare_request(self, tid: int) -> ValidationRequest:
        """This shard's slice of a cross-shard transaction, as a
        certify request (mints a fresh engine label)."""
        txn = self._txns[tid]
        self._label += 1
        return ValidationRequest(
            label=self._label,
            read_addrs=tuple(txn.read_addrs),
            write_addrs=tuple(txn.write_addrs),
            snapshot=txn.valid_ts,
            read_raw=txn.read_sig.raw,
            write_raw=txn.write_sig.raw,
        )

    def certify(self, request: ValidationRequest, now: float):
        """Run the non-mutating prepare on this shard's engine.  A
        chaos engine delegates ``certify`` to its wrapped primary, so
        prepares bypass fault injection (see docs/CLUSTER.md)."""
        return self.engine.certify(request, now)

    def apply_cross_shard_commit(self, tid: int, decided_ns: float) -> float:
        """Decide-phase application for one involved shard: write back
        the redo slice, enter the window bookkeeping exactly like an
        external (off-engine) commit, and publish the write signature
        to the update set so readers block until write-back completes.
        Returns the write-back end time."""
        txn = self._txns[tid]
        writeback_end = decided_ns + self.scaled(
            WRITEBACK_PER_WORD_NS * len(txn.write_addrs)
        )
        if txn.write_addrs:
            self._updates.append(_UpdateEntry(txn.write_sig, writeback_end))
            for addr, value in txn.redo.items():
                self.memory.store(addr, value)
            self.commit_queue.append(txn.write_sig)
            self.global_ts += 1
            self.engine.manager.record_external_commit(
                self._label,
                tuple(txn.read_addrs),
                tuple(txn.write_addrs),
                read_raw=txn.read_sig.raw,
                write_raw=txn.write_sig.raw,
            )
        self._failures[tid] = 0
        self._txns.pop(tid, None)
        return writeback_end

    def drain_writebacks(self, addr: int, now: float) -> float:
        """Cluster-irrevocable read barrier: wait out in-flight
        write-backs covering *addr* (no transaction of our own to
        freeze, so this never aborts)."""
        while True:
            live = [u for u in self._updates if u.end_ns > now]
            self._updates = live
            blocking = [u for u in live if u.signature.query(addr)]
            if not blocking:
                return now
            now = max(u.end_ns for u in blocking)

    def external_irrevocable_commit(
        self,
        read_addrs: Tuple[int, ...],
        write_addrs: Tuple[int, ...],
        redo_items,
        writeback_end: float,
    ) -> None:
        """Enter a cluster-level irrevocable commit's slice into this
        shard: direct stores plus window bookkeeping (mirrors
        :meth:`_commit_irrevocable`; the cluster lock fences readers
        until *writeback_end*, so no update-set entry is needed)."""
        for addr, value in redo_items:
            self.memory.store(addr, value)
        if write_addrs:
            signature = self.config.of(write_addrs)
            self.commit_queue.append(signature)
            self.global_ts += 1
            self._label += 1
            self.engine.manager.record_external_commit(
                self._label, read_addrs, write_addrs, write_raw=signature.raw
            )

    # ------------------------------------------------------------------
    def abort_backoff_scale(self, cause: str) -> float:
        # Hammering a dead validation path only burns timeouts: park
        # fault-caused aborts much harder than contention aborts.
        if cause == "fpga-unavailable":
            return self.degradation.policy.fault_backoff_scale
        return 1.0

    def run_finished(self) -> None:
        counts = getattr(self.engine, "fault_counts", None)
        if counts:
            self.stats.faults_injected.update(counts)
        self.stats.link_retries += getattr(self.engine, "link_retries", 0)
        bus = getattr(self.driver, "bus", None)
        if bus is not None and bus.wants("mask_cache"):
            # End-of-run mask-cache effectiveness, mirrored from the
            # shared SignatureConfig (one event per shard).  Never
            # enters RunStats, so stamps stay byte-identical whether
            # or not anyone is observing.
            config = self.config
            bus.emit(
                SimEvent(
                    "mask_cache",
                    -1,
                    self.stats.makespan_ns,
                    data={
                        "hits": config.mask_cache_hits,
                        "misses": config.mask_cache_misses,
                        "entries": config.mask_cache_entries,
                        "shard": self.shard_id,
                    },
                )
            )
