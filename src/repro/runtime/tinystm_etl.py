"""TinySTM with encounter-time locking (its default configuration).

The paper benchmarks TinySTM configured like ROCoCoTM — commit-time
locking with write-back — after checking that "evaluations of TinySTM
on HARP2 show no significant difference between commit-time locking
and the default encounter-time locking" (§6.2).  This variant
implements the default so that claim can be reproduced
(`bench_ablation_etl.py`).

Encounter-time locking (write-back flavour): the first write to a
location acquires its ownership record for the rest of the attempt;
a second writer, or a reader hitting a foreign lock, aborts itself
immediately.  Write-write conflicts therefore surface *during
execution* instead of at commit, trading wasted execution for earlier
conflict discovery — which is exactly why the two configurations end
up close on balanced workloads.
"""

from __future__ import annotations

from typing import Any, Dict, Set, Tuple

from .api import TransactionAborted
from .tinystm import TinySTMBackend

LOCK_ACQUIRE_NS = 6.0  # the extra CAS an eager write pays


class TinySTMEtlBackend(TinySTMBackend):
    """LSA with encounter-time locking and write-back."""

    name = "TinySTM-ETL"
    #: the ownership table *is* the lock under encounter-time locking:
    #: ``_owners[addr]`` is only written after the foreign-owner check,
    #: i.e. while holding (acquiring) that address's lock; ``_held`` is
    #: the per-thread set of locks owned by ``tid`` (TM003).
    _sanitizer_locked = ("_txns", "_owners", "_held")

    def __init__(self) -> None:
        super().__init__()
        #: addr -> owning tid, held from first write to commit/abort.
        self._owners: Dict[int, int] = {}
        self._held: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    def begin(self, tid: int, now: float) -> float:
        self._held.setdefault(tid, set())
        return super().begin(tid, now)

    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        owner = self._owners.get(addr)
        if owner is not None and owner != tid:
            # A foreign lock means an in-flight writer: spinning could
            # deadlock, so TinySTM aborts the reader.
            raise TransactionAborted("cpu-lock-conflict")
        return super().read(tid, addr, now)

    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        owner = self._owners.get(addr)
        if owner is not None and owner != tid:
            raise TransactionAborted("cpu-lock-conflict")
        if owner is None:
            self._owners[addr] = tid
            self._held[tid].add(addr)
            now += self.scaled(LOCK_ACQUIRE_NS)
        return super().write(tid, addr, value, now)

    def commit(self, tid: int, now: float) -> float:
        try:
            at = super().commit(tid, now)
        except TransactionAborted:
            self._release(tid)
            raise
        self._release(tid)
        return at

    def rollback(self, tid: int, now: float, cause: str) -> float:
        self._release(tid)
        return super().rollback(tid, now, cause)

    def _release(self, tid: int) -> None:
        for addr in self._held.get(tid, ()):
            if self._owners.get(addr) == tid:
                del self._owners[addr]
        self._held[tid] = set()
