"""The deterministic scheduling kernel.

Before this module existed, :meth:`Simulator.run` rebuilt the runnable
list and took a ``min()`` over all threads on **every step** — an O(T)
scan per event that dominated wall-clock at the paper's 14/28-thread
points.  The paper's own contribution is a pipelined validator that
removes exactly this kind of per-event serialization (§4.2); the
host-side scheduler gets the same treatment here: a narrow, specialized
engine for the one decision the hot path makes — *which thread runs
next* — in O(log T) instead of O(T).

Mechanism: an **indexed min-heap with lazy invalidation**.

* The heap holds ``(clock, tid, version)`` entries.  Every runnable
  thread has exactly one *valid* entry — the one whose ``version``
  matches the kernel's per-thread version counter.
* Any state change (reschedule after a step, park, wake, retire) bumps
  the thread's version, so entries left behind in the heap become
  *stale*.  Stale entries are discarded when they surface at the top
  (``pick``), never eagerly removed — deletion from the middle of a
  binary heap would cost O(T) again.
* ``pick`` pops until it finds a valid entry, so a pick is O(log T)
  amortized: every stale pop is paid for by the push that created it.

Determinism contract (see DESIGN.md "Scheduler determinism"): the heap
orders entries by the tuple ``(clock, tid)`` — exactly the key of the
old linear scan's ``min()`` — and thread ids are unique, so the valid
entry that surfaces first is *the* unique minimum over runnable
threads.  Lazy invalidation cannot perturb the order: stale entries are
skipped regardless of where they sort, and every runnable thread's
valid entry carries its current clock by construction.  The kernel is
therefore schedule-preserving by construction, which the bit-identity
gate (``tests/runtime/test_sched.py``, CI ``sched-identity``) enforces
run-for-run against the legacy scan kept behind ``REPRO_SCHED=scan``.

The kernel also keeps the deadlock check O(1): ``n_live`` and
``n_parked`` counters replace the old per-wakeup sweep over all
threads (``any(t.parked ...)``).

Counters (``sched.*`` metric family, declared in
:mod:`repro.analysis.registry`) are exported via :meth:`snapshot` and
published by the driver as one wants()-gated ``sched`` event at the
end of a run — they never enter :class:`RunStats`, so enabling the
kernel cannot move a single benchmark byte.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List


class SchedulerKernel:
    """Indexed min-heap over runnable threads, keyed by ``(clock, tid)``.

    The owning driver calls:

    * :meth:`add` once per thread before the run;
    * :meth:`pick` to obtain the next thread to step (``-1``: none
      runnable);
    * :meth:`reschedule` after a step that leaves the thread runnable;
    * :meth:`park` / :meth:`wake` around blocking operations;
    * :meth:`retire` when a thread's program completes.
    """

    __slots__ = (
        "_heap",
        "_version",
        "_runnable",
        "n_live",
        "n_parked",
        "picks",
        "pushes",
        "stale_pops",
        "wakes",
        "wakes_coalesced",
        "heap_high_water",
    )

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("need at least one thread")
        self._heap: List = []
        #: per-thread entry version; a heap entry is valid iff its
        #: version equals this counter for its tid.
        self._version = [0] * n_threads
        self._runnable = [False] * n_threads
        self.n_live = n_threads
        self.n_parked = 0
        self.picks = 0
        self.pushes = 0
        self.stale_pops = 0
        self.wakes = 0
        self.wakes_coalesced = 0
        self.heap_high_water = 0

    # ------------------------------------------------------------------
    def _push(self, tid: int, clock: float) -> None:
        version = self._version[tid] + 1
        self._version[tid] = version
        heap = self._heap
        heappush(heap, (clock, tid, version))
        self.pushes += 1
        if len(heap) > self.heap_high_water:
            self.heap_high_water = len(heap)

    def add(self, tid: int, clock: float) -> None:
        """Register thread *tid* as runnable at *clock* (run start)."""
        if self._runnable[tid]:
            raise RuntimeError(f"thread {tid} is already scheduled")
        self._runnable[tid] = True
        self._push(tid, clock)

    def pick(self) -> int:
        """The runnable thread with the smallest ``(clock, tid)``, or
        ``-1`` if no thread is runnable.  Pops (and counts) stale
        entries until a valid one surfaces."""
        heap = self._heap
        version = self._version
        while heap:
            clock, tid, entry_version = heappop(heap)
            if entry_version == version[tid]:
                # A valid entry implies runnable: park/retire bump the
                # version without pushing, so their entries are stale.
                self._runnable[tid] = False  # popped: owner must re-add
                self.picks += 1
                return tid
            self.stale_pops += 1
        return -1

    def reschedule(self, tid: int, clock: float) -> None:
        """Re-enter *tid* (just stepped, still live) at its new clock."""
        self._runnable[tid] = True
        self._push(tid, clock)

    def park(self, tid: int) -> None:
        """Mark *tid* blocked: it leaves the runnable set until
        :meth:`wake`.  O(1) — its heap entry (if any) goes stale."""
        self._version[tid] += 1
        self._runnable[tid] = False
        self.n_parked += 1

    def wake(self, tid: int, clock: float, coalesced: bool = False) -> None:
        """Unblock *tid*, runnable again at *clock*.

        ``coalesced``: the wake's target time was at or before the
        thread's own clock, so it merged into the thread's existing
        timeline instead of moving it (the ``max()`` in the driver's
        ``wake_at`` was a no-op) — tracked for the ``sched.*`` metrics.
        """
        self.n_parked -= 1
        self._runnable[tid] = True
        self.wakes += 1
        if coalesced:
            self.wakes_coalesced += 1
        self._push(tid, clock)

    def retire(self, tid: int) -> None:
        """Thread *tid*'s program finished; it never runs again."""
        self._version[tid] += 1
        self._runnable[tid] = False
        self.n_live -= 1

    # ------------------------------------------------------------------
    @property
    def lazy_invalidation_ratio(self) -> float:
        """Stale pops per total pop — how much heap traffic the lazy
        strategy traded for O(1) invalidation."""
        pops = self.picks + self.stale_pops
        return self.stale_pops / pops if pops else 0.0

    def snapshot(self) -> dict:
        """The ``sched`` event payload (see repro.analysis.registry)."""
        return {
            "picks": self.picks,
            "pushes": self.pushes,
            "stale_pops": self.stale_pops,
            "lazy_invalidation_ratio": self.lazy_invalidation_ratio,
            "wakes": self.wakes,
            "wakes_coalesced": self.wakes_coalesced,
            "heap_high_water": self.heap_high_water,
        }
