"""The transactional programming API.

Workloads are written as *generator coroutines*: a transaction body is
a generator that yields operation descriptors and receives results
back, so the simulator can interleave threads at operation granularity
and re-execute bodies after aborts.  This mirrors the paper's
programming model — speculative loop parallelization where every
iteration runs inside a transaction (§5.3) — with ``yield`` standing
in for the TM_READ/TM_WRITE instrumentation a compiler would insert.

A transaction body::

    def transfer(src, dst, amount):
        a = yield Read(src)
        b = yield Read(dst)
        yield Work(40)                  # 40 ns of local compute
        yield Write(src, a - amount)
        yield Write(dst, b + amount)
        return True                     # value returned by the txn

A thread program yields :class:`Transaction` (a retried atomic block)
and :class:`Work` items::

    def program(tid):
        for job in my_jobs(tid):
            result = yield Transaction(lambda: transfer(*job))
            yield Work(100)

Composition uses ``yield from``: the data structures in
:mod:`repro.txlib` are generator methods that bodies delegate to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

Address = int


@dataclass(frozen=True)
class Read:
    """Transactional load; the yield expression evaluates to the value."""

    addr: Address


@dataclass(frozen=True)
class Write:
    """Transactional store (buffered until commit under lazy backends)."""

    addr: Address
    value: Any


@dataclass(frozen=True)
class Work:
    """Local, abort-free computation costing *ns* simulated time."""

    ns: float

    def __post_init__(self):
        if self.ns < 0:
            raise ValueError("work time must be non-negative")


@dataclass(frozen=True)
class Alloc:
    """Allocate *cells* fresh memory cells; evaluates to the base address.

    Allocation is non-transactional (a bump pointer) and is not rolled
    back on abort — matching malloc inside STAMP transactions, which
    leaks on abort rather than corrupting shared state.
    """

    cells: int

    def __post_init__(self):
        if self.cells < 1:
            raise ValueError("allocation must cover at least one cell")


@dataclass(frozen=True)
class Transaction:
    """An atomic block: ``body`` is re-invoked from scratch per attempt."""

    body: Callable[[], Generator]
    #: retry backoff base in ns (exponential, capped); None = backend default.
    label: Optional[str] = None


class SimBarrier:
    """A reusable rendezvous for all threads of a run.

    The paper replaces STAMP's log2 barrier with a pthread barrier to
    reach 14/28 threads (§6.3 footnote 9); this is that barrier.
    Threads yield ``AwaitBarrier(barrier)`` from their *programs* (not
    from transaction bodies); everyone resumes at the latest arrival's
    clock plus ``cost_ns``.
    """

    def __init__(self, parties: int, cost_ns: float = 120.0):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.parties = parties
        self.cost_ns = cost_ns
        self.waiting: list = []  # [(tid, clock)] of parked arrivals


@dataclass(frozen=True)
class AwaitBarrier:
    """Program-level op: block until all parties reach the barrier."""

    barrier: SimBarrier


#: What a transaction body may yield.
TxnOp = (Read, Write, Work, Alloc)
#: What a thread program may yield.
ProgramOp = (Transaction, Work, AwaitBarrier)


class TransactionAborted(Exception):
    """Raised inside backends to unwind an attempt; never escapes to
    workload code (the driver catches it and retries).

    ``at_ns``, when set, is the simulated time the abort was decided —
    later than the operation's start when the backend burned time
    discovering the failure (e.g. validation timeouts climbing the
    degradation ladder); the driver advances the thread clock to it so
    the wasted wait is charged.
    """

    def __init__(self, cause: str, at_ns: Optional[float] = None):
        super().__init__(cause)
        self.cause = cause
        self.at_ns = at_ns
