"""The narrow Driver API backends program against.

Historically every backend reached straight into :class:`Simulator`
(``self.simulator.wake(...)``, ``self.simulator.n_threads``,
``getattr(self.simulator, "bus", None)``), which coupled all eight TM
systems — and the hw engine underneath ROCoCoTM — to the driver's
internals and made the scheduler impossible to rebuild without touching
every backend.  This module pins down the *entire* legal surface:

Attributes (immutable run parameters):

* ``n_threads`` — thread count of the run;
* ``memory`` — the shared :class:`repro.runtime.memory.Memory`;
* ``stats`` — the run's :class:`repro.runtime.stats.RunStats`;
* ``cost_model`` — the machine timing parameters;
* ``bus`` — the run's :class:`repro.runtime.events.EventBus`.

Methods:

* ``step_cost(ns, footprint)`` — a nominal CPU cost scaled for the
  current SMT regime (what ``TMBackend.scaled`` is built on);
* ``park(tid)`` — abandon the current operation; the thread blocks and
  the operation is re-issued after a wake (raises
  :class:`repro.runtime.backend.ParkThread` — the driver's unwind);
* ``wake_at(tid, at_ns)`` — unblock a parked thread no earlier than
  ``at_ns`` (lock releases, barrier broadcasts);
* ``wants(kind)`` / ``emit(event)`` — the wants()-gated emission
  surface of the run's event bus.

:class:`Simulator` implements the protocol (it *is* the driver), and
:class:`repro.runtime.events.EventBus` structurally satisfies the
:class:`Emitter` subset — which is why trace-level engines
(:meth:`repro.cc.engine.TraceCC.run`) and the validation-path
publishers (:mod:`repro.faults`) can be handed either a full driver or
a bare bus.  :class:`ManualDriver` is a minimal concrete
implementation for driving backends by hand in tests and self-checks.
"""

from __future__ import annotations

from typing import List, NoReturn, Optional, Tuple

try:  # pragma: no cover - Protocol is typing-only sugar
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from .backend import CostModel, ParkThread
from .events import EventBus, SimEvent
from .memory import Memory
from .stats import RunStats


@runtime_checkable
class Emitter(Protocol):
    """The wants()-gated emission subset of the Driver API.

    Satisfied by :class:`repro.runtime.events.EventBus` itself, by
    :class:`Simulator`, and by :class:`ManualDriver` — anything that
    can answer "would anyone see this event?" and deliver it.
    """

    def wants(self, kind: str) -> bool: ...

    def emit(self, event: SimEvent) -> None: ...


@runtime_checkable
class Driver(Protocol):
    """What a :class:`repro.runtime.backend.TMBackend` may touch.

    Anything not on this protocol — the thread table, the scheduler
    kernel, ``_Thread`` fields — is driver-internal and off limits.
    """

    n_threads: int
    memory: Memory
    stats: RunStats
    cost_model: CostModel
    bus: EventBus

    def step_cost(self, ns: float, footprint: float = 1.0) -> float: ...

    def park(self, tid: int) -> NoReturn: ...

    def wake_at(self, tid: int, at_ns: float) -> None: ...

    def wants(self, kind: str) -> bool: ...

    def emit(self, event: SimEvent) -> None: ...


class ManualDriver:
    """A hand-cranked :class:`Driver` for tests and self-checks.

    Backends attach to it exactly as to a :class:`Simulator`; hook
    calls are then made directly by the test.  Parks raise
    :class:`ParkThread` like the real driver's; wakes are recorded on
    :attr:`wakes` instead of unblocking anything (there is no thread
    table to unblock).
    """

    def __init__(
        self,
        memory: Optional[Memory] = None,
        n_threads: int = 2,
        cost_model: Optional[CostModel] = None,
        stats: Optional[RunStats] = None,
        backend_name: str = "manual",
    ) -> None:
        self.memory = memory if memory is not None else Memory()
        self.n_threads = n_threads
        self.cost_model = cost_model or CostModel()
        self.stats = (
            stats
            if stats is not None
            else RunStats(backend=backend_name, workload="", n_threads=n_threads)
        )
        self.bus = EventBus()
        #: every ``wake_at`` call, in order: ``[(tid, at_ns), ...]``.
        self.wakes: List[Tuple[int, float]] = []
        #: every ``park`` call, in order: ``[tid, ...]``.
        self.parks: List[int] = []

    # ------------------------------------------------------------------
    def step_cost(self, ns: float, footprint: float = 1.0) -> float:
        return ns * self.cost_model.compute_scale(self.n_threads, footprint)

    def park(self, tid: int) -> NoReturn:
        self.parks.append(tid)
        raise ParkThread()

    def wake_at(self, tid: int, at_ns: float) -> None:
        self.wakes.append((tid, at_ns))

    def wants(self, kind: str) -> bool:
        return self.bus.wants(kind)

    def emit(self, event: SimEvent) -> None:
        if self.bus.wants(event.kind):
            self.bus.emit(event)
