"""A single global lock around every atomic block.

This is both a sanity baseline (perfectly serialized, zero aborts) and
the fallback path of the TSX model: best-effort HTM must eventually
fall back to a mutual-exclusion path, and the paper's implementation
uses exactly a global lock after four failed retries (§6.2).

Lock waiters park in FIFO order and are woken by the releasing
committer — the classic convoy, which is why this baseline stops
scaling immediately.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from .backend import TMBackend
from .sequential import LOAD_NS, STORE_NS

ACQUIRE_NS = 18.0        # CAS + fence with the line already local
LOCK_TRANSFER_NS = 160.0  # cross-core cacheline migration of the lock
RELEASE_NS = 25.0


class GlobalLock:
    """A simulated FIFO mutex shared by backends."""

    def __init__(self) -> None:
        self.holder: Optional[int] = None
        self.last_holder: Optional[int] = None
        self.waiters: Deque[int] = deque()

    @property
    def held(self) -> bool:
        return self.holder is not None

    def acquire(self, tid: int, now: float, driver) -> float:
        """Returns the acquisition time, or parks the caller."""
        if self.holder is None:
            cost = ACQUIRE_NS
            if self.last_holder is not None and self.last_holder != tid:
                cost += LOCK_TRANSFER_NS
            self.holder = tid
            self.last_holder = tid
            return now + cost
        if tid not in self.waiters:
            self.waiters.append(tid)
        driver.park(tid)

    def release(self, tid: int, now: float, driver) -> float:
        if self.holder != tid:
            raise RuntimeError(f"thread {tid} releasing a lock it does not hold")
        self.holder = None
        if self.waiters:
            driver.wake_at(self.waiters.popleft(), now + RELEASE_NS)
        return now + RELEASE_NS


class CoarseLockBackend(TMBackend):
    """Every transaction runs under one global mutex; in-place writes."""

    name = "global-lock"
    metadata_footprint = 0.1

    def __init__(self) -> None:
        super().__init__()
        self.lock = GlobalLock()

    def begin(self, tid: int, now: float) -> float:
        return self.lock.acquire(tid, now, self.driver)

    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        return self.memory.load(addr), now + self.scaled(LOAD_NS)

    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        self.memory.store(addr, value)
        return now + self.scaled(STORE_NS)

    def commit(self, tid: int, now: float) -> float:
        return self.lock.release(tid, now, self.driver)

    def rollback(self, tid: int, now: float, cause: str) -> float:  # pragma: no cover
        raise AssertionError("lock-based execution cannot abort")
