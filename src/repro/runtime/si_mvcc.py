"""Multi-version snapshot-isolation TM (the §2.2 compositional point).

The paper's semantics lattice (Fig. 3(a)) places snapshot isolation
below serializability: SI is *compositional* (per-object multi-version
bookkeeping suffices, no centralized validation), which is why "it is
provided by almost all databases and some TMs" — at the price of
admitting the write-skew anomaly of Fig. 1.

This backend implements textbook MVCC-SI:

* every commit installs new versions stamped with a global sequence
  number;
* a transaction reads the newest version no newer than its begin
  snapshot (plus its own writes);
* commit applies **first-committer-wins**: abort iff some written
  location has a version newer than the snapshot.  Reads are *never*
  validated — that is exactly the SI/serializability gap.

It exists as a contrast point for the semantics experiments (the
write-skew demo commits here and aborts under every serializable
backend) and as an additional baseline: cheap reads, no read
validation, anomalies included.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .api import TransactionAborted
from .backend import TMBackend

BEGIN_NS = 10.0
READ_NS = 11.0           # version-chain lookup
WRITE_NS = 7.0
COMMIT_BASE_NS = 30.0
FCW_CHECK_PER_WRITE_NS = 3.0
INSTALL_PER_WRITE_NS = 8.0
ROLLBACK_NS = 16.0


@dataclass
class _TxnState:
    snapshot: int
    writes: Dict[int, Any] = field(default_factory=dict)


class SnapshotIsolationBackend(TMBackend):
    """MVCC with first-committer-wins; enforces SI, not serializability."""

    name = "SI-MVCC"
    metadata_footprint = 1.0  # version chains are real memory traffic
    #: ``_txns[tid]`` is a per-thread slot (see TM003 in the sanitizer).
    _sanitizer_locked = ("_txns",)

    def __init__(self) -> None:
        super().__init__()
        self.sequence = 0
        #: addr -> ([stamps ascending], [values]); base memory is stamp 0.
        self._versions: Dict[int, Tuple[List[int], List[Any]]] = {}
        self._txns: Dict[int, _TxnState] = {}
        #: True while commit() installs its own stores (observer guard).
        self._installing = False

    def attach(self, driver) -> None:
        super().attach(driver)
        self.memory.subscribe(self._on_external_store)

    def _on_external_store(self, addr: int, value: Any) -> None:
        """Drop a version chain its cell was rewritten underneath.

        sanitizer: found by the write-back-race oracle.  Workload phase
        code stores directly under a barrier (e.g. kmeans' accumulator
        reset); the cached chain would keep serving the *pre-reset*
        value to every later snapshot.  Direct stores only happen while
        no transaction is live, so falling back to raw memory for the
        next readers is exact.
        """
        if self._installing:
            return
        self._versions.pop(addr, None)

    # ------------------------------------------------------------------
    def begin(self, tid: int, now: float) -> float:
        self._txns[tid] = _TxnState(snapshot=self.sequence)
        return now + self.scaled(BEGIN_NS)

    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        txn = self._txns[tid]
        if addr in txn.writes:
            return txn.writes[addr], now + self.scaled(READ_NS)
        chain = self._versions.get(addr)
        if chain is None:
            return self.memory.load(addr), now + self.scaled(READ_NS)
        stamps, values = chain
        idx = bisect.bisect_right(stamps, txn.snapshot) - 1
        if idx < 0:
            return self.memory.load(addr), now + self.scaled(READ_NS)
        return values[idx], now + self.scaled(READ_NS)

    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        self._txns[tid].writes[addr] = value
        return now + self.scaled(WRITE_NS)

    def commit(self, tid: int, now: float) -> float:
        txn = self._txns[tid]
        if not txn.writes:
            self.stats.read_only_commits += 1
            return now + self.scaled(5.0)

        cost = COMMIT_BASE_NS + FCW_CHECK_PER_WRITE_NS * len(txn.writes)
        # First committer wins: any concurrent committed writer of the
        # same location kills this transaction.
        for addr in txn.writes:
            chain = self._versions.get(addr)
            if chain and chain[0][-1] > txn.snapshot:
                self.stats.validation_ns += self.scaled(cost)
                self.stats.validations += 1
                raise TransactionAborted("cpu-first-committer")

        self.stats.validation_ns += self.scaled(cost)
        self.stats.validations += 1
        self.sequence += 1
        stamp = self.sequence
        self._installing = True
        try:
            for addr, value in txn.writes.items():
                chain = self._versions.get(addr)
                if chain is None:
                    # Retain the pre-history value as version 0 so older
                    # snapshots can still read it.
                    chain = self._versions[addr] = ([0], [self.memory.load(addr)])
                stamps, values = chain
                stamps.append(stamp)
                values.append(value)
                self.memory.store(addr, value)  # newest version = raw memory
        finally:
            self._installing = False
        cost += INSTALL_PER_WRITE_NS * len(txn.writes)
        return now + self.scaled(cost)

    def rollback(self, tid: int, now: float, cause: str) -> float:
        self._txns[tid] = _TxnState(snapshot=self.sequence)
        return now + self.scaled(ROLLBACK_NS)
