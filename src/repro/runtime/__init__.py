"""The TM runtime: simulator, programming API, and the five systems.

* :class:`Simulator` — deterministic discrete-event multicore model
  (the HARP2 Xeon substitute; see DESIGN.md).
* API — :class:`Read`, :class:`Write`, :class:`Work`, :class:`Alloc`,
  :class:`Transaction` yielded by generator-coroutine workloads.
* :class:`Driver` — the narrow protocol backends program against
  (:mod:`repro.runtime.driver`); the Simulator implements it, and
  :class:`ManualDriver` drives backends by hand in tests.
* :class:`SchedulerKernel` — the O(log T) indexed min-heap scheduler
  behind the simulator hot path (:mod:`repro.runtime.sched`).
* Backends — :class:`SequentialBackend` (speedup denominator),
  :class:`CoarseLockBackend`, :class:`TinySTMBackend` (LSA),
  :class:`TsxBackend` (best-effort HTM), :class:`RococoTMBackend`
  (the paper's hybrid system, §5), and
  :class:`SnapshotIsolationBackend` (MVCC-SI — the compositional but
  anomalous point of the §2.2 semantics lattice).
"""

from .api import (
    Alloc,
    AwaitBarrier,
    Read,
    SimBarrier,
    Transaction,
    TransactionAborted,
    Work,
    Write,
)
from .backend import CostModel, ParkThread, TMBackend
from .coarse_lock import CoarseLockBackend, GlobalLock
from .driver import Driver, Emitter, ManualDriver
from .events import EVENT_KINDS, EventBus, SimEvent, StatsCollector
from .memory import CELLS_PER_CACHELINE, Memory
from .recording import HistoryRecorder, RecordingBackend
from .rococotm import RococoTMBackend
from .sched import SchedulerKernel
from .sequential import SequentialBackend
from .si_mvcc import SnapshotIsolationBackend
from .simulator import Simulator
from .stats import RunStats, geomean, speedup
from .tinystm import TinySTMBackend
from .tinystm_etl import TinySTMEtlBackend
from .tsx import TsxBackend

__all__ = [
    "Alloc",
    "AwaitBarrier",
    "CELLS_PER_CACHELINE",
    "CoarseLockBackend",
    "CostModel",
    "Driver",
    "EVENT_KINDS",
    "EventBus",
    "Emitter",
    "GlobalLock",
    "HistoryRecorder",
    "ManualDriver",
    "Memory",
    "ParkThread",
    "Read",
    "RecordingBackend",
    "RococoTMBackend",
    "RunStats",
    "SchedulerKernel",
    "SequentialBackend",
    "SimBarrier",
    "SimEvent",
    "SnapshotIsolationBackend",
    "Simulator",
    "StatsCollector",
    "TMBackend",
    "TinySTMBackend",
    "TinySTMEtlBackend",
    "Transaction",
    "TransactionAborted",
    "TsxBackend",
    "Work",
    "Write",
    "geomean",
    "speedup",
]
