"""The sequential baseline — Fig. 10's speedup denominator.

STAMP's reference point is the plain sequential program: no
instrumentation, no synchronization, every load/store at raw memory
cost.  Run it with one thread; it never aborts and never conflicts.
"""

from __future__ import annotations

from typing import Any, Tuple

from .backend import TMBackend

LOAD_NS = 1.5
STORE_NS = 1.5


class SequentialBackend(TMBackend):
    """Direct, uninstrumented execution (single thread only)."""

    name = "sequential"
    metadata_footprint = 0.0

    def attach(self, driver) -> None:
        if driver.n_threads != 1:
            raise ValueError("the sequential baseline is single-threaded")
        super().attach(driver)

    def begin(self, tid: int, now: float) -> float:
        return now

    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        return self.memory.load(addr), now + LOAD_NS

    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        self.memory.store(addr, value)
        return now + STORE_NS

    def commit(self, tid: int, now: float) -> float:
        return now

    def rollback(self, tid: int, now: float, cause: str) -> float:  # pragma: no cover
        raise AssertionError("sequential execution cannot abort")
