"""The deterministic discrete-event multicore simulator.

Substitution note (see DESIGN.md): this replaces the paper's 14-core
Haswell Xeon.  Each thread is a generator coroutine with its own
simulated clock; the scheduler always advances the thread with the
smallest clock (ties broken by thread id), so every shared-state
operation executes atomically at a well-defined simulated instant and
runs are bit-for-bit reproducible.  Speedups (Fig. 10) are ratios of
*makespans* — the largest thread clock at completion — against the
sequential baseline.

Thread programs yield :class:`Transaction` and :class:`Work`;
transaction bodies yield :class:`Read`/:class:`Write`/:class:`Work`/
:class:`Alloc` (see :mod:`repro.runtime.api`).  The driver implements
the retry loop: abort -> rollback -> exponential backoff -> fresh body.

The *pick the next thread* decision lives in
:class:`repro.runtime.sched.SchedulerKernel` — an indexed min-heap
keyed by ``(clock, tid)`` with lazy invalidation, O(log T) per step
where the original inner loop rebuilt the runnable list and scanned
all T threads per event.  The kernel is schedule-preserving by
construction (same tie-break key), which the bit-identity gate
enforces against the legacy scan scheduler, kept for one release
behind ``REPRO_SCHED=scan``.

Backends program against the narrow :class:`repro.runtime.driver.
Driver` protocol — ``step_cost`` / ``park`` / ``wake_at`` / ``emit``
plus the run parameters — which this class implements; nothing outside
this module touches ``_Thread`` or the kernel.

Every state transition the driver makes — step, begin, read, write,
commit, abort, park/wake, backoff — is published on ``self.bus``
(:class:`repro.runtime.events.EventBus`).  Statistics accumulation,
history recording and the sanitizer's event log are all bus
subscribers; nothing else observes the driver.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, NoReturn, Optional, Sequence

from .api import (
    Alloc,
    AwaitBarrier,
    Read,
    Transaction,
    TransactionAborted,
    Work,
    Write,
)
from .backend import CostModel, ParkThread, TMBackend
from .events import EventBus, SimEvent, StatsCollector
from .memory import Memory
from .sched import SchedulerKernel
from .stats import RunStats

#: cost of the allocator fast path (a bump pointer), ns.
ALLOC_NS = 4.0

#: env knob selecting the scheduler implementation: ``scan`` re-enables
#: the legacy O(T)-per-step linear scan (kept for one release as the
#: bit-identity reference and escape hatch), anything else — including
#: unset — uses the heap kernel.  See docs/PERF.md.
SCHED_ENV = "REPRO_SCHED"


def _sched_impl() -> str:
    return os.environ.get(SCHED_ENV, "kernel") or "kernel"


@dataclass
class _Thread:
    tid: int
    program: Generator
    clock: float = 0.0
    #: value to send into the program generator at the next step.
    program_value: Any = None
    #: active transaction state (None outside transactions).
    txn: Optional["_TxnState"] = None
    parked: bool = False
    #: why the thread parked (deadlock diagnostics); None when running.
    park_cause: Optional[str] = None
    done: bool = False
    rng: random.Random = field(default_factory=random.Random)


@dataclass
class _TxnState:
    make_body: Callable[[], Generator]
    label: Optional[str]
    body: Generator = None  # type: ignore[assignment]
    attempt: int = 0
    attempt_start: float = 0.0
    #: value to send into the body at the next step.
    body_value: Any = None
    #: operation to re-issue after a wake (parked mid-operation).
    pending_op: Any = None


class Simulator:
    """Runs thread programs against one backend; collects RunStats.

    Implements the :class:`repro.runtime.driver.Driver` protocol — the
    object handed to ``backend.attach`` *is* this simulator, but
    backends may only use the protocol surface.
    """

    def __init__(
        self,
        backend: TMBackend,
        n_threads: int,
        memory: Optional[Memory] = None,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        workload_name: str = "",
        max_steps: int = 200_000_000,
    ):
        if n_threads < 1:
            raise ValueError("need at least one thread")
        self.backend = backend
        self.n_threads = n_threads
        self.memory = memory if memory is not None else Memory()
        self.cost_model = cost_model or CostModel()
        self.seed = seed
        self.max_steps = max_steps
        self.stats = RunStats(
            backend=backend.name, workload=workload_name, n_threads=n_threads
        )
        #: the unified observation path: every driver transition is
        #: published here.  Must exist before ``backend.attach`` so
        #: recording wrappers can subscribe.
        self.bus = EventBus()
        StatsCollector(self.stats).install(self.bus)
        self._threads: List[_Thread] = []
        #: the scheduling kernel of the current run (None before the
        #: run starts and on the legacy ``REPRO_SCHED=scan`` path).
        self._kernel: Optional[SchedulerKernel] = None
        backend.attach(self)
        #: Per-thread Work-op scale, cached off the per-step path
        #: (constant for a run: pure function of cost model and the
        #: backend's thread placement).  Single-node backends report
        #: every thread sharing all cores (``local_threads`` == T, one
        #: global SMT regime — the pre-cluster behaviour, bit-exact);
        #: a cluster backend pins threads to nodes, so each thread's
        #: scale reflects only its own node's occupancy.  Computed
        #: after ``attach`` because placement needs the driver.
        self._work_scale = [
            self.cost_model.compute_scale(backend.local_threads(tid))
            for tid in range(n_threads)
        ]

    # ------------------------------------------------------------------
    # The Driver protocol (repro.runtime.driver): the only surface
    # backends and the hw/validation layers may program against.
    # ------------------------------------------------------------------
    def step_cost(self, ns: float, footprint: float = 1.0) -> float:
        """A nominal CPU cost scaled for the current SMT regime."""
        return ns * self.cost_model.compute_scale(self.n_threads, footprint)

    def park(self, tid: int) -> NoReturn:
        """Abandon the current operation; the thread blocks and the
        operation is re-issued after :meth:`wake_at`."""
        raise ParkThread()

    def wake_at(self, tid: int, at_ns: float) -> None:
        """Unpark a thread (backends call this on lock release)."""
        thread = self._threads[tid]
        if not thread.parked:
            raise RuntimeError(f"thread {tid} is not parked")
        thread.parked = False
        thread.park_cause = None
        coalesced = at_ns <= thread.clock
        thread.clock = max(thread.clock, at_ns)
        if self.bus.wants("wake"):
            self.bus.emit(SimEvent("wake", tid, thread.clock))
        if self._kernel is not None:
            self._kernel.wake(tid, thread.clock, coalesced)

    def wants(self, kind: str) -> bool:
        return self.bus.wants(kind)

    def emit(self, event: SimEvent) -> None:
        """wants()-gated publish — the backend-facing emission path."""
        if self.bus.wants(event.kind):
            self.bus.emit(event)

    # -- deprecated alias (pre-Driver spelling) -------------------------
    def wake(self, tid: int, at_ns: float) -> None:
        self.wake_at(tid, at_ns)

    # ------------------------------------------------------------------
    def _hook(self, fn, *args):
        """Invoke a backend hook with ``bus.in_backend`` raised, so
        Memory observers can tell write-backs from direct stores."""
        bus = self.bus
        bus.in_backend = True
        try:
            return fn(*args)
        finally:
            bus.in_backend = False

    # ------------------------------------------------------------------
    def run(self, programs: Sequence[Callable[[int], Generator]]) -> RunStats:
        """Execute one program generator per thread to completion.

        ``programs[i]`` is called with the thread id to produce the
        thread's program; usually all entries are the same function.
        """
        if len(programs) != self.n_threads:
            raise ValueError("one program per thread required")
        self._threads = [
            _Thread(
                tid=tid,
                program=make(tid),
                rng=random.Random((self.seed << 20) ^ tid),
            )
            for tid, make in enumerate(programs)
        ]
        self._kernel = None
        if _sched_impl() == "scan":
            self._run_scan()
        else:
            self._run_kernel()
        self.stats.makespan_ns = max(t.clock for t in self._threads)
        self._hook(self.backend.run_finished)
        kernel = self._kernel
        if kernel is not None and self.bus.wants("sched"):
            self.bus.emit(
                SimEvent(
                    "sched", -1, self.stats.makespan_ns, data=kernel.snapshot()
                )
            )
        return self.stats

    def _run_kernel(self) -> None:
        """The O(log T)-per-step inner loop over the heap kernel."""
        threads = self._threads
        kernel = SchedulerKernel(len(threads))
        self._kernel = kernel
        for thread in threads:
            kernel.add(thread.tid, thread.clock)
        bus = self.bus
        wants = bus.wants
        emit = bus.emit
        pick = kernel.pick
        reschedule = kernel.reschedule
        retire = kernel.retire
        step = self._step
        max_steps = self.max_steps
        steps = 0
        while True:
            tid = pick()
            if tid < 0:
                if kernel.n_live:
                    raise RuntimeError(self._deadlock_message())
                break
            if steps >= max_steps:
                raise RuntimeError(self._livelock_message(steps))
            thread = threads[tid]
            if wants("step"):
                emit(SimEvent("step", tid, thread.clock))
            step(thread)
            steps += 1
            if thread.done:
                retire(tid)
            elif not thread.parked:
                reschedule(tid, thread.clock)
            # parked: kernel.park already ran inside _park().

    def _run_scan(self) -> None:
        """The legacy O(T)-per-step linear scan (``REPRO_SCHED=scan``).

        Kept for one release as the bit-identity reference the kernel
        is gated against; scheduled for removal once the gate has aged
        through a release.  Must never diverge from the kernel path in
        anything but complexity.
        """
        steps = 0
        bus = self.bus
        while True:
            runnable = [
                t for t in self._threads if not t.done and not t.parked
            ]
            if not runnable:
                if any(t.parked for t in self._threads):
                    raise RuntimeError(self._deadlock_message())
                break
            if steps >= self.max_steps:
                raise RuntimeError(self._livelock_message(steps))
            thread = min(runnable, key=lambda t: (t.clock, t.tid))
            if bus.wants("step"):
                bus.emit(SimEvent("step", thread.tid, thread.clock))
            self._step(thread)
            steps += 1

    # ------------------------------------------------------------------
    def _livelock_message(self, steps: int) -> str:
        return (
            f"simulation exceeded max_steps={self.max_steps} after "
            f"{steps} steps (livelock?); " + self._thread_snapshot()
        )

    def _deadlock_message(self) -> str:
        return (
            "deadlock: all live threads are parked; " + self._thread_snapshot()
        )

    def _thread_snapshot(self) -> str:
        """Per-thread state for hang diagnostics in CI logs."""
        states = []
        for t in self._threads:
            if t.done:
                state = "done"
            elif t.parked:
                state = f"parked({t.park_cause})"
            else:
                state = "runnable"
            states.append(f"t{t.tid} {state} clock={t.clock:.0f}ns")
        return "threads: " + ", ".join(states)

    def _park(self, thread: _Thread, reason: str) -> None:
        thread.parked = True
        thread.park_cause = reason
        if self.bus.wants("park"):
            self.bus.emit(
                SimEvent("park", thread.tid, thread.clock, cause=reason)
            )
        if self._kernel is not None:
            self._kernel.park(thread.tid)

    # ------------------------------------------------------------------
    def _step(self, thread: _Thread) -> None:
        if thread.txn is None:
            self._step_program(thread)
        else:
            self._step_transaction(thread)

    def _step_program(self, thread: _Thread) -> None:
        try:
            op = thread.program.send(thread.program_value)
        except StopIteration:
            thread.done = True
            return
        thread.program_value = None
        if isinstance(op, Work):
            thread.clock += op.ns * self._work_scale[thread.tid]
        elif isinstance(op, Transaction):
            thread.txn = _TxnState(make_body=op.body, label=op.label)
            self._begin_attempt(thread)
        elif isinstance(op, AwaitBarrier):
            self._arrive_barrier(thread, op.barrier)
        else:
            raise TypeError(f"thread programs may not yield {op!r}")

    def _arrive_barrier(self, thread: _Thread, barrier) -> None:
        barrier.waiting.append((thread.tid, thread.clock))
        if len(barrier.waiting) < barrier.parties:
            self._park(thread, "barrier")
            return
        # Detach this batch before releasing anyone: the barrier object
        # is reusable, and a woken thread re-arriving must land in a
        # fresh waiting list, never the one being released.
        arrivals = barrier.waiting
        barrier.waiting = []
        release = max(clock for _, clock in arrivals) + barrier.cost_ns
        for tid, _ in arrivals:
            if tid == thread.tid:
                thread.clock = release
            else:
                self.wake_at(tid, release)

    def _begin_attempt(self, thread: _Thread) -> None:
        txn = thread.txn
        bus = self.bus
        while True:
            txn.body = txn.make_body()
            txn.body_value = None
            txn.pending_op = None
            txn.attempt += 1
            txn.attempt_start = thread.clock
            try:
                thread.clock = self._hook(
                    self.backend.begin, thread.tid, thread.clock
                )
                if bus.wants("begin"):
                    bus.emit(
                        SimEvent(
                            "begin",
                            thread.tid,
                            thread.clock,
                            label=txn.label,
                            attempt_index=txn.attempt,
                            start=txn.attempt_start,
                        )
                    )
                return
            except ParkThread:
                # Re-begin entirely on wake (body not started yet).
                txn.body = None
                txn.pending_op = "begin"
                self._park(thread, "begin")
                return
            except TransactionAborted as aborted:
                # A begin can abort (e.g. HTM with the fallback lock
                # held); charge it like any other abort and retry.
                # ``began=False``: no attempt opened, recorders must
                # not close one.
                if aborted.at_ns is not None:
                    thread.clock = max(thread.clock, aborted.at_ns)
                bus.emit(
                    SimEvent(
                        "abort",
                        thread.tid,
                        thread.clock,
                        cause=aborted.cause,
                        began=False,
                    )
                )
                thread.clock = self._hook(
                    self.backend.rollback, thread.tid, thread.clock, aborted.cause
                )
                self._charge_backoff(thread, txn.attempt, aborted.cause)

    def _step_transaction(self, thread: _Thread) -> None:
        txn = thread.txn
        # Resume a parked operation first.
        if txn.pending_op == "begin":
            txn.pending_op = None
            txn.attempt -= 1  # _begin_attempt recounts
            self._begin_attempt(thread)
            return
        if txn.pending_op is not None:
            op = txn.pending_op
            txn.pending_op = None
        else:
            try:
                op = txn.body.send(txn.body_value)
            except StopIteration as stop:
                self._try_commit(thread, stop.value)
                return
            except TransactionAborted as aborted:  # pragma: no cover
                self._handle_abort(thread, aborted)
                return
        txn.body_value = None
        try:
            self._apply_txn_op(thread, op)
        except ParkThread:
            txn.pending_op = op
            self._park(thread, "operation")
        except TransactionAborted as aborted:
            self._handle_abort(thread, aborted)

    def _apply_txn_op(self, thread: _Thread, op: Any) -> None:
        txn = thread.txn
        bus = self.bus
        if isinstance(op, Read):
            value, ready = self._hook(
                self.backend.read, thread.tid, op.addr, thread.clock
            )
            thread.clock = ready
            txn.body_value = value
            if bus.wants("read"):
                bus.emit(
                    SimEvent("read", thread.tid, ready, addr=op.addr, value=value)
                )
        elif isinstance(op, Write):
            thread.clock = self._hook(
                self.backend.write, thread.tid, op.addr, op.value, thread.clock
            )
            if bus.wants("write"):
                bus.emit(
                    SimEvent(
                        "write",
                        thread.tid,
                        thread.clock,
                        addr=op.addr,
                        value=op.value,
                    )
                )
        elif isinstance(op, Work):
            thread.clock += op.ns * self._work_scale[thread.tid]
        elif isinstance(op, Alloc):
            txn.body_value = self.memory.alloc(op.cells)
            thread.clock += ALLOC_NS
        else:
            raise TypeError(f"transaction bodies may not yield {op!r}")

    def _try_commit(self, thread: _Thread, result: Any) -> None:
        try:
            thread.clock = self._hook(self.backend.commit, thread.tid, thread.clock)
        except ParkThread:
            # Invariant: commits decide at a definite simulated time.
            # A parked commit would strand the driver with a finished
            # body and no operation to re-issue; backends must either
            # complete the commit (possibly charging queueing delay in
            # the returned timestamp) or abort the transaction.
            raise RuntimeError("commit must not park")
        except TransactionAborted as aborted:
            self._handle_abort(thread, aborted)
            return
        self.bus.emit(SimEvent("commit", thread.tid, thread.clock))
        thread.txn = None
        thread.program_value = result

    def _handle_abort(self, thread: _Thread, aborted: TransactionAborted) -> None:
        txn = thread.txn
        if aborted.at_ns is not None:
            thread.clock = max(thread.clock, aborted.at_ns)
        self.bus.emit(
            SimEvent(
                "abort",
                thread.tid,
                thread.clock,
                cause=aborted.cause,
                wasted=thread.clock - txn.attempt_start,
            )
        )
        thread.clock = self._hook(
            self.backend.rollback, thread.tid, thread.clock, aborted.cause
        )
        self._charge_backoff(thread, txn.attempt, aborted.cause)
        self._begin_attempt(thread)

    def _charge_backoff(self, thread: _Thread, attempt: int, cause: str) -> None:
        pause = self._backoff_ns(thread, attempt, cause)
        thread.clock += pause
        if self.bus.wants("backoff"):
            self.bus.emit(SimEvent("backoff", thread.tid, thread.clock, ns=pause))

    def _backoff_ns(
        self, thread: _Thread, attempt: int, cause: Optional[str] = None
    ) -> float:
        model = self.cost_model
        base = model.backoff_base_ns * (2 ** min(attempt - 1, 6))
        jitter = 0.5 + thread.rng.random()
        scale = self.backend.backoff_scale
        if cause is not None:
            scale *= self.backend.abort_backoff_scale(cause)
        return min(base * jitter, model.backoff_cap_ns) * scale
