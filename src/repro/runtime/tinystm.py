"""TinySTM-style LSA baseline (§6.2's STM configuration).

A faithful reimplementation of the Lazy Snapshot Algorithm (Felber,
Fetzer, Marlier, Riegel — TPDS 2010) in the configuration the paper
benchmarks against: **commit-time locking** (lazy conflict detection)
with **write-back on commit** (lazy version management), per-location
versioned ownership records.

Per transaction:

* ``snapshot`` — the global-clock value the read set is known
  consistent at;
* reads check the location's version; a version newer than the
  snapshot triggers *snapshot extension* — revalidate every recorded
  read (cost linear in the read set, the overhead Fig. 11 charges
  TinySTM for) and slide the snapshot forward, or abort;
* writes buffer in a redo log;
* commit validates the read set once more, bumps the global clock,
  writes back and stamps the written locations.

Ownership records are word-granular (TinySTM's default hash maps one
lock per word-ish stripe); versioned locks are modelled by the
``_versions`` map since commits apply atomically in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from .api import TransactionAborted
from .backend import TMBackend

BEGIN_NS = 12.0
READ_NS = 10.0           # orec lookup + version check (extra cacheline)
#: Coherence traffic on the shared ownership-record table: every
#: committer invalidates orec lines that every reader must re-fetch,
#: so the effective per-read cost grows with the number of threads —
#: the scaling tax of per-location metadata that ROCoCoTM's global
#: signatures avoid (§5.1).
OREC_COHERENCE_NS_PER_THREAD = 0.9
WRITE_NS = 9.0           # redo-log append + bloom for own-read
VALIDATE_PER_READ_NS = 2.5
COMMIT_BASE_NS = 40.0    # clock CAS + lock acquisition overhead
WRITEBACK_PER_WORD_NS = 7.0
ROLLBACK_NS = 20.0


@dataclass
class _TxnState:
    snapshot: int = 0
    #: addr -> version observed at first read.
    reads: Dict[int, int] = field(default_factory=dict)
    #: redo log, program order collapsed to last value.
    writes: Dict[int, Any] = field(default_factory=dict)


class TinySTMBackend(TMBackend):
    """LSA with commit-time locking and write-back."""

    name = "TinySTM"
    #: per-location orecs + redo/read arrays: the largest metadata
    #: footprint of the contenders (drives the 28-thread thrash).
    metadata_footprint = 1.25
    #: ``_txns[tid]`` is a per-thread slot: only thread *tid* ever
    #: touches its entry, so no lock discipline applies (TM003).
    _sanitizer_locked = ("_txns",)

    def __init__(self) -> None:
        super().__init__()
        self.global_clock = 0
        self._versions: Dict[int, int] = {}
        self._txns: Dict[int, _TxnState] = {}
        self._read_ns = READ_NS

    def attach(self, driver) -> None:
        super().attach(driver)
        self._read_ns = READ_NS + OREC_COHERENCE_NS_PER_THREAD * max(
            0, driver.n_threads - 1
        )

    # ------------------------------------------------------------------
    def _version(self, addr: int) -> int:
        return self._versions.get(addr, 0)

    def begin(self, tid: int, now: float) -> float:
        self._txns[tid] = _TxnState(snapshot=self.global_clock)
        return now + self.scaled(BEGIN_NS)

    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        txn = self._txns[tid]
        cost = self._read_ns
        if addr in txn.writes:
            return txn.writes[addr], now + self.scaled(cost)

        version = self._version(addr)
        if version > txn.snapshot:
            # Snapshot extension: revalidate the whole read set.  This
            # O(r) pass is validation work whether it succeeds or not -
            # it is what makes big-read-set applications (labyrinth)
            # validation-bound on TinySTM (Fig. 11).
            extension = VALIDATE_PER_READ_NS * len(txn.reads)
            cost += extension
            self.stats.validation_ns += self.scaled(extension)
            if any(self._version(a) != v for a, v in txn.reads.items()):
                raise TransactionAborted("cpu-read-validation")
            txn.snapshot = self.global_clock

        txn.reads.setdefault(addr, version)
        return self.memory.load(addr), now + self.scaled(cost)

    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        self._txns[tid].writes[addr] = value
        return now + self.scaled(WRITE_NS)

    def commit(self, tid: int, now: float) -> float:
        txn = self._txns[tid]
        if not txn.writes:
            # Read-only: the snapshot is consistent by construction.
            self.stats.read_only_commits += 1
            return now + self.scaled(6.0)

        # Commit-time validation over the timestamped read set — the
        # per-transaction overhead Fig. 11 measures.
        validation = COMMIT_BASE_NS + VALIDATE_PER_READ_NS * len(txn.reads)
        self.stats.validation_ns += self.scaled(validation)
        self.stats.validations += 1
        if any(self._version(a) != v for a, v in txn.reads.items()):
            raise TransactionAborted("cpu-commit-validation")

        self.global_clock += 1
        stamp = self.global_clock
        for addr, value in txn.writes.items():
            self.memory.store(addr, value)
            self._versions[addr] = stamp
        cost = validation + WRITEBACK_PER_WORD_NS * len(txn.writes)
        return now + self.scaled(cost)

    def rollback(self, tid: int, now: float, cause: str) -> float:
        self._txns[tid] = _TxnState(snapshot=self.global_clock)
        return now + self.scaled(ROLLBACK_NS)
