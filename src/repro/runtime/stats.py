"""Run statistics: the instrumentation behind Fig. 10 and Fig. 11.

Abort accounting distinguishes *where* each abort was decided, because
the paper plots ROCoCoTM's FPGA-side aborts separately (the dotted
lines of Fig. 10) and argues most aborts fail fast on the CPU:

* ``cpu-*``   — decided on the CPU without out-of-core latency
  (eager signature conflicts, lock conflicts, HTM conflicts/capacity);
* ``fpga-*``  — decided by the offloaded validator (cycle,
  window-overflow).

Validation time is accrued separately so the Fig. 11 per-transaction
validation overhead falls out of the same counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields
from typing import Optional


@dataclass
class RunStats:
    """Aggregated outcome of one simulated run."""

    backend: str = ""
    workload: str = ""
    n_threads: int = 0

    commits: int = 0
    aborts_by_cause: Counter = field(default_factory=Counter)
    read_only_commits: int = 0

    #: simulated wall time: max thread clock at completion (ns).
    makespan_ns: float = 0.0
    #: total ns spent inside validation (waiting or computing).
    validation_ns: float = 0.0
    #: number of validations performed (for the Fig. 11 average).
    validations: int = 0
    #: total ns of useful work re-executed because of aborts.
    wasted_ns: float = 0.0

    # -- degradation / fault-injection accounting (docs/FAULTS.md) -----
    #: validation requests that missed their deadline at least once.
    validation_timeouts: int = 0
    #: timed-out requests re-shipped to the engine (bounded per request).
    validation_resubmits: int = 0
    #: link-level retransmissions absorbed below the validation layer.
    link_retries: int = 0
    #: injected faults by kind (drop/spike/corrupt/stall/reset).
    faults_injected: Counter = field(default_factory=Counter)
    #: FPGA -> software validation transitions.
    failovers: int = 0
    #: software -> FPGA recoveries (probe-driven).
    failbacks: int = 0
    #: validations decided by the software engine while degraded.
    software_validations: int = 0
    #: transactions forced onto the irrevocable global-lock rung after
    #: the whole validation ladder was exhausted.
    irrevocable_fallbacks: int = 0
    #: engine-side commits whose verdict never reached the CPU: the
    #: aborted transaction's window slot is mirrored as a ghost commit
    #: so CPU and engine snapshots stay aligned (docs/FAULTS.md).
    phantom_commits: int = 0
    #: observability snapshot (:meth:`repro.obs.MetricsRegistry.
    #: snapshot`) when the run was executed with ``obs`` enabled;
    #: None otherwise.  A plain JSON dict so it crosses the exec
    #: layer's process/cache transport unchanged.
    metrics: Optional[dict] = None

    @property
    def aborts(self) -> int:
        return sum(self.aborts_by_cause.values())

    @property
    def fpga_aborts(self) -> int:
        return sum(v for k, v in self.aborts_by_cause.items() if k.startswith("fpga"))

    @property
    def attempts(self) -> int:
        return self.commits + self.aborts

    @property
    def abort_rate(self) -> float:
        """Aborted / executed transactions — the Fig. 10 right axis."""
        return self.aborts / self.attempts if self.attempts else 0.0

    @property
    def fpga_abort_rate(self) -> float:
        return self.fpga_aborts / self.attempts if self.attempts else 0.0

    @property
    def mean_validation_us(self) -> float:
        """Amortized per-transaction validation time (Fig. 11), us."""
        return self.validation_ns / self.validations / 1000.0 if self.validations else 0.0

    @property
    def total_faults_injected(self) -> int:
        return sum(self.faults_injected.values())

    @property
    def degraded_validation_share(self) -> float:
        """Fraction of validations decided by the software fallback."""
        return self.software_validations / self.validations if self.validations else 0.0

    def record_abort(self, cause: str) -> None:
        self.aborts_by_cause[cause] += 1

    # -- serialization (the exec layer's cache + process transport) ----
    def to_dict(self) -> dict:
        """JSON-ready dict; round-trips exactly through
        :meth:`from_dict` (Counters become sorted plain dicts)."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Counter):
                value = {k: value[k] for k in sorted(value)}
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "RunStats":
        known = {f.name for f in fields(cls)}
        kwargs = {}
        for key, value in payload.items():
            if key not in known:
                continue  # forward compatibility: ignore unknown fields
            if key in ("aborts_by_cause", "faults_injected"):
                value = Counter(value)
            kwargs[key] = value
        return cls(**kwargs)

    def summary(self) -> str:
        causes = ", ".join(f"{k}={v}" for k, v in sorted(self.aborts_by_cause.items()))
        line = (
            f"{self.workload}/{self.backend}@{self.n_threads}t: "
            f"commits={self.commits} aborts={self.aborts} ({causes or 'none'}) "
            f"abort_rate={self.abort_rate:.1%} makespan={self.makespan_ns / 1e6:.3f} ms"
        )
        if self.total_faults_injected or self.failovers or self.validation_timeouts:
            kinds = ", ".join(
                f"{k}={v}" for k, v in sorted(self.faults_injected.items())
            )
            line += (
                f"\n  degradation: faults={self.total_faults_injected}"
                f" ({kinds or 'none'}) link_retries={self.link_retries}"
                f" timeouts={self.validation_timeouts}"
                f" resubmits={self.validation_resubmits}"
                f" failovers={self.failovers} failbacks={self.failbacks}"
                f" sw_validations={self.software_validations}"
                f" ({self.degraded_validation_share:.1%})"
                f" irrevocable_fallbacks={self.irrevocable_fallbacks}"
                f" phantom_commits={self.phantom_commits}"
            )
        return line


def speedup(baseline: RunStats, candidate: RunStats) -> float:
    """Makespan ratio: how much faster *candidate* ran than *baseline*."""
    if candidate.makespan_ns == 0:
        raise ValueError("candidate has no recorded makespan")
    return baseline.makespan_ns / candidate.makespan_ns


def geomean(values) -> float:
    import math

    values = list(values)
    if not values:
        raise ValueError("geomean of nothing")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
