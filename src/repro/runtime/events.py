"""The unified simulator event bus.

Before this layer existed the repo had three disjoint observation
paths into a run: the :class:`Simulator` mutated ``RunStats`` inline,
the recording/sanitizer wrappers intercepted the five backend hooks,
and value caches subscribed to raw :meth:`Memory.store` callbacks.
Every new consumer (the sanitizer, the fault layer) had to wire up all
three.  Now the simulator publishes **every state transition** —
``step``, ``begin``, ``read``, ``write``, ``commit``, ``abort``,
``park``/``wake``, ``backoff`` — as one :class:`SimEvent` stream on a
per-run :class:`EventBus`, and statistics, history recording and the
sanitizer's event log are all ordinary subscribers.

Design constraints:

* **Zero-cost when unobserved.**  The hot path guards every emission
  with :meth:`EventBus.wants`; constructing a :class:`SimEvent` for a
  read nobody listens to would slow every benchmark.  Only ``commit``
  and ``abort`` always have a listener (the stats collector).
* **Deterministic delivery.**  Subscribers run synchronously, in
  subscription order, at the simulated instant the transition
  happened.  The simulator is single-threaded discrete-event, so the
  stream is totally ordered and bit-reproducible — which is what lets
  recorded executions be compared across processes (see
  :mod:`repro.exec`).
* **Attribution, not interpretation.**  Events carry thread ids, not
  attempt ids: minting globally-unique attempt ids is the history
  recorder's job (:mod:`repro.runtime.recording`), exactly as before
  the refactor, so attempt vocabularies stay stable.  Trace-level
  replays (:meth:`repro.cc.engine.TraceCC.run`) emit events that *do*
  carry ``attempt`` and read ``version`` directly, because the trace
  already knows them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis import registry as _registry

#: every kind the simulator can emit (trace replays reuse a subset).
#: The vocabulary — and each kind's required ``data`` payload — is
#: declared once in :mod:`repro.analysis.registry`, which both this
#: runtime assert layer and the static analyzer (``repro analyze``,
#: rule TM103) check against.  ``validate`` carries the engine's
#: per-request timing breakdown, ``fault`` an injected-fault tally,
#: ``failover``/``failback`` the degradation ladder's transitions.
#: All are consumed by :mod:`repro.obs`.
EVENT_KINDS = _registry.EVENT_KINDS


@dataclass(frozen=True)
class SimEvent:
    """One state transition at one simulated instant."""

    kind: str
    #: simulated thread id (-1 for non-thread actors, e.g. trace
    #: replays and direct-store pseudo-transactions).
    tid: int
    #: simulated time (ns) at which the transition completed.
    time: float
    #: memory address (read/write events).
    addr: Optional[int] = None
    #: value read or written.
    value: object = None
    #: abort cause string (abort events).
    cause: Optional[str] = None
    #: transaction label (begin events), if the workload provided one.
    label: Optional[str] = None
    #: 1-based retry number of this attempt (begin events).
    attempt_index: int = 0
    #: ns of in-transaction work discarded by this abort.
    wasted: float = 0.0
    #: False for aborts raised by ``backend.begin`` — no attempt ever
    #: opened, so recorders must not try to close one.
    began: bool = True
    #: ns of driver backoff charged (backoff events).
    ns: float = 0.0
    #: explicit attempt id — only set by trace-level emitters; the
    #: simulator leaves it None and recorders mint their own.
    attempt: Optional[int] = None
    #: explicit read version — only set by trace-level emitters.
    version: Optional[int] = None
    #: simulated ns at which the transition *started* (begin events:
    #: the attempt's start, before the backend's begin cost) — lets
    #: span tracers open attempt spans at the true boundary.
    start: Optional[float] = None
    #: structured payload for validation-path events (validate/fault/
    #: failover/failback); simulated-time values only, never wall
    #: clock (see docs/OBSERVABILITY.md).
    data: Optional[dict] = None


class EventBus:
    """Synchronous, ordered fan-out of :class:`SimEvent`.

    ``in_backend`` is the bus's one piece of mutable state besides the
    subscriber lists: the simulator raises it around every backend
    hook invocation so that :meth:`Memory.subscribe` observers can
    tell a backend write-back from direct (workload phase) stores —
    the discrimination the sanitizer previously re-implemented with a
    private flag inside its wrapper.
    """

    def __init__(self) -> None:
        self._all: List[Callable[[SimEvent], None]] = []
        self._by_kind: Dict[str, List[Callable[[SimEvent], None]]] = {}
        #: True while the simulator is inside a backend hook.
        self.in_backend = False

    def subscribe(
        self,
        fn: Callable[[SimEvent], None],
        kinds: Optional[Sequence[str]] = None,
    ) -> None:
        """Register *fn* for *kinds* (or every kind if None).

        Delivery order is subscription order; subscribing the same
        function twice delivers it twice (wrap if you need idempotence).
        """
        if kinds is None:
            self._all.append(fn)
            return
        for kind in kinds:
            if kind not in EVENT_KINDS:
                raise ValueError(f"unknown event kind {kind!r}")
            self._by_kind.setdefault(kind, []).append(fn)

    def unsubscribe(self, fn: Callable[[SimEvent], None]) -> None:
        """Remove every registration of *fn* (catch-all and per-kind).

        Kind lists that become empty are deleted so :meth:`wants`
        returns to its pre-subscription answer — a detached tracer
        must leave zero residue on the emission fast path.  Raises
        ``ValueError`` if *fn* was never subscribed.
        """
        removed = False
        while fn in self._all:
            self._all.remove(fn)
            removed = True
        for kind in list(self._by_kind):
            handlers = self._by_kind[kind]
            while fn in handlers:
                handlers.remove(fn)
                removed = True
            if not handlers:
                del self._by_kind[kind]
        if not removed:
            raise ValueError("handler was not subscribed")

    def wants(self, kind: str) -> bool:
        """True if emitting *kind* would reach at least one subscriber
        — the hot path's guard against building dead events."""
        return bool(self._all) or kind in self._by_kind

    def emit(self, event: SimEvent) -> None:
        if __debug__:
            problem = _registry.check_event(event.kind, event.data)
            assert problem is None, problem
        for fn in self._all:
            fn(event)
        for fn in self._by_kind.get(event.kind, ()):
            fn(event)


class StatsCollector:
    """RunStats accumulation as a bus subscriber.

    The simulator used to bump ``stats.commits`` / ``record_abort`` /
    ``wasted_ns`` inline at three separate sites; this collector is
    now the only place driver-level outcomes turn into statistics.
    (Backends still accrue their own measurement counters —
    ``validation_ns``, degradation tallies — directly: those are
    internal measurements, not driver state transitions.)
    """

    KINDS = ("commit", "abort")

    def __init__(self, stats) -> None:
        self.stats = stats

    def install(self, bus: EventBus) -> None:
        bus.subscribe(self._on_event, kinds=self.KINDS)

    def _on_event(self, event: SimEvent) -> None:
        if event.kind == "commit":
            self.stats.commits += 1
        else:  # abort
            self.stats.record_abort(event.cause)
            self.stats.wasted_ns += event.wasted
